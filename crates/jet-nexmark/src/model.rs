//! NEXMark entities [35]: people who run auctions, and the bids on them.
//!
//! Field sets follow the Apache Beam NEXMark suite the paper uses (§7.1),
//! trimmed to what the queries touch. All types are snapshot-serializable
//! (`Snap`) so they can live inside windowed co-group accumulators.

use jet_core::state::Snap;
use jet_core::Ts;
use jet_util::codec::{ByteReader, ByteWriter, DecodeError};

/// A registered person (potential seller/bidder).
#[derive(Debug, Clone, PartialEq)]
pub struct Person {
    pub id: u64,
    pub name: String,
    /// Two-letter US state, the Q3 filter target.
    pub state: String,
    pub city: String,
    pub ts: Ts,
}

/// An auction listing.
#[derive(Debug, Clone, PartialEq)]
pub struct Auction {
    pub id: u64,
    pub seller: u64,
    pub category: u64,
    pub initial_bid: i64,
    /// Event time the auction closes.
    pub expires: Ts,
    pub ts: Ts,
}

/// A bid on an auction.
#[derive(Debug, Clone, PartialEq)]
pub struct Bid {
    pub auction: u64,
    pub bidder: u64,
    pub price: i64,
    pub ts: Ts,
}

/// The unified generator output stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    Person(Person),
    Auction(Auction),
    Bid(Bid),
}

impl Event {
    pub fn ts(&self) -> Ts {
        match self {
            Event::Person(p) => p.ts,
            Event::Auction(a) => a.ts,
            Event::Bid(b) => b.ts,
        }
    }

    pub fn as_bid(&self) -> Option<&Bid> {
        match self {
            Event::Bid(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_auction(&self) -> Option<&Auction> {
        match self {
            Event::Auction(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_person(&self) -> Option<&Person> {
        match self {
            Event::Person(p) => Some(p),
            _ => None,
        }
    }
}

impl Snap for Person {
    fn save(&self, w: &mut ByteWriter) {
        w.put_varint(self.id);
        w.put_str(&self.name);
        w.put_str(&self.state);
        w.put_str(&self.city);
        self.ts.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Person {
            id: r.get_varint()?,
            name: r.get_str()?.to_string(),
            state: r.get_str()?.to_string(),
            city: r.get_str()?.to_string(),
            ts: Ts::load(r)?,
        })
    }
}

impl Snap for Auction {
    fn save(&self, w: &mut ByteWriter) {
        w.put_varint(self.id);
        w.put_varint(self.seller);
        w.put_varint(self.category);
        self.initial_bid.save(w);
        self.expires.save(w);
        self.ts.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Auction {
            id: r.get_varint()?,
            seller: r.get_varint()?,
            category: r.get_varint()?,
            initial_bid: i64::load(r)?,
            expires: Ts::load(r)?,
            ts: Ts::load(r)?,
        })
    }
}

impl Snap for Bid {
    fn save(&self, w: &mut ByteWriter) {
        w.put_varint(self.auction);
        w.put_varint(self.bidder);
        self.price.save(w);
        self.ts.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Bid {
            auction: r.get_varint()?,
            bidder: r.get_varint()?,
            price: i64::load(r)?,
            ts: Ts::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_roundtrips() {
        let p = Person {
            id: 7,
            name: "n7".into(),
            state: "OR".into(),
            city: "Portland".into(),
            ts: 123,
        };
        assert_eq!(Person::from_bytes(&p.to_bytes()).unwrap(), p);
        let a = Auction {
            id: 1,
            seller: 7,
            category: 3,
            initial_bid: 100,
            expires: 99,
            ts: 5,
        };
        assert_eq!(Auction::from_bytes(&a.to_bytes()).unwrap(), a);
        let b = Bid {
            auction: 1,
            bidder: 2,
            price: -5,
            ts: 10,
        };
        assert_eq!(Bid::from_bytes(&b.to_bytes()).unwrap(), b);
    }

    #[test]
    fn event_accessors() {
        let e = Event::Bid(Bid {
            auction: 1,
            bidder: 2,
            price: 3,
            ts: 4,
        });
        assert_eq!(e.ts(), 4);
        assert!(e.as_bid().is_some());
        assert!(e.as_person().is_none());
        assert!(e.as_auction().is_none());
    }
}

//! # jet-nexmark — the NEXMark benchmark [35] on jet-rs
//!
//! The paper's evaluation workload (§7.1): an auction house generating
//! persons, auctions, and bids, and a set of standard queries over them.
//! This crate provides the deterministic rate-controlled generator and
//! queries Q1–Q8 and Q13 built on the typed Pipeline API.

pub mod generator;
pub mod model;
pub mod queries;

pub use generator::NexmarkConfig;
pub use model::{Auction, Bid, Event, Person};

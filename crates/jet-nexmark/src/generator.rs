//! Deterministic NEXMark event generator.
//!
//! Follows the Beam suite's proportions (1 person : 3 auctions : 46 bids per
//! 50 events) and the paper's key-space configuration: "we define 10
//! thousand distinct keys that correspond to persons and auctions; we
//! generate 1M records per second, by drawing keys randomly" (§7.1).
//!
//! Everything is a pure function of the event's global sequence number, so
//! any source instance can produce any slice of the stream without
//! coordination, and replays after recovery are bit-identical.

use crate::model::{Auction, Bid, Event, Person};
use jet_core::Ts;
use jet_util::seq::mix64;

/// Events per proportion period.
const PERIOD: u64 = 50;
/// Persons per period.
const PERSON_SLOTS: u64 = 1;
/// Auctions per period.
const AUCTION_SLOTS: u64 = 3;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct NexmarkConfig {
    /// Number of distinct person ids ("hot" key space).
    pub people: u64,
    /// Number of distinct auction ids.
    pub auctions: u64,
    /// Number of auction categories (Q4).
    pub categories: u64,
    /// Auction lifetime in event-time nanos (Q4/Q8 semantics).
    pub auction_duration: Ts,
    /// Seed mixed into every draw.
    pub seed: u64,
}

impl Default for NexmarkConfig {
    fn default() -> Self {
        // Paper: 10k distinct keys for persons and auctions.
        NexmarkConfig {
            people: 10_000,
            auctions: 10_000,
            categories: 10,
            auction_duration: 10_000_000_000, // 10 s
            seed: 0x4E58_4D41_524B,           // "NXMARK"
        }
    }
}

/// US states used by Q3's filter plus filler.
const STATES: [&str; 6] = ["OR", "ID", "CA", "WA", "NY", "TX"];
const CITIES: [&str; 6] = ["Portland", "Boise", "San Jose", "Seattle", "NYC", "Austin"];

impl NexmarkConfig {
    /// Deterministically build event `seq` with timestamp `ts`.
    pub fn event(&self, seq: u64, ts: Ts) -> Event {
        let slot = seq % PERIOD;
        let r = mix64(seq ^ self.seed);
        if slot < PERSON_SLOTS {
            let id = r % self.people;
            Event::Person(Person {
                id,
                name: format!("person-{id}"),
                state: STATES[(r >> 8) as usize % STATES.len()].to_string(),
                city: CITIES[(r >> 16) as usize % CITIES.len()].to_string(),
                ts,
            })
        } else if slot < PERSON_SLOTS + AUCTION_SLOTS {
            let id = r % self.auctions;
            Event::Auction(Auction {
                id,
                seller: mix64(r) % self.people,
                category: (r >> 24) % self.categories,
                initial_bid: ((r >> 32) % 1_000) as i64 + 1,
                expires: ts + self.auction_duration,
                ts,
            })
        } else {
            Event::Bid(Bid {
                auction: r % self.auctions,
                bidder: mix64(r ^ 0xB1D) % self.people,
                price: ((r >> 20) % 10_000) as i64 + 100,
                ts,
            })
        }
    }

    /// The share of generated events that are bids (46/50 in the standard
    /// proportions) — used to convert a desired bid rate into an event rate.
    pub fn bid_fraction(&self) -> f64 {
        (PERIOD - PERSON_SLOTS - AUCTION_SLOTS) as f64 / PERIOD as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = NexmarkConfig::default();
        for seq in 0..1000 {
            assert_eq!(cfg.event(seq, seq as Ts), cfg.event(seq, seq as Ts));
        }
    }

    #[test]
    fn proportions_match_beam_defaults() {
        let cfg = NexmarkConfig::default();
        let mut people = 0;
        let mut auctions = 0;
        let mut bids = 0;
        for seq in 0..5_000 {
            match cfg.event(seq, 0) {
                Event::Person(_) => people += 1,
                Event::Auction(_) => auctions += 1,
                Event::Bid(_) => bids += 1,
            }
        }
        assert_eq!(people, 100);
        assert_eq!(auctions, 300);
        assert_eq!(bids, 4_600);
        assert!((cfg.bid_fraction() - 0.92).abs() < 1e-9);
    }

    #[test]
    fn keys_stay_in_configured_space() {
        let cfg = NexmarkConfig {
            people: 100,
            auctions: 50,
            ..Default::default()
        };
        for seq in 0..10_000 {
            match cfg.event(seq, 0) {
                Event::Person(p) => assert!(p.id < 100),
                Event::Auction(a) => {
                    assert!(a.id < 50);
                    assert!(a.seller < 100);
                    assert!(a.category < 10);
                }
                Event::Bid(b) => {
                    assert!(b.auction < 50);
                    assert!(b.bidder < 100);
                    assert!(b.price >= 100);
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = NexmarkConfig {
            seed: 1,
            ..Default::default()
        };
        let b = NexmarkConfig {
            seed: 2,
            ..Default::default()
        };
        let same = (0..100).filter(|&s| a.event(s, 0) == b.event(s, 0)).count();
        assert!(same < 5);
    }

    #[test]
    fn auction_expiry_follows_duration() {
        let cfg = NexmarkConfig::default();
        for seq in 0..200 {
            if let Event::Auction(a) = cfg.event(seq, 1_000) {
                assert_eq!(a.expires, 1_000 + cfg.auction_duration);
            }
        }
    }
}

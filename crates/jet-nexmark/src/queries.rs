//! The NEXMark queries on the Pipeline API (paper §7.1).
//!
//! The evaluation runs Q1, Q2, Q5, Q8 and Q13; the paper's query list also
//! describes Q3, Q4, Q6 and Q7, all implemented here. Each function takes
//! the unified event stream and returns the query's output stage; callers
//! attach the measurement sink.

use crate::generator::NexmarkConfig;
use crate::model::{Auction, Bid, Event, Person};
use jet_core::processors::agg::{averaging, counting, maxing, AggregateOp};
use jet_core::processors::source::WatermarkPolicy;
use jet_core::Ts;
use jet_pipeline::{Pipeline, StreamStage, WindowDef, WindowResult};

/// Attach the NEXMark generator source to `p`.
pub fn source(
    p: &Pipeline,
    cfg: &NexmarkConfig,
    rate: u64,
    limit: Option<u64>,
    policy: WatermarkPolicy,
) -> StreamStage<Event> {
    let cfg = cfg.clone();
    p.read_from_generator_cfg("nexmark", rate, limit, policy, move |seq, ts| {
        cfg.event(seq, ts)
    })
}

/// Bids sub-stream.
pub fn bids(src: &StreamStage<Event>) -> StreamStage<Bid> {
    src.flat_map(|e: &Event| e.as_bid().cloned())
}

/// Auctions sub-stream.
pub fn auctions(src: &StreamStage<Event>) -> StreamStage<Auction> {
    src.flat_map(|e: &Event| e.as_auction().cloned())
}

/// Persons sub-stream.
pub fn persons(src: &StreamStage<Event>) -> StreamStage<Person> {
    src.flat_map(|e: &Event| e.as_person().cloned())
}

/// **Q1 — Currency conversion** (simple map): dollar prices to euros.
pub fn q1(src: &StreamStage<Event>) -> StreamStage<Bid> {
    bids(src).map(|b: &Bid| Bid {
        price: (b.price as f64 * 0.908) as i64,
        ..b.clone()
    })
}

/// **Q2 — Selection** (simple filter): bids on auctions with `id % 123 == 0`.
pub fn q2(src: &StreamStage<Event>) -> StreamStage<(u64, i64)> {
    bids(src)
        .filter(|b: &Bid| b.auction.is_multiple_of(123))
        .map(|b: &Bid| (b.auction, b.price))
}

/// **Q3 — Local item suggestion** (incremental join): sellers in OR/ID/CA
/// who list category-10 auctions. Output: (name, city, state, auction id).
pub fn q3(src: &StreamStage<Event>) -> StreamStage<(String, String, String, u64)> {
    src.filter(|e: &Event| match e {
        Event::Person(p) => matches!(p.state.as_str(), "OR" | "ID" | "CA"),
        Event::Auction(a) => a.category == 9, // categories are 0-based here
        Event::Bid(_) => false,
    })
    .map_stateful(
        |e: &Event| match e {
            Event::Person(p) => p.id,
            Event::Auction(a) => a.seller,
            Event::Bid(_) => unreachable!("bids filtered out"),
        },
        || (Option::<(String, String, String)>::None, Vec::<u64>::new()),
        |state, e| match e {
            Event::Person(p) => {
                state.0 = Some((p.name.clone(), p.city.clone(), p.state.clone()));
                let pending = std::mem::take(&mut state.1);
                let (n, c, s) = state.0.clone().expect("just set");
                Some(
                    pending
                        .into_iter()
                        .map(|a| (n.clone(), c.clone(), s.clone(), a))
                        .collect::<Vec<_>>(),
                )
            }
            Event::Auction(a) => match &state.0 {
                Some((n, c, s)) => Some(vec![(n.clone(), c.clone(), s.clone(), a.id)]),
                None => {
                    state.1.push(a.id);
                    Some(vec![])
                }
            },
            Event::Bid(_) => unreachable!(),
        },
    )
    .flat_map(|v: &Vec<(String, String, String, u64)>| v.clone())
}

/// **Q4 — Average price per category** (join + windowed aggregation): for
/// each auction the winning (max) bid in its window, averaged per category.
pub fn q4(src: &StreamStage<Event>, window: Ts) -> StreamStage<WindowResult<u64, f64>> {
    let wdef = WindowDef::tumbling(window);
    let auction_stream = auctions(src).grouping_key(|a: &Auction| a.id);
    let bid_stream = bids(src).grouping_key(|b: &Bid| b.auction);
    auction_stream
        .window(wdef)
        .cogroup(bid_stream)
        .flat_map(|r: &WindowResult<u64, (Vec<Auction>, Vec<Bid>)>| {
            let (aucs, bds) = &r.value;
            let winning = bds.iter().map(|b| b.price).max();
            match (aucs.first(), winning) {
                (Some(a), Some(price)) => Some((a.category, price)),
                _ => None,
            }
        })
        .grouping_key(|(cat, _): &(u64, i64)| *cat)
        .window(wdef)
        .aggregate(averaging::<(u64, i64)>(|(_, p)| *p))
}

/// **Q5 — Hot items** (sliding window aggregation): bids per auction per
/// window. The paper's headline query: a 10 s window sliding every 10 ms.
pub fn q5(src: &StreamStage<Event>, wdef: WindowDef) -> StreamStage<WindowResult<u64, u64>> {
    bids(src)
        .grouping_key(|b: &Bid| b.auction)
        .window(wdef)
        .aggregate(counting::<Bid>())
}

/// Q5 with single-stage aggregation (ablation).
pub fn q5_single_stage(
    src: &StreamStage<Event>,
    wdef: WindowDef,
) -> StreamStage<WindowResult<u64, u64>> {
    bids(src)
        .grouping_key(|b: &Bid| b.auction)
        .window(wdef)
        .aggregate_single_stage(counting::<Bid>())
}

/// **Q6 — Average selling price by seller** (specialized combiner): mean of
/// the last 10 winning bids per seller. Winners approximated as the max bid
/// per auction per tumbling window, joined to the auction's seller.
pub fn q6(src: &StreamStage<Event>, window: Ts) -> StreamStage<(u64, i64)> {
    let wdef = WindowDef::tumbling(window);
    auctions(src)
        .grouping_key(|a: &Auction| a.id)
        .window(wdef)
        .cogroup(bids(src).grouping_key(|b: &Bid| b.auction))
        .flat_map(|r: &WindowResult<u64, (Vec<Auction>, Vec<Bid>)>| {
            let (aucs, bds) = &r.value;
            let winning = bds.iter().map(|b| b.price).max();
            match (aucs.first(), winning) {
                (Some(a), Some(price)) => Some((a.seller, price)),
                _ => None,
            }
        })
        .map_stateful(
            |(seller, _): &(u64, i64)| *seller,
            Vec::<i64>::new,
            |last10, (seller, price)| {
                last10.push(*price);
                if last10.len() > 10 {
                    last10.remove(0);
                }
                let avg = last10.iter().sum::<i64>() / last10.len() as i64;
                Some((*seller, avg))
            },
        )
}

/// **Q7 — Highest bid** (windowed max with fan-in to a single key): the top
/// bid price per tumbling window.
pub fn q7(src: &StreamStage<Event>, window: Ts) -> StreamStage<WindowResult<u64, i64>> {
    bids(src)
        .grouping_key(|_: &Bid| 0u64)
        .window(WindowDef::tumbling(window))
        .aggregate(maxing::<Bid>(|b| b.price))
}

/// **Q8 — Monitor new users** (stream-stream window join): persons who
/// created an auction in the same window. Output: (person id, name).
pub fn q8(src: &StreamStage<Event>, window: Ts) -> StreamStage<(u64, String)> {
    persons(src)
        .grouping_key(|p: &Person| p.id)
        .window(WindowDef::tumbling(window))
        .cogroup(auctions(src).grouping_key(|a: &Auction| a.seller))
        .flat_map(|r: &WindowResult<u64, (Vec<Person>, Vec<Auction>)>| {
            let (ps, aucs) = &r.value;
            match (ps.first(), aucs.is_empty()) {
                (Some(p), false) => Some((p.id, p.name.clone())),
                _ => None,
            }
        })
}

/// **Q13 — Bounded side-input join**: enrich bids against a static table
/// keyed by auction id.
pub fn q13(
    p: &Pipeline,
    src: &StreamStage<Event>,
    side: Vec<(u64, String)>,
) -> StreamStage<(u64, i64, String)> {
    let side_stage = p.read_from_vec(
        "side-input",
        side.into_iter().map(|kv| (0 as Ts, kv)).collect::<Vec<_>>(),
    );
    bids(src).hash_join(
        &side_stage,
        |(k, _): &(u64, String)| *k,
        |b: &Bid| b.auction,
        |b, matches| {
            matches
                .iter()
                .map(|(_, label)| (b.auction, b.price, label.clone()))
                .collect()
        },
    )
}

/// An aggregate op building the Q5 "hot items" top-N on top of counts, used
/// by examples: keeps the max-count auction per window.
pub fn hottest_auction() -> AggregateOp<Option<(i64, u64)>, (u64, u64)> {
    AggregateOp::of::<WindowResult<u64, u64>, _, _, _>(
        || None,
        |acc: &mut Option<(i64, u64)>, r: &WindowResult<u64, u64>| {
            let cand = (r.value as i64, r.key);
            *acc = Some(match acc {
                Some(best) => (*best).max(cand),
                None => cand,
            });
        },
        |a, b| {
            if let Some(bv) = b {
                *a = Some(a.map_or(*bv, |av| av.max(*bv)));
            }
        },
        |a| a.map(|(count, key)| (key, count as u64)).unwrap_or((0, 0)),
    )
}

//! Execution-tracing demo: run a windowed counting job on a two-member
//! simulated cluster with the tracer on, print the job diagnostics dump,
//! and write the captured spans as Chrome trace-event JSON (open
//! `trace_dump.json` in Perfetto or `chrome://tracing`).
//!
//! Run untraced (spans skipped, dump still renders) with `--disabled`.
use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::processors::agg::counting;
use jet_core::trace::{TraceData, Tracer};
use jet_pipeline::{Pipeline, WindowDef};
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let enabled = !std::env::args().any(|a| a == "--disabled");
    let tracer = if enabled {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };

    let p = Pipeline::create();
    let out = Arc::new(Mutex::new(Vec::new()));
    p.read_from_generator_cfg(
        "gen",
        1_000_000,
        Some(10_000),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _ts| seq % 8,
    )
    .grouping_key(|k: &u64| *k)
    .window(WindowDef::tumbling(1_000_000_000))
    .aggregate(counting::<u64>())
    .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        tracer: tracer.clone(),
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();

    // Drain the per-worker rings every ~1 ms of virtual time so they never
    // overflow, accumulating the job-level trace as the job runs.
    let mut trace = TraceData::new();
    let mut next_drain = 0u64;
    let mut drain = |now: u64, trace: &mut TraceData| {
        if now >= next_drain {
            tracer.drain_into(trace);
            next_drain = now + 1_000_000;
        }
    };

    // Dump diagnostics mid-run (5 ms in, while tasklets are live)...
    cluster.run_for_with(5_000_000, |now| drain(now, &mut trace));
    cluster.drain_trace_into(&mut trace);
    print!("{}", cluster.diagnostics_dump(enabled.then_some(&trace)));

    // ...then run the job to completion.
    let finished = cluster.run_for_with(30_000_000_000, |now| drain(now, &mut trace));
    assert!(finished, "job did not finish");
    cluster.drain_trace_into(&mut trace);

    let windows: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    eprintln!("job finished: {windows} events counted across windows");

    if enabled {
        let path = "trace_dump.json";
        std::fs::write(path, trace.to_chrome_json()).expect("write trace");
        eprintln!(
            "wrote {path}: {} spans on {} tracks ({} dropped) — open it in Perfetto",
            trace.events.len(),
            trace.tracks.len(),
            trace.dropped
        );
    } else {
        eprintln!("tracing disabled: {} spans recorded", trace.events.len());
    }
}

//! Diagnostic: which events disappear across kill+recover?
use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::processor::Guarantee;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const SEC: u64 = 1_000_000_000;
const MS: u64 = 1_000_000;

/// Per-window collected seqs, so missing events can be pinpointed.
type Collected = Arc<Mutex<Vec<(Ts, WindowResult<u64, Vec<u64>>)>>>;

fn main() {
    const LIMIT: u64 = 40_000;
    const KEYS: u64 = 32;
    let p = Pipeline::create();
    let out: Collected = Arc::new(Mutex::new(Vec::new()));
    // Collect the actual seqs per key so we can see WHICH are missing.
    let op = jet_core::processors::agg::AggregateOp::of::<(u64, u64), _, _, _>(
        Vec::new,
        |acc: &mut Vec<u64>, (_k, seq): &(u64, u64)| acc.push(*seq),
        |a, b| a.extend_from_slice(b),
        |a| a.clone(),
    );
    p.read_from_generator_cfg(
        "gen",
        1_000_000,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        move |seq, _ts| (seq % KEYS, seq),
    )
    .grouping_key(|(k, _): &(u64, u64)| *k)
    .window(WindowDef::tumbling(10 * SEC as Ts))
    .aggregate(op)
    .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 3,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(20 * MS);
    println!(
        "completed snapshot before kill: {}",
        cluster.registry().completed()
    );
    let victim = cluster.grid().members()[1];
    let recovered = cluster.kill_member_and_recover(victim).unwrap();
    println!("recovered from snapshot: {recovered:?}");
    let finished = cluster.run_for(120 * SEC);
    println!(
        "finished: {finished}, live tasklets: {}",
        cluster.live_tasklets()
    );
    let results = out.lock();
    let mut seen: HashMap<u64, u64> = HashMap::new(); // seq -> times
    for (_, r) in results.iter() {
        for &s in &r.value {
            *seen.entry(s).or_insert(0) += 1;
        }
    }
    let missing: Vec<u64> = (0..LIMIT).filter(|s| !seen.contains_key(s)).collect();
    let dups: Vec<u64> = seen
        .iter()
        .filter(|(_, &c)| c > 1)
        .map(|(&s, _)| s)
        .collect();
    println!(
        "total distinct: {}, missing: {}, dups: {}",
        seen.len(),
        missing.len(),
        dups.len()
    );
    if !missing.is_empty() {
        let min = missing.iter().min().unwrap();
        let max = missing.iter().max().unwrap();
        println!("missing range: {min}..={max}");
        // shard of a seq = seq % 64
        let mut shards: HashMap<u64, (u64, u64, u64)> = HashMap::new(); // shard -> (count, min, max)
        for &s in &missing {
            let e = shards.entry(s % 64).or_insert((0, u64::MAX, 0));
            e.0 += 1;
            e.1 = e.1.min(s);
            e.2 = e.2.max(s);
        }
        let mut sh: Vec<_> = shards.into_iter().collect();
        sh.sort();
        for (shard, (c, lo, hi)) in sh.iter().take(70) {
            println!("  shard {shard}: missing {c} (range {lo}..{hi})");
        }
        // keys
        let mut keys: HashMap<u64, u64> = HashMap::new();
        for &s in &missing {
            *keys.entry(s % KEYS).or_insert(0) += 1;
        }
        let mut kv: Vec<_> = keys.into_iter().collect();
        kv.sort();
        println!("  missing per key: {kv:?}");
    }
}

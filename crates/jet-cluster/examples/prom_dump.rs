//! Minimal observability demo: run a windowed counting job on a two-member
//! simulated cluster and dump the job-wide Prometheus exposition.
use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::processors::agg::counting;
use jet_pipeline::{Pipeline, WindowDef};
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let p = Pipeline::create();
    let out = Arc::new(Mutex::new(Vec::new()));
    p.read_from_generator_cfg(
        "gen",
        1_000_000,
        Some(10_000),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _ts| seq % 8,
    )
    .grouping_key(|k: &u64| *k)
    .window(WindowDef::tumbling(1_000_000_000))
    .aggregate(counting::<u64>())
    .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    assert!(cluster.run_for(30_000_000_000));
    print!("{}", cluster.prometheus());
}

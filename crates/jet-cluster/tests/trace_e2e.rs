//! End-to-end checks of the execution tracer (observability PR
//! acceptance): a traced windowed job on a 2-member simulated cluster must
//! produce a well-formed Chrome trace (spans from every layer — tasklet
//! calls, watermark emissions, network send/receive) and a diagnostics
//! dump that lists every vertex; and running the identical job untraced
//! must record nothing while producing the same results.

use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::processors::agg::counting;
use jet_core::trace::{TraceData, TraceKind, Tracer};
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use parking_lot::Mutex;
use std::sync::Arc;

type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

const SEC: u64 = 1_000_000_000;
const LIMIT: u64 = 20_000;
const VERTICES: [&str; 4] = ["gen", "window-accumulate", "window-combine", "collect-sink"];

/// gen -> window-accumulate -> window-combine -> collect-sink on two
/// members, draining the tracer's rings every ~10 ms of virtual time.
fn run_traced_job(tracer: Tracer) -> (SimCluster, TraceData, Collected<WindowResult<u64, u64>>) {
    let p = Pipeline::create();
    let out = Arc::new(Mutex::new(Vec::new()));
    p.read_from_generator_cfg(
        "gen",
        1_000_000,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _ts| seq % 32,
    )
    .grouping_key(|k: &u64| *k)
    .window(WindowDef::tumbling(SEC as Ts))
    .aggregate(counting::<u64>())
    .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        tracer: tracer.clone(),
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    let mut data = TraceData::new();
    let mut next_drain = 0u64;
    let finished = cluster.run_for_with(30 * SEC, |now| {
        if now >= next_drain {
            tracer.drain_into(&mut data);
            next_drain = now + 10_000_000;
        }
    });
    assert!(finished, "job did not finish");
    cluster.drain_trace_into(&mut data);
    (cluster, data, out)
}

#[test]
fn traced_job_produces_spans_from_every_layer() {
    let (_cluster, data, out) = run_traced_job(Tracer::enabled());
    let results: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    assert_eq!(results, LIMIT, "tracing must not change results");

    assert!(!data.events.is_empty(), "no spans recorded");
    assert_eq!(data.dropped, 0, "rings overflowed despite periodic drains");

    // Tasklet call spans exist for every vertex, on the virtual timeline.
    for v in VERTICES {
        assert!(
            data.of_kind(TraceKind::Call)
                .any(|e| data.name(e.rec.name) == v),
            "no call span for vertex {v}"
        );
    }
    // Watermarks flowed and were coalesced downstream of the source.
    assert!(data.of_kind(TraceKind::WmEmit).next().is_some());
    assert!(data.of_kind(TraceKind::WmCoalesce).next().is_some());
    // Two members with a partitioned edge: traffic crossed the network.
    let sent: i64 = data.of_kind(TraceKind::NetSend).map(|e| e.rec.arg).sum();
    let recv: i64 = data.of_kind(TraceKind::NetRecv).map(|e| e.rec.arg).sum();
    assert!(sent > 0, "no net-send spans");
    assert!(recv > 0, "no net-recv spans");

    // Tracks carry member (pid) and writer labels from both members.
    let pids: std::collections::HashSet<u32> = data.tracks.iter().map(|t| t.pid).collect();
    assert!(pids.len() >= 2, "expected tracks from 2 members: {pids:?}");
    assert!(data.tracks.iter().any(|t| t.label.contains("core-")));
    assert!(data.tracks.iter().any(|t| t.label.contains("send-")));
    assert!(data.tracks.iter().any(|t| t.label.contains("recv-")));

    // Call spans sit on the virtual timeline (within the 30 s run).
    for e in data.of_kind(TraceKind::Call).take(1000) {
        assert!(e.rec.ts + e.rec.dur <= 31 * SEC, "span beyond run end");
    }
}

#[test]
fn chrome_export_and_diagnostics_dump_are_complete() {
    let (cluster, data, _out) = run_traced_job(Tracer::enabled());

    let json = data.to_chrome_json();
    assert!(json.starts_with("{\"displayTimeUnit\""));
    assert!(json.contains("\"ph\":\"M\""), "missing track metadata");
    assert!(json.contains("\"ph\":\"X\""), "missing complete events");
    assert!(json.contains("\"dur\":"));
    let opens = json.chars().filter(|&c| c == '{').count();
    let closes = json.chars().filter(|&c| c == '}').count();
    assert_eq!(opens, closes, "unbalanced JSON braces");

    let dump = cluster.diagnostics_dump(Some(&data));
    for v in VERTICES {
        assert!(dump.contains(&format!("vertex {v}")), "dump misses {v}");
    }
    assert!(dump.contains("slowest calls:"), "no latency attribution");
    assert!(dump.contains("state:"), "no tasklet states");
    assert!(dump.contains("trace"), "no trace roll-up");
    assert!(!dump.contains("slowest calls: n/a"), "trace not used");
}

#[test]
fn disabled_tracer_records_nothing_but_job_still_dumps() {
    let (cluster, data, out) = run_traced_job(Tracer::disabled());
    let results: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    assert_eq!(results, LIMIT);
    assert!(data.events.is_empty(), "disabled tracer recorded spans");
    assert!(data.tracks.is_empty());

    // The dump still renders, with trace sections marked n/a.
    let dump = cluster.diagnostics_dump(None);
    for v in VERTICES {
        assert!(dump.contains(&format!("vertex {v}")), "dump misses {v}");
    }
    assert!(dump.contains("n/a (tracing disabled)"));
}

//! The multi-member wiring also runs on REAL threads and the wall clock —
//! the same `build_cluster_execution` output, with the in-memory transport
//! driven by the system clock. This is the deployment mode a user without
//! the simulator would run (one process; members as thread groups).

use jet_cluster::wiring::{build_cluster_execution, ClusterConfig};
use jet_core::exec::spawn_threaded;
use jet_core::metrics::SharedCounter;
use jet_core::network::InMemoryTransport;
use jet_core::processor::Guarantee;
use jet_core::processors::agg::counting;
use jet_core::snapshot::SnapshotRegistry;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use parking_lot::Mutex;
use std::sync::Arc;

/// Timestamped sink output, shared with the collecting stage.
type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

#[test]
fn threaded_multi_member_windowed_count_is_exact() {
    const LIMIT: u64 = 60_000;
    const KEYS: u64 = 32;
    let p = Pipeline::create();
    let out: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
    p.read_from_generator_cfg(
        "gen",
        2_000_000,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _| seq % KEYS,
    )
    .grouping_key(|k: &u64| *k)
    .window(WindowDef::tumbling(1_000_000_000))
    .aggregate(counting::<u64>())
    .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();

    let grid = jet_imdg::Grid::with_partition_count(3, 1, 31);
    let members = grid.members();
    let table = grid.table();
    let clock = jet_util::clock::system_clock();
    // 50µs simulated LAN latency against the wall clock.
    let transport = Arc::new(InMemoryTransport::new(clock.clone(), 50_000));
    let registry = Arc::new(SnapshotRegistry::disabled());
    let mut cfg = ClusterConfig::new(2, clock).with_guarantee(Guarantee::None);
    cfg.partition_count = 31;
    let exec =
        build_cluster_execution(&dag, &members, &table, transport, &cfg, &registry, None).unwrap();
    let tasklets: Vec<_> = exec
        .members
        .into_iter()
        .flat_map(|m| m.tasklets.into_iter().map(|(t, _)| t))
        .collect();
    // 3 members x 2 cores = 6 logical workers; on this container they time-
    // share one CPU, which only affects wall time, not results.
    let handle = spawn_threaded(tasklets, 6, exec.cancelled);
    handle.join();

    let results = out.lock();
    let total: u64 = results.iter().map(|(_, r)| r.value).sum();
    assert_eq!(total, LIMIT, "threaded cluster lost or duplicated events");
    let mut keys: Vec<u64> = results.iter().map(|(_, r)| r.key).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), KEYS as usize);
}

#[test]
fn threaded_cluster_with_snapshots_completes_checkpoints() {
    const LIMIT: u64 = 40_000;
    let p = Pipeline::create();
    let count = SharedCounter::new();
    p.read_from_generator_cfg(
        "gen",
        4_000_000,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _| seq,
    )
    .map(|v: &u64| v * 2)
    .write_to_count(count.clone());
    let dag = p.compile(2).unwrap();

    let grid = jet_imdg::Grid::with_partition_count(2, 1, 31);
    let members = grid.members();
    let table = grid.table();
    let clock = jet_util::clock::system_clock();
    let transport = Arc::new(InMemoryTransport::new(clock.clone(), 10_000));
    let store = jet_imdg::SnapshotStore::new(&grid, 3);
    let registry = Arc::new(SnapshotRegistry::new(store.clone(), 0));
    let mut cfg = ClusterConfig::new(2, clock.clone()).with_guarantee(Guarantee::ExactlyOnce);
    cfg.partition_count = 31;
    let exec =
        build_cluster_execution(&dag, &members, &table, transport, &cfg, &registry, None).unwrap();
    let tasklets: Vec<_> = exec
        .members
        .into_iter()
        .flat_map(|m| m.tasklets.into_iter().map(|(t, _)| t))
        .collect();
    let handle = spawn_threaded(tasklets, 4, exec.cancelled);
    // Trigger snapshots from this thread while the job runs (the coordinator
    // role, §4.4).
    let mut triggered = 0;
    while !handle.is_finished() {
        if registry.trigger().is_some() {
            triggered += 1;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    handle.join();
    assert_eq!(count.get(), LIMIT);
    assert!(triggered >= 1, "no snapshot was triggered");
    assert!(
        registry.completed() >= 1,
        "no snapshot completed on the threaded executor"
    );
    assert!(store.latest_complete().is_some());
}

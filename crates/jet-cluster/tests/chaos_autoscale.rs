//! Chaos-hardened autoscaling: the elastic controller drives live
//! rescales while seeded fault schedules fire *during* its decision
//! windows and mid-rescale.
//!
//! Deterministic lanes first (an undersized cluster scales up, an
//! oversized one scales down, a failed rescale climbs the backoff ladder
//! instead of flapping), then the chaos lane: every seed draws a
//! [`FaultPlan::random_in_window`] aimed at the controller's first
//! decision window and the rescale that follows, and asserts the
//! end-to-end invariants:
//!
//! * the job always completes and no window count is lost or duplicated
//!   (the same idempotent-sink oracle as tests/chaos.rs);
//! * no flapping — adjacent decisions in *different* directions are at
//!   least one cooldown apart, no matter what faults fired;
//! * only crashed members are ever fenced;
//! * the same seed replays bit-for-bit: fault schedule, cluster events,
//!   controller decision timeline, and outputs.
//!
//! Seed count comes from `JET_CHAOS_SEEDS` (CI runs 100 via the
//! chaos-autoscale job; the default keeps local `cargo test` fast). On
//! failure the seed, fault schedule, decision timeline, and a diagnostics
//! dump file are printed so the run can be replayed exactly.

use jet_cluster::{
    ClusterEvent, ControllerConfig, ControllerEvent, CoordinatorConfig, Direction, SimCluster,
    SimClusterConfig,
};
use jet_core::processor::Guarantee;
use jet_core::processors::agg::counting;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use jet_sim::{FaultPlan, RandomFaultSpec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;
const KEYS: u64 = 16;
const WINDOW: Ts = 10 * MS as Ts;

/// Shared sink the collect stage appends `(close_ts, window)` pairs into.
type Collected = Arc<Mutex<Vec<(Ts, WindowResult<u64, u64>)>>>;

fn chaos_seeds() -> Vec<u64> {
    let n: u64 = std::env::var("JET_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    (0..n).collect()
}

/// A keyed windowed count over a bounded generated stream.
fn counting_job(rate: u64, limit: u64) -> (Pipeline, Collected) {
    let p = Pipeline::create();
    let out = Arc::new(Mutex::new(Vec::new()));
    p.read_from_generator_cfg(
        "gen",
        rate,
        Some(limit),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _ts| seq % KEYS,
    )
    .grouping_key(|k: &u64| *k)
    .window(WindowDef::tumbling(WINDOW))
    .aggregate(counting::<u64>())
    .write_to_collect(out.clone());
    (p, out)
}

/// Everything one autoscaled run produced, for assertions and replay.
struct ScaleRun {
    seed: u64,
    limit: u64,
    digest: String,
    done: bool,
    failed: Option<String>,
    events: Vec<ClusterEvent>,
    ctl_events: Vec<ControllerEvent>,
    cooldown: u64,
    members_final: usize,
    collected: Vec<(Ts, WindowResult<u64, u64>)>,
    dump: String,
}

fn run_scaled(
    seed: u64,
    rate: u64,
    limit: u64,
    members: usize,
    ctl: ControllerConfig,
    plan: Option<FaultPlan>,
) -> ScaleRun {
    let digest = plan.as_ref().map(|p| p.digest()).unwrap_or_default();
    let cooldown = ctl.cooldown;
    let (p, out) = counting_job(rate, limit);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        fault_plan: plan,
        coordinator: Some(CoordinatorConfig::default()),
        controller: Some(ctl),
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    let done = cluster.run_for(2 * SEC);
    let collected = out.lock().clone();
    ScaleRun {
        seed,
        limit,
        digest,
        done,
        failed: cluster.failed().map(str::to_string),
        events: cluster.cluster_events(),
        ctl_events: cluster.controller_events(),
        cooldown,
        members_final: cluster.grid().members().len(),
        collected,
        dump: cluster.diagnostics_dump(None),
    }
}

/// The idempotent-sink view: re-emissions after a restore must be
/// bit-identical and the deduped sum must equal the stream length.
fn check_exactly_once(run: &ScaleRun) -> Result<(), String> {
    let mut windows: HashMap<(u64, Ts), u64> = HashMap::new();
    for (_, r) in &run.collected {
        if let Some(prev) = windows.insert((r.key, r.end), r.value) {
            if prev != r.value {
                return Err(format!(
                    "conflicting re-emission for key {} window-end {}: {} vs {}",
                    r.key, r.end, prev, r.value
                ));
            }
        }
    }
    let total: u64 = windows.values().sum();
    if total != run.limit {
        return Err(format!(
            "window counts lost or duplicated: deduped sum {total} != {}",
            run.limit
        ));
    }
    Ok(())
}

/// The no-flap oracle: any two adjacent decisions in *different*
/// directions must be at least one cooldown apart — "at most one
/// direction change per cooldown window", whatever faults fired.
fn check_no_flap(run: &ScaleRun) -> Result<(), String> {
    let decisions: Vec<(u64, Direction)> = run
        .ctl_events
        .iter()
        .filter_map(|e| match e {
            ControllerEvent::Decided { at, direction, .. } => Some((*at, *direction)),
            _ => None,
        })
        .collect();
    for pair in decisions.windows(2) {
        let ((t0, d0), (t1, d1)) = (pair[0], pair[1]);
        if d0 != d1 && t1.saturating_sub(t0) < run.cooldown {
            return Err(format!(
                "flap: scale-{} at {t0} then scale-{} at {t1} within one \
                 cooldown ({}ns)",
                d0.name(),
                d1.name(),
                run.cooldown
            ));
        }
    }
    Ok(())
}

fn check_run(run: &ScaleRun) -> Result<(), String> {
    if let Some(f) = &run.failed {
        return Err(format!("job declared lost: {f}"));
    }
    if !run.done {
        return Err("job did not complete within the virtual budget".into());
    }
    check_exactly_once(run)?;
    check_no_flap(run)?;
    // Only crashed members may be fenced (controller-ordered removals go
    // through graceful shutdown, never the fence path).
    let crashes = crashed_members(&run.digest);
    for e in &run.events {
        if let ClusterEvent::Fenced { member, .. } = e {
            if !crashes.contains(member) {
                return Err(format!("member {member} fenced without having crashed"));
            }
        }
    }
    Ok(())
}

/// Members crashed by the plan, parsed from the digest (test-side only;
/// the digest format is stable by contract).
fn crashed_members(digest: &str) -> Vec<u32> {
    digest
        .lines()
        .filter_map(|l| {
            let idx = l.find("crash(m")?;
            l[idx + 7..].split(')').next()?.parse().ok()
        })
        .collect()
}

fn fail_with_diagnostics(run: &ScaleRun, err: &str) -> ! {
    let path = format!(
        "{}/chaos-autoscale-seed-{}-dump.txt",
        std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()),
        run.seed
    );
    let artifact = format!(
        "chaos-autoscale seed {} FAILED: {}\n\nfault schedule:\n{}\n\n\
         controller decisions:\n{}\n\ncluster events:\n{}\n\n{}",
        run.seed,
        err,
        if run.digest.is_empty() {
            "(none)"
        } else {
            &run.digest
        },
        run.ctl_events
            .iter()
            .map(|e| format!("  {:>12}ns {}", e.at(), e.label()))
            .collect::<Vec<_>>()
            .join("\n"),
        run.events
            .iter()
            .map(|e| format!("  {:>12}ns {}", e.at(), e.label()))
            .collect::<Vec<_>>()
            .join("\n"),
        run.dump
    );
    let _ = std::fs::write(&path, &artifact);
    eprintln!("{artifact}");
    eprintln!("diagnostics dump written to {path}");
    panic!("chaos-autoscale seed {} failed: {}", run.seed, err);
}

/// Controller tuned for the deterministic lanes: decisions possible from
/// ~15 ms (4 samples on a 5 ms cadence), long cooldown so a bounded
/// stream sees at most one rescale per direction.
fn lane_controller() -> ControllerConfig {
    ControllerConfig {
        cadence: 5 * MS,
        window: 4,
        cooldown: 100 * MS,
        rescale_max_wait: SEC,
        ..ControllerConfig::default()
    }
}

/// An undersized cluster (2 members saturated by the source) must scale
/// up — and the live rescale must not lose or duplicate a single event.
#[test]
fn controller_scales_up_an_undersized_cluster() {
    let ctl = ControllerConfig {
        scale_up_occupancy: 700_000,
        scale_down_occupancy: 0,
        min_members: 2,
        max_members: 3,
        ..lane_controller()
    };
    // 16M events/s against 2 members x 2 cores at ~300 ns/event of summed
    // stage cost: comfortably past saturation.
    let run = run_scaled(0, 16_000_000, 600_000, 2, ctl, None);
    if let Err(e) = check_run(&run) {
        fail_with_diagnostics(&run, &e);
    }
    let decided_up = run.ctl_events.iter().any(|e| {
        matches!(
            e,
            ControllerEvent::Decided {
                direction: Direction::Up,
                ..
            }
        )
    });
    if !decided_up {
        fail_with_diagnostics(&run, "saturated cluster never decided to scale up");
    }
    let completed = run.ctl_events.iter().any(|e| {
        matches!(
            e,
            ControllerEvent::RescaleCompleted {
                direction: Direction::Up,
                members: 3,
                ..
            }
        )
    });
    if !completed {
        fail_with_diagnostics(&run, "scale-up was decided but never completed");
    }
    if run.members_final != 3 {
        fail_with_diagnostics(
            &run,
            &format!(
                "expected 3 members after scale-up, got {}",
                run.members_final
            ),
        );
    }
}

/// An oversized cluster (3 members nearly idle) must scale down to the
/// configured floor and stop there.
#[test]
fn controller_scales_down_an_idle_cluster_to_the_floor() {
    let ctl = ControllerConfig {
        scale_up_occupancy: 900_000,
        scale_down_occupancy: 300_000,
        min_members: 2,
        max_members: 3,
        ..lane_controller()
    };
    // 200k events/s against 3 members x 2 cores: a few percent occupancy.
    let run = run_scaled(0, 200_000, 12_000, 3, ctl, None);
    if let Err(e) = check_run(&run) {
        fail_with_diagnostics(&run, &e);
    }
    let completed = run.ctl_events.iter().any(|e| {
        matches!(
            e,
            ControllerEvent::RescaleCompleted {
                direction: Direction::Down,
                members: 2,
                ..
            }
        )
    });
    if !completed {
        fail_with_diagnostics(&run, "idle cluster never completed a scale-down");
    }
    if run.members_final != 2 {
        fail_with_diagnostics(
            &run,
            &format!(
                "expected the 2-member floor after scale-down, got {}",
                run.members_final
            ),
        );
    }
}

/// A rescale that keeps failing (snapshot store writes are dark, so the
/// terminal snapshot can never complete) must climb the bounded backoff
/// ladder and degrade — never flap, never wedge, never lose events.
#[test]
fn failed_rescales_back_off_then_degrade_instead_of_flapping() {
    let ctl = ControllerConfig {
        scale_up_occupancy: 700_000,
        scale_down_occupancy: 0,
        min_members: 2,
        max_members: 3,
        // Tight rescale budget + short ladder so the whole path fits the run.
        rescale_max_wait: 10 * MS,
        cooldown: 30 * MS,
        backoff_base: 10 * MS,
        backoff_max: 40 * MS,
        max_rescale_failures: 2,
        ..lane_controller()
    };
    let mut plan = FaultPlan::new(1);
    // Writes dark from just before the first decision (~15 ms) for longer
    // than the ladder can outlast: every terminal snapshot times out.
    plan.store_write_outage(12 * MS, 500 * MS);
    let run = run_scaled(1, 16_000_000, 1_200_000, 2, ctl, Some(plan));
    if let Err(e) = check_run(&run) {
        fail_with_diagnostics(&run, &e);
    }
    let failures: Vec<(u64, u32)> = run
        .ctl_events
        .iter()
        .filter_map(|e| match e {
            ControllerEvent::RescaleFailed { at, failures, .. } => Some((*at, *failures)),
            _ => None,
        })
        .collect();
    if failures.len() < 2 {
        fail_with_diagnostics(
            &run,
            &format!("expected repeated rescale failures, got {failures:?}"),
        );
    }
    for pair in failures.windows(2) {
        assert!(pair[1].0 > pair[0].0, "failures not ordered: {failures:?}");
        assert_eq!(
            pair[1].1,
            pair[0].1 + 1,
            "ladder must climb one rung per failure"
        );
    }
    let degraded = run
        .ctl_events
        .iter()
        .any(|e| matches!(e, ControllerEvent::Degraded { .. }));
    if !degraded {
        fail_with_diagnostics(&run, "ladder topped out but controller never degraded");
    }
    if run.members_final != 2 {
        fail_with_diagnostics(
            &run,
            "failed rescales must leave the cluster on its original topology",
        );
    }
}

/// Controller used by the chaos lane: saturated cluster, both directions
/// live, seeded backoff jitter.
fn chaos_controller(seed: u64) -> ControllerConfig {
    ControllerConfig {
        scale_up_occupancy: 700_000,
        scale_down_occupancy: 100_000,
        min_members: 1,
        max_members: 4,
        cadence: 5 * MS,
        window: 4,
        cooldown: 50 * MS,
        rescale_max_wait: 200 * MS,
        seed,
        ..ControllerConfig::default()
    }
}

fn chaos_plan(seed: u64) -> FaultPlan {
    // Aim the faults at the interesting interval: the controller's first
    // full window closes ~15-20 ms in, the first rescale runs just after.
    let spec = RandomFaultSpec::default();
    FaultPlan::random_in_window(seed, &spec, 10 * MS, 45 * MS)
}

fn run_chaos(seed: u64) -> ScaleRun {
    run_scaled(
        seed,
        16_000_000,
        400_000,
        3,
        chaos_controller(seed),
        Some(chaos_plan(seed)),
    )
}

/// The headline oracle: seeded faults fired into the decision window and
/// mid-rescale must never cost an event, flap the topology, or fence an
/// innocent member.
#[test]
fn autoscaling_under_seeded_faults_holds_every_oracle() {
    for seed in chaos_seeds() {
        let run = run_chaos(seed);
        if let Err(e) = check_run(&run) {
            fail_with_diagnostics(&run, &e);
        }
    }
}

/// Same seed, same chaos, same decisions: the controller timeline, the
/// cluster event log, and the outputs must replay bit-for-bit.
#[test]
fn same_seed_replays_controller_decisions_bit_for_bit() {
    // Prefer a seed whose plan crashes a member so the replay covers
    // detection + recovery interleaved with autoscaling decisions.
    let seed = (0..500)
        .find(|&s| !crashed_members(&chaos_plan(s).digest()).is_empty())
        .expect("no crashing seed in range");
    let a = run_chaos(seed);
    let b = run_chaos(seed);
    assert_eq!(a.digest, b.digest, "fault schedules diverged");
    assert_eq!(a.ctl_events, b.ctl_events, "controller decisions diverged");
    assert_eq!(a.events, b.events, "cluster event logs diverged");
    assert_eq!(a.done, b.done);
    assert_eq!(a.members_final, b.members_final, "final topology diverged");
    let key = |v: &[(Ts, WindowResult<u64, u64>)]| {
        let mut k: Vec<(Ts, u64, Ts, u64)> =
            v.iter().map(|(t, r)| (*t, r.key, r.end, r.value)).collect();
        k.sort_unstable();
        k
    };
    assert_eq!(key(&a.collected), key(&b.collected), "outputs diverged");
}

/// Config validation is part of the API surface the chaos lane leans on:
/// a controller that could flap by construction must be rejected before
/// the cluster starts.
#[test]
fn start_rejects_controller_misconfigurations() {
    let (p, _out) = counting_job(1_000_000, 1_000);
    let dag = p.compile(2).unwrap();
    let bad = ControllerConfig {
        scale_up_occupancy: 200_000,
        scale_down_occupancy: 300_000, // inverted hysteresis
        ..ControllerConfig::default()
    };
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        controller: Some(bad),
        ..Default::default()
    };
    let err = SimCluster::start(dag, cfg).err().expect("must reject");
    assert!(err.contains("controller config"), "unexpected error: {err}");

    // Autoscaling without snapshots can never rescale: reject up front.
    let (p, _out) = counting_job(1_000_000, 1_000);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        snapshot_interval: 0,
        controller: Some(ControllerConfig::default()),
        ..Default::default()
    };
    let err = SimCluster::start(dag, cfg).err().expect("must reject");
    assert!(err.contains("snapshot"), "unexpected error: {err}");
}

//! Cluster-level end-to-end tests on the virtual-time simulator: multi-
//! member correctness, distributed snapshots with failure recovery,
//! elastic rescaling, and active-active failover.

use jet_cluster::{ActiveActive, ActiveSide, SimCluster, SimClusterConfig};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::processor::Guarantee;
use jet_core::processors::agg::counting;
use jet_core::Ts;
use jet_nexmark::NexmarkConfig;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Timestamped sink output, shared with the collecting stage.
type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

const SEC: u64 = 1_000_000_000;
const MS: u64 = 1_000_000;

/// A keyed windowed count over a bounded generated stream, collected to a
/// shared vec.
fn counting_job(
    rate: u64,
    limit: u64,
    keys: u64,
    window: Ts,
) -> (Pipeline, Collected<WindowResult<u64, u64>>) {
    let p = Pipeline::create();
    let out = Arc::new(Mutex::new(Vec::new()));
    p.read_from_generator_cfg(
        "gen",
        rate,
        Some(limit),
        jet_core::processors::WatermarkPolicy::default(),
        move |seq, _ts| seq % keys,
    )
    .grouping_key(|k: &u64| *k)
    .window(WindowDef::tumbling(window))
    .aggregate(counting::<u64>())
    .write_to_collect(out.clone());
    (p, out)
}

#[test]
fn three_member_cluster_counts_every_event_once() {
    const LIMIT: u64 = 30_000;
    const KEYS: u64 = 64;
    let (p, out) = counting_job(1_000_000, LIMIT, KEYS, SEC as Ts);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 3,
        cores_per_member: 2,
        partition_count: 31,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    assert!(cluster.run_for(20 * SEC), "job did not finish");
    let results = out.lock();
    let mut per_key: HashMap<u64, u64> = HashMap::new();
    for (_, r) in results.iter() {
        *per_key.entry(r.key).or_insert(0) += r.value;
    }
    let total: u64 = per_key.values().sum();
    assert_eq!(total, LIMIT, "events lost or duplicated across members");
    for k in 0..KEYS {
        assert!(per_key.contains_key(&k), "key {k} never counted");
    }
}

#[test]
fn single_vs_multi_member_results_agree() {
    let run = |members: usize| {
        let (p, out) = counting_job(2_000_000, 20_000, 16, SEC as Ts);
        let dag = p.compile(2).unwrap();
        let cfg = SimClusterConfig {
            members,
            cores_per_member: 2,
            partition_count: 31,
            ..Default::default()
        };
        let mut cluster = SimCluster::start(dag, cfg).unwrap();
        assert!(cluster.run_for(20 * SEC));
        let mut v: Vec<(u64, Ts, u64)> = out
            .lock()
            .iter()
            .map(|(_, r)| (r.key, r.end, r.value))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(run(1), run(4), "cluster size changed the results");
}

#[test]
fn exactly_once_survives_member_kill() {
    const LIMIT: u64 = 40_000;
    const KEYS: u64 = 32;
    let (p, out) = counting_job(1_000_000, LIMIT, KEYS, 10 * SEC as Ts);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 3,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    // Run 20 virtual ms (half the 40 ms stream), ensuring >=1 snapshot.
    cluster.run_for(20 * MS);
    assert!(
        cluster.registry().completed() >= 1,
        "no snapshot completed before kill"
    );
    let victim = cluster.grid().members()[1];
    let recovered_from = cluster.kill_member_and_recover(victim).unwrap();
    assert!(recovered_from.is_some(), "recovery had no snapshot");
    assert!(
        cluster.run_for(60 * SEC),
        "job did not finish after recovery"
    );
    let results = out.lock();
    let mut per_key: HashMap<u64, u64> = HashMap::new();
    for (_, r) in results.iter() {
        *per_key.entry(r.key).or_insert(0) += r.value;
    }
    let total: u64 = per_key.values().sum();
    assert_eq!(total, LIMIT, "exactly-once violated across recovery");
}

#[test]
fn at_least_once_loses_nothing_but_may_duplicate() {
    const LIMIT: u64 = 30_000;
    let (p, out) = counting_job(1_000_000, LIMIT, 16, 10 * SEC as Ts);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::AtLeastOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(15 * MS);
    let victim = cluster.grid().members()[0];
    cluster.kill_member_and_recover(victim).unwrap();
    assert!(cluster.run_for(60 * SEC));
    let total: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    assert!(
        total >= LIMIT,
        "at-least-once lost events: {total} < {LIMIT}"
    );
}

#[test]
fn mid_flight_snapshot_kill_never_exposes_a_torn_snapshot() {
    const LIMIT: u64 = 40_000;
    const KEYS: u64 = 32;
    let (p, out) = counting_job(1_000_000, LIMIT, KEYS, 10 * SEC as Ts);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 3,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(20 * MS);
    assert!(
        cluster.registry().completed() >= 1,
        "no snapshot completed before kill"
    );
    // Start a fresh snapshot and kill a member while its barriers are
    // still in flight, between emission and the final ack.
    let torn = cluster.registry().trigger().expect("snapshot in flight");
    cluster.run_for(MS / 2);
    assert!(
        cluster.registry().completed() < torn,
        "snapshot completed before the kill could tear it"
    );
    let victim = cluster.grid().members()[1];
    let recovered_from = cluster.kill_member_and_recover(victim).unwrap();
    // The torn snapshot has no completion marker: recovery must pick an
    // older complete generation, never the torn id.
    let restored = recovered_from.expect("recovery had no snapshot");
    assert!(
        restored < torn,
        "recovered from the torn snapshot {torn} (got {restored})"
    );
    let store = cluster.registry();
    let store = store.store().expect("snapshots enabled");
    assert!(store.latest_complete().is_some_and(|id| id < torn));
    assert_eq!(
        store.record_count(torn),
        0,
        "partial records of the torn snapshot must be purged on rebuild"
    );
    assert!(
        cluster.run_for(60 * SEC),
        "job did not finish after recovery"
    );
    let results = out.lock();
    let mut per_key: HashMap<u64, u64> = HashMap::new();
    for (_, r) in results.iter() {
        *per_key.entry(r.key).or_insert(0) += r.value;
    }
    let total: u64 = per_key.values().sum();
    assert_eq!(total, LIMIT, "exactly-once violated across a torn snapshot");
}

#[test]
fn failed_rescale_aborts_the_terminal_snapshot_and_resumes() {
    const LIMIT: u64 = 40_000;
    let (p, out) = counting_job(1_000_000, LIMIT, 32, 10 * SEC as Ts);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(20 * MS);
    let completed_before = cluster.registry().completed();
    // A zero max_wait: the terminal snapshot cannot complete before the
    // deadline, so the rescale must fail...
    let err = cluster.add_member_and_rescale(0).unwrap_err();
    assert!(err.contains("did not complete"), "unexpected error: {err}");
    assert_eq!(cluster.grid().members().len(), 2, "no member may be added");
    // ...and must NOT wedge the job: the aborted terminal snapshot is
    // abandoned, later snapshots keep completing, and the job finishes
    // with exactly-once intact.
    cluster.run_for(20 * MS);
    assert!(
        cluster.registry().completed() > completed_before,
        "snapshots wedged after the failed rescale"
    );
    assert!(
        cluster.run_for(60 * SEC),
        "job did not finish after failed rescale"
    );
    let total: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    assert_eq!(total, LIMIT, "failed rescale lost or duplicated events");
}

/// Regression: a store write outage during the terminal snapshot poisons
/// it — barriers drain, every participant acks, but no durable completion
/// marker exists. The rescale must FAIL and roll back, never restore the
/// new topology from the phantom snapshot (which would silently
/// cold-restart the job disguised as a warm rescale).
#[test]
fn rescale_refuses_to_restore_from_a_poisoned_terminal_snapshot() {
    const LIMIT: u64 = 40_000;
    let (p, out) = counting_job(1_000_000, LIMIT, 32, 10 * SEC as Ts);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(20 * MS);
    let reg = cluster.registry();
    let faults = reg.store().expect("snapshots enabled").faults();
    let complete_before = reg.store().unwrap().latest_complete();
    assert!(
        complete_before.is_some(),
        "no complete snapshot before outage"
    );
    faults.set_fail_writes(true);
    let err = cluster.add_member_and_rescale(SEC).unwrap_err();
    assert!(err.contains("poisoned"), "unexpected error: {err}");
    assert_eq!(cluster.grid().members().len(), 2, "no member may be added");
    // The poisoned terminal id must not have become a recovery point, and
    // its partial records must be purged by the rollback rebuild.
    let reg = cluster.registry();
    let store = reg.store().unwrap();
    assert_eq!(store.latest_complete(), complete_before);
    faults.set_fail_writes(false);
    assert!(
        cluster.run_for(60 * SEC),
        "job did not finish after the poisoned rescale rolled back"
    );
    let total: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    assert_eq!(total, LIMIT, "poisoned rescale lost or duplicated events");
}

/// Regression: the topology *commit* fails (snapshot store reads go dark
/// between terminal-snapshot completion and the rebuild). The grid
/// mutation must roll back, and even though the rollback rebuild itself
/// cannot run against a dark store, the job must self-heal through the
/// recovery retry ladder once the outage lifts — never wedge.
#[test]
fn failed_topology_commit_rolls_back_and_self_heals() {
    const LIMIT: u64 = 40_000;
    let (p, out) = counting_job(1_000_000, LIMIT, 32, 10 * SEC as Ts);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(20 * MS);
    let reg = cluster.registry();
    let faults = reg.store().expect("snapshots enabled").faults();
    // Writes stay healthy (the terminal snapshot completes durably); reads
    // go dark, so the commit rebuild must fail.
    faults.set_fail_reads(true);
    let err = cluster.add_member_and_rescale(SEC).unwrap_err();
    assert!(err.contains("commit failed"), "unexpected error: {err}");
    assert_eq!(
        cluster.grid().members().len(),
        2,
        "failed commit must roll the added member back out"
    );
    faults.set_fail_reads(false);
    assert!(
        cluster.run_for(60 * SEC),
        "job did not self-heal after the failed commit: {:?}",
        cluster.failed()
    );
    assert!(
        cluster.failed().is_none(),
        "job lost: {:?}",
        cluster.failed()
    );
    let total: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    assert_eq!(total, LIMIT, "failed commit lost or duplicated events");
}

#[test]
fn rescale_removes_member_without_losing_state() {
    const LIMIT: u64 = 40_000;
    let (p, out) = counting_job(1_000_000, LIMIT, 32, 10 * SEC as Ts);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 3,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(20 * MS);
    let victim = cluster.remove_member_and_rescale(SEC).unwrap();
    assert_eq!(cluster.grid().members().len(), 2);
    assert!(!cluster.grid().members().contains(&victim));
    assert!(
        cluster.run_for(60 * SEC),
        "job did not finish after scale-in"
    );
    let total: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    assert_eq!(total, LIMIT, "scale-in lost or duplicated events");
}

#[test]
fn rescale_adds_member_without_losing_state() {
    const LIMIT: u64 = 40_000;
    let (p, out) = counting_job(1_000_000, LIMIT, 32, 10 * SEC as Ts);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(20 * MS);
    let new_member = cluster.add_member_and_rescale(SEC).unwrap();
    assert_eq!(cluster.grid().members().len(), 3);
    assert!(cluster.grid().members().contains(&new_member));
    assert!(
        cluster.run_for(60 * SEC),
        "job did not finish after rescale"
    );
    let total: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    assert_eq!(total, LIMIT, "rescale lost or duplicated events");
}

#[test]
fn active_active_failover_keeps_results_flowing() {
    let make = |out: Collected<WindowResult<u64, u64>>| {
        let p = Pipeline::create();
        p.read_from_generator_cfg(
            "gen",
            1_000_000,
            Some(20_000),
            jet_core::processors::WatermarkPolicy::default(),
            |seq, _| seq % 8,
        )
        .grouping_key(|k: &u64| *k)
        .window(WindowDef::tumbling(10 * SEC as Ts))
        .aggregate(counting::<u64>())
        .write_to_collect(out.clone());
        p.compile(2).unwrap()
    };
    let primary_out = Arc::new(Mutex::new(Vec::new()));
    let standby_out = Arc::new(Mutex::new(Vec::new()));
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        ..Default::default()
    };
    let mut aa =
        ActiveActive::start(make(primary_out.clone()), make(standby_out.clone()), cfg).unwrap();
    assert_eq!(aa.active(), ActiveSide::Primary);
    aa.run_for(10 * MS);
    aa.fail_primary();
    assert_eq!(aa.active(), ActiveSide::Standby);
    assert!(aa.run_for(60 * SEC), "standby did not finish");
    // The standby (deterministic twin) has the complete result set.
    let total: u64 = standby_out.lock().iter().map(|(_, r)| r.value).sum();
    assert_eq!(total, 20_000);
}

#[test]
fn nexmark_q5_runs_on_a_simulated_cluster_with_sane_latency() {
    let p = Pipeline::create();
    let hist = SharedHistogram::new();
    let count = SharedCounter::new();
    let nex = NexmarkConfig {
        people: 100,
        auctions: 100,
        ..Default::default()
    };
    let src = jet_nexmark::queries::source(
        &p,
        &nex,
        200_000, // 200k ev/s
        Some(200_000 * 2),
        jet_core::processors::WatermarkPolicy::default(),
    );
    jet_nexmark::queries::q5(&src, WindowDef::sliding(SEC as Ts, (100 * MS) as Ts))
        .write_to_latency(hist.clone(), count.clone());
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 2,
        cores_per_member: 2,
        partition_count: 31,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    assert!(cluster.run_for(30 * SEC), "Q5 did not finish");
    assert!(count.get() > 0, "no window results measured");
    let h = hist.snapshot();
    let p9999 = h.percentile(99.99);
    assert!(
        p9999 < 500 * MS,
        "p99.99 latency implausible: {:.1} ms",
        p9999 as f64 / 1e6
    );
}

//! End-to-end checks of the job-wide metrics registry (observability PR
//! acceptance): a windowed aggregation runs on a simulated multi-member
//! cluster and the aggregated snapshot must be internally consistent —
//! per-vertex event counts balance across edges, queue-depth gauges stay
//! within capacity, and the Prometheus exposition parses cleanly.

use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::metrics::MetricsSnapshot;
use jet_core::processors::agg::counting;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Timestamped sink output, shared with the collecting stage.
type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

const SEC: u64 = 1_000_000_000;
const LIMIT: u64 = 20_000;

/// gen -> window-accumulate -> window-combine -> collect-sink.
fn run_counting_job(members: usize) -> (SimCluster, Collected<WindowResult<u64, u64>>) {
    let p = Pipeline::create();
    let out = Arc::new(Mutex::new(Vec::new()));
    p.read_from_generator_cfg(
        "gen",
        1_000_000,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _ts| seq % 32,
    )
    .grouping_key(|k: &u64| *k)
    .window(WindowDef::tumbling(SEC as Ts))
    .aggregate(counting::<u64>())
    .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members,
        cores_per_member: 2,
        partition_count: 31,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    assert!(cluster.run_for(30 * SEC), "job did not finish");
    (cluster, out)
}

#[test]
fn job_metrics_balance_across_edges_and_members() {
    let (cluster, out) = run_counting_job(2);
    let results: u64 = out.lock().iter().map(|(_, r)| r.value).sum();
    assert_eq!(results, LIMIT);

    let snap = cluster.job_metrics();
    assert!(!snap.metrics.is_empty());

    // Every metric is tagged with the job and its member of origin.
    for m in &snap.metrics {
        assert_eq!(m.tag("job"), Some("1"), "{} missing job tag", m.name);
        assert!(m.tag("member").is_some(), "{} missing member tag", m.name);
    }

    // Per-vertex event totals, summed over members and instances.
    let ins = snap.counters_by("jet_events_in_total", "vertex");
    let outs = snap.counters_by("jet_events_out_total", "vertex");
    assert_eq!(ins["gen"], 0, "sources consume nothing");
    assert_eq!(outs["gen"], LIMIT, "source emitted a wrong event count");
    // Linear chain: what each vertex queued out must equal what the next
    // vertex consumed, whether delivered locally or over a distributed
    // channel — nothing may be lost in the exchange layer.
    for (from, to) in [
        ("gen", "window-accumulate"),
        ("window-accumulate", "window-combine"),
        ("window-combine", "collect-sink"),
    ] {
        assert_eq!(
            outs[from], ins[to],
            "edge {from} -> {to} unbalanced: {} out vs {} in",
            outs[from], ins[to]
        );
    }

    // With two members and a partitioned stage-2 edge, data crossed the
    // network: the channel instruments must have seen it.
    assert!(snap.counter_total("jet_channel_items_sent_total", &[]) > 0);
    assert!(snap.counter_total("jet_channel_bytes_sent_total", &[]) > 0);

    // Every queue-depth gauge sits within its capacity gauge (same tags).
    let mut depth_gauges = 0;
    for m in snap.get_all("jet_queue_depth") {
        let depth = m.as_gauge().expect("depth is a gauge");
        let cap = snap
            .metrics
            .iter()
            .find(|c| c.name == "jet_queue_capacity" && c.tags == m.tags)
            .and_then(|c| c.as_gauge())
            .expect("matching capacity gauge");
        assert!(
            0 <= depth && depth <= cap,
            "queue depth {depth} outside [0, {cap}] for {:?}",
            m.tags
        );
        depth_gauges += 1;
    }
    assert!(depth_gauges > 0, "no queue-depth gauges registered");
}

/// Minimal line-level parse of the Prometheus text format: every sample is
/// `name{label="value",...} number`, `# HELP` and `# TYPE` come once per
/// name (HELP first), and no (name, label-set) series repeats.
fn parse_prometheus(text: &str) -> (HashSet<(String, String)>, HashSet<String>) {
    let mut series = HashSet::new();
    let mut typed = HashSet::new();
    let mut helped: HashSet<String> = HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, text) = rest.split_once(' ').expect("help line has text");
            assert!(!text.is_empty(), "empty HELP for {name}");
            assert!(
                !typed.contains(name),
                "HELP for {name} must precede its TYPE line"
            );
            assert!(helped.insert(name.to_string()), "duplicate HELP for {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("type line names a metric");
            let kind = parts.next().expect("type line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "bad kind {kind}"
            );
            assert!(
                helped.contains(name),
                "TYPE for {name} is missing a HELP line"
            );
            assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (name_labels, value) = line.rsplit_once(' ').expect("sample has a value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad value in: {line}"));
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, l)) => {
                let l = l.strip_suffix('}').expect("unterminated label set");
                for pair in l.split("\",") {
                    let (k, v) = pair.split_once("=\"").expect("label is k=\"v\"");
                    assert!(
                        !k.is_empty() && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                        "bad label key {k:?} in: {line}"
                    );
                    assert!(
                        !v.contains('"') || v.ends_with('"'),
                        "unescaped quote in {v:?}"
                    );
                }
                (n, l)
            }
            None => (name_labels, ""),
        };
        assert!(
            series.insert((name.to_string(), labels.to_string())),
            "duplicate series: {name}{{{labels}}}"
        );
    }
    (series, typed)
}

#[test]
fn prometheus_exposition_is_well_formed_and_unique() {
    let (cluster, _out) = run_counting_job(2);
    let text = cluster.prometheus();
    let (series, typed) = parse_prometheus(&text);
    assert!(!series.is_empty());
    // Every sample's base name was declared. Histogram samples append
    // _count/_sum to the declared summary name.
    for (name, _) in &series {
        let base = name
            .strip_suffix("_count")
            .or_else(|| name.strip_suffix("_sum"))
            .filter(|b| typed.contains(*b))
            .unwrap_or(name);
        assert!(typed.contains(base), "sample {name} has no TYPE line");
    }
    for expected in [
        "jet_events_in_total",
        "jet_events_out_total",
        "jet_queue_depth",
        "jet_channel_items_sent_total",
    ] {
        assert!(typed.contains(expected), "missing {expected} in exposition");
    }
}

#[test]
fn member_snapshots_merge_into_job_view() {
    let (cluster, _out) = run_counting_job(2);
    // Merging the members by hand must agree with the job-level helper.
    let mut manual = MetricsSnapshot::default();
    for reg in cluster.member_metrics() {
        manual.merge(&reg.snapshot());
    }
    let manual = manual.with_tag("job", "1");
    let job = cluster.job_metrics();
    assert_eq!(manual.metrics.len(), job.metrics.len());
    // Gauge-fn values (queue depths) can race between the two walks, but
    // settled counters must agree exactly.
    assert_eq!(
        manual.counters_by("jet_events_in_total", "vertex"),
        job.counters_by("jet_events_in_total", "vertex")
    );
}

//! Chaos suite: seeded random fault schedules against a windowed
//! exactly-once job with heartbeat failure detection and self-healing
//! recovery.
//!
//! Every run draws a deterministic [`FaultPlan`] (crashes, stalls,
//! partitions, channel chaos, snapshot-store outages) and asserts the
//! end-to-end invariants:
//!
//! * the job always completes (recovery self-heals, retries survive store
//!   outages);
//! * no window count is lost or duplicated — re-emissions after a restore
//!   must be bit-identical, checked through an idempotent `(key, window
//!   end) → count` view of the sink (the paper's exactly-once guarantee
//!   presumes idempotent or transactional sinks);
//! * pure-delay faults (stall/partition/chaos without a crash) never fence
//!   a member — the suspicion grace absorbs them;
//! * the same seed replays bit-for-bit: same fault schedule, same cluster
//!   event log, same outputs.
//!
//! Seed count comes from `JET_CHAOS_SEEDS` (CI runs 200; the default keeps
//! local `cargo test` fast). On failure the offending seed, the fault
//! schedule, and a diagnostics dump file are printed so the run can be
//! replayed exactly.

use jet_cluster::{ClusterEvent, CoordinatorConfig, SimCluster, SimClusterConfig};
use jet_core::processor::Guarantee;
use jet_core::processors::agg::counting;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use jet_sim::{FaultPlan, RandomFaultSpec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;
const LIMIT: u64 = 60_000; // 60 ms of stream at 1M events/s
const KEYS: u64 = 16;
const WINDOW: Ts = 10 * MS as Ts;

fn chaos_seeds() -> Vec<u64> {
    let n: u64 = std::env::var("JET_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    (0..n).collect()
}

/// Everything one chaos run produced, for assertions and replay checks.
struct ChaosRun {
    seed: u64,
    digest: String,
    done: bool,
    failed: Option<String>,
    events: Vec<ClusterEvent>,
    collected: Vec<(Ts, WindowResult<u64, u64>)>,
    fences: u64,
    dump: String,
}

fn run_plan(seed: u64, plan: FaultPlan) -> ChaosRun {
    let digest = plan.digest();
    let p = Pipeline::create();
    let out = Arc::new(Mutex::new(Vec::new()));
    p.read_from_generator_cfg(
        "gen",
        1_000_000,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _ts| seq % KEYS,
    )
    .grouping_key(|k: &u64| *k)
    .window(WindowDef::tumbling(WINDOW))
    .aggregate(counting::<u64>())
    .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 3,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        fault_plan: Some(plan),
        coordinator: Some(CoordinatorConfig::default()),
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    let done = cluster.run_for(SEC);
    let collected = out.lock().clone();
    ChaosRun {
        seed,
        digest,
        done,
        failed: cluster.failed().map(str::to_string),
        events: cluster.cluster_events(),
        collected,
        fences: cluster.coordinator().map(|c| c.fences()).unwrap_or(0),
        dump: cluster.diagnostics_dump(None),
    }
}

/// The idempotent-sink view: group emissions by `(key, window end)`. A
/// re-emission after recovery must carry the identical count; the deduped
/// sum must equal the stream length exactly.
fn check_exactly_once(run: &ChaosRun) -> Result<(), String> {
    let mut windows: HashMap<(u64, Ts), u64> = HashMap::new();
    for (_, r) in &run.collected {
        if let Some(prev) = windows.insert((r.key, r.end), r.value) {
            if prev != r.value {
                return Err(format!(
                    "conflicting re-emission for key {} window-end {}: {} vs {}",
                    r.key, r.end, prev, r.value
                ));
            }
        }
    }
    let total: u64 = windows.values().sum();
    if total != LIMIT {
        return Err(format!(
            "window counts lost or duplicated: deduped sum {total} != {LIMIT}"
        ));
    }
    Ok(())
}

fn check_run(run: &ChaosRun) -> Result<(), String> {
    if let Some(f) = &run.failed {
        return Err(format!("job declared lost: {f}"));
    }
    if !run.done {
        return Err("job did not complete within the virtual budget".into());
    }
    check_exactly_once(run)?;
    // Only crashed members may be fenced, and a crash must be healed by a
    // completed recovery.
    let crashes: Vec<u32> = crashed_members(&run.digest);
    let fenced: Vec<u32> = run
        .events
        .iter()
        .filter_map(|e| match e {
            ClusterEvent::Fenced { member, .. } => Some(*member),
            _ => None,
        })
        .collect();
    for m in &fenced {
        if !crashes.contains(m) {
            return Err(format!("member {m} fenced without having crashed"));
        }
    }
    let recovered = run
        .events
        .iter()
        .any(|e| matches!(e, ClusterEvent::RecoveryCompleted { .. }));
    if !fenced.is_empty() && !recovered {
        return Err("fence without a completed recovery".into());
    }
    Ok(())
}

/// Members crashed by the plan, parsed from the digest (test-side only; the
/// digest format is stable by contract).
fn crashed_members(digest: &str) -> Vec<u32> {
    digest
        .lines()
        .filter_map(|l| {
            let idx = l.find("crash(m")?;
            l[idx + 7..].split(')').next()?.parse().ok()
        })
        .collect()
}

fn fail_with_diagnostics(run: &ChaosRun, err: &str) -> ! {
    let path = format!(
        "{}/chaos-seed-{}-dump.txt",
        std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()),
        run.seed
    );
    let mut windows: HashMap<(u64, Ts), Vec<u64>> = HashMap::new();
    for (_, r) in &run.collected {
        windows.entry((r.key, r.end)).or_default().push(r.value);
    }
    let mut rows: Vec<_> = windows.into_iter().collect();
    rows.sort_unstable_by_key(|&((k, e), _)| (e, k));
    let window_table = rows
        .iter()
        .map(|((k, e), vs)| format!("  end={e:>12} key={k:>3} values={vs:?}"))
        .collect::<Vec<_>>()
        .join("\n");
    let artifact = format!(
        "chaos seed {} FAILED: {}\n\nfault schedule:\n{}\n\ncluster events:\n{}\n\nwindows:\n{}\n\n{}",
        run.seed,
        err,
        if run.digest.is_empty() {
            "(empty)"
        } else {
            &run.digest
        },
        run.events
            .iter()
            .map(|e| format!("  {:>12}ns {}", e.at(), e.label()))
            .collect::<Vec<_>>()
            .join("\n"),
        window_table,
        run.dump
    );
    let _ = std::fs::write(&path, &artifact);
    eprintln!("{artifact}");
    eprintln!("diagnostics dump written to {path}");
    panic!("chaos seed {} failed: {}", run.seed, err);
}

#[test]
fn seeded_fault_schedules_preserve_exactly_once() {
    let spec = RandomFaultSpec::default();
    for seed in chaos_seeds() {
        let run = run_plan(seed, FaultPlan::random(seed, &spec));
        if let Err(e) = check_run(&run) {
            fail_with_diagnostics(&run, &e);
        }
    }
}

#[test]
fn same_seed_replays_bit_for_bit() {
    let spec = RandomFaultSpec::default();
    // Pick the first seed whose plan contains a crash so the replay check
    // covers detection + recovery, not just clean runs.
    let seed = (0..500)
        .find(|&s| !crashed_members(&FaultPlan::random(s, &spec).digest()).is_empty())
        .expect("no crashing seed in range");
    let a = run_plan(seed, FaultPlan::random(seed, &spec));
    let b = run_plan(seed, FaultPlan::random(seed, &spec));
    assert_eq!(a.digest, b.digest, "fault schedules diverged");
    assert_eq!(a.events, b.events, "cluster event logs diverged");
    assert_eq!(a.done, b.done);
    let key = |v: &[(Ts, WindowResult<u64, u64>)]| {
        let mut k: Vec<(Ts, u64, Ts, u64)> =
            v.iter().map(|(t, r)| (*t, r.key, r.end, r.value)).collect();
        k.sort_unstable();
        k
    };
    assert_eq!(key(&a.collected), key(&b.collected), "outputs diverged");
}

#[test]
fn pure_delay_faults_never_cause_a_false_kill() {
    // Stall + partition + chaos, no crash: worst-case composition of every
    // delay fault. The detector may suspect, but must always clear.
    for seed in [3, 17, 40] {
        let mut plan = FaultPlan::new(seed);
        plan.stall(20 * MS, 1, 3 * MS)
            .partition(23 * MS, 3 * MS, vec![1])
            .chaos(5 * MS, 60 * MS, 200_000, MS);
        let run = run_plan(seed, plan);
        if let Err(e) = check_run(&run) {
            fail_with_diagnostics(&run, &e);
        }
        if run.fences != 0 {
            fail_with_diagnostics(&run, "pure-delay fault fenced a live member");
        }
        let suspected = run
            .events
            .iter()
            .filter(|e| matches!(e, ClusterEvent::Suspected { .. }))
            .count();
        let cleared = run
            .events
            .iter()
            .filter(|e| matches!(e, ClusterEvent::Cleared { .. }))
            .count();
        assert_eq!(
            suspected, cleared,
            "seed {seed}: every suspicion must be cleared"
        );
    }
}

#[test]
fn detected_crash_fences_after_grace_and_recovers() {
    let crash_at = 30 * MS;
    let mut plan = FaultPlan::new(99);
    plan.crash(crash_at, 2);
    let run = run_plan(99, plan);
    if let Err(e) = check_run(&run) {
        fail_with_diagnostics(&run, &e);
    }
    let cfg = CoordinatorConfig::default();
    let fence_at = run
        .events
        .iter()
        .find_map(|e| match e {
            ClusterEvent::Fenced { member: 2, at } => Some(*at),
            _ => None,
        })
        .unwrap_or_else(|| fail_with_diagnostics(&run, "crash was never fenced"));
    // Detection delay is real and bounded: at least the fencing grace, at
    // most grace + heartbeat interval + delivery + scheduling slack.
    assert!(
        fence_at >= crash_at + cfg.suspect_after,
        "fenced before the grace could elapse: {fence_at}"
    );
    assert!(
        fence_at <= crash_at + cfg.fence_after + 5 * MS,
        "detection took too long: {}ns after crash",
        fence_at - crash_at
    );
    // Fence → recovery completed from a snapshot (interval 5 ms, crash at
    // 30 ms: a recovery point must exist).
    let recovery = run.events.iter().find_map(|e| match e {
        ClusterEvent::RecoveryCompleted { snapshot, at, .. } => Some((*snapshot, *at)),
        _ => None,
    });
    match recovery {
        Some((Some(_), at)) => assert!(at >= fence_at),
        Some((None, _)) => fail_with_diagnostics(&run, "expected warm restore, got cold restart"),
        None => fail_with_diagnostics(&run, "no completed recovery"),
    }
}

#[test]
fn crash_before_first_snapshot_degrades_to_cold_restart() {
    // Crash at 2 ms, before the first 5 ms snapshot: no recovery point
    // exists, the documented degraded mode is a cold restart from the
    // sources — still exactly-once through the idempotent sink view.
    let mut plan = FaultPlan::new(7);
    plan.crash(2 * MS, 1);
    let run = run_plan(7, plan);
    if let Err(e) = check_run(&run) {
        fail_with_diagnostics(&run, &e);
    }
    let cold = run
        .events
        .iter()
        .any(|e| matches!(e, ClusterEvent::RecoveryCompleted { snapshot: None, .. }));
    if !cold {
        fail_with_diagnostics(&run, "expected a cold restart recovery");
    }
}

#[test]
fn store_read_outage_makes_recovery_retry_with_backoff() {
    let crash_at = 30 * MS;
    let outage = 12 * MS;
    let mut plan = FaultPlan::new(5);
    plan.crash(crash_at, 0);
    // The outage starts at the crash and outlives the fence (~11 ms after
    // the crash), so the first recovery attempt must fail and retry.
    plan.store_read_outage(crash_at, outage + 12 * MS);
    let run = run_plan(5, plan);
    if let Err(e) = check_run(&run) {
        fail_with_diagnostics(&run, &e);
    }
    let failures: Vec<u64> = run
        .events
        .iter()
        .filter_map(|e| match e {
            ClusterEvent::RecoveryFailed { at, .. } => Some(*at),
            _ => None,
        })
        .collect();
    if failures.is_empty() {
        fail_with_diagnostics(&run, "read outage did not fail any recovery attempt");
    }
    // Attempts must space out (exponential backoff), and recovery must
    // eventually complete once the outage lifts.
    for pair in failures.windows(2) {
        assert!(pair[1] > pair[0], "retries not ordered");
    }
    let completed = run
        .events
        .iter()
        .any(|e| matches!(e, ClusterEvent::RecoveryCompleted { .. }));
    if !completed {
        fail_with_diagnostics(&run, "recovery never completed after outage lifted");
    }
}

#[test]
fn store_write_outage_poisons_snapshots_but_recovery_survives() {
    // Writes fail from 10 ms to 25 ms: snapshots taken in the window are
    // poisoned (never become recovery points). The crash at 35 ms must
    // recover from a snapshot taken outside the window.
    let mut plan = FaultPlan::new(11);
    plan.store_write_outage(10 * MS, 15 * MS);
    plan.crash(35 * MS, 1);
    let run = run_plan(11, plan);
    if let Err(e) = check_run(&run) {
        fail_with_diagnostics(&run, &e);
    }
    let recovered_from = run.events.iter().find_map(|e| match e {
        ClusterEvent::RecoveryCompleted { snapshot, .. } => Some(*snapshot),
        _ => None,
    });
    match recovered_from {
        Some(Some(_)) => {}
        Some(None) => fail_with_diagnostics(&run, "expected warm restore despite write outage"),
        None => fail_with_diagnostics(&run, "no completed recovery"),
    }
}

/// The tentpole's headline scenario on a real query: NEXMark Q5 under
/// exactly-once with a detected crash. Window counts over auction bids
/// aren't globally predictable like the counting job above, so the oracle
/// is a fault-free twin: a detected crash plus recovery must reproduce the
/// exact same deduped window counts the clean run produces, and the same
/// seed must replay bit-for-bit.
#[test]
fn nexmark_q5_survives_a_detected_crash_with_identical_results() {
    type Out = Arc<Mutex<Vec<(Ts, WindowResult<u64, u64>)>>>;
    let run_q5 = |plan: Option<FaultPlan>| {
        let p = Pipeline::create();
        let out: Out = Arc::new(Mutex::new(Vec::new()));
        let nex = jet_nexmark::NexmarkConfig {
            people: 50,
            auctions: 50,
            ..Default::default()
        };
        let src = jet_nexmark::queries::source(
            &p,
            &nex,
            1_000_000,
            Some(60_000),
            jet_core::processors::WatermarkPolicy::default(),
        );
        jet_nexmark::queries::q5(&src, WindowDef::tumbling(WINDOW)).write_to_collect(out.clone());
        let dag = p.compile(2).unwrap();
        let cfg = SimClusterConfig {
            members: 3,
            cores_per_member: 2,
            partition_count: 31,
            guarantee: Guarantee::ExactlyOnce,
            snapshot_interval: 5 * MS,
            coordinator: Some(CoordinatorConfig::default()),
            fault_plan: plan,
            ..Default::default()
        };
        let mut cluster = SimCluster::start(dag, cfg).unwrap();
        let done = cluster.run_for(SEC);
        assert!(done, "Q5 did not complete");
        assert!(
            cluster.failed().is_none(),
            "job lost: {:?}",
            cluster.failed()
        );
        let mut windows: HashMap<(u64, Ts), u64> = HashMap::new();
        for (_, r) in out.lock().iter() {
            if let Some(prev) = windows.insert((r.key, r.end), r.value) {
                assert_eq!(prev, r.value, "conflicting re-emission in Q5");
            }
        }
        let mut v: Vec<_> = windows.into_iter().collect();
        v.sort_unstable();
        (v, cluster.cluster_events())
    };
    let crash_plan = || {
        let mut plan = FaultPlan::new(0x45);
        plan.crash(25 * MS, 2);
        plan
    };
    let (clean, _) = run_q5(None);
    let (faulted, events) = run_q5(Some(crash_plan()));
    assert!(!clean.is_empty(), "Q5 produced no windows");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ClusterEvent::RecoveryCompleted { .. })),
        "crash was never recovered"
    );
    assert_eq!(
        faulted, clean,
        "detected crash changed Q5's deduped window counts"
    );
    // Same seed, same crash: bit-for-bit replay.
    let (replay, replay_events) = run_q5(Some(crash_plan()));
    assert_eq!(replay, faulted);
    assert_eq!(replay_events, events);
}

/// Tentpole closing assertion: a spike caused by an injected crash must be
/// attributed to the failure-detection/recovery phases by the flight
/// recorder — never to whichever innocent vertex happened to be running
/// during the outage — and the decomposition must partition the measured
/// spike exactly.
#[test]
fn fault_spikes_attribute_to_recovery_not_an_innocent_vertex() {
    use jet_core::flight::{FlightConfig, FlightRecorder, LatencyWatchdog, WatchdogConfig};
    use jet_core::metrics::{SharedCounter, SharedHistogram};
    use jet_core::trace::{TraceData, Tracer};

    let mut plan = FaultPlan::new(4242);
    plan.crash(20 * MS, 1);

    let p = Pipeline::create();
    let hist = SharedHistogram::new();
    let count = SharedCounter::new();
    // The stream is only 60 ms long — far less than one adaptive epoch —
    // so arm a hard SLO between the steady-state window-emission latency
    // (~2-3 ms past each window end) and the outage peak (detection grace
    // ~9.5 ms + snapshot replay).
    let watchdog = LatencyWatchdog::with_config(WatchdogConfig {
        slo_nanos: Some(6 * MS),
        ..WatchdogConfig::default()
    });
    let flight = FlightRecorder::with_config(FlightConfig::default(), watchdog.clone());
    p.read_from_generator_cfg(
        "gen",
        1_000_000,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _ts| seq % KEYS,
    )
    .grouping_key(|k: &u64| *k)
    .window(WindowDef::tumbling(WINDOW))
    .aggregate(counting::<u64>())
    .write_to_latency_watched(hist, count, watchdog.clone());
    let dag = p.compile(2).unwrap();
    let tracer = Tracer::with_config(8192, 4);
    let cfg = SimClusterConfig {
        members: 3,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        fault_plan: Some(plan),
        coordinator: Some(CoordinatorConfig::default()),
        tracer: tracer.clone(),
        flight: flight.clone(),
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    let mut scratch = TraceData::new();
    let mut next_drain = 0u64;
    let done = cluster.run_for_with(SEC, |now| {
        if now >= next_drain {
            tracer.drain_into(&mut scratch);
            flight.ingest(&scratch, 0);
            scratch.events.clear();
            next_drain = now + 10 * MS;
        }
    });
    assert!(done, "job did not complete");
    assert!(
        cluster.failed().is_none(),
        "job lost: {:?}",
        cluster.failed()
    );
    tracer.drain_into(&mut scratch);
    flight.ingest(&scratch, 0);

    let incidents = cluster.spike_forensics();
    assert!(
        !incidents.is_empty(),
        "the crash outage produced no spike incidents (observed={} threshold={}ns)",
        watchdog.stats().0,
        watchdog.threshold()
    );
    // Incidents come worst-first; the outage spike dominates this stream.
    let a = &incidents[0].attribution;
    assert_eq!(
        a.top_group, "recovery",
        "outage spike blamed {:?} ({}) instead of the recovery phases:\n{:#?}",
        a.top_cause, a.top_group, a.slices
    );
    assert!(
        a.blamed_vertex.is_none(),
        "an innocent vertex was blamed: {:?}",
        a.blamed_vertex
    );
    let sum: u64 = a.slices.iter().map(|s| s.nanos).sum();
    assert_eq!(
        sum, a.total_nanos,
        "slices must partition the spike exactly"
    );
    assert_eq!(a.total_nanos, incidents[0].incident.peak_latency);
}

//! Cluster coordinator: heartbeat failure detection and recovery
//! orchestration (paper §4.4).
//!
//! Hazelcast Jet does not learn about member failure from an API call — the
//! cluster *detects* it: members exchange heartbeats, and a member whose
//! heartbeats stop arriving is first *suspected* and, after a grace period,
//! *fenced* (removed from the cluster, triggering partition promotion and
//! job recovery). The grace period is what separates a real crash from a
//! transient stall (GC pause, §5) or a short network partition: a member
//! that resumes heartbeating within the grace is *cleared*, not killed.
//!
//! The [`Coordinator`] here is that control plane, driven from the
//! simulator's per-quantum hook so detection runs on virtual time and is
//! fully deterministic:
//!
//! * every `heartbeat_interval` each live member sends a heartbeat to every
//!   other non-fenced member through the (fault-aware) transport;
//! * a peer's *freshness* is the most recent instant any live observer
//!   heard from it — one surviving witness is enough;
//! * freshness older than `suspect_after` ⇒ [`MemberHealth::Suspect`];
//!   older than `fence_after` ⇒ fenced, and [`Coordinator::tick`] hands the
//!   fencing decision back to the runtime (which kills the grid member and
//!   starts snapshot recovery);
//! * a suspect that heartbeats again within the grace is cleared and a
//!   false-suspicion counter is bumped — pure-delay faults must never kill
//!   a member.
//!
//! Detection state lives entirely off the data path: tasklets never touch
//! the coordinator, and a job with no coordinator configured pays nothing.

use jet_core::metrics::{tags, MetricsRegistry, SharedCounter};
use jet_core::network::Transport;
use jet_core::trace::{TraceKind, TraceWriter, Tracer};
use std::collections::HashMap;

/// Failure-detector and recovery-retry tuning. All times are virtual nanos.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// How often each member heartbeats every peer.
    pub heartbeat_interval: u64,
    /// Freshness age after which a member becomes suspect.
    pub suspect_after: u64,
    /// Freshness age after which a suspect is fenced (must exceed
    /// `suspect_after`; the gap is the grace in which a stalled or
    /// partitioned member can clear itself).
    pub fence_after: u64,
    /// First retry delay when a recovery attempt fails (store outage,
    /// second crash mid-recovery). Doubles per attempt.
    pub recovery_backoff_base: u64,
    /// Ceiling for the exponential recovery backoff.
    pub recovery_backoff_max: u64,
    /// Give up (job fails) after this many failed recovery attempts.
    pub max_recovery_attempts: u32,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            heartbeat_interval: 1_000_000, // 1 ms
            suspect_after: 4_000_000,      // 4 ms
            fence_after: 10_000_000,       // 10 ms
            recovery_backoff_base: 2_000_000,
            recovery_backoff_max: 32_000_000,
            max_recovery_attempts: 8,
        }
    }
}

impl CoordinatorConfig {
    /// Reject ladder configurations that would misbehave silently instead
    /// of letting them run: a fence grace at or below the suspect threshold
    /// kills members without ever suspecting them (pure-delay faults would
    /// fence), and a suspect threshold below the heartbeat interval
    /// suspects healthy members between their own heartbeats.
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat_interval == 0 {
            return Err("heartbeat_interval must be positive".into());
        }
        if self.suspect_after < self.heartbeat_interval {
            return Err(format!(
                "suspect_after ({} ns) must be at least heartbeat_interval \
                 ({} ns): a healthy member's freshness legitimately ages one \
                 full interval between heartbeats, so anything lower \
                 suspects live members on every round",
                self.suspect_after, self.heartbeat_interval
            ));
        }
        if self.fence_after <= self.suspect_after {
            return Err(format!(
                "fence_after ({} ns) must exceed suspect_after ({} ns): the \
                 gap is the grace in which a stalled or partitioned member \
                 clears itself — without it, transient delays fence members \
                 that were never even suspected",
                self.fence_after, self.suspect_after
            ));
        }
        if self.recovery_backoff_base == 0 {
            return Err("recovery_backoff_base must be positive".into());
        }
        if self.recovery_backoff_max < self.recovery_backoff_base {
            return Err(format!(
                "recovery_backoff_max ({} ns) is below recovery_backoff_base \
                 ({} ns)",
                self.recovery_backoff_max, self.recovery_backoff_base
            ));
        }
        if self.max_recovery_attempts == 0 {
            return Err(
                "max_recovery_attempts must be at least 1, or every recovery \
                 gives up before its first attempt"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Liveness verdict the detector currently holds for a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberHealth {
    Alive,
    /// Freshness exceeded `suspect_after`; `since` is when suspicion began.
    Suspect {
        since: u64,
    },
}

/// One entry in the coordinator's event log. The log is deterministic for a
/// given fault plan + seed, which the chaos suite exploits for bit-for-bit
/// replay checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterEvent {
    Suspected {
        member: u32,
        at: u64,
    },
    Cleared {
        member: u32,
        at: u64,
    },
    Fenced {
        member: u32,
        at: u64,
    },
    RecoveryStarted {
        member: u32,
        attempt: u32,
        at: u64,
    },
    RecoveryFailed {
        attempt: u32,
        at: u64,
        cause: String,
    },
    /// `snapshot = None` is the documented degraded mode: no complete
    /// snapshot existed, the job cold-restarts from the sources.
    RecoveryCompleted {
        snapshot: Option<u64>,
        attempt: u32,
        at: u64,
    },
}

impl ClusterEvent {
    pub fn at(&self) -> u64 {
        match self {
            ClusterEvent::Suspected { at, .. }
            | ClusterEvent::Cleared { at, .. }
            | ClusterEvent::Fenced { at, .. }
            | ClusterEvent::RecoveryStarted { at, .. }
            | ClusterEvent::RecoveryFailed { at, .. }
            | ClusterEvent::RecoveryCompleted { at, .. } => *at,
        }
    }

    pub fn label(&self) -> String {
        match self {
            ClusterEvent::Suspected { member, .. } => format!("suspected m{member}"),
            ClusterEvent::Cleared { member, .. } => format!("cleared m{member}"),
            ClusterEvent::Fenced { member, .. } => format!("fenced m{member}"),
            ClusterEvent::RecoveryStarted {
                member, attempt, ..
            } => format!("recovery of m{member} started (attempt {attempt})"),
            ClusterEvent::RecoveryFailed { attempt, cause, .. } => {
                format!("recovery attempt {attempt} failed: {cause}")
            }
            ClusterEvent::RecoveryCompleted {
                snapshot, attempt, ..
            } => match snapshot {
                Some(id) => format!("recovered from snapshot {id} (attempt {attempt})"),
                None => format!("cold restart, no complete snapshot (attempt {attempt})"),
            },
        }
    }
}

/// The heartbeat failure detector plus recovery event log.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    /// Non-fenced members, in id order.
    members: Vec<u32>,
    health: HashMap<u32, MemberHealth>,
    /// (observer, peer) → virtual instant the observer last heard the peer.
    last_seen: HashMap<(u32, u32), u64>,
    /// member → last instant it sent its heartbeat round.
    last_sent: HashMap<u32, u64>,
    events: Vec<ClusterEvent>,
    // Metrics (cluster-level registry, merged into the job snapshot).
    heartbeats_sent: SharedCounter,
    suspicions: SharedCounter,
    false_suspicions: SharedCounter,
    fences: SharedCounter,
    recoveries: SharedCounter,
    recovery_failures: SharedCounter,
    // Trace plumbing (no-ops when the tracer is disabled).
    tw: TraceWriter,
    n_suspect: u32,
    n_clear: u32,
    n_fence: u32,
    n_recovery: u32,
    n_recovery_fail: u32,
}

impl Coordinator {
    /// Track id used for coordinator spans in trace exports.
    pub const TRACE_PID: u32 = 0xC00D;

    pub fn new(
        cfg: CoordinatorConfig,
        members: &[u32],
        now: u64,
        registry: &MetricsRegistry,
        tracer: &Tracer,
    ) -> Coordinator {
        let mut last_seen = HashMap::new();
        for &o in members {
            for &p in members {
                if o != p {
                    last_seen.insert((o, p), now);
                }
            }
        }
        let tw = tracer.writer(Self::TRACE_PID, "coordinator");
        let n_suspect = tw.intern("suspect");
        let n_clear = tw.intern("clear");
        let n_fence = tw.intern("fence");
        let n_recovery = tw.intern("recovery");
        let n_recovery_fail = tw.intern("recovery-failed");
        Coordinator {
            cfg,
            members: members.to_vec(),
            health: members.iter().map(|&m| (m, MemberHealth::Alive)).collect(),
            last_seen,
            last_sent: members.iter().map(|&m| (m, now)).collect(),
            events: Vec::new(),
            heartbeats_sent: registry.counter("jet_cluster_heartbeats_sent_total", tags(&[])),
            suspicions: registry.counter("jet_cluster_suspicions_total", tags(&[])),
            false_suspicions: registry.counter("jet_cluster_false_suspicions_total", tags(&[])),
            fences: registry.counter("jet_cluster_fences_total", tags(&[])),
            recoveries: registry.counter("jet_cluster_recoveries_total", tags(&[])),
            recovery_failures: registry.counter("jet_cluster_recovery_failures_total", tags(&[])),
            tw,
            n_suspect,
            n_clear,
            n_fence,
            n_recovery,
            n_recovery_fail,
        }
    }

    pub fn config(&self) -> &CoordinatorConfig {
        &self.cfg
    }

    /// Non-fenced members currently tracked.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Current verdict for `member` (None once fenced / removed).
    pub fn health(&self, member: u32) -> Option<MemberHealth> {
        self.health.get(&member).copied()
    }

    /// Full event log (chronological).
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    pub fn false_suspicions(&self) -> u64 {
        self.false_suspicions.get()
    }

    pub fn fences(&self) -> u64 {
        self.fences.get()
    }

    /// One detector round on the virtual clock. Sends due heartbeats
    /// (`sender_ok` gates senders *and* receivers — the simulation knows a
    /// crashed or stalled member cannot run its heartbeat task; the
    /// detector itself never peeks at that truth), drains received
    /// heartbeats into freshness state, and applies the suspect/fence
    /// rules. Returns the member to fence, if any (at most one per tick —
    /// the runtime tears down the execution immediately anyway).
    pub fn tick(
        &mut self,
        now: u64,
        transport: &dyn Transport,
        sender_ok: impl Fn(u32) -> bool,
    ) -> Option<u32> {
        // 1. Send due heartbeat rounds.
        for &m in &self.members {
            if !sender_ok(m) {
                continue;
            }
            let due = now.saturating_sub(*self.last_sent.get(&m).unwrap_or(&0))
                >= self.cfg.heartbeat_interval;
            if !due {
                continue;
            }
            self.last_sent.insert(m, now);
            for &peer in &self.members {
                if peer != m {
                    transport.send_heartbeat(m, peer);
                    self.heartbeats_sent.add(1);
                }
            }
        }
        // 2. Drain inboxes of members able to run (a stalled member's inbox
        //    queues up and is drained after it resumes).
        for &m in &self.members {
            if !sender_ok(m) {
                continue;
            }
            for (from, _sent_at) in transport.poll_heartbeats(m) {
                self.last_seen.insert((m, from), now);
            }
        }
        // 3. Detect. A peer's freshness is the best view any observer has
        //    of it — one surviving witness keeps a member alive through
        //    delay faults — but the verdict belongs to the acting master,
        //    the lowest-id member whose detector task can run this tick (a
        //    crashed master's detector simply never executes, so seniority
        //    passes down), and the master never judges itself. Without
        //    that exclusion a two-member cluster is symmetric: a crash
        //    also silences the survivor's only witness, and the detector
        //    would fence the survivor instead of the member that went
        //    dark.
        let members = self.members.clone();
        let Some(&master) = members.iter().find(|&&m| sender_ok(m)) else {
            return None; // nobody can run a detector this tick
        };
        for &p in &members {
            if p == master {
                continue;
            }
            let freshness = members
                .iter()
                .filter(|&&o| o != p)
                .filter_map(|&o| self.last_seen.get(&(o, p)).copied())
                .max();
            let Some(freshness) = freshness else {
                continue; // single-member cluster: nothing can witness it
            };
            let age = now.saturating_sub(freshness);
            let health = self.health.get(&p).copied().unwrap_or(MemberHealth::Alive);
            if age > self.cfg.fence_after {
                self.fences.add(1);
                self.events
                    .push(ClusterEvent::Fenced { member: p, at: now });
                self.tw
                    .record(TraceKind::Detect, now, 0, self.n_fence, p as i64);
                return Some(p);
            }
            match health {
                MemberHealth::Alive if age > self.cfg.suspect_after => {
                    self.suspicions.add(1);
                    self.health.insert(p, MemberHealth::Suspect { since: now });
                    self.events
                        .push(ClusterEvent::Suspected { member: p, at: now });
                    self.tw
                        .record(TraceKind::Detect, now, 0, self.n_suspect, p as i64);
                }
                MemberHealth::Suspect { .. } if age <= self.cfg.suspect_after => {
                    // Heard from it again inside the grace: delay, not death.
                    self.false_suspicions.add(1);
                    self.health.insert(p, MemberHealth::Alive);
                    self.events
                        .push(ClusterEvent::Cleared { member: p, at: now });
                    self.tw
                        .record(TraceKind::Detect, now, 0, self.n_clear, p as i64);
                }
                _ => {}
            }
        }
        None
    }

    /// Start tracking a member that joined the cluster (rescale, §4.3).
    /// Its freshness clocks start at `now`.
    pub fn add_member(&mut self, member: u32, now: u64) {
        if self.members.contains(&member) {
            return;
        }
        for &m in &self.members {
            self.last_seen.insert((m, member), now);
            self.last_seen.insert((member, m), now);
        }
        self.members.push(member);
        self.members.sort_unstable();
        self.health.insert(member, MemberHealth::Alive);
        self.last_sent.insert(member, now);
    }

    /// Drop a fenced member from detection (the runtime already killed it
    /// in the grid).
    pub fn remove_member(&mut self, member: u32) {
        self.members.retain(|&m| m != member);
        self.health.remove(&member);
        self.last_sent.remove(&member);
        self.last_seen
            .retain(|&(o, p), _| o != member && p != member);
    }

    /// Reset every freshness clock to `now` — called after a recovery
    /// rebuild so the survivors are not instantly re-suspected for the
    /// heartbeats they could not exchange while the job was down.
    pub fn refresh(&mut self, now: u64) {
        for v in self.last_seen.values_mut() {
            *v = now;
        }
        for (&m, v) in self.health.iter_mut() {
            *v = MemberHealth::Alive;
            let _ = m;
        }
        for v in self.last_sent.values_mut() {
            *v = now;
        }
    }

    // ---- recovery bookkeeping (driven by the runtime) ------------------

    pub fn record_recovery_started(&mut self, member: u32, attempt: u32, at: u64) {
        self.events.push(ClusterEvent::RecoveryStarted {
            member,
            attempt,
            at,
        });
    }

    pub fn record_recovery_failed(&mut self, attempt: u32, at: u64, cause: &str) {
        self.recovery_failures.add(1);
        self.events.push(ClusterEvent::RecoveryFailed {
            attempt,
            at,
            cause: cause.to_string(),
        });
        self.tw
            .record(TraceKind::Recovery, at, 0, self.n_recovery_fail, -1);
    }

    pub fn record_recovery_completed(
        &mut self,
        snapshot: Option<u64>,
        attempt: u32,
        started_at: u64,
        at: u64,
    ) {
        self.recoveries.add(1);
        self.events.push(ClusterEvent::RecoveryCompleted {
            snapshot,
            attempt,
            at,
        });
        self.tw.record(
            TraceKind::Recovery,
            started_at,
            at.saturating_sub(started_at),
            self.n_recovery,
            snapshot.map(|s| s as i64).unwrap_or(-1),
        );
        self.refresh(at);
    }

    /// Last completed recovery (snapshot restored, attempt, instant), if
    /// any — surfaced by the diagnostics dump.
    pub fn last_recovery(&self) -> Option<(Option<u64>, u32, u64)> {
        self.events.iter().rev().find_map(|e| match e {
            ClusterEvent::RecoveryCompleted {
                snapshot,
                attempt,
                at,
            } => Some((*snapshot, *attempt, *at)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jet_core::network::InMemoryTransport;
    use jet_util::clock::{Clock, ManualClock};
    use std::sync::Arc;

    const Q: u64 = 20_000; // 20 µs quantum

    struct Rig {
        clock: Arc<ManualClock>,
        transport: Arc<InMemoryTransport>,
        coord: Coordinator,
        registry: Arc<MetricsRegistry>,
    }

    fn rig(members: &[u32]) -> Rig {
        let clock = Arc::new(ManualClock::new());
        let transport = Arc::new(InMemoryTransport::new(clock.clone(), 100_000));
        let registry = Arc::new(MetricsRegistry::new());
        let coord = Coordinator::new(
            CoordinatorConfig::default(),
            members,
            0,
            &registry,
            &Tracer::disabled(),
        );
        Rig {
            clock,
            transport,
            coord,
            registry,
        }
    }

    impl Rig {
        /// Advance `dur` nanos in quanta, ticking the detector with
        /// `sender_ok`. Returns the first fence decision.
        fn run(&mut self, dur: u64, sender_ok: impl Fn(u32) -> bool) -> Option<(u32, u64)> {
            let end = self.clock.now_nanos() + dur;
            while self.clock.now_nanos() < end {
                self.clock.advance(Q);
                let now = self.clock.now_nanos();
                if let Some(m) = self.coord.tick(now, self.transport.as_ref(), &sender_ok) {
                    return Some((m, now));
                }
            }
            None
        }
    }

    #[test]
    fn healthy_cluster_stays_alive() {
        let mut r = rig(&[0, 1, 2]);
        assert_eq!(r.run(50_000_000, |_| true), None);
        for m in [0, 1, 2] {
            assert_eq!(r.coord.health(m), Some(MemberHealth::Alive));
        }
        assert!(r.coord.events().is_empty());
        assert!(r.coord.false_suspicions() == 0);
        // Heartbeats actually flowed and were counted.
        let snap = r.registry.snapshot();
        let sent = snap
            .metrics
            .iter()
            .find(|m| m.name == "jet_cluster_heartbeats_sent_total")
            .and_then(|m| m.as_counter())
            .unwrap();
        assert!(sent > 100, "sent {sent}");
    }

    #[test]
    fn dead_member_is_suspected_then_fenced_after_grace() {
        let mut r = rig(&[0, 1, 2]);
        r.run(10_000_000, |_| true);
        let died_at = r.clock.now_nanos();
        let fence = r.run(30_000_000, |m| m != 1);
        let (fenced, at) = fence.expect("member 1 must be fenced");
        assert_eq!(fenced, 1);
        let cfg = CoordinatorConfig::default();
        // Detection needs at least the grace; latency is bounded by grace +
        // one heartbeat interval + network latency + a couple of quanta.
        assert!(at >= died_at + cfg.fence_after, "fenced too early: {at}");
        assert!(
            at <= died_at + cfg.fence_after + cfg.heartbeat_interval + 500_000 + 4 * Q,
            "fenced too late: {} after death",
            at - died_at
        );
        // Suspicion preceded the fence.
        assert!(r
            .coord
            .events()
            .iter()
            .any(|e| matches!(e, ClusterEvent::Suspected { member: 1, .. })));
        r.coord.remove_member(1);
        assert_eq!(r.coord.members(), &[0, 2]);
        assert_eq!(r.coord.health(1), None);
        // Survivors keep going without further fences.
        assert_eq!(r.run(30_000_000, |m| m != 1), None);
    }

    #[test]
    fn transient_stall_is_cleared_not_fenced() {
        let mut r = rig(&[0, 1, 2]);
        r.run(10_000_000, |_| true);
        // Member 2 goes dark for 6 ms: past suspect_after (4 ms) but within
        // fence_after (10 ms).
        assert_eq!(r.run(6_000_000, |m| m != 2), None);
        assert_eq!(r.run(20_000_000, |_| true), None, "no fence after resume");
        assert_eq!(r.coord.health(2), Some(MemberHealth::Alive));
        assert_eq!(r.coord.false_suspicions(), 1);
        let kinds: Vec<&ClusterEvent> = r.coord.events().iter().collect();
        assert!(matches!(
            kinds[0],
            ClusterEvent::Suspected { member: 2, .. }
        ));
        assert!(matches!(kinds[1], ClusterEvent::Cleared { member: 2, .. }));
        assert_eq!(kinds.len(), 2);
    }

    #[test]
    fn short_stall_below_suspect_threshold_is_invisible() {
        let mut r = rig(&[0, 1]);
        r.run(5_000_000, |_| true);
        assert_eq!(r.run(3_000_000, |m| m != 0), None);
        assert_eq!(r.run(10_000_000, |_| true), None);
        assert!(r.coord.events().is_empty());
        assert_eq!(r.coord.false_suspicions(), 0);
    }

    #[test]
    fn refresh_prevents_instant_refence_after_recovery() {
        let mut r = rig(&[0, 1, 2]);
        let (fenced, _) = r.run(30_000_000, |m| m != 0).unwrap();
        assert_eq!(fenced, 0);
        r.coord.remove_member(0);
        // Simulate the outage window during which nobody heartbeated, then
        // a rebuild + refresh.
        r.clock.advance(25_000_000);
        r.coord.refresh(r.clock.now_nanos());
        assert_eq!(r.run(30_000_000, |_| true), None);
        assert_eq!(r.coord.fences(), 1);
    }

    #[test]
    fn config_validation_rejects_inverted_ladders() {
        assert!(CoordinatorConfig::default().validate().is_ok());
        let bad = |f: fn(&mut CoordinatorConfig), needle: &str| {
            let mut c = CoordinatorConfig::default();
            f(&mut c);
            let err = c.validate().expect_err(needle);
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        bad(|c| c.heartbeat_interval = 0, "heartbeat_interval");
        // fence == suspect: no grace at all.
        bad(|c| c.fence_after = c.suspect_after, "fence_after");
        // fence < suspect: inverted ladder.
        bad(|c| c.fence_after = c.suspect_after - 1, "fence_after");
        // suspect below one heartbeat interval.
        bad(
            |c| c.suspect_after = c.heartbeat_interval - 1,
            "suspect_after",
        );
        bad(|c| c.recovery_backoff_base = 0, "recovery_backoff_base");
        bad(|c| c.recovery_backoff_max = 1, "recovery_backoff_max");
        bad(|c| c.max_recovery_attempts = 0, "max_recovery_attempts");
    }

    #[test]
    fn recovery_events_are_logged_and_surfaced() {
        let mut r = rig(&[0, 1]);
        r.coord.record_recovery_started(1, 1, 100);
        r.coord
            .record_recovery_failed(1, 200, "snapshot store unavailable");
        r.coord.record_recovery_started(1, 2, 300);
        r.coord.record_recovery_completed(Some(7), 2, 300, 400);
        assert_eq!(r.coord.last_recovery(), Some((Some(7), 2, 400)));
        assert_eq!(r.coord.events().len(), 4);
        // refresh() inside record_recovery_completed reset freshness.
        assert_eq!(r.run(20_000_000, |_| true), None);
    }
}

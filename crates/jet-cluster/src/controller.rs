//! Elastic autoscaling controller (§4.3, §7.7): closes the control loop
//! from the stall/occupancy/receive-window telemetry to live rescale
//! decisions.
//!
//! The controller watches three job-wide signals on a fixed virtual-time
//! cadence — per-vertex backpressure-stall counters, worker occupancy
//! (busy vs idle scheduling rounds), and the adaptive receive-window floor —
//! and drives `add_member_and_rescale` / `remove_member_and_rescale`
//! through an explicit decision state machine:
//!
//! ```text
//!            window full & outside hysteresis band
//!   Steady ────────────────────────────────────────▶ (rescale runs)
//!     ▲                                               │         │
//!     │ cooldown expires                      success │         │ failure
//!     │                                               ▼         ▼
//!   Cooldown ◀────────────────────────────────────── ok      Backoff
//!     ▲                                                         │
//!     │ backoff expires (ladder doubles per failure, capped)    │
//!     └────────────────────────────────────────◀────────────────┤
//!                                   failures ≥ max ─────────────▶ Degraded
//! ```
//!
//! Three rules keep it from flapping:
//!
//! * **Hysteresis** — scale up only above `scale_up_occupancy`, down only
//!   below `scale_down_occupancy`; the band between them is dead. Config
//!   validation rejects an empty band.
//! * **Cooldown** — after any completed rescale the controller holds its
//!   fire for `cooldown` and discards its sample window (the old topology's
//!   signals say nothing about the new one).
//! * **Degrade instead of flap** — a failed rescale arms a bounded
//!   exponential [`BackoffLadder`]; after `max_rescale_failures` the
//!   controller parks itself in `Degraded` and the job keeps running on the
//!   topology it has. A later success resets the ladder.
//!
//! Decisions read **only** the windowed sample ring filled by
//! [`Controller::observe`] — never an instantaneous gauge — so a single
//! noisy quantum cannot trigger a rescale (jet-lint's `raw-gauge` rule
//! enforces this split workspace-wide). Every transition lands in a
//! deterministic [`ControllerEvent`] log: same seed + same fault plan ⇒
//! bit-for-bit the same decision timeline, which the chaos lane's no-flap
//! and replay oracles check at 100 seeds.

use jet_core::metrics::{tags, MetricsRegistry, MetricsSnapshot, SharedCounter, SharedGauge};
use jet_core::trace::{TraceKind, TraceWriter, Tracer};
use jet_util::backoff::BackoffLadder;
use std::collections::VecDeque;

/// Autoscaling tuning. All times are virtual nanos; occupancy thresholds
/// are millionths (1_000_000 = every worker round did work).
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Telemetry sampling cadence.
    pub cadence: u64,
    /// Samples per decision window; a decision needs a full window.
    pub window: usize,
    /// Windowed occupancy above which the cluster scales up.
    pub scale_up_occupancy: u32,
    /// Windowed occupancy below which the cluster scales down (must sit
    /// strictly below `scale_up_occupancy`; the gap is the hysteresis band).
    pub scale_down_occupancy: u32,
    /// Windowed backpressure-stall rate (stalls/second) above which the
    /// cluster scales up even at moderate occupancy.
    pub scale_up_stall_rate: u64,
    /// Receive-window floor (items): a windowed average at or below this
    /// corroborates up-pressure. 0 disables the signal.
    pub scale_up_receive_window: i64,
    /// Hold-off after a completed rescale.
    pub cooldown: u64,
    /// First retry delay after a failed rescale; doubles per failure.
    pub backoff_base: u64,
    /// Ceiling for the failure backoff.
    pub backoff_max: u64,
    /// Jitter applied to the failure backoff (millionths of the delay).
    pub backoff_jitter_millionths: u32,
    /// Consecutive rescale failures before the controller degrades.
    pub max_rescale_failures: u32,
    /// Never scale below / above these cluster sizes.
    pub min_members: usize,
    pub max_members: usize,
    /// Terminal-snapshot deadline handed to the rescale call.
    pub rescale_max_wait: u64,
    /// Seed for the backoff jitter stream (replay determinism).
    pub seed: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            cadence: 5_000_000, // 5 ms
            window: 4,
            scale_up_occupancy: 850_000,
            scale_down_occupancy: 300_000,
            scale_up_stall_rate: 2_000,
            scale_up_receive_window: 0,
            cooldown: 50_000_000, // 50 ms
            backoff_base: 10_000_000,
            backoff_max: 160_000_000,
            backoff_jitter_millionths: 0,
            max_rescale_failures: 4,
            min_members: 1,
            max_members: 8,
            rescale_max_wait: 200_000_000,
            seed: 0,
        }
    }
}

impl ControllerConfig {
    /// Reject configurations that would misbehave silently: an inverted or
    /// empty hysteresis band flaps on every window; a cooldown shorter than
    /// the cadence makes the cooldown a no-op; a zero window can never
    /// decide.
    pub fn validate(&self) -> Result<(), String> {
        if self.cadence == 0 {
            return Err("controller cadence must be positive".into());
        }
        if self.window < 2 {
            return Err(format!(
                "controller window must hold at least 2 samples (got {}): a \
                 single sample has no delta to aggregate over",
                self.window
            ));
        }
        if self.scale_up_occupancy <= self.scale_down_occupancy {
            return Err(format!(
                "hysteresis band is empty: scale_up_occupancy ({}) must \
                 exceed scale_down_occupancy ({}), otherwise every window \
                 outside one threshold violates the other and the \
                 controller flaps",
                self.scale_up_occupancy, self.scale_down_occupancy
            ));
        }
        if self.scale_up_occupancy > 1_000_000 {
            return Err(format!(
                "scale_up_occupancy ({}) is in millionths and cannot exceed \
                 1_000_000",
                self.scale_up_occupancy
            ));
        }
        if self.cooldown < self.cadence {
            return Err(format!(
                "cooldown ({} ns) must be at least the sampling cadence \
                 ({} ns), or the very next sample after a rescale can \
                 trigger another one",
                self.cooldown, self.cadence
            ));
        }
        if self.backoff_base == 0 {
            return Err("backoff_base must be positive".into());
        }
        if self.backoff_max < self.backoff_base {
            return Err(format!(
                "backoff_max ({}) is below backoff_base ({})",
                self.backoff_max, self.backoff_base
            ));
        }
        if self.min_members == 0 {
            return Err("min_members must be at least 1".into());
        }
        if self.max_members < self.min_members {
            return Err(format!(
                "max_members ({}) is below min_members ({})",
                self.max_members, self.min_members
            ));
        }
        Ok(())
    }
}

/// Which way a rescale decision points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Up,
    Down,
}

impl Direction {
    pub fn name(&self) -> &'static str {
        match self {
            Direction::Up => "up",
            Direction::Down => "down",
        }
    }
}

/// Decision state machine phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Watching; free to decide once the window fills.
    Steady,
    /// Post-rescale hold-off.
    Cooldown { until: u64 },
    /// Post-failure hold-off (bounded exponential).
    Backoff { until: u64 },
    /// Rescaling gave up; the job runs on whatever topology it has.
    Degraded,
}

impl Phase {
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Steady => "steady",
            Phase::Cooldown { .. } => "cooldown",
            Phase::Backoff { .. } => "backoff",
            Phase::Degraded => "degraded",
        }
    }
}

/// One windowed telemetry sample (cumulative counters; deltas between
/// samples are what decisions aggregate over).
#[derive(Debug, Clone, Copy)]
struct Sample {
    at: u64,
    /// Cumulative busy virtual nanos summed over the execution's cores
    /// (resets on rebuild — the runtime discards the window then).
    busy_nanos: u64,
    /// Cores in the execution at sampling time.
    cores: usize,
    bp_stalls: u64,
    /// Smallest advertised receive window across channels (i64::MAX when
    /// the job has no distributed edges).
    recv_window_min: i64,
}

/// One entry in the controller's decision timeline. Deterministic for a
/// given seed + fault plan — the chaos replay oracle compares these logs
/// bit for bit, and the bench reports embed them in `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerEvent {
    /// A full window crossed a threshold and a rescale was ordered.
    Decided {
        at: u64,
        direction: Direction,
        /// Windowed occupancy (millionths) that drove the decision.
        occupancy: u32,
        /// Windowed stall rate (stalls/second).
        stall_rate: u64,
        /// Cluster size when the decision was made.
        members: usize,
    },
    RescaleCompleted {
        at: u64,
        direction: Direction,
        members: usize,
    },
    RescaleFailed {
        at: u64,
        direction: Direction,
        failures: u32,
        cause: String,
    },
    CooldownEntered {
        at: u64,
        until: u64,
    },
    BackoffEntered {
        at: u64,
        until: u64,
        failures: u32,
    },
    Degraded {
        at: u64,
        failures: u32,
    },
}

impl ControllerEvent {
    pub fn at(&self) -> u64 {
        match self {
            ControllerEvent::Decided { at, .. }
            | ControllerEvent::RescaleCompleted { at, .. }
            | ControllerEvent::RescaleFailed { at, .. }
            | ControllerEvent::CooldownEntered { at, .. }
            | ControllerEvent::BackoffEntered { at, .. }
            | ControllerEvent::Degraded { at, .. } => *at,
        }
    }

    /// Stable machine-readable kind tag (schema `controller.events[].kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            ControllerEvent::Decided { .. } => "decided",
            ControllerEvent::RescaleCompleted { .. } => "rescale-completed",
            ControllerEvent::RescaleFailed { .. } => "rescale-failed",
            ControllerEvent::CooldownEntered { .. } => "cooldown",
            ControllerEvent::BackoffEntered { .. } => "backoff",
            ControllerEvent::Degraded { .. } => "degraded",
        }
    }

    pub fn label(&self) -> String {
        match self {
            ControllerEvent::Decided {
                direction,
                occupancy,
                stall_rate,
                members,
                ..
            } => format!(
                "decided scale-{} (occupancy {:.1}%, {} stalls/s, {} members)",
                direction.name(),
                *occupancy as f64 / 10_000.0,
                stall_rate,
                members
            ),
            ControllerEvent::RescaleCompleted {
                direction, members, ..
            } => format!("scale-{} completed, {} members", direction.name(), members),
            ControllerEvent::RescaleFailed {
                direction,
                failures,
                cause,
                ..
            } => format!(
                "scale-{} failed (failure {}): {}",
                direction.name(),
                failures,
                cause
            ),
            ControllerEvent::CooldownEntered { until, .. } => {
                format!("cooldown until {until}")
            }
            ControllerEvent::BackoffEntered {
                until, failures, ..
            } => format!("backoff until {until} after {failures} failure(s)"),
            ControllerEvent::Degraded { failures, .. } => {
                format!("degraded after {failures} rescale failures")
            }
        }
    }
}

/// The autoscaling decision engine. The runtime owns one (when configured),
/// feeds it metric snapshots on its cadence via [`Controller::observe`],
/// asks [`Controller::decide`] between simulator chunks, and reports the
/// rescale outcome back via [`Controller::rescale_completed`] /
/// [`Controller::rescale_failed`].
pub struct Controller {
    cfg: ControllerConfig,
    phase: Phase,
    samples: VecDeque<Sample>,
    last_sample_at: Option<u64>,
    ladder: BackoffLadder,
    events: Vec<ControllerEvent>,
    // Metrics (cluster-level registry, merged into the job snapshot).
    samples_taken: SharedCounter,
    decisions_up: SharedCounter,
    decisions_down: SharedCounter,
    rescales: SharedCounter,
    rescale_failures: SharedCounter,
    cluster_size: SharedGauge,
    // Trace plumbing (no-ops when the tracer is disabled).
    tw: TraceWriter,
    n_decide: u32,
    n_rescale: u32,
    n_fail: u32,
}

impl Controller {
    /// Track id used for controller spans in trace exports.
    pub const TRACE_PID: u32 = 0x5CA1;

    pub fn new(
        cfg: ControllerConfig,
        members: usize,
        registry: &MetricsRegistry,
        tracer: &Tracer,
    ) -> Controller {
        let ladder = BackoffLadder::new(cfg.backoff_base, cfg.backoff_max)
            .with_jitter(cfg.backoff_jitter_millionths, cfg.seed);
        let tw = tracer.writer(Self::TRACE_PID, "autoscaler");
        let n_decide = tw.intern("decide");
        let n_rescale = tw.intern("rescale");
        let n_fail = tw.intern("rescale-failed");
        let cluster_size = registry.gauge("jet_controller_cluster_size", tags(&[]));
        cluster_size.set(members as i64);
        Controller {
            cfg,
            phase: Phase::Steady,
            samples: VecDeque::new(),
            last_sample_at: None,
            ladder,
            events: Vec::new(),
            samples_taken: registry.counter("jet_controller_samples_total", tags(&[])),
            decisions_up: registry.counter("jet_controller_decisions_up_total", tags(&[])),
            decisions_down: registry.counter("jet_controller_decisions_down_total", tags(&[])),
            rescales: registry.counter("jet_controller_rescales_total", tags(&[])),
            rescale_failures: registry.counter("jet_controller_rescale_failures_total", tags(&[])),
            cluster_size,
            tw,
            n_decide,
            n_rescale,
            n_fail,
        }
    }

    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Full decision timeline (chronological).
    pub fn events(&self) -> &[ControllerEvent] {
        &self.events
    }

    /// Virtual nanos until the next sample is due (None when a sample is
    /// due right now). Mirrors the timeline/flight-recorder chunking
    /// contract so sampling costs zero virtual time.
    pub fn next_sample_in(&self, now: u64) -> Option<u64> {
        match self.last_sample_at {
            None => None,
            Some(last) => {
                let next = last + self.cfg.cadence;
                if now >= next {
                    None
                } else {
                    Some(next - now)
                }
            }
        }
    }

    /// Is a sample due at `now`?
    pub fn sample_due(&self, now: u64) -> bool {
        self.next_sample_in(now).is_none()
    }

    /// Ingest one telemetry sample into the window: the job-wide metrics
    /// snapshot (stall counters, receive-window gauges) plus the
    /// simulator's cumulative busy nanos over `cores` virtual cores. This
    /// is the *only* place the controller reads instantaneous values; every
    /// decision below works on deltas between these samples.
    pub fn observe(
        &mut self,
        now: u64,
        snap: &MetricsSnapshot,
        busy_nanos: u64,
        cores: usize,
        members: usize,
    ) {
        self.last_sample_at = Some(now);
        self.samples_taken.add(1);
        self.cluster_size.set(members as i64);
        // jet-lint: allow(raw-gauge) — the cadenced ingestion point itself
        let recv_window_min = snap
            .get_all("jet_channel_receive_window")
            .filter_map(|m| m.as_gauge())
            .min()
            .unwrap_or(i64::MAX);
        self.samples.push_back(Sample {
            at: now,
            busy_nanos,
            cores: cores.max(1),
            // jet-lint: allow(raw-gauge) — cumulative counter; decisions
            // aggregate deltas of it across the window
            bp_stalls: snap.counter_total("jet_backpressure_stalls_total", &[]),
            recv_window_min,
        });
        while self.samples.len() > self.cfg.window {
            self.samples.pop_front();
        }
    }

    /// Discard the sample window — after a topology change (rescale *or*
    /// recovery rebuild) the old execution's cumulative signals say nothing
    /// about the new one. The runtime calls this whenever it rebuilds the
    /// execution outside the controller's own rescales.
    pub fn discard_samples(&mut self) {
        self.samples.clear();
    }

    /// Windowed aggregates over the full sample ring: (occupancy
    /// millionths, stalls/second, average receive-window floor). None until
    /// the window is full.
    fn window_aggregate(&self) -> Option<(u32, u64, i64)> {
        if self.samples.len() < self.cfg.window {
            return None;
        }
        let first = self.samples.front()?;
        let last = self.samples.back()?;
        let span = last.at.saturating_sub(first.at);
        if span == 0 {
            return None;
        }
        let busy = last.busy_nanos.saturating_sub(first.busy_nanos);
        let capacity = span as u128 * last.cores as u128;
        let occupancy = ((busy as u128 * 1_000_000) / capacity).min(1_000_000) as u32;
        let stalls = last.bp_stalls.saturating_sub(first.bp_stalls);
        let stall_rate = ((stalls as u128 * 1_000_000_000) / span as u128) as u64;
        let n = self.samples.len() as i64;
        let recv_avg = self
            .samples
            .iter()
            .map(|s| s.recv_window_min.min(i64::MAX / n.max(1)))
            .sum::<i64>()
            / n;
        Some((occupancy, stall_rate, recv_avg))
    }

    /// Run the decision state machine at `now`. Returns the rescale to
    /// execute, if any. Reads only the windowed aggregates — never a live
    /// gauge.
    pub fn decide(&mut self, now: u64, members: usize) -> Option<Direction> {
        // Phase transitions on the clock.
        match self.phase {
            Phase::Degraded => return None,
            Phase::Cooldown { until } | Phase::Backoff { until } => {
                if now < until {
                    return None;
                }
                self.phase = Phase::Steady;
            }
            Phase::Steady => {}
        }
        let (occupancy, stall_rate, recv_avg) = self.window_aggregate()?;
        let recv_pressure = self.cfg.scale_up_receive_window > 0
            && recv_avg != i64::MAX
            && recv_avg <= self.cfg.scale_up_receive_window;
        let up = occupancy >= self.cfg.scale_up_occupancy
            || stall_rate >= self.cfg.scale_up_stall_rate
            || recv_pressure;
        let down = occupancy <= self.cfg.scale_down_occupancy
            && stall_rate < self.cfg.scale_up_stall_rate
            && !recv_pressure;
        let direction = if up && members < self.cfg.max_members {
            Direction::Up
        } else if down && members > self.cfg.min_members {
            Direction::Down
        } else {
            return None;
        };
        match direction {
            Direction::Up => self.decisions_up.add(1),
            Direction::Down => self.decisions_down.add(1),
        }
        self.events.push(ControllerEvent::Decided {
            at: now,
            direction,
            occupancy,
            stall_rate,
            members,
        });
        self.tw.record(
            TraceKind::Detect,
            now,
            0,
            self.n_decide,
            match direction {
                Direction::Up => 1,
                Direction::Down => -1,
            },
        );
        Some(direction)
    }

    /// The rescale ordered by [`Controller::decide`] committed: reset the
    /// failure ladder, discard stale samples, and enter cooldown.
    pub fn rescale_completed(&mut self, now: u64, direction: Direction, members: usize) {
        self.rescales.add(1);
        self.cluster_size.set(members as i64);
        self.ladder.reset();
        self.discard_samples();
        self.events.push(ControllerEvent::RescaleCompleted {
            at: now,
            direction,
            members,
        });
        let until = now + self.cfg.cooldown;
        self.phase = Phase::Cooldown { until };
        self.events
            .push(ControllerEvent::CooldownEntered { at: now, until });
        self.tw
            .record(TraceKind::Recovery, now, 0, self.n_rescale, members as i64);
    }

    /// The rescale failed (and the runtime rolled back to the pre-rescale
    /// topology): climb the backoff ladder, degrade once it tops out.
    pub fn rescale_failed(&mut self, now: u64, direction: Direction, cause: &str) {
        self.rescale_failures.add(1);
        self.discard_samples();
        let delay = self.ladder.next_delay();
        let failures = self.ladder.attempt();
        self.events.push(ControllerEvent::RescaleFailed {
            at: now,
            direction,
            failures,
            cause: cause.to_string(),
        });
        self.tw
            .record(TraceKind::Recovery, now, 0, self.n_fail, failures as i64);
        if failures >= self.cfg.max_rescale_failures {
            self.phase = Phase::Degraded;
            self.events
                .push(ControllerEvent::Degraded { at: now, failures });
        } else {
            let until = now + delay;
            self.phase = Phase::Backoff { until };
            self.events.push(ControllerEvent::BackoffEntered {
                at: now,
                until,
                failures,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jet_core::metrics::MetricsRegistry;

    const MS: u64 = 1_000_000;

    fn snap(stalls: u64) -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("jet_backpressure_stalls_total", tags(&[]))
            .add(stalls);
        r.snapshot()
    }

    fn controller(cfg: ControllerConfig) -> Controller {
        let reg = MetricsRegistry::new();
        Controller::new(cfg, 1, &reg, &Tracer::disabled())
    }

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            cadence: 1_000_000,
            window: 3,
            cooldown: 10_000_000,
            ..ControllerConfig::default()
        }
    }

    /// Feed a full window ending at `t0 + 2 ms` on one core whose busy
    /// nanos advance at `busy_millionths` of wall time.
    fn fill_window(
        c: &mut Controller,
        t0: u64,
        busy_millionths: u64,
        stalls_per_ms: u64,
        members: usize,
    ) {
        for i in 0..3u64 {
            let t = t0 + i * MS;
            let busy = t / 1_000_000 * busy_millionths; // per-ms busy nanos
            c.observe(t, &snap(t / MS * stalls_per_ms), busy, 1, members);
        }
    }

    #[test]
    fn validation_rejects_misconfigurations() {
        assert!(ControllerConfig::default().validate().is_ok());
        let bad = |f: fn(&mut ControllerConfig), needle: &str| {
            let mut c = ControllerConfig::default();
            f(&mut c);
            let err = c.validate().expect_err(needle);
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        bad(|c| c.cadence = 0, "cadence");
        bad(|c| c.window = 1, "window");
        bad(
            |c| {
                c.scale_up_occupancy = 200_000;
                c.scale_down_occupancy = 200_000;
            },
            "hysteresis",
        );
        bad(|c| c.scale_up_occupancy = 2_000_000, "millionths");
        bad(|c| c.cooldown = 0, "cooldown");
        bad(|c| c.backoff_base = 0, "backoff_base");
        bad(|c| c.backoff_max = 1, "backoff_max");
        bad(|c| c.min_members = 0, "min_members");
        bad(|c| c.max_members = 0, "max_members");
    }

    #[test]
    fn no_decision_until_window_full() {
        let mut c = controller(cfg());
        c.observe(0, &snap(0), 0, 1, 1);
        c.observe(MS, &snap(0), MS, 1, 1);
        assert_eq!(c.decide(MS, 1), None, "2 of 3 samples");
        c.observe(2 * MS, &snap(0), 2 * MS, 1, 1);
        assert_eq!(c.decide(2 * MS, 1), Some(Direction::Up));
    }

    #[test]
    fn hysteresis_band_is_dead() {
        let mut c = controller(cfg());
        // 50% occupancy: between down (30%) and up (85%) thresholds.
        fill_window(&mut c, 0, 500_000, 0, 2);
        assert_eq!(c.decide(2 * MS, 2), None);
        assert!(c.events().is_empty());
    }

    #[test]
    fn stall_rate_triggers_scale_up_at_moderate_occupancy() {
        let mut c = controller(cfg());
        // 50% occupancy but a torrent of backpressure stalls (1000/ms).
        fill_window(&mut c, 0, 500_000, 1_000, 1);
        assert_eq!(c.decide(2 * MS, 1), Some(Direction::Up));
    }

    #[test]
    fn idle_cluster_scales_down_but_not_below_min() {
        let mut c = controller(cfg());
        fill_window(&mut c, 0, 10_000, 0, 2); // 1% busy
        assert_eq!(c.decide(2 * MS, 2), Some(Direction::Down));
        let mut c = controller(cfg());
        fill_window(&mut c, 0, 10_000, 0, 1);
        assert_eq!(c.decide(2 * MS, 1), None, "already at min_members");
    }

    #[test]
    fn saturated_cluster_respects_max_members() {
        let mut c = controller(ControllerConfig {
            max_members: 2,
            ..cfg()
        });
        fill_window(&mut c, 0, 1_000_000, 0, 2);
        assert_eq!(c.decide(2 * MS, 2), None);
    }

    #[test]
    fn cooldown_blocks_decisions_then_expires() {
        let mut c = controller(cfg());
        fill_window(&mut c, 0, 1_000_000, 0, 1);
        assert_eq!(c.decide(2 * MS, 1), Some(Direction::Up));
        c.rescale_completed(3 * MS, Direction::Up, 2);
        assert!(matches!(c.phase(), Phase::Cooldown { .. }));
        // Saturated samples during cooldown: still no decision.
        fill_window(&mut c, 4 * MS, 1_000_000, 0, 2);
        assert_eq!(c.decide(6 * MS, 2), None);
        // Past cooldown (13 ms = 3 + 10) with a full fresh window: decides.
        fill_window(&mut c, 14 * MS, 1_000_000, 0, 2);
        assert_eq!(c.decide(16 * MS, 2), Some(Direction::Up));
    }

    #[test]
    fn failures_climb_the_ladder_then_degrade() {
        let mut c = controller(ControllerConfig {
            max_rescale_failures: 2,
            backoff_base: 4 * MS,
            backoff_max: 64 * MS,
            ..cfg()
        });
        fill_window(&mut c, 0, 1_000_000, 0, 1);
        assert_eq!(c.decide(2 * MS, 1), Some(Direction::Up));
        c.rescale_failed(3 * MS, Direction::Up, "terminal snapshot timed out");
        let Phase::Backoff { until } = c.phase() else {
            panic!("expected backoff, got {:?}", c.phase());
        };
        assert_eq!(until, 3 * MS + 4 * MS);
        // Window was cleared; refill after the backoff expires.
        fill_window(&mut c, 8 * MS, 1_000_000, 0, 1);
        assert_eq!(c.decide(10 * MS, 1), Some(Direction::Up));
        c.rescale_failed(11 * MS, Direction::Up, "still wedged");
        assert_eq!(c.phase(), Phase::Degraded);
        fill_window(&mut c, 20 * MS, 1_000_000, 0, 1);
        assert_eq!(c.decide(22 * MS, 1), None, "degraded never decides");
        // The timeline recorded the whole episode in order.
        let kinds: Vec<&str> = c.events().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "decided",
                "rescale-failed",
                "backoff",
                "decided",
                "rescale-failed",
                "degraded"
            ]
        );
        let ats: Vec<u64> = c.events().iter().map(|e| e.at()).collect();
        let mut sorted = ats.clone();
        sorted.sort_unstable();
        assert_eq!(ats, sorted, "timeline must be chronological");
    }

    #[test]
    fn success_resets_the_failure_ladder() {
        let mut c = controller(ControllerConfig {
            max_rescale_failures: 3,
            ..cfg()
        });
        c.rescale_failed(MS, Direction::Up, "boom");
        c.rescale_failed(2 * MS, Direction::Up, "boom");
        c.rescale_completed(3 * MS, Direction::Up, 2);
        // Two more failures after the success: still below the limit of 3
        // because the ladder reset.
        c.rescale_failed(20 * MS, Direction::Up, "boom");
        c.rescale_failed(21 * MS, Direction::Up, "boom");
        assert_ne!(c.phase(), Phase::Degraded);
    }

    #[test]
    fn sampling_cadence_mirrors_the_timeline_contract() {
        let mut c = controller(cfg());
        assert!(c.sample_due(0), "first sample is always due");
        c.observe(0, &snap(0), 0, 1, 1);
        assert_eq!(c.next_sample_in(0), Some(MS));
        assert_eq!(c.next_sample_in(MS / 2), Some(MS / 2));
        assert!(c.sample_due(MS));
        assert!(c.sample_due(2 * MS));
    }

    #[test]
    fn receive_window_pressure_corroborates_scale_up() {
        let pinned = |c: &mut Controller| {
            // Moderate occupancy, no stalls, but the receive window is
            // pinned at the floor.
            for i in 0..3u64 {
                let t = i * MS;
                let r = MetricsRegistry::new();
                r.gauge("jet_channel_receive_window", tags(&[("edge", "0")]))
                    .set(512);
                c.observe(t, &r.snapshot(), t / 2, 1, 1);
            }
        };
        let mut c = controller(ControllerConfig {
            scale_up_receive_window: 1024,
            ..cfg()
        });
        pinned(&mut c);
        assert_eq!(c.decide(2 * MS, 1), Some(Direction::Up));
        // Signal disabled (0): the same telemetry makes no decision.
        let mut c = controller(cfg());
        pinned(&mut c);
        assert_eq!(c.decide(2 * MS, 1), None);
    }
}

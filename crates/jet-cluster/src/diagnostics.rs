//! Plain-text job diagnostics dump: one page that answers "where is my
//! latency going?" without loading a trace viewer.
//!
//! The dump is assembled from three sources that are each cheap to obtain
//! on a live job: the merged metrics snapshot (queue depths, watermark
//! gauges, stall counters), the scheduler's per-tasklet state table, and —
//! when tracing is enabled — the drained [`TraceData`] for top-k slowest
//! call attribution. Every section degrades gracefully: with tracing
//! disabled the trace-derived lines render as `n/a` rather than vanishing,
//! so operators always see the same shape of report.

use crate::controller::{Controller, Phase};
use crate::coordinator::{Coordinator, MemberHealth};
use jet_core::flight::IncidentReport;
use jet_core::metrics::{Metric, MetricsSnapshot};
use jet_core::trace::{TraceData, TraceKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

fn secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

/// Format a watermark gauge: the end-of-stream flush watermark sits near
/// `Ts::MAX` and would render as a nonsense timestamp.
fn wm(nanos: i64) -> String {
    if nanos > i64::MAX / 2 {
        "end-of-stream".to_string()
    } else {
        format!("{:.3}s", secs(nanos.max(0) as u64))
    }
}

fn gauge_or(snap: &MetricsSnapshot, name: &str, tags: &[(&str, &str)], default: i64) -> i64 {
    snap.find(name, tags)
        .and_then(Metric::as_gauge)
        .unwrap_or(default)
}

/// Render the job diagnostics dump.
///
/// `tasklets` is the scheduler's `(core, name, state, events_in,
/// events_out)` table; `trace` adds latency attribution when present;
/// `coordinator` adds the cluster-health section (member liveness,
/// suspicion state, last recovery) and degrades to `n/a` when the job
/// runs without a failure detector.
pub fn render_dump(
    job_id: u64,
    now_nanos: u64,
    snap: &MetricsSnapshot,
    tasklets: &[(usize, String, &'static str, u64, u64)],
    trace: Option<&TraceData>,
    coordinator: Option<&Coordinator>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== job {} diagnostics @ {:.3}s virtual ===",
        job_id,
        secs(now_nanos)
    );

    // Cluster health: what the failure detector currently believes.
    let _ = writeln!(out, "\ncluster health");
    match coordinator {
        Some(coord) => {
            for &m in coord.members() {
                let verdict = match coord.health(m) {
                    Some(MemberHealth::Alive) => "alive".to_string(),
                    Some(MemberHealth::Suspect { since }) => {
                        format!("SUSPECT since {:.3}s", secs(since))
                    }
                    None => "unknown".to_string(),
                };
                let _ = writeln!(out, "  m{}: {}", m, verdict);
            }
            let _ = writeln!(
                out,
                "  fences={} false-suspicions={}",
                coord.fences(),
                coord.false_suspicions()
            );
            match coord.last_recovery() {
                Some((snapshot, attempt, at)) => {
                    let from = match snapshot {
                        Some(id) => format!("snapshot {}", id),
                        None => "cold restart (no complete snapshot)".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "  last recovery: {} at {:.3}s (attempt {})",
                        from,
                        secs(at),
                        attempt
                    );
                }
                None => {
                    let _ = writeln!(out, "  last recovery: none");
                }
            }
        }
        None => {
            let _ = writeln!(out, "  n/a (no coordinator wired)");
        }
    }

    // Vertex names, in DAG-tag order (metrics preserve registration order
    // per member; a BTreeSet gives a stable cross-member order).
    let vertices: BTreeSet<&str> = snap
        .get_all("jet_events_in_total")
        .chain(snap.get_all("jet_events_out_total"))
        .filter_map(|m| m.tag("vertex"))
        .collect();

    for v in &vertices {
        let _ = writeln!(out, "\nvertex {}", v);

        // Scheduler state of every tasklet instance named after the vertex.
        let mut states: BTreeMap<&'static str, usize> = BTreeMap::new();
        for (_, _, state, _, _) in tasklets.iter().filter(|(_, n, ..)| n == v) {
            *states.entry(state).or_insert(0) += 1;
        }
        let state_line = if states.is_empty() {
            "none live".to_string()
        } else {
            states
                .iter()
                .map(|(s, n)| format!("{}x {}", n, s))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let events_in = snap.counter_total("jet_events_in_total", &[("vertex", v)]);
        let events_out = snap.counter_total("jet_events_out_total", &[("vertex", v)]);
        let _ = writeln!(
            out,
            "  state: {:<24} events: in={} out={}",
            state_line, events_in, events_out
        );

        // Keyed-state footprint (only vertices that export a state probe):
        // resident bytes across all frame tables plus late-event drops.
        let resident: i64 = snap
            .get_all("jet_state_resident_bytes")
            .filter(|m| m.tag("vertex") == Some(v))
            .filter_map(Metric::as_gauge)
            .sum();
        let keys: i64 = snap
            .get_all("jet_state_keys_records")
            .filter(|m| m.tag("vertex") == Some(v))
            .filter_map(Metric::as_gauge)
            .sum();
        let late = snap.counter_total("jet_window_late_events_total", &[("vertex", v)]);
        if resident > 0 || keys > 0 || late > 0 {
            let _ = writeln!(
                out,
                "  keyed-state: resident={:.1} MiB keys={} late-events={}",
                resident as f64 / (1024.0 * 1024.0),
                keys,
                late
            );
        }

        // Watermark position per instance: highest seen on any input vs.
        // the coalesced output the instance forwarded. A persistent gap
        // means one input channel is a straggler holding results back.
        let mut instances: BTreeSet<u64> = snap
            .get_all("jet_vertex_watermark_seen_nanos")
            .filter(|m| m.tag("vertex") == Some(v))
            .filter_map(|m| m.tag("instance").and_then(|i| i.parse().ok()))
            .collect();
        for i in std::mem::take(&mut instances) {
            let it = i.to_string();
            let tags: &[(&str, &str)] = &[("vertex", v), ("instance", &it)];
            let seen = gauge_or(snap, "jet_vertex_watermark_seen_nanos", tags, -1);
            let coal = gauge_or(snap, "jet_vertex_watermark_coalesced_nanos", tags, -1);
            if seen < 0 && coal < 0 {
                continue; // no watermark ever reached this instance
            }
            let gap = if seen >= 0 && coal >= 0 {
                format!("{:.3}s", secs(seen.saturating_sub(coal) as u64))
            } else {
                "n/a".to_string()
            };
            let _ = writeln!(
                out,
                "  wm[#{}]: seen={} coalesced={} straggler-gap={}",
                i,
                wm(seen),
                wm(coal),
                gap
            );
        }

        // Input queues: depth/capacity per (ordinal, instance, lane).
        let mut queue_lines = 0usize;
        for m in snap.get_all("jet_queue_depth") {
            if m.tag("vertex") != Some(v) {
                continue;
            }
            let depth = m.as_gauge().unwrap_or(0);
            let cap = snap
                .metrics
                .iter()
                .find(|c| c.name == "jet_queue_capacity" && c.tags == m.tags)
                .and_then(Metric::as_gauge)
                .unwrap_or(0);
            // Only itemize hot queues; summarize the idle ones.
            if depth * 4 >= cap.max(1) {
                let _ = writeln!(
                    out,
                    "  queue ord={} inst={} lane={}: {}/{}{}",
                    m.tag("ordinal").unwrap_or("?"),
                    m.tag("instance").unwrap_or("?"),
                    m.tag("lane").unwrap_or("?"),
                    depth,
                    cap,
                    if depth >= cap { "  FULL" } else { "" }
                );
            }
            queue_lines += 1;
        }
        if queue_lines > 0 {
            let _ = writeln!(
                out,
                "  queues: {} lanes (hot ones itemized above)",
                queue_lines
            );
        }

        // Backpressure: queue-full stalls per output edge ordinal.
        let stalls = {
            let mut per_ordinal: BTreeMap<String, u64> = BTreeMap::new();
            for m in snap.get_all("jet_backpressure_stalls_total") {
                if m.tag("vertex") == Some(v) {
                    if let (Some(ord), Some(c)) = (m.tag("ordinal"), m.as_counter()) {
                        *per_ordinal.entry(ord.to_string()).or_insert(0) += c;
                    }
                }
            }
            per_ordinal
        };
        for (ord, total) in &stalls {
            let _ = writeln!(out, "  backpressure stalls out-ordinal {}: {}", ord, total);
        }

        // Batch efficiency: items moved per queue drain/flush on this
        // vertex's edges. A mean stuck near 1 means the batched hot path
        // is degenerating to item-at-a-time transfers.
        for m in snap.get_all("jet_edge_batch_size") {
            if m.tag("vertex") != Some(v) {
                continue;
            }
            if let Some(h) = m.as_histogram() {
                if h.count == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  edge batch[#{}]: n={} mean={:.1} p50={} p99={} max={}",
                    m.tag("instance").unwrap_or("?"),
                    h.count,
                    h.mean,
                    h.p50,
                    h.p99,
                    h.max
                );
            }
        }

        // Latency attribution: the slowest timeslices this vertex ran.
        match trace {
            Some(data) => {
                let top = data.top_k_slowest_calls(v, 5);
                if top.is_empty() {
                    let _ = writeln!(out, "  slowest calls: none recorded");
                } else {
                    let line = top
                        .iter()
                        .map(|e| format!("{:.1}us@{:.3}s", e.rec.dur as f64 / 1e3, secs(e.rec.ts)))
                        .collect::<Vec<_>>()
                        .join("  ");
                    let _ = writeln!(out, "  slowest calls: {}", line);
                }
            }
            None => {
                let _ = writeln!(out, "  slowest calls: n/a (tracing disabled)");
            }
        }
    }

    // Distributed edges: sender/receiver queue pressure and watermark lag.
    let mut channel_lines: Vec<String> = Vec::new();
    for m in snap.get_all("jet_channel_watermark_lag_nanos") {
        if let (Some(edge), Some(from), Some(to), Some(lag)) =
            (m.tag("edge"), m.tag("from"), m.tag("to"), m.as_gauge())
        {
            let lag_str = if lag < 0 {
                "idle".to_string()
            } else {
                format!("{:.3}s", secs(lag as u64))
            };
            channel_lines.push(format!(
                "  edge {} m{}->m{}: wm-lag={}",
                edge, from, to, lag_str
            ));
        }
    }
    if !channel_lines.is_empty() {
        let _ = writeln!(out, "\nchannels");
        channel_lines.sort();
        for l in &channel_lines {
            let _ = writeln!(out, "{}", l);
        }
    }

    // Trace roll-up.
    let _ = writeln!(out, "\ntrace");
    match trace {
        Some(data) => {
            let _ = writeln!(
                out,
                "  events={} tracks={} dropped={}",
                data.events.len(),
                data.tracks.len(),
                data.dropped
            );
            for kind in [
                TraceKind::Call,
                TraceKind::Stall,
                TraceKind::IdlePark,
                TraceKind::WmEmit,
                TraceKind::WmCoalesce,
                TraceKind::SnapshotPhase,
                TraceKind::NetSend,
                TraceKind::NetRecv,
                TraceKind::Detect,
                TraceKind::Recovery,
                TraceKind::FaultInject,
            ] {
                let n = data.of_kind(kind).count();
                if n > 0 {
                    let _ = writeln!(out, "  {:<12} {}", kind.name(), n);
                }
            }
        }
        None => {
            let _ = writeln!(out, "  n/a (tracing disabled)");
        }
    }
    out
}

/// Render the autoscaler section appended to the dump when a controller
/// is armed: the decision state machine's current phase plus the full
/// decision timeline (decisions, rescale outcomes, cooldown/backoff
/// entries). The shape is stable with zero decisions ("no decisions yet")
/// so operators always see the section.
pub fn render_autoscaler(controller: &Controller) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\nautoscaler");
    let phase = match controller.phase() {
        Phase::Steady => "steady".to_string(),
        Phase::Cooldown { until } => format!("cooldown until {:.3}s", secs(until)),
        Phase::Backoff { until } => format!("backoff until {:.3}s", secs(until)),
        Phase::Degraded => "DEGRADED (rescale ladder exhausted; topology frozen)".to_string(),
    };
    let _ = writeln!(out, "  phase: {}", phase);
    let events = controller.events();
    if events.is_empty() {
        let _ = writeln!(out, "  no decisions yet");
    }
    for e in events {
        let _ = writeln!(out, "  t={:9.3}s  {}", secs(e.at()), e.label());
    }
    out
}

/// Render the spike-blame section appended to the dump when a flight
/// recorder is wired: one block per detected p99.99 excursion, worst
/// first, decomposing the spiked event's journey into named causes. The
/// shape is stable with zero incidents ("none detected") so operators
/// always see the section.
pub fn render_blame(reports: &[IncidentReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\nspike blame");
    if reports.is_empty() {
        let _ = writeln!(out, "  none detected");
        return out;
    }
    for r in reports {
        let inc = &r.incident;
        let a = &r.attribution;
        let _ = writeln!(
            out,
            "  incident #{}: peak {:.3}ms at {:.3}s ({} spiked samples, threshold {:.3}ms)",
            inc.id,
            inc.peak_latency as f64 / 1e6,
            secs(inc.peak_emitted_at),
            inc.samples,
            inc.threshold as f64 / 1e6,
        );
        let _ = writeln!(
            out,
            "    window [{:.3}s, {:.3}s]: {} spans, {} snapshots{}",
            secs(r.window_lo),
            secs(r.window_hi),
            r.window_events,
            r.window_snapshots,
            if r.window_truncated > 0 {
                format!(" ({} spans truncated)", r.window_truncated)
            } else {
                String::new()
            }
        );
        let verdict = match &a.blamed_vertex {
            Some(v) => format!("{} (vertex {})", a.top_cause.name(), v),
            None => format!("{} ({})", a.top_cause.name(), a.top_group),
        };
        let _ = writeln!(out, "    verdict: {}", verdict);
        for s in a.slices.iter().filter(|s| s.nanos > 0) {
            let _ = writeln!(
                out,
                "    {:>5.1}% {:<18} {:>12.3}ms{}{}",
                s.share * 100.0,
                s.cause.name(),
                s.nanos as f64 / 1e6,
                if s.detail.is_empty() { "" } else { "  " },
                s.detail
            );
        }
    }
    out
}

/// Render the metrics-timeline section appended to the dump when a
/// timeline is wired: one ASCII sparkline per job-wide series (summed
/// across tag sets), min/max-scaled per series. The shape is stable with
/// zero samples ("no samples") so operators always see the section.
pub fn render_timeline(timeline: &jet_core::telemetry::Timeline) -> String {
    const WIDTH: usize = 48;
    let mut out = String::new();
    let _ = writeln!(out, "\nmetrics timeline");
    let ticks = timeline.ticks();
    if ticks.is_empty() {
        let _ = writeln!(out, "  no samples");
        return out;
    }
    let (samples, series_count, _, evicted) = timeline.stats();
    let _ = writeln!(
        out,
        "  {} samples ({} retained, {} evicted), {} series, window [{:.3}s, {:.3}s]",
        samples,
        ticks.len(),
        evicted,
        series_count,
        secs(ticks[0]),
        secs(*ticks.last().expect("non-empty")),
    );
    for (name, kind, values) in timeline.job_series() {
        let min = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);
        let _ = writeln!(
            out,
            "  {:<42} {:<13} |{}| {} .. {}",
            name,
            kind.name(),
            jet_core::telemetry::sparkline(&values, WIDTH),
            min,
            max,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jet_core::metrics::{tags, MetricsRegistry};
    use jet_core::trace::Tracer;

    #[test]
    fn dump_renders_without_trace_and_lists_every_vertex() {
        let r = MetricsRegistry::new();
        for v in ["src", "agg", "sink"] {
            r.counter(
                "jet_events_in_total",
                tags(&[("vertex", v), ("instance", "0")]),
            )
            .add(7);
        }
        r.gauge(
            "jet_vertex_watermark_seen_nanos",
            tags(&[("vertex", "agg"), ("instance", "0")]),
        )
        .set(2_000_000_000);
        r.gauge(
            "jet_vertex_watermark_coalesced_nanos",
            tags(&[("vertex", "agg"), ("instance", "0")]),
        )
        .set(1_500_000_000);
        let bh = r.histogram(
            "jet_edge_batch_size",
            tags(&[("vertex", "agg"), ("instance", "0")]),
        );
        bh.record(4);
        bh.record(4);
        let snap = r.snapshot();
        let tasklets = vec![(0usize, "agg".to_string(), "running", 7u64, 7u64)];
        let dump = render_dump(9, 3_000_000_000, &snap, &tasklets, None, None);
        for v in ["src", "agg", "sink"] {
            assert!(
                dump.contains(&format!("vertex {}", v)),
                "missing {v}: {dump}"
            );
        }
        assert!(dump.contains("1x running"));
        assert!(dump.contains("edge batch[#0]: n=2 mean=4.0"), "{dump}");
        assert!(dump.contains("straggler-gap=0.500s"));
        assert!(dump.contains("n/a (tracing disabled)"));
        assert!(dump.contains("cluster health"));
        assert!(dump.contains("n/a (no coordinator wired)"));
    }

    #[test]
    fn autoscaler_section_renders_phase_and_timeline() {
        use crate::controller::{ControllerConfig, Direction};
        let r = MetricsRegistry::new();
        let tracer = Tracer::default();
        let mut ctl = Controller::new(ControllerConfig::default(), 2, &r, &tracer);

        // Fresh controller: stable shape with nothing decided yet.
        let dump = render_autoscaler(&ctl);
        assert!(dump.contains("autoscaler"), "{dump}");
        assert!(dump.contains("phase: steady"), "{dump}");
        assert!(dump.contains("no decisions yet"), "{dump}");

        // After a completed rescale: timeline lines plus the cooldown phase.
        ctl.rescale_completed(40 * MS, Direction::Up, 3);
        let dump = render_autoscaler(&ctl);
        assert!(dump.contains("phase: cooldown until"), "{dump}");
        assert!(dump.contains("scale-up completed"), "{dump}");
        assert!(!dump.contains("no decisions yet"), "{dump}");
    }

    use jet_core::flight::{
        AttributionConfig, Cause, FlightConfig, FlightRecorder, LatencyWatchdog, WatchdogConfig,
    };
    use jet_core::trace::{SpanRecord, TraceData, TraceEvent};

    const MS: u64 = 1_000_000;

    fn span(track: u32, ts: u64, dur: u64, name: u32, kind: TraceKind, arg: i64) -> TraceEvent {
        TraceEvent {
            track,
            rec: SpanRecord {
                ts,
                dur,
                name,
                kind,
                arg,
            },
        }
    }

    /// Watchdog armed purely by a hard SLO: deterministic from sample one.
    fn slo_watchdog(slo: u64) -> LatencyWatchdog {
        LatencyWatchdog::with_config(WatchdogConfig {
            slo_nanos: Some(slo),
            ..WatchdogConfig::default()
        })
    }

    #[test]
    fn dump_renders_with_completely_empty_trace() {
        let r = MetricsRegistry::new();
        r.counter(
            "jet_events_in_total",
            tags(&[("vertex", "agg"), ("instance", "0")]),
        )
        .add(1);
        let data = TraceData {
            names: Vec::new(),
            tracks: Vec::new(),
            events: Vec::new(),
            dropped: 0,
            capacity: 0,
        };
        let dump = render_dump(1, MS, &r.snapshot(), &[], Some(&data), None);
        assert!(dump.contains("slowest calls: none recorded"), "{dump}");
        assert!(dump.contains("events=0 tracks=0 dropped=0"), "{dump}");
    }

    #[test]
    fn dump_renders_when_rings_dropped_everything() {
        let data = TraceData {
            names: vec!["agg".to_string()],
            tracks: Vec::new(),
            events: Vec::new(),
            dropped: 4_096,
            capacity: 8,
        };
        let dump = render_dump(1, MS, &MetricsSnapshot::default(), &[], Some(&data), None);
        assert!(dump.contains("dropped=4096"), "{dump}");
        // And forensics over an incident with zero surviving spans still
        // attributes: everything is queue wait (the honest residual).
        let wd = slo_watchdog(MS);
        let flight = FlightRecorder::with_config(FlightConfig::default(), wd.clone());
        wd.observe(50 * MS, 40 * MS, 10 * MS);
        flight.ingest(&data, 0);
        let reports = flight.forensics(&AttributionConfig::default());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window_events, 0);
        assert_eq!(reports[0].attribution.top_cause, Cause::QueueWait);
        let blame = render_blame(&reports);
        assert!(blame.contains("verdict: queue_wait (dataflow)"), "{blame}");
        assert!(blame.contains("0 spans"), "{blame}");
    }

    #[test]
    fn blame_attributes_a_single_span_window() {
        let wd = slo_watchdog(MS);
        let flight = FlightRecorder::with_config(FlightConfig::default(), wd.clone());
        wd.observe(50 * MS, 40 * MS, 10 * MS);
        let data = TraceData {
            names: vec!["?".to_string(), "agg".to_string()],
            tracks: Vec::new(),
            events: vec![span(0, 45 * MS, 2 * MS, 1, TraceKind::Call, 0)],
            dropped: 0,
            capacity: 1024,
        };
        flight.ingest(&data, 0);
        let reports = flight.forensics(&AttributionConfig::default());
        assert_eq!(reports.len(), 1);
        let a = &reports[0].attribution;
        assert_eq!(reports[0].window_events, 1);
        // Exact partition: 2ms exec + 8ms residual = the 10ms spike.
        let sum: u64 = a.slices.iter().map(|s| s.nanos).sum();
        assert_eq!(sum, a.total_nanos);
        assert_eq!(a.total_nanos, 10 * MS);
        assert_eq!(a.top_cause, Cause::QueueWait);
        let exec = a
            .slices
            .iter()
            .find(|s| s.cause == Cause::TaskletExec)
            .unwrap();
        assert_eq!(exec.nanos, 2 * MS);
        assert!(exec.detail.contains("agg"), "{:?}", exec.detail);
        let blame = render_blame(&reports);
        assert!(blame.contains("1 spans"), "{blame}");
    }

    #[test]
    fn blame_renders_none_detected_without_incidents() {
        let blame = render_blame(&[]);
        assert!(blame.contains("spike blame"), "{blame}");
        assert!(blame.contains("none detected"), "{blame}");
    }

    /// Golden-file test: a crash → fence → recovery → catch-up spike renders
    /// byte-for-byte as `golden/spike_blame.txt`. Regenerate by updating the
    /// file with the printed actual if the format changes intentionally.
    #[test]
    fn blame_section_matches_golden_file() {
        let wd = slo_watchdog(2 * MS);
        let flight = FlightRecorder::with_config(FlightConfig::default(), wd.clone());
        // The spiked emission: event at 100ms emitted at 150ms (50ms spike).
        wd.observe(150 * MS, 100 * MS, 50 * MS);
        // The forensic story: fault injected at 105ms, suspected at 110ms,
        // fenced at 120ms, rebuilt by 140ms, replay caught up by 150ms.
        let data = TraceData {
            names: vec![
                "crash".to_string(),
                "suspect".to_string(),
                "fence".to_string(),
                "recovery".to_string(),
            ],
            tracks: Vec::new(),
            events: vec![
                span(0, 105 * MS, 0, 0, TraceKind::FaultInject, 1),
                span(0, 110 * MS, 0, 1, TraceKind::Detect, 1),
                span(0, 120 * MS, 0, 2, TraceKind::Detect, 1),
                span(0, 120 * MS, 20 * MS, 3, TraceKind::Recovery, -1),
            ],
            dropped: 0,
            capacity: 1024,
        };
        flight.ingest(&data, 0);
        let reports = flight.forensics(&AttributionConfig::default());
        let blame = render_blame(&reports);
        let golden = include_str!("golden/spike_blame.txt");
        assert_eq!(blame, golden, "actual:\n{blame}");
    }

    #[test]
    fn dump_includes_trace_attribution_when_present() {
        let r = MetricsRegistry::new();
        r.counter(
            "jet_events_in_total",
            tags(&[("vertex", "agg"), ("instance", "0")]),
        )
        .add(1);
        let tracer = Tracer::enabled();
        let mut w = tracer.writer(0, "m0/agg#0");
        let name = w.intern("agg");
        w.record_call(1_000, 50_000, name);
        let data = tracer.drain();
        let dump = render_dump(1, 1_000_000, &r.snapshot(), &[], Some(&data), None);
        assert!(dump.contains("slowest calls: 50.0us@"), "{dump}");
        assert!(dump.contains("events=1"), "{dump}");
    }

    #[test]
    fn timeline_section_is_stable_when_empty() {
        let section = render_timeline(&jet_core::telemetry::Timeline::enabled());
        assert!(section.contains("metrics timeline"), "{section}");
        assert!(section.contains("no samples"), "{section}");
    }

    #[test]
    fn timeline_section_rolls_series_up_by_name_with_sparklines() {
        let timeline = jet_core::telemetry::Timeline::enabled();
        let r = MetricsRegistry::new();
        let c0 = r.counter("jet_events_in_total", tags(&[("member", "0")]));
        let c1 = r.counter("jet_events_in_total", tags(&[("member", "1")]));
        for i in 0..5u64 {
            c0.add(100);
            c1.add(50);
            timeline.record_sample(i * 100_000_000, &r.snapshot());
        }
        let section = render_timeline(&timeline);
        assert!(section.contains("5 samples"), "{section}");
        // Members roll up: one line for the name, summed 150..750.
        assert_eq!(
            section.matches("jet_events_in_total").count(),
            1,
            "{section}"
        );
        assert!(section.contains("150 .. 750"), "{section}");
        assert!(section.contains('|'), "{section}");
        assert!(section.is_ascii(), "{section}");
    }
}

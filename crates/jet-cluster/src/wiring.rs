//! Multi-member execution wiring (paper §3.1, Fig. 3 + §3.3).
//!
//! Every member deploys the complete DAG: each vertex gets
//! `local_parallelism` processor instances *per member*. Edges become:
//!
//! * **Unicast / Isolated** — always member-local (Jet "keeps data exchange
//!   local to the machine as much as possible").
//! * **Partitioned** — routed by the grid's partition table: partition `p`
//!   belongs to the member owning `p`'s primary replica (aligning compute
//!   with IMDG state placement, §4.1), and within that member to local
//!   instance `p % lp`. Remote partitions travel through a
//!   [`SenderTasklet`]/[`ReceiverTasklet`] pair per (edge, member pair) with
//!   the adaptive receive-window flow control of §3.3.
//! * **Broadcast** — delivered to every instance on every member (local
//!   consumers directly, remote ones via the senders).

use jet_core::dag::{Dag, Routing};
use jet_core::item::Item;
use jet_core::metrics::{tags, MetricsRegistry, TaskletCounters};
use jet_core::network::{ChannelId, ChannelMetrics, ReceiverTasklet, SenderTasklet, Transport};
use jet_core::outbound::OutboundCollector;
use jet_core::processor::{Guarantee, ProcessorContext};
use jet_core::snapshot::SnapshotRegistry;
use jet_core::tasklet::{InputConveyor, ProcessorTasklet, Tasklet};
use jet_core::trace::Tracer;
use jet_core::watermark::NO_WATERMARK;
use jet_core::SnapshotId;
use jet_imdg::partition_table::PartitionTable;
use jet_imdg::{MemberId, SnapshotStore};
use jet_queue::{Conveyor, Producer};
use jet_util::clock::SharedClock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cluster execution configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Cores (cooperative threads / virtual cores) per member; also the
    /// default vertex parallelism per member.
    pub cores_per_member: usize,
    pub batch: usize,
    pub guarantee: Guarantee,
    pub clock: SharedClock,
    pub partition_count: u32,
    /// Ablation A4: disable the adaptive receive window and always grant
    /// this fixed amount.
    pub fixed_receive_window: Option<u64>,
    /// Execution tracing: every processor/sender/receiver tasklet gets its
    /// own trace writer. Disabled by default (no rings, no records).
    pub tracer: Tracer,
}

impl ClusterConfig {
    pub fn new(cores_per_member: usize, clock: SharedClock) -> Self {
        ClusterConfig {
            cores_per_member: cores_per_member.max(1),
            batch: jet_core::tasklet::DEFAULT_BATCH,
            guarantee: Guarantee::None,
            clock,
            partition_count: jet_imdg::DEFAULT_PARTITION_COUNT,
            fixed_receive_window: None,
            tracer: Tracer::disabled(),
        }
    }

    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    pub fn with_guarantee(mut self, g: Guarantee) -> Self {
        self.guarantee = g;
        self
    }

    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

/// A runnable tasklet paired with its counters (for the simulator's cost
/// accounting); control tasklets have no counters.
pub type CountedTasklet = (Box<dyn Tasklet>, Option<Arc<TaskletCounters>>);

/// One member's share of a wired cluster execution.
pub struct MemberExecution {
    pub member: MemberId,
    pub tasklets: Vec<CountedTasklet>,
    /// This member's metrics registry (default tag `member`), populated by
    /// the wiring with per-vertex event counters, per-lane queue-depth
    /// gauges, and distributed-channel instruments.
    pub metrics: Arc<MetricsRegistry>,
}

/// A fully wired cluster execution.
pub struct ClusterExecution {
    pub members: Vec<MemberExecution>,
    pub cancelled: Arc<AtomicBool>,
}

/// Wire `dag` across `members` (their ids must come from the grid whose
/// partition `table` is passed). Restore state from `restore` if given.
#[allow(clippy::too_many_arguments)]
pub fn build_cluster_execution(
    dag: &Dag,
    members: &[MemberId],
    table: &PartitionTable,
    transport: Arc<dyn Transport>,
    cfg: &ClusterConfig,
    registry: &Arc<SnapshotRegistry>,
    restore: Option<(&SnapshotStore, SnapshotId)>,
) -> Result<ClusterExecution, String> {
    dag.validate()?;
    assert!(!members.is_empty());
    if table.partition_count() != cfg.partition_count {
        return Err(format!(
            "config partition count {} does not match the grid's table ({})",
            cfg.partition_count,
            table.partition_count()
        ));
    }
    let n_members = members.len();
    // One metrics registry per member; everything the wiring creates below
    // registers into the owning member's registry, tagged with its scope.
    let registries: Vec<Arc<MetricsRegistry>> = members
        .iter()
        .map(|m| {
            Arc::new(MetricsRegistry::with_tags(tags(&[(
                "member",
                &m.0.to_string(),
            )])))
        })
        .collect();
    let member_index: HashMap<MemberId, usize> =
        members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    // Partition -> owning member index (primary replica owner among the
    // job's members; partitions owned by non-participating members fall
    // back by modulo, which only happens in tests that shrink the grid).
    let owner_of: Vec<usize> = (0..cfg.partition_count)
        .map(|p| {
            table
                .primary(jet_imdg::PartitionId(p))
                .and_then(|m| member_index.get(&m).copied())
                .unwrap_or((p as usize) % n_members)
        })
        .collect();

    let nv = dag.vertices().len();
    let lp: Vec<usize> = dag
        .vertices()
        .iter()
        .map(|v| v.local_parallelism.unwrap_or(cfg.cores_per_member))
        .collect();

    // Per (member, consumer vertex, instance): input conveyors.
    let mut inputs: HashMap<(usize, usize, usize), Vec<InputConveyor>> = HashMap::new();
    // Per (member, producer vertex, instance, out ordinal): targets.
    struct OutWiring {
        targets: Vec<Producer<Item>>,
        partition_to_target: Vec<u16>,
    }
    let mut out_wiring: HashMap<(usize, usize, usize, usize), OutWiring> = HashMap::new();
    // Sender/receiver tasklets created per distributed edge.
    let mut exchange_tasklets: Vec<(usize, Box<dyn Tasklet>)> = Vec::new();

    for (edge_idx, e) in dag.edges().iter().enumerate() {
        let producers = lp[e.from];
        let consumers = lp[e.to];
        let crosses_members =
            n_members > 1 && matches!(e.routing, Routing::Partitioned(_) | Routing::Broadcast);
        if matches!(e.routing, Routing::Isolated) && producers != consumers {
            return Err("isolated edge with mismatched parallelism".into());
        }
        for (mi, _m) in members.iter().enumerate() {
            // Consumer-side conveyors on member mi: one lane per local
            // producer, plus one lane per remote member's receiver when the
            // edge crosses members.
            let remote_lanes = if crosses_members { n_members - 1 } else { 0 };
            let mut consumer_handles: Vec<Vec<Producer<Item>>> = Vec::with_capacity(consumers);
            for j in 0..consumers {
                let (conveyor, handles) = Conveyor::new(producers + remote_lanes, e.queue_capacity);
                let vname = &dag.vertices()[e.to].name;
                for (lane, probe) in conveyor.probes().into_iter().enumerate() {
                    let qt = tags(&[
                        ("vertex", vname),
                        ("ordinal", &e.to_ordinal.to_string()),
                        ("instance", &j.to_string()),
                        ("lane", &lane.to_string()),
                    ]);
                    registries[mi]
                        .gauge("jet_queue_capacity", qt.clone())
                        .set(probe.capacity() as i64);
                    registries[mi].gauge_fn("jet_queue_depth", qt, move || probe.depth() as i64);
                }
                inputs
                    .entry((mi, e.to, j))
                    .or_default()
                    .push(InputConveyor {
                        ordinal: e.to_ordinal,
                        priority: e.priority,
                        conveyor,
                    });
                consumer_handles.push(handles);
            }
            // consumer_handles[j][lane]: lanes 0..producers are local
            // producers; lanes producers.. are receivers (one per remote).
            // Local producer i's direct targets: handle j of each consumer.
            let mut local_targets: Vec<Vec<Producer<Item>>> = (0..producers)
                .map(|_| Vec::with_capacity(consumers))
                .collect();
            let mut receiver_targets: Vec<Vec<Producer<Item>>> = (0..remote_lanes)
                .map(|_| Vec::with_capacity(consumers))
                .collect();
            for handles in consumer_handles {
                // handles is Vec<Producer> indexed by lane, consumed in order.
                for (lane, h) in handles.into_iter().enumerate() {
                    if lane < producers {
                        local_targets[lane].push(h);
                    } else {
                        receiver_targets[lane - producers].push(h);
                    }
                }
            }
            // Receivers: one per remote member, routing into local consumers.
            if crosses_members {
                for (ri, targets) in receiver_targets.into_iter().enumerate() {
                    // Remote member index for receiver slot ri.
                    let from_mi = (0..n_members).filter(|&x| x != mi).nth(ri).expect("slot");
                    let channel = ChannelId {
                        edge: edge_idx as u32,
                        from: members[from_mi].0,
                        to: members[mi].0,
                    };
                    let ptt: Vec<u16> = match &e.routing {
                        Routing::Partitioned(_) => (0..cfg.partition_count)
                            .map(|p| ((p as usize) % consumers) as u16)
                            .collect(),
                        _ => Vec::new(),
                    };
                    let routing = match &e.routing {
                        Routing::Broadcast => Routing::Broadcast,
                        other => other.clone(),
                    };
                    let collector =
                        OutboundCollector::new(routing, targets, ptt, cfg.partition_count, 0);
                    let mut receiver = ReceiverTasklet::new(
                        channel,
                        transport.clone(),
                        cfg.clock.clone(),
                        collector,
                    )
                    .with_metrics(ChannelMetrics::receiver_side(&registries[mi], channel))
                    .with_trace(cfg.tracer.writer(
                        members[mi].0,
                        &format!(
                            "m{}/recv-e{}-m{}",
                            members[mi].0, channel.edge, channel.from
                        ),
                    ));
                    if let Some(w) = cfg.fixed_receive_window {
                        receiver = receiver.with_fixed_window(w);
                    }
                    exchange_tasklets.push((mi, Box::new(receiver)));
                }
            }
            // Sender conveyors: on member mi, one sender per remote member,
            // fed by the local producers.
            let mut sender_handles: Vec<Vec<Producer<Item>>> = Vec::new();
            if crosses_members {
                for r in 0..n_members - 1 {
                    let to_mi = (0..n_members).filter(|&x| x != mi).nth(r).expect("slot");
                    let (conveyor, handles) = Conveyor::new(producers, e.queue_capacity);
                    let channel = ChannelId {
                        edge: edge_idx as u32,
                        from: members[mi].0,
                        to: members[to_mi].0,
                    };
                    for (lane, probe) in conveyor.probes().into_iter().enumerate() {
                        let qt = tags(&[
                            ("edge", &channel.edge.to_string()),
                            ("from", &channel.from.to_string()),
                            ("to", &channel.to.to_string()),
                            ("lane", &lane.to_string()),
                        ]);
                        registries[mi]
                            .gauge("jet_queue_capacity", qt.clone())
                            .set(probe.capacity() as i64);
                        registries[mi]
                            .gauge_fn("jet_queue_depth", qt, move || probe.depth() as i64);
                    }
                    let sender =
                        SenderTasklet::new(channel, transport.clone(), conveyor, cfg.guarantee)
                            .with_metrics(ChannelMetrics::sender_side(&registries[mi], channel))
                            .with_trace(
                                cfg.tracer.writer(
                                    members[mi].0,
                                    &format!(
                                        "m{}/send-e{}-m{}",
                                        members[mi].0, channel.edge, channel.to
                                    ),
                                ),
                                cfg.clock.clone(),
                            );
                    exchange_tasklets.push((mi, Box::new(sender)));
                    sender_handles.push(handles);
                }
            }
            // Producer-side wiring: targets = local consumers ++ senders.
            for i in 0..producers {
                let mut targets: Vec<Producer<Item>> =
                    Vec::with_capacity(consumers + n_members - 1);
                targets.append(&mut local_targets[i].drain(..).collect());
                for handles in &mut sender_handles {
                    // handles[i] is producer i's lane into this sender.
                    targets.push(std::mem::replace(&mut handles[i], dead_producer()));
                }
                let ptt: Vec<u16> = match &e.routing {
                    Routing::Partitioned(_) => (0..cfg.partition_count)
                        .map(|p| {
                            let owner = owner_of[p as usize];
                            if owner == mi {
                                ((p as usize) % consumers) as u16
                            } else {
                                // Sender slot for that member.
                                let slot = (0..n_members)
                                    .filter(|&x| x != mi)
                                    .position(|x| x == owner)
                                    .expect("remote owner");
                                (consumers + slot) as u16
                            }
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                out_wiring.insert(
                    (mi, e.from, i, e.from_ordinal),
                    OutWiring {
                        targets,
                        partition_to_target: ptt,
                    },
                );
            }
        }
    }

    // Build processor tasklets per member.
    let cancelled = Arc::new(AtomicBool::new(false));
    let mut member_execs: Vec<MemberExecution> = members
        .iter()
        .zip(&registries)
        .map(|(&m, reg)| MemberExecution {
            member: m,
            tasklets: Vec::new(),
            metrics: reg.clone(),
        })
        .collect();
    let mut participants = 0usize;

    for v in 0..nv {
        let vertex = &dag.vertices()[v];
        let out_edges = dag.out_edges(v);
        let parallelism = lp[v];
        let restore_records: Option<Vec<(Vec<u8>, Vec<u8>)>> =
            restore.map(|(store, id)| store.read_vertex(id, &vertex.name));
        for (mi, _m) in members.iter().enumerate() {
            for i in 0..parallelism {
                let global_index = mi * parallelism + i;
                let owned: Vec<bool> = (0..cfg.partition_count)
                    .map(|p| owner_of[p as usize] == mi && (p as usize) % parallelism == i)
                    .collect();
                let ctx = ProcessorContext {
                    vertex: vertex.name.clone(),
                    global_index,
                    total_parallelism: parallelism * n_members,
                    member: members[mi].0,
                    clock: cfg.clock.clone(),
                    guarantee: cfg.guarantee,
                    cancelled: cancelled.clone(),
                    partition_count: cfg.partition_count,
                    owned_partitions: Arc::new(owned),
                };
                let mut processor = (vertex.supplier)(global_index);
                if let Some(records) = &restore_records {
                    for (k, val) in records {
                        processor.restore_from_snapshot(k, val, &ctx);
                    }
                    processor.finish_snapshot_restore(&ctx);
                }
                // Keyed-state processors export a probe: late-event drops
                // and resident keyed-state footprint, refreshed on the
                // processor's own tick (no lock on the hot path).
                if let Some(sp) = processor.state_probe() {
                    // The job tag rides in at the job-registry level like
                    // every other per-vertex metric.
                    let kt = tags(&[
                        ("vertex", &vertex.name),
                        ("instance", &global_index.to_string()),
                    ]);
                    let p = sp.clone();
                    registries[mi].counter_fn(
                        "jet_window_late_events_total",
                        kt.clone(),
                        move || p.late_events.load(Ordering::Relaxed),
                    );
                    let p = sp.clone();
                    registries[mi].gauge_fn("jet_state_resident_bytes", kt.clone(), move || {
                        p.resident_bytes.load(Ordering::Relaxed) as i64
                    });
                    registries[mi].gauge_fn("jet_state_keys_records", kt, move || {
                        sp.resident_keys.load(Ordering::Relaxed) as i64
                    });
                }
                let mut collectors = Vec::new();
                for e in &out_edges {
                    let wiring = out_wiring
                        .remove(&(mi, v, i, e.from_ordinal))
                        .ok_or_else(|| format!("missing wiring {}:{}:{}", mi, vertex.name, i))?;
                    let consumers = lp[e.to];
                    collectors.push(OutboundCollector::new(
                        e.routing.clone(),
                        wiring.targets,
                        wiring.partition_to_target,
                        cfg.partition_count,
                        i.min(consumers - 1),
                    ));
                }
                let ins = inputs.remove(&(mi, v, i)).unwrap_or_default();
                let tasklet = ProcessorTasklet::new(
                    processor,
                    ctx,
                    ins,
                    collectors,
                    registry.clone(),
                    cfg.batch,
                )
                .with_trace(
                    cfg.tracer.writer(
                        members[mi].0,
                        &format!("m{}/{}#{}", members[mi].0, vertex.name, global_index),
                    ),
                    cfg.clock.clone(),
                );
                let counters = tasklet.counters();
                let ct = tags(&[
                    ("vertex", &vertex.name),
                    ("instance", &global_index.to_string()),
                ]);
                // Achieved bulk-transfer sizes on this instance's queue hops.
                let tasklet = tasklet.with_batch_histogram(
                    registries[mi].histogram("jet_edge_batch_size", ct.clone()),
                );
                let c_in = counters.clone();
                registries[mi].counter_fn("jet_events_in_total", ct.clone(), move || {
                    c_in.events_in.load(Ordering::Relaxed)
                });
                let c_out = counters.clone();
                registries[mi].counter_fn("jet_events_out_total", ct.clone(), move || {
                    c_out.events_out.load(Ordering::Relaxed)
                });
                // Watermark position: highest seen on any input vs. the
                // coalesced output (`-1` until a watermark arrives).
                let probe = tasklet.watermark_probe();
                let p = probe.clone();
                registries[mi].gauge_fn("jet_vertex_watermark_seen_nanos", ct.clone(), move || {
                    match p.last_seen() {
                        NO_WATERMARK => -1,
                        w => w,
                    }
                });
                registries[mi].gauge_fn("jet_vertex_watermark_coalesced_nanos", ct, move || {
                    match probe.coalesced() {
                        NO_WATERMARK => -1,
                        w => w,
                    }
                });
                // Backpressure: queue-full stalls per output edge.
                let stalls = tasklet.stall_counters();
                for (ei, e) in out_edges.iter().enumerate() {
                    let st = tags(&[
                        ("vertex", &vertex.name),
                        ("instance", &global_index.to_string()),
                        ("ordinal", &e.from_ordinal.to_string()),
                    ]);
                    let stalls = stalls.clone();
                    registries[mi].counter_fn("jet_backpressure_stalls_total", st, move || {
                        stalls[ei].load(Ordering::Relaxed)
                    });
                }
                participants += 1;
                member_execs[mi]
                    .tasklets
                    .push((Box::new(tasklet), Some(counters)));
            }
        }
    }
    for (mi, t) in exchange_tasklets {
        member_execs[mi].tasklets.push((t, None));
    }
    registry.set_participants(participants);
    Ok(ClusterExecution {
        members: member_execs,
        cancelled,
    })
}

/// A producer handle whose consumer is dropped immediately — used only as a
/// placeholder when moving handles out of a vec.
fn dead_producer() -> Producer<Item> {
    let (p, _c) = jet_queue::spsc_channel(2);
    p
}

//! Cluster job runtime over the virtual-time simulator: job start, periodic
//! snapshots, member failure + recovery (§4.4), and elastic rescaling
//! (§4.3).
//!
//! Recovery follows the paper exactly: "Jet will stop processing in all
//! nodes and vertices, reload the latest state snapshots from IMDG recorded
//! at the latest checkpoint, spawn a new instance to substitute the one
//! that failed, and ask the input sources to replay the input data
//! following the latest checkpoint." Here that is: kill the member in the
//! grid (backups get promoted, Fig. 6), drop every tasklet (in-flight data
//! is lost with them), rebuild the execution from the latest complete
//! snapshot over the surviving members, and resume on the same virtual
//! clock.

use crate::controller::{Controller, ControllerConfig, ControllerEvent, Direction};
use crate::coordinator::{ClusterEvent, Coordinator, CoordinatorConfig};
use crate::wiring::{build_cluster_execution, ClusterConfig, ClusterExecution};
use jet_core::fairness::JobQuotas;
use jet_core::flight::{AttributionConfig, FlightRecorder, IncidentReport};
use jet_core::metrics::{tags, MetricsRegistry, MetricsSnapshot};
use jet_core::network::{ChannelChaos, InMemoryTransport, NetworkFaults};
use jet_core::processor::Guarantee;
use jet_core::snapshot::SnapshotRegistry;
use jet_core::telemetry::Timeline;
use jet_core::trace::{TraceData, TraceKind, TraceWriter, Tracer};
use jet_core::Dag;
use jet_imdg::{Grid, MemberId, SnapshotStore, StoreFaults};
use jet_sim::{CostModel, FaultEvent, FaultKind, FaultPlan, SimTick, Simulator};
use jet_util::backoff::BackoffLadder;
use jet_util::clock::{ManualClock, SharedClock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Simulation-mode cluster configuration.
#[derive(Clone)]
pub struct SimClusterConfig {
    pub members: usize,
    pub cores_per_member: usize,
    pub partition_count: u32,
    /// Backup replicas per partition in the grid.
    pub backup_count: usize,
    pub guarantee: Guarantee,
    /// Snapshot interval in virtual nanos; 0 disables snapshots.
    pub snapshot_interval: u64,
    /// One-way network latency between members, virtual nanos.
    pub network_latency: u64,
    pub cost_model: CostModel,
    /// Simulation time step.
    pub quantum: u64,
    pub batch: usize,
    /// GC pause injection (§5 / ablation A2).
    pub gc: Option<jet_sim::GcModel>,
    /// Ablation A4: fixed (non-adaptive) receive window.
    pub fixed_receive_window: Option<u64>,
    /// Execution tracer shared by every tasklet; disabled by default.
    pub tracer: Tracer,
    /// Deterministic fault script applied from the per-quantum hook.
    pub fault_plan: Option<FaultPlan>,
    /// Heartbeat failure detection + self-healing recovery. `None` (the
    /// default) wires no coordinator at all: no heartbeat traffic, no
    /// detector state, zero cost on fault-free runs.
    pub coordinator: Option<CoordinatorConfig>,
    /// Elastic autoscaling: watches stall/occupancy/receive-window
    /// telemetry on its cadence and drives live rescale through the
    /// hysteresis + cooldown + backoff state machine. `None` (the default)
    /// wires no controller at all: no sampling, zero cost.
    pub controller: Option<ControllerConfig>,
    /// Multi-tenant fairness (§7.7): per-job scheduling quotas applied to
    /// every virtual core (jobs are tagged by `job<N>-` vertex-name
    /// prefixes). `None` (the default) keeps the original tasklet-level
    /// round-robin bit-identically.
    pub quotas: Option<JobQuotas>,
    /// Spike-forensics flight recorder (carries its watchdog). When
    /// enabled, the runtime samples the job-wide metrics snapshot into its
    /// time series at the recorder's cadence and the diagnostics dump gains
    /// a blame section. Disabled by default: zero cost, identical virtual
    /// timeline either way.
    pub flight: FlightRecorder,
    /// Continuous metrics timeline. When enabled, the runtime samples the
    /// job-wide metrics snapshot into delta-encoded rings at the timeline's
    /// cadence and the diagnostics dump gains a sparkline section. Disabled
    /// by default: zero cost, identical virtual timeline either way.
    pub timeline: Timeline,
}

impl Default for SimClusterConfig {
    fn default() -> Self {
        SimClusterConfig {
            members: 1,
            cores_per_member: 12, // paper: 12 cooperative threads per node
            partition_count: jet_imdg::DEFAULT_PARTITION_COUNT,
            backup_count: 1,
            guarantee: Guarantee::None,
            snapshot_interval: 0,
            network_latency: 500_000, // 0.5 ms, same-AZ EC2 ballpark
            cost_model: CostModel::default(),
            quantum: 20_000, // 20 µs
            batch: jet_core::tasklet::DEFAULT_BATCH,
            gc: None,
            fixed_receive_window: None,
            tracer: Tracer::disabled(),
            fault_plan: None,
            coordinator: None,
            controller: None,
            quotas: None,
            flight: FlightRecorder::disabled(),
            timeline: Timeline::disabled(),
        }
    }
}

/// Applies a [`FaultPlan`] on the virtual timeline: consumes events through
/// a cursor and re-asserts crash/stall masks every quantum so they survive
/// execution rebuilds.
struct FaultDriver {
    events: Vec<FaultEvent>,
    cursor: usize,
    crashed: HashSet<u32>,
    /// member → stalled-until (expired entries are pruned).
    stalled: HashMap<u32, u64>,
    tw: TraceWriter,
}

impl FaultDriver {
    fn new(plan: Option<&FaultPlan>, tracer: &Tracer) -> FaultDriver {
        FaultDriver {
            events: plan.map(|p| p.events().to_vec()).unwrap_or_default(),
            cursor: 0,
            crashed: HashSet::new(),
            stalled: HashMap::new(),
            tw: tracer.writer(0xFA17, "fault-injector"),
        }
    }

    /// Apply events due at `tick.now` and (re-)enforce the crash/stall
    /// masks on the current execution's cores.
    fn drive(&mut self, tick: &mut SimTick, net: &NetworkFaults, store: &StoreFaults) {
        while self.cursor < self.events.len() && self.events[self.cursor].at <= tick.now {
            let ev = self.events[self.cursor].clone();
            self.cursor += 1;
            let name = self.tw.intern(&ev.kind.label());
            let arg = match &ev.kind {
                FaultKind::Crash { member } | FaultKind::Stall { member, .. } => *member as i64,
                _ => -1,
            };
            self.tw
                .record(TraceKind::FaultInject, tick.now, 0, name, arg);
            match ev.kind {
                FaultKind::Crash { member } => {
                    self.crashed.insert(member);
                }
                FaultKind::Stall { member, until } => {
                    let e = self.stalled.entry(member).or_insert(0);
                    *e = (*e).max(until);
                }
                FaultKind::PartitionStart { id, side } => net.start_partition(id, side),
                FaultKind::PartitionEnd { id } => net.end_partition(id),
                FaultKind::ChaosStart {
                    drop_millionths,
                    max_extra_delay_nanos,
                } => net.set_chaos(ChannelChaos::new(drop_millionths, max_extra_delay_nanos)),
                FaultKind::ChaosEnd => net.clear_chaos(),
                FaultKind::StoreWriteFailStart => store.set_fail_writes(true),
                FaultKind::StoreWriteFailEnd => store.set_fail_writes(false),
                FaultKind::StoreReadFailStart => store.set_fail_reads(true),
                FaultKind::StoreReadFailEnd => store.set_fail_reads(false),
            }
        }
        let now = tick.now;
        for &m in &self.crashed {
            tick.halt_member(m);
        }
        self.stalled.retain(|_, &mut until| until > now);
        for (&m, &until) in &self.stalled {
            tick.stall_member(m, until);
        }
    }

    /// Can `m` run right now? The simulation — not the detector — knows a
    /// crashed or frozen member cannot execute its heartbeat task.
    fn member_ok(&self, m: u32, now: u64) -> bool {
        !self.crashed.contains(&m) && self.stalled.get(&m).is_none_or(|&until| until <= now)
    }
}

/// In-progress recovery attempt state (retry with bounded backoff).
struct PendingRecovery {
    member: u32,
    attempt: u32,
    /// Earliest virtual instant the next attempt may run.
    next_at: u64,
    /// When the member was fenced (start of the recovery clock).
    fenced_at: u64,
}

/// A running (or restartable) cluster job on the simulator.
pub struct SimCluster {
    cfg: SimClusterConfig,
    dag: Dag,
    grid: Grid,
    clock: Arc<ManualClock>,
    shared_clock: SharedClock,
    store: SnapshotStore,
    registry: Arc<SnapshotRegistry>,
    sim: Simulator,
    cancelled: Arc<AtomicBool>,
    job_id: u64,
    /// One metrics registry per live member, rebuilt with the execution.
    member_metrics: Vec<Arc<MetricsRegistry>>,
    /// Transport of the current execution (fault hooks attached).
    transport: Arc<InMemoryTransport>,
    /// Shared across rebuilds: partitions/chaos persist through recovery.
    net_faults: Arc<NetworkFaults>,
    /// Cluster-level registry (detector + fault-injection counters);
    /// survives execution rebuilds, merged into [`Self::job_metrics`].
    cluster_metrics: Arc<MetricsRegistry>,
    coordinator: Option<Coordinator>,
    controller: Option<Controller>,
    /// Re-entrancy guard: `add/remove_member_and_rescale` advance virtual
    /// time through nested `run_for` calls, which must not trigger another
    /// controller decision mid-rescale.
    in_rescale: bool,
    fault_driver: FaultDriver,
    pending_recovery: Option<PendingRecovery>,
    /// Set when recovery exhausted its attempts: the job is lost.
    job_failed: Option<String>,
}

impl SimCluster {
    /// Build the grid, wire the job, and place tasklets on virtual cores.
    /// Rejects invalid coordinator/controller configurations up front
    /// (satellite: clear errors instead of silent misbehavior).
    pub fn start(dag: Dag, cfg: SimClusterConfig) -> Result<SimCluster, String> {
        if let Some(c) = &cfg.coordinator {
            c.validate()
                .map_err(|e| format!("coordinator config: {e}"))?;
        }
        if let Some(c) = &cfg.controller {
            c.validate()
                .map_err(|e| format!("controller config: {e}"))?;
            if cfg.snapshot_interval == 0 {
                return Err("controller config: autoscaling requires snapshots enabled \
                     (snapshot_interval > 0) — rescale rides the terminal-snapshot path"
                    .into());
            }
        }
        let grid = Grid::with_partition_count(cfg.members, cfg.backup_count, cfg.partition_count);
        let clock = Arc::new(ManualClock::new());
        let shared_clock: SharedClock = clock.clone();
        let store = SnapshotStore::new(&grid, 1);
        let registry = if cfg.snapshot_interval > 0 {
            Arc::new(SnapshotRegistry::new(store.clone(), 0))
        } else {
            Arc::new(SnapshotRegistry::disabled())
        };
        let seed = cfg.fault_plan.as_ref().map(|p| p.seed).unwrap_or(0);
        let net_faults = Arc::new(NetworkFaults::new(seed));
        let cluster_metrics = Arc::new(MetricsRegistry::with_tags(tags(&[("member", "cluster")])));
        // Cluster-level instruments exist only when fault injection or the
        // coordinator is wired: fault-free jobs keep their exact metric set.
        if cfg.fault_plan.is_some() || cfg.coordinator.is_some() {
            let nf = net_faults.clone();
            cluster_metrics.counter_fn(
                "jet_cluster_heartbeats_dropped_total",
                tags(&[]),
                move || nf.heartbeats_dropped(),
            );
            let nf = net_faults.clone();
            cluster_metrics.counter_fn(
                "jet_cluster_batches_retransmitted_total",
                tags(&[]),
                move || nf.batches_retransmitted(),
            );
            let sf = store.faults();
            cluster_metrics.counter_fn(
                "jet_cluster_store_write_failures_total",
                tags(&[]),
                move || sf.write_failures(),
            );
            let sf = store.faults();
            cluster_metrics.counter_fn(
                "jet_cluster_store_read_failures_total",
                tags(&[]),
                move || sf.read_failures(),
            );
        }
        // Flight-recorder fidelity is itself observable: when tracing is on,
        // ring drops, sampling policy, and recorder retention surface as
        // first-class metrics in the same Prometheus/JSON renderers as
        // everything else. (Registered only when the tracer is enabled so
        // untraced jobs keep their exact metric set.)
        if cfg.tracer.is_enabled() {
            let t = cfg.tracer.clone();
            cluster_metrics.counter_fn("jet_trace_ring_dropped_total", tags(&[]), move || {
                t.dropped_total()
            });
            let t = cfg.tracer.clone();
            cluster_metrics.gauge_fn("jet_trace_pending_records", tags(&[]), move || {
                t.pending() as i64
            });
            cluster_metrics
                .gauge("jet_trace_call_sample_period", tags(&[]))
                .set(1i64 << cfg.tracer.sample_shift());
            cluster_metrics
                .gauge("jet_trace_ring_capacity", tags(&[]))
                .set(cfg.tracer.ring_capacity() as i64);
        }
        if cfg.flight.is_enabled() {
            let f = cfg.flight.clone();
            cluster_metrics.counter_fn("jet_flight_spans_evicted_total", tags(&[]), move || {
                f.stats().1
            });
            let f = cfg.flight.clone();
            cluster_metrics.gauge_fn("jet_flight_spans_retained_records", tags(&[]), move || {
                f.stats().2 as i64
            });
            let f = cfg.flight.clone();
            cluster_metrics.gauge_fn(
                "jet_flight_snapshots_retained_records",
                tags(&[]),
                move || f.stats().3 as i64,
            );
        }
        if cfg.timeline.is_enabled() {
            let t = cfg.timeline.clone();
            cluster_metrics
                .counter_fn("jet_timeline_samples_total", tags(&[]), move || t.stats().0);
            let t = cfg.timeline.clone();
            cluster_metrics.gauge_fn("jet_timeline_series_records", tags(&[]), move || {
                t.stats().1 as i64
            });
            let t = cfg.timeline.clone();
            cluster_metrics.counter_fn("jet_timeline_ticks_evicted_total", tags(&[]), move || {
                t.stats().3
            });
        }
        let member_ids: Vec<u32> = grid.members().iter().map(|m| m.0).collect();
        let coordinator = cfg
            .coordinator
            .clone()
            .map(|c| Coordinator::new(c, &member_ids, 0, &cluster_metrics, &cfg.tracer));
        let controller = cfg
            .controller
            .clone()
            .map(|c| Controller::new(c, member_ids.len(), &cluster_metrics, &cfg.tracer));
        let fault_driver = FaultDriver::new(cfg.fault_plan.as_ref(), &cfg.tracer);
        let mut me = SimCluster {
            cfg,
            dag,
            grid,
            clock: clock.clone(),
            shared_clock,
            store,
            registry,
            sim: Simulator::new(Arc::new(ManualClock::new()), CostModel::default(), 1),
            cancelled: Arc::new(AtomicBool::new(false)),
            job_id: 1,
            member_metrics: Vec::new(),
            transport: Arc::new(InMemoryTransport::new(clock, 0)),
            net_faults,
            cluster_metrics,
            coordinator,
            controller,
            in_rescale: false,
            fault_driver,
            pending_recovery: None,
            job_failed: None,
        };
        me.build_execution(None)?;
        Ok(me)
    }

    fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            cores_per_member: self.cfg.cores_per_member,
            batch: self.cfg.batch,
            guarantee: self.cfg.guarantee,
            clock: self.shared_clock.clone(),
            partition_count: self.cfg.partition_count,
            fixed_receive_window: self.cfg.fixed_receive_window,
            tracer: self.cfg.tracer.clone(),
        }
    }

    /// (Re)build the execution — used at start, after failure, and after
    /// rescaling. `restore` names the snapshot to reload.
    fn build_execution(&mut self, restore: Option<u64>) -> Result<(), String> {
        // Restoring needs the snapshot store: if reads are unavailable the
        // commit must fail up front rather than rebuild from a store it
        // cannot actually read (the caller retries or rolls back).
        if restore.is_some() && !self.store.read_available() {
            return Err("snapshot store reads unavailable".into());
        }
        let members = self.grid.members();
        let transport = Arc::new(
            InMemoryTransport::new(self.shared_clock.clone(), self.cfg.network_latency)
                .with_faults(self.net_faults.clone()),
        );
        self.transport = transport.clone();
        // A fresh registry per execution (acks from the old execution must
        // not leak in), sharing the same durable store.
        self.registry = if self.cfg.snapshot_interval > 0 {
            // Torn snapshots a dead execution left behind must not merge
            // with the same ids when this execution reuses them.
            self.store.purge_newer_than(restore.unwrap_or(0));
            let r = Arc::new(SnapshotRegistry::new(self.store.clone(), 0));
            // Continue snapshot ids after the restored one.
            if let Some(id) = restore {
                r.fast_forward_to(id);
            }
            r
        } else {
            Arc::new(SnapshotRegistry::disabled())
        };
        let table = self.grid.table();
        let restore_pair = restore.map(|id| (&self.store, id));
        let exec: ClusterExecution = build_cluster_execution(
            &self.dag,
            &members,
            &table,
            transport,
            &self.cluster_config(),
            &self.registry,
            match &restore_pair {
                Some((s, id)) => Some((s, *id)),
                None => None,
            },
        )?;
        self.cancelled = exec.cancelled.clone();
        self.member_metrics = exec.members.iter().map(|m| m.metrics.clone()).collect();
        // Fresh simulator on the SAME clock: virtual time continues across
        // recoveries, so latency measurements span the outage.
        let mut sim = Simulator::new(
            self.clock.clone(),
            self.cfg.cost_model.clone(),
            self.cfg.quantum,
        );
        if let Some(gc) = self.cfg.gc.clone() {
            sim = sim.with_gc(gc);
        }
        sim = sim.with_tracer(self.cfg.tracer.clone());
        for (mi, member_exec) in exec.members.into_iter().enumerate() {
            let base = mi * self.cfg.cores_per_member;
            let pid = members[mi].0;
            for c in 0..self.cfg.cores_per_member {
                sim.add_core_labeled(pid, &format!("m{}/core-{}", pid, c));
            }
            for (k, (tasklet, counters)) in member_exec.tasklets.into_iter().enumerate() {
                sim.assign(base + (k % self.cfg.cores_per_member), tasklet, counters);
            }
        }
        if let Some(q) = &self.cfg.quotas {
            sim.set_job_quotas(q);
        }
        self.sim = sim;
        // The fresh simulator's busy-nanos counters start at zero, so any
        // autoscaler samples from the old execution are no longer
        // comparable — discard them. (During a controller-ordered rescale
        // the controller is checked out of `self` and clears its own
        // window on completion/failure.)
        if let Some(ctl) = self.controller.as_mut() {
            ctl.discard_samples();
        }
        Ok(())
    }

    /// Job identifier (names the snapshot maps in the grid).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    pub fn registry(&self) -> Arc<SnapshotRegistry> {
        self.registry.clone()
    }

    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    pub fn clock(&self) -> Arc<ManualClock> {
        self.clock.clone()
    }

    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    pub fn live_tasklets(&self) -> usize {
        self.sim.live_tasklets()
    }

    /// Busy virtual nanos per core since execution (re)build — utilization
    /// diagnostics for calibration.
    pub fn busy_nanos(&self) -> Vec<u64> {
        self.sim.busy_nanos()
    }

    /// Per-member metrics registries of the current execution.
    pub fn member_metrics(&self) -> &[Arc<MetricsRegistry>] {
        &self.member_metrics
    }

    /// Aggregate every member's registry into one job-level snapshot,
    /// stamped with the `job` tag.
    pub fn job_metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for reg in &self.member_metrics {
            snap.merge(&reg.snapshot());
        }
        snap.merge(&self.cluster_metrics.snapshot());
        snap.with_tag("job", &self.job_id.to_string())
    }

    /// Prometheus text exposition of [`Self::job_metrics`].
    pub fn prometheus(&self) -> String {
        self.job_metrics().render_prometheus()
    }

    /// Per-tasklet (core, name, in, out) diagnostics.
    pub fn tasklet_stats(&self) -> Vec<(usize, String, u64, u64)> {
        self.sim.tasklet_stats()
    }

    /// Per-tasklet (core, name, state, in, out) diagnostics.
    pub fn tasklet_details(&self) -> Vec<(usize, String, &'static str, u64, u64)> {
        self.sim.tasklet_details()
    }

    /// The job's tracer (disabled unless configured via
    /// [`SimClusterConfig::tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.cfg.tracer
    }

    /// Drain pending span records from every worker ring into `data`.
    /// Call periodically during long traced runs so rings don't overflow.
    pub fn drain_trace_into(&self, data: &mut TraceData) {
        self.cfg.tracer.drain_into(data);
    }

    /// Render the plain-text job diagnostics dump. Pass the accumulated
    /// trace to include latency attribution; `None` renders the
    /// metrics-only view. Cluster health renders from the coordinator when
    /// one is wired, `n/a` otherwise.
    pub fn diagnostics_dump(&self, trace: Option<&TraceData>) -> String {
        let mut dump = crate::diagnostics::render_dump(
            self.job_id,
            self.now(),
            &self.job_metrics(),
            &self.tasklet_details(),
            trace,
            self.coordinator.as_ref(),
        );
        if let Some(ctl) = self.controller.as_ref() {
            dump.push_str(&crate::diagnostics::render_autoscaler(ctl));
        }
        if self.cfg.flight.is_enabled() {
            dump.push_str(&crate::diagnostics::render_blame(&self.spike_forensics()));
        }
        if self.cfg.timeline.is_enabled() {
            dump.push_str(&crate::diagnostics::render_timeline(&self.cfg.timeline));
        }
        dump
    }

    /// The job's flight recorder (disabled unless configured via
    /// [`SimClusterConfig::flight`]).
    pub fn flight(&self) -> &FlightRecorder {
        &self.cfg.flight
    }

    /// The job's metrics timeline (disabled unless configured via
    /// [`SimClusterConfig::timeline`]).
    pub fn timeline(&self) -> &Timeline {
        &self.cfg.timeline
    }

    /// Run spike forensics over every frozen incident window: decompose
    /// each detected p99.99 excursion into named causes on the critical
    /// path. The network latency hint comes from this cluster's configured
    /// one-way latency so NetSend/NetRecv intervals match the simulation.
    pub fn spike_forensics(&self) -> Vec<IncidentReport> {
        let cfg = AttributionConfig {
            net_latency_hint: self.cfg.network_latency.max(1),
            ..AttributionConfig::default()
        };
        self.cfg.flight.forensics(&cfg)
    }

    /// Advance the job by `duration` virtual nanos, auto-triggering
    /// snapshots at the configured interval, applying the fault plan, and
    /// running heartbeat detection + self-healing recovery when a
    /// coordinator is configured. Returns true if the job finished.
    pub fn run_for(&mut self, duration: u64) -> bool {
        self.run_for_with(duration, |_| {})
    }

    /// Run with a custom per-quantum hook in addition to snapshot triggers
    /// and fault/detector driving.
    pub fn run_for_with(&mut self, duration: u64, mut hook: impl FnMut(u64)) -> bool {
        enum Action {
            Fence(u32),
            RetryRecovery,
        }
        let end = self.now() + duration;
        loop {
            if self.job_failed.is_some() {
                return false;
            }
            let remaining = end.saturating_sub(self.now());
            if remaining == 0 {
                return self.sim.live_tasklets() == 0;
            }
            // The autoscaler samples on its own cadence, between simulator
            // calls like the recorders below: zero virtual cost, identical
            // schedule. Stepping *before* the chunk is sized means a due
            // sample (including the very first, which has no deadline yet)
            // is taken now, and `next_sample_in` below always has a
            // concrete deadline to clamp the chunk to. (When a rescale is
            // in flight the controller has been taken out of `self`, so
            // nested run_for calls skip this.)
            self.controller_step();
            // With a flight recorder or metrics timeline wired, chunk the
            // run at the nearest sampling deadline: samples are taken
            // *between* simulator calls, so they cost zero virtual time and
            // the executed schedule is identical to an unchunked run.
            let mut chunk = remaining;
            if let Some(gap) = self.cfg.flight.next_snapshot_in(self.now()) {
                chunk = chunk.min(gap.max(1));
            }
            if let Some(gap) = self.cfg.timeline.next_sample_in(self.now()) {
                chunk = chunk.min(gap.max(1));
            }
            if let Some(ctl) = self.controller.as_ref() {
                // After the step above a fresh deadline always exists; fall
                // back to one cadence if the sample was somehow skipped.
                let gap = ctl
                    .next_sample_in(self.now())
                    .unwrap_or(ctl.config().cadence);
                chunk = chunk.min(gap.max(1));
            }
            let mut action: Option<Action> = None;
            // Triggering a snapshot while the job is torn down for recovery
            // would only wedge on acks that can never arrive.
            let interval = if self.pending_recovery.is_some() {
                0
            } else {
                self.cfg.snapshot_interval
            };
            let registry = self.registry.clone();
            let transport = self.transport.clone();
            let net = self.net_faults.clone();
            let store_faults = self.store.faults();
            let retry_at = self.pending_recovery.as_ref().map(|p| p.next_at);
            // Disjoint borrows of self for the tick closure.
            let driver = &mut self.fault_driver;
            let coordinator = &mut self.coordinator;
            let done = self.sim.run_for_ctl(chunk, |tick| {
                if interval > 0 {
                    registry.maybe_trigger(tick.now, interval);
                }
                driver.drive(tick, &net, &store_faults);
                if let Some(coord) = coordinator.as_mut() {
                    let now = tick.now;
                    let ok = |m: u32| driver.member_ok(m, now);
                    if let Some(fenced) = coord.tick(now, transport.as_ref(), ok) {
                        action = Some(Action::Fence(fenced));
                        return false;
                    }
                }
                if let Some(at) = retry_at {
                    if tick.now >= at {
                        action = Some(Action::RetryRecovery);
                        return false;
                    }
                }
                hook(tick.now);
                true
            });
            if self.cfg.flight.is_enabled() {
                let now = self.now();
                if self.cfg.flight.snapshot_due(now) {
                    self.cfg.flight.record_snapshot(now, self.job_metrics());
                }
            }
            if self.cfg.timeline.is_enabled() {
                let now = self.now();
                if self.cfg.timeline.sample_due(now) {
                    self.cfg.timeline.record_sample(now, &self.job_metrics());
                }
            }
            match action {
                None => {
                    if done || self.now() >= end {
                        return done;
                    }
                    // Chunk boundary only — keep running until `end`.
                }
                Some(Action::Fence(member)) => self.handle_fence(member),
                Some(Action::RetryRecovery) => self.attempt_recovery(),
            }
        }
    }

    /// One autoscaler step between simulator chunks: sample the telemetry
    /// on the controller's cadence, run the decision state machine, and execute
    /// any ordered rescale. The controller is taken out of `self` while the
    /// rescale runs, so the nested `run_for` calls inside
    /// `add/remove_member_and_rescale` can never re-enter it.
    fn controller_step(&mut self) {
        let Some(mut ctl) = self.controller.take() else {
            return;
        };
        let now = self.now();
        if ctl.sample_due(now) {
            let busy_per_core = self.sim.busy_nanos();
            let busy: u64 = busy_per_core.iter().sum();
            let members = self.grid.members().len();
            ctl.observe(now, &self.job_metrics(), busy, busy_per_core.len(), members);
            let quiet =
                !self.in_rescale && self.pending_recovery.is_none() && self.job_failed.is_none();
            if quiet {
                if let Some(direction) = ctl.decide(now, members) {
                    let max_wait = ctl.config().rescale_max_wait;
                    let outcome = match direction {
                        Direction::Up => self.add_member_and_rescale(max_wait).map(|_| ()),
                        Direction::Down => self.remove_member_and_rescale(max_wait).map(|_| ()),
                    };
                    let after = self.now();
                    match outcome {
                        Ok(()) => {
                            ctl.rescale_completed(after, direction, self.grid.members().len())
                        }
                        Err(cause) => ctl.rescale_failed(after, direction, &cause),
                    }
                }
            }
        }
        self.controller = Some(ctl);
    }

    /// The failure detector fenced `member`: remove it from the cluster
    /// (promoting backup partition replicas, Fig. 6) and start self-healing
    /// recovery.
    fn handle_fence(&mut self, member: u32) {
        if let Some(coord) = self.coordinator.as_mut() {
            coord.remove_member(member);
        }
        // The grid may have already lost the member (e.g. fenced twice); a
        // kill error is not fatal to recovery.
        let _ = self.grid.kill_member(MemberId(member));
        self.cfg.members = self.grid.members().len();
        let now = self.now();
        self.pending_recovery = Some(PendingRecovery {
            member,
            attempt: 0,
            next_at: now,
            fenced_at: now,
        });
        self.attempt_recovery();
    }

    /// One recovery attempt: gate on snapshot-store availability, rebuild
    /// from the latest complete snapshot (cold restart if none exists), and
    /// on failure re-arm with bounded exponential backoff — up to
    /// `max_recovery_attempts`, after which the job is declared lost.
    fn attempt_recovery(&mut self) {
        let Some(mut pending) = self.pending_recovery.take() else {
            return;
        };
        pending.attempt += 1;
        let now = self.now();
        if let Some(coord) = self.coordinator.as_mut() {
            coord.record_recovery_started(pending.member, pending.attempt, now);
        }
        let failure: Option<String> = if !self.store.read_available() {
            Some("snapshot store reads unavailable".to_string())
        } else {
            let latest = self.store.latest_complete();
            match self.build_execution(latest) {
                Ok(()) => {
                    if let Some(coord) = self.coordinator.as_mut() {
                        coord.record_recovery_completed(
                            latest,
                            pending.attempt,
                            pending.fenced_at,
                            now,
                        );
                    }
                    return;
                }
                Err(e) => Some(format!("execution rebuild failed: {e}")),
            }
        };
        let cause = failure.unwrap();
        if let Some(coord) = self.coordinator.as_mut() {
            coord.record_recovery_failed(pending.attempt, now, &cause);
        }
        let ccfg = self.cfg.coordinator.clone().unwrap_or_default();
        if pending.attempt >= ccfg.max_recovery_attempts {
            self.job_failed = Some(format!(
                "recovery gave up after {} attempts: {cause}",
                pending.attempt
            ));
            self.pending_recovery = None;
        } else {
            // Same bounded-exponential ladder the autoscaler uses; the
            // ladder itself is unit-tested in jet-util.
            let backoff = BackoffLadder::new(ccfg.recovery_backoff_base, ccfg.recovery_backoff_max)
                .raw_delay(pending.attempt);
            pending.next_at = now + backoff;
            self.pending_recovery = Some(pending);
        }
    }

    /// Why the job was declared lost, if recovery exhausted its attempts.
    pub fn failed(&self) -> Option<&str> {
        self.job_failed.as_deref()
    }

    /// The coordinator's event log (empty when no coordinator configured).
    pub fn cluster_events(&self) -> Vec<ClusterEvent> {
        self.coordinator
            .as_ref()
            .map(|c| c.events().to_vec())
            .unwrap_or_default()
    }

    /// The failure detector / recovery orchestrator, when configured.
    pub fn coordinator(&self) -> Option<&Coordinator> {
        self.coordinator.as_ref()
    }

    /// Network fault hooks (shared across execution rebuilds).
    pub fn net_faults(&self) -> &NetworkFaults {
        &self.net_faults
    }

    /// Cooperatively stop the job and drain.
    pub fn cancel(&self) {
        // ordering: SeqCst — rare control action, totally ordered with the
        // drain loop's checks for simple shutdown reasoning.
        self.cancelled
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Kill `member` abruptly and recover from the latest complete snapshot
    /// (§4.4). Returns the snapshot id recovered from (None = cold restart).
    ///
    /// This is the *API-kill* path (the caller already knows the member is
    /// gone); with a [`CoordinatorConfig`] configured, crashes injected via
    /// a [`FaultPlan`] instead go through heartbeat detection + fencing.
    pub fn kill_member_and_recover(&mut self, member: MemberId) -> Result<Option<u64>, String> {
        self.grid.kill_member(member).map_err(|e| e.to_string())?;
        if let Some(coord) = self.coordinator.as_mut() {
            coord.remove_member(member.0);
        }
        // In-flight state dies with the execution.
        let latest = self.store.latest_complete();
        self.cfg.members = self.grid.members().len();
        self.build_execution(latest)?;
        let now = self.now();
        if let Some(coord) = self.coordinator.as_mut() {
            coord.refresh(now);
        }
        Ok(latest)
    }

    /// Rebuild on the current topology from `restore`; if even that fails
    /// (e.g. the snapshot store went dark mid-rollback), arm the standard
    /// recovery retry machinery instead of leaving a wedged execution —
    /// the bounded-backoff ladder keeps retrying until the store heals or
    /// the job is declared lost. `member` only labels the recovery in the
    /// event log (rescale rollbacks have no fenced member; pass the member
    /// the rescale touched, or 0 for job-level).
    fn rebuild_or_arm_recovery(&mut self, restore: Option<u64>, member: u32) -> Result<(), String> {
        let r = self.build_execution(restore);
        if r.is_err() && self.pending_recovery.is_none() {
            let now = self.now();
            self.pending_recovery = Some(PendingRecovery {
                member,
                attempt: 0,
                next_at: now,
                fenced_at: now,
            });
        }
        r
    }

    /// Take a terminal snapshot for a rescale and wait for it (bounded by
    /// `max_wait`). Returns the snapshot id to restore from on success; on
    /// timeout the in-flight snapshot is aborted and the job rebuilt on the
    /// current topology so the half-snapshotted execution never lingers.
    ///
    /// A member may crash *during* the wait: the heartbeat path fences it,
    /// recovery rebuilds from the latest complete snapshot, and periodic
    /// snapshots resume — so by the time the wait finishes, complete
    /// snapshots *newer* than the terminal id may exist. The returned
    /// restore id is the newest complete one; restoring the stale terminal
    /// id would purge those newer complete snapshots as if they were torn.
    fn terminal_snapshot_for_rescale(&mut self, max_wait: u64) -> Result<u64, String> {
        if self.cfg.snapshot_interval == 0 {
            return Err("rescaling requires snapshots enabled".into());
        }
        let id = self
            .registry
            .trigger_terminal()
            .ok_or("terminal snapshot could not be triggered")?;
        let deadline = self.now() + max_wait;
        while self.registry.completed() < id && self.now() < deadline {
            self.run_for(self.cfg.quantum * 16);
            if let Some(cause) = &self.job_failed {
                return Err(format!("job failed during rescale: {cause}"));
            }
        }
        if self.registry.completed() < id {
            // Unwedge: abandon the torn terminal snapshot (it can never be
            // restored from) and resume on the pre-rescale topology from
            // the last complete snapshot. The rebuild purges every record
            // newer than that snapshot, including the torn terminal ones.
            self.registry.abort_in_flight();
            let latest = self.store.latest_complete();
            return Err(match self.rebuild_or_arm_recovery(latest, 0) {
                Ok(()) => "terminal snapshot did not complete in time".into(),
                Err(e) => format!(
                    "terminal snapshot did not complete in time; rebuild \
                     deferred to recovery: {e}"
                ),
            });
        }
        // Acks alone are not enough: a store write outage poisons the
        // snapshot — its barriers drain (so the registry's `completed`
        // advances) but no durable completion marker exists and its records
        // are partial. Restoring from it would silently cold-restart the
        // job disguised as a warm rescale. Demand a durable complete
        // snapshot at or after the terminal id (a member may crash during
        // the wait, in which case recovery + resumed periodic snapshots can
        // legitimately leave the newest complete id *past* the terminal
        // one — restore from that, never purge it).
        match self.store.latest_complete().filter(|l| *l >= id) {
            Some(restore) => Ok(restore),
            None => {
                let latest = self.store.latest_complete();
                Err(match self.rebuild_or_arm_recovery(latest, 0) {
                    Ok(()) => "terminal snapshot was poisoned by a store write failure".into(),
                    Err(e) => format!(
                        "terminal snapshot was poisoned by a store write \
                         failure; rebuild deferred to recovery: {e}"
                    ),
                })
            }
        }
    }

    /// Gracefully add a member and rescale: terminal snapshot, rebuild with
    /// the larger cluster from it (§4.3).
    ///
    /// If the terminal snapshot misses `max_wait`, the in-flight snapshot
    /// is aborted and the job is rebuilt from the last complete snapshot,
    /// so the registry keeps triggering and the half-snapshotted execution
    /// does not linger — the rescale itself fails with `Err`. If the
    /// topology commit itself fails (e.g. the snapshot store goes dark
    /// between snapshot-complete and commit), the grid mutation is rolled
    /// back and the job resumes on the pre-rescale topology — a failed
    /// rescale must never leave a wedged half-scaled cluster.
    pub fn add_member_and_rescale(&mut self, max_wait: u64) -> Result<MemberId, String> {
        self.in_rescale = true;
        let r = self.add_member_and_rescale_inner(max_wait);
        self.in_rescale = false;
        r
    }

    fn add_member_and_rescale_inner(&mut self, max_wait: u64) -> Result<MemberId, String> {
        let restore = self.terminal_snapshot_for_rescale(max_wait)?;
        let new_member = self.grid.add_member();
        self.cfg.members = self.grid.members().len();
        if let Err(commit) = self.build_execution(Some(restore)) {
            // Roll back: migrate the partitions the rebalance just moved
            // onto the new member gracefully off it again, then resume on
            // the pre-rescale topology.
            let rollback = self
                .grid
                .shutdown_member(new_member)
                .map_err(|e| e.to_string());
            self.cfg.members = self.grid.members().len();
            let latest = self.store.latest_complete();
            let rebuilt = self.rebuild_or_arm_recovery(latest, new_member.0);
            return Err(match (rollback, rebuilt) {
                (Ok(()), Ok(())) => {
                    format!("rescale topology commit failed, rolled back: {commit}")
                }
                (r, b) => format!(
                    "rescale topology commit failed ({commit}); rollback degraded \
                     (shutdown: {r:?}, rebuild: {b:?})"
                ),
            });
        }
        let now = self.now();
        if let Some(coord) = self.coordinator.as_mut() {
            coord.add_member(new_member.0, now);
        }
        Ok(new_member)
    }

    /// Gracefully remove the highest-id member and rescale onto the smaller
    /// cluster: terminal snapshot, migrate the member's partitions away
    /// (no data loss even at backup_count 0), rebuild from the snapshot.
    /// Mirrors [`Self::add_member_and_rescale`] including the abort and
    /// rollback paths.
    pub fn remove_member_and_rescale(&mut self, max_wait: u64) -> Result<MemberId, String> {
        self.in_rescale = true;
        let r = self.remove_member_and_rescale_inner(max_wait);
        self.in_rescale = false;
        r
    }

    fn remove_member_and_rescale_inner(&mut self, max_wait: u64) -> Result<MemberId, String> {
        if self.grid.members().len() <= 1 {
            return Err("cannot scale below one member".into());
        }
        let restore = self.terminal_snapshot_for_rescale(max_wait)?;
        let victim = *self.grid.members().last().ok_or("cluster has no members")?;
        if let Err(e) = self.grid.shutdown_member(victim) {
            // Grid refused (nothing mutated): resume on the old topology.
            self.rebuild_or_arm_recovery(Some(restore), victim.0)?;
            return Err(format!("scale-in shutdown failed: {e}"));
        }
        self.cfg.members = self.grid.members().len();
        if let Err(commit) = self.build_execution(Some(restore)) {
            // Roll back the shrink: restore capacity with a fresh member
            // (the victim's partitions were already migrated away, so no
            // state is at risk) and resume on the old cluster size.
            let replacement = self.grid.add_member();
            self.cfg.members = self.grid.members().len();
            let latest = self.store.latest_complete();
            let rebuilt = self.rebuild_or_arm_recovery(latest, victim.0);
            let now = self.now();
            if let Some(coord) = self.coordinator.as_mut() {
                coord.remove_member(victim.0);
                coord.add_member(replacement.0, now);
            }
            return Err(match rebuilt {
                Ok(()) => format!("scale-in topology commit failed, rolled back: {commit}"),
                Err(b) => format!(
                    "scale-in topology commit failed ({commit}); rollback rebuild \
                     also failed: {b}"
                ),
            });
        }
        if let Some(coord) = self.coordinator.as_mut() {
            coord.remove_member(victim.0);
        }
        Ok(victim)
    }

    /// The autoscaling controller, when configured. (`None` is also
    /// returned transiently while a controller-ordered rescale is mid
    /// flight — the controller is checked out of the runtime for the
    /// duration.)
    pub fn controller(&self) -> Option<&Controller> {
        self.controller.as_ref()
    }

    /// The controller's decision timeline (empty when none configured).
    pub fn controller_events(&self) -> Vec<ControllerEvent> {
        self.controller
            .as_ref()
            .map(|c| c.events().to_vec())
            .unwrap_or_default()
    }
}

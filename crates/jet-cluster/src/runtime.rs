//! Cluster job runtime over the virtual-time simulator: job start, periodic
//! snapshots, member failure + recovery (§4.4), and elastic rescaling
//! (§4.3).
//!
//! Recovery follows the paper exactly: "Jet will stop processing in all
//! nodes and vertices, reload the latest state snapshots from IMDG recorded
//! at the latest checkpoint, spawn a new instance to substitute the one
//! that failed, and ask the input sources to replay the input data
//! following the latest checkpoint." Here that is: kill the member in the
//! grid (backups get promoted, Fig. 6), drop every tasklet (in-flight data
//! is lost with them), rebuild the execution from the latest complete
//! snapshot over the surviving members, and resume on the same virtual
//! clock.

use crate::coordinator::{ClusterEvent, Coordinator, CoordinatorConfig};
use crate::wiring::{build_cluster_execution, ClusterConfig, ClusterExecution};
use jet_core::flight::{AttributionConfig, FlightRecorder, IncidentReport};
use jet_core::metrics::{tags, MetricsRegistry, MetricsSnapshot};
use jet_core::network::{ChannelChaos, InMemoryTransport, NetworkFaults};
use jet_core::processor::Guarantee;
use jet_core::snapshot::SnapshotRegistry;
use jet_core::telemetry::Timeline;
use jet_core::trace::{TraceData, TraceKind, TraceWriter, Tracer};
use jet_core::Dag;
use jet_imdg::{Grid, MemberId, SnapshotStore, StoreFaults};
use jet_sim::{CostModel, FaultEvent, FaultKind, FaultPlan, SimTick, Simulator};
use jet_util::clock::{ManualClock, SharedClock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Simulation-mode cluster configuration.
#[derive(Clone)]
pub struct SimClusterConfig {
    pub members: usize,
    pub cores_per_member: usize,
    pub partition_count: u32,
    /// Backup replicas per partition in the grid.
    pub backup_count: usize,
    pub guarantee: Guarantee,
    /// Snapshot interval in virtual nanos; 0 disables snapshots.
    pub snapshot_interval: u64,
    /// One-way network latency between members, virtual nanos.
    pub network_latency: u64,
    pub cost_model: CostModel,
    /// Simulation time step.
    pub quantum: u64,
    pub batch: usize,
    /// GC pause injection (§5 / ablation A2).
    pub gc: Option<jet_sim::GcModel>,
    /// Ablation A4: fixed (non-adaptive) receive window.
    pub fixed_receive_window: Option<u64>,
    /// Execution tracer shared by every tasklet; disabled by default.
    pub tracer: Tracer,
    /// Deterministic fault script applied from the per-quantum hook.
    pub fault_plan: Option<FaultPlan>,
    /// Heartbeat failure detection + self-healing recovery. `None` (the
    /// default) wires no coordinator at all: no heartbeat traffic, no
    /// detector state, zero cost on fault-free runs.
    pub coordinator: Option<CoordinatorConfig>,
    /// Spike-forensics flight recorder (carries its watchdog). When
    /// enabled, the runtime samples the job-wide metrics snapshot into its
    /// time series at the recorder's cadence and the diagnostics dump gains
    /// a blame section. Disabled by default: zero cost, identical virtual
    /// timeline either way.
    pub flight: FlightRecorder,
    /// Continuous metrics timeline. When enabled, the runtime samples the
    /// job-wide metrics snapshot into delta-encoded rings at the timeline's
    /// cadence and the diagnostics dump gains a sparkline section. Disabled
    /// by default: zero cost, identical virtual timeline either way.
    pub timeline: Timeline,
}

impl Default for SimClusterConfig {
    fn default() -> Self {
        SimClusterConfig {
            members: 1,
            cores_per_member: 12, // paper: 12 cooperative threads per node
            partition_count: jet_imdg::DEFAULT_PARTITION_COUNT,
            backup_count: 1,
            guarantee: Guarantee::None,
            snapshot_interval: 0,
            network_latency: 500_000, // 0.5 ms, same-AZ EC2 ballpark
            cost_model: CostModel::default(),
            quantum: 20_000, // 20 µs
            batch: jet_core::tasklet::DEFAULT_BATCH,
            gc: None,
            fixed_receive_window: None,
            tracer: Tracer::disabled(),
            fault_plan: None,
            coordinator: None,
            flight: FlightRecorder::disabled(),
            timeline: Timeline::disabled(),
        }
    }
}

/// Applies a [`FaultPlan`] on the virtual timeline: consumes events through
/// a cursor and re-asserts crash/stall masks every quantum so they survive
/// execution rebuilds.
struct FaultDriver {
    events: Vec<FaultEvent>,
    cursor: usize,
    crashed: HashSet<u32>,
    /// member → stalled-until (expired entries are pruned).
    stalled: HashMap<u32, u64>,
    tw: TraceWriter,
}

impl FaultDriver {
    fn new(plan: Option<&FaultPlan>, tracer: &Tracer) -> FaultDriver {
        FaultDriver {
            events: plan.map(|p| p.events().to_vec()).unwrap_or_default(),
            cursor: 0,
            crashed: HashSet::new(),
            stalled: HashMap::new(),
            tw: tracer.writer(0xFA17, "fault-injector"),
        }
    }

    /// Apply events due at `tick.now` and (re-)enforce the crash/stall
    /// masks on the current execution's cores.
    fn drive(&mut self, tick: &mut SimTick, net: &NetworkFaults, store: &StoreFaults) {
        while self.cursor < self.events.len() && self.events[self.cursor].at <= tick.now {
            let ev = self.events[self.cursor].clone();
            self.cursor += 1;
            let name = self.tw.intern(&ev.kind.label());
            let arg = match &ev.kind {
                FaultKind::Crash { member } | FaultKind::Stall { member, .. } => *member as i64,
                _ => -1,
            };
            self.tw
                .record(TraceKind::FaultInject, tick.now, 0, name, arg);
            match ev.kind {
                FaultKind::Crash { member } => {
                    self.crashed.insert(member);
                }
                FaultKind::Stall { member, until } => {
                    let e = self.stalled.entry(member).or_insert(0);
                    *e = (*e).max(until);
                }
                FaultKind::PartitionStart { id, side } => net.start_partition(id, side),
                FaultKind::PartitionEnd { id } => net.end_partition(id),
                FaultKind::ChaosStart {
                    drop_millionths,
                    max_extra_delay_nanos,
                } => net.set_chaos(ChannelChaos::new(drop_millionths, max_extra_delay_nanos)),
                FaultKind::ChaosEnd => net.clear_chaos(),
                FaultKind::StoreWriteFailStart => store.set_fail_writes(true),
                FaultKind::StoreWriteFailEnd => store.set_fail_writes(false),
                FaultKind::StoreReadFailStart => store.set_fail_reads(true),
                FaultKind::StoreReadFailEnd => store.set_fail_reads(false),
            }
        }
        let now = tick.now;
        for &m in &self.crashed {
            tick.halt_member(m);
        }
        self.stalled.retain(|_, &mut until| until > now);
        for (&m, &until) in &self.stalled {
            tick.stall_member(m, until);
        }
    }

    /// Can `m` run right now? The simulation — not the detector — knows a
    /// crashed or frozen member cannot execute its heartbeat task.
    fn member_ok(&self, m: u32, now: u64) -> bool {
        !self.crashed.contains(&m) && self.stalled.get(&m).is_none_or(|&until| until <= now)
    }
}

/// In-progress recovery attempt state (retry with bounded backoff).
struct PendingRecovery {
    member: u32,
    attempt: u32,
    /// Earliest virtual instant the next attempt may run.
    next_at: u64,
    /// When the member was fenced (start of the recovery clock).
    fenced_at: u64,
}

/// A running (or restartable) cluster job on the simulator.
pub struct SimCluster {
    cfg: SimClusterConfig,
    dag: Dag,
    grid: Grid,
    clock: Arc<ManualClock>,
    shared_clock: SharedClock,
    store: SnapshotStore,
    registry: Arc<SnapshotRegistry>,
    sim: Simulator,
    cancelled: Arc<AtomicBool>,
    job_id: u64,
    /// One metrics registry per live member, rebuilt with the execution.
    member_metrics: Vec<Arc<MetricsRegistry>>,
    /// Transport of the current execution (fault hooks attached).
    transport: Arc<InMemoryTransport>,
    /// Shared across rebuilds: partitions/chaos persist through recovery.
    net_faults: Arc<NetworkFaults>,
    /// Cluster-level registry (detector + fault-injection counters);
    /// survives execution rebuilds, merged into [`Self::job_metrics`].
    cluster_metrics: Arc<MetricsRegistry>,
    coordinator: Option<Coordinator>,
    fault_driver: FaultDriver,
    pending_recovery: Option<PendingRecovery>,
    /// Set when recovery exhausted its attempts: the job is lost.
    job_failed: Option<String>,
}

impl SimCluster {
    /// Build the grid, wire the job, and place tasklets on virtual cores.
    pub fn start(dag: Dag, cfg: SimClusterConfig) -> Result<SimCluster, String> {
        let grid = Grid::with_partition_count(cfg.members, cfg.backup_count, cfg.partition_count);
        let clock = Arc::new(ManualClock::new());
        let shared_clock: SharedClock = clock.clone();
        let store = SnapshotStore::new(&grid, 1);
        let registry = if cfg.snapshot_interval > 0 {
            Arc::new(SnapshotRegistry::new(store.clone(), 0))
        } else {
            Arc::new(SnapshotRegistry::disabled())
        };
        let seed = cfg.fault_plan.as_ref().map(|p| p.seed).unwrap_or(0);
        let net_faults = Arc::new(NetworkFaults::new(seed));
        let cluster_metrics = Arc::new(MetricsRegistry::with_tags(tags(&[("member", "cluster")])));
        // Cluster-level instruments exist only when fault injection or the
        // coordinator is wired: fault-free jobs keep their exact metric set.
        if cfg.fault_plan.is_some() || cfg.coordinator.is_some() {
            let nf = net_faults.clone();
            cluster_metrics.counter_fn(
                "jet_cluster_heartbeats_dropped_total",
                tags(&[]),
                move || nf.heartbeats_dropped(),
            );
            let nf = net_faults.clone();
            cluster_metrics.counter_fn(
                "jet_cluster_batches_retransmitted_total",
                tags(&[]),
                move || nf.batches_retransmitted(),
            );
            let sf = store.faults();
            cluster_metrics.counter_fn(
                "jet_cluster_store_write_failures_total",
                tags(&[]),
                move || sf.write_failures(),
            );
            let sf = store.faults();
            cluster_metrics.counter_fn(
                "jet_cluster_store_read_failures_total",
                tags(&[]),
                move || sf.read_failures(),
            );
        }
        // Flight-recorder fidelity is itself observable: when tracing is on,
        // ring drops, sampling policy, and recorder retention surface as
        // first-class metrics in the same Prometheus/JSON renderers as
        // everything else. (Registered only when the tracer is enabled so
        // untraced jobs keep their exact metric set.)
        if cfg.tracer.is_enabled() {
            let t = cfg.tracer.clone();
            cluster_metrics.counter_fn("jet_trace_ring_dropped_total", tags(&[]), move || {
                t.dropped_total()
            });
            let t = cfg.tracer.clone();
            cluster_metrics.gauge_fn("jet_trace_pending_records", tags(&[]), move || {
                t.pending() as i64
            });
            cluster_metrics
                .gauge("jet_trace_call_sample_period", tags(&[]))
                .set(1i64 << cfg.tracer.sample_shift());
            cluster_metrics
                .gauge("jet_trace_ring_capacity", tags(&[]))
                .set(cfg.tracer.ring_capacity() as i64);
        }
        if cfg.flight.is_enabled() {
            let f = cfg.flight.clone();
            cluster_metrics.counter_fn("jet_flight_spans_evicted_total", tags(&[]), move || {
                f.stats().1
            });
            let f = cfg.flight.clone();
            cluster_metrics.gauge_fn("jet_flight_spans_retained_records", tags(&[]), move || {
                f.stats().2 as i64
            });
            let f = cfg.flight.clone();
            cluster_metrics.gauge_fn(
                "jet_flight_snapshots_retained_records",
                tags(&[]),
                move || f.stats().3 as i64,
            );
        }
        if cfg.timeline.is_enabled() {
            let t = cfg.timeline.clone();
            cluster_metrics
                .counter_fn("jet_timeline_samples_total", tags(&[]), move || t.stats().0);
            let t = cfg.timeline.clone();
            cluster_metrics.gauge_fn("jet_timeline_series_records", tags(&[]), move || {
                t.stats().1 as i64
            });
            let t = cfg.timeline.clone();
            cluster_metrics.counter_fn("jet_timeline_ticks_evicted_total", tags(&[]), move || {
                t.stats().3
            });
        }
        let member_ids: Vec<u32> = grid.members().iter().map(|m| m.0).collect();
        let coordinator = cfg
            .coordinator
            .clone()
            .map(|c| Coordinator::new(c, &member_ids, 0, &cluster_metrics, &cfg.tracer));
        let fault_driver = FaultDriver::new(cfg.fault_plan.as_ref(), &cfg.tracer);
        let mut me = SimCluster {
            cfg,
            dag,
            grid,
            clock: clock.clone(),
            shared_clock,
            store,
            registry,
            sim: Simulator::new(Arc::new(ManualClock::new()), CostModel::default(), 1),
            cancelled: Arc::new(AtomicBool::new(false)),
            job_id: 1,
            member_metrics: Vec::new(),
            transport: Arc::new(InMemoryTransport::new(clock, 0)),
            net_faults,
            cluster_metrics,
            coordinator,
            fault_driver,
            pending_recovery: None,
            job_failed: None,
        };
        me.build_execution(None)?;
        Ok(me)
    }

    fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            cores_per_member: self.cfg.cores_per_member,
            batch: self.cfg.batch,
            guarantee: self.cfg.guarantee,
            clock: self.shared_clock.clone(),
            partition_count: self.cfg.partition_count,
            fixed_receive_window: self.cfg.fixed_receive_window,
            tracer: self.cfg.tracer.clone(),
        }
    }

    /// (Re)build the execution — used at start, after failure, and after
    /// rescaling. `restore` names the snapshot to reload.
    fn build_execution(&mut self, restore: Option<u64>) -> Result<(), String> {
        let members = self.grid.members();
        let transport = Arc::new(
            InMemoryTransport::new(self.shared_clock.clone(), self.cfg.network_latency)
                .with_faults(self.net_faults.clone()),
        );
        self.transport = transport.clone();
        // A fresh registry per execution (acks from the old execution must
        // not leak in), sharing the same durable store.
        self.registry = if self.cfg.snapshot_interval > 0 {
            // Torn snapshots a dead execution left behind must not merge
            // with the same ids when this execution reuses them.
            self.store.purge_newer_than(restore.unwrap_or(0));
            let r = Arc::new(SnapshotRegistry::new(self.store.clone(), 0));
            // Continue snapshot ids after the restored one.
            if let Some(id) = restore {
                r.fast_forward_to(id);
            }
            r
        } else {
            Arc::new(SnapshotRegistry::disabled())
        };
        let table = self.grid.table();
        let restore_pair = restore.map(|id| (&self.store, id));
        let exec: ClusterExecution = build_cluster_execution(
            &self.dag,
            &members,
            &table,
            transport,
            &self.cluster_config(),
            &self.registry,
            match &restore_pair {
                Some((s, id)) => Some((s, *id)),
                None => None,
            },
        )?;
        self.cancelled = exec.cancelled.clone();
        self.member_metrics = exec.members.iter().map(|m| m.metrics.clone()).collect();
        // Fresh simulator on the SAME clock: virtual time continues across
        // recoveries, so latency measurements span the outage.
        let mut sim = Simulator::new(
            self.clock.clone(),
            self.cfg.cost_model.clone(),
            self.cfg.quantum,
        );
        if let Some(gc) = self.cfg.gc.clone() {
            sim = sim.with_gc(gc);
        }
        sim = sim.with_tracer(self.cfg.tracer.clone());
        for (mi, member_exec) in exec.members.into_iter().enumerate() {
            let base = mi * self.cfg.cores_per_member;
            let pid = members[mi].0;
            for c in 0..self.cfg.cores_per_member {
                sim.add_core_labeled(pid, &format!("m{}/core-{}", pid, c));
            }
            for (k, (tasklet, counters)) in member_exec.tasklets.into_iter().enumerate() {
                sim.assign(base + (k % self.cfg.cores_per_member), tasklet, counters);
            }
        }
        self.sim = sim;
        Ok(())
    }

    /// Job identifier (names the snapshot maps in the grid).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    pub fn registry(&self) -> Arc<SnapshotRegistry> {
        self.registry.clone()
    }

    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    pub fn clock(&self) -> Arc<ManualClock> {
        self.clock.clone()
    }

    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    pub fn live_tasklets(&self) -> usize {
        self.sim.live_tasklets()
    }

    /// Busy virtual nanos per core since execution (re)build — utilization
    /// diagnostics for calibration.
    pub fn busy_nanos(&self) -> Vec<u64> {
        self.sim.busy_nanos()
    }

    /// Per-member metrics registries of the current execution.
    pub fn member_metrics(&self) -> &[Arc<MetricsRegistry>] {
        &self.member_metrics
    }

    /// Aggregate every member's registry into one job-level snapshot,
    /// stamped with the `job` tag.
    pub fn job_metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for reg in &self.member_metrics {
            snap.merge(&reg.snapshot());
        }
        snap.merge(&self.cluster_metrics.snapshot());
        snap.with_tag("job", &self.job_id.to_string())
    }

    /// Prometheus text exposition of [`Self::job_metrics`].
    pub fn prometheus(&self) -> String {
        self.job_metrics().render_prometheus()
    }

    /// Per-tasklet (core, name, in, out) diagnostics.
    pub fn tasklet_stats(&self) -> Vec<(usize, String, u64, u64)> {
        self.sim.tasklet_stats()
    }

    /// Per-tasklet (core, name, state, in, out) diagnostics.
    pub fn tasklet_details(&self) -> Vec<(usize, String, &'static str, u64, u64)> {
        self.sim.tasklet_details()
    }

    /// The job's tracer (disabled unless configured via
    /// [`SimClusterConfig::tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.cfg.tracer
    }

    /// Drain pending span records from every worker ring into `data`.
    /// Call periodically during long traced runs so rings don't overflow.
    pub fn drain_trace_into(&self, data: &mut TraceData) {
        self.cfg.tracer.drain_into(data);
    }

    /// Render the plain-text job diagnostics dump. Pass the accumulated
    /// trace to include latency attribution; `None` renders the
    /// metrics-only view. Cluster health renders from the coordinator when
    /// one is wired, `n/a` otherwise.
    pub fn diagnostics_dump(&self, trace: Option<&TraceData>) -> String {
        let mut dump = crate::diagnostics::render_dump(
            self.job_id,
            self.now(),
            &self.job_metrics(),
            &self.tasklet_details(),
            trace,
            self.coordinator.as_ref(),
        );
        if self.cfg.flight.is_enabled() {
            dump.push_str(&crate::diagnostics::render_blame(&self.spike_forensics()));
        }
        if self.cfg.timeline.is_enabled() {
            dump.push_str(&crate::diagnostics::render_timeline(&self.cfg.timeline));
        }
        dump
    }

    /// The job's flight recorder (disabled unless configured via
    /// [`SimClusterConfig::flight`]).
    pub fn flight(&self) -> &FlightRecorder {
        &self.cfg.flight
    }

    /// The job's metrics timeline (disabled unless configured via
    /// [`SimClusterConfig::timeline`]).
    pub fn timeline(&self) -> &Timeline {
        &self.cfg.timeline
    }

    /// Run spike forensics over every frozen incident window: decompose
    /// each detected p99.99 excursion into named causes on the critical
    /// path. The network latency hint comes from this cluster's configured
    /// one-way latency so NetSend/NetRecv intervals match the simulation.
    pub fn spike_forensics(&self) -> Vec<IncidentReport> {
        let cfg = AttributionConfig {
            net_latency_hint: self.cfg.network_latency.max(1),
            ..AttributionConfig::default()
        };
        self.cfg.flight.forensics(&cfg)
    }

    /// Advance the job by `duration` virtual nanos, auto-triggering
    /// snapshots at the configured interval, applying the fault plan, and
    /// running heartbeat detection + self-healing recovery when a
    /// coordinator is configured. Returns true if the job finished.
    pub fn run_for(&mut self, duration: u64) -> bool {
        self.run_for_with(duration, |_| {})
    }

    /// Run with a custom per-quantum hook in addition to snapshot triggers
    /// and fault/detector driving.
    pub fn run_for_with(&mut self, duration: u64, mut hook: impl FnMut(u64)) -> bool {
        enum Action {
            Fence(u32),
            RetryRecovery,
        }
        let end = self.now() + duration;
        loop {
            if self.job_failed.is_some() {
                return false;
            }
            let remaining = end.saturating_sub(self.now());
            if remaining == 0 {
                return self.sim.live_tasklets() == 0;
            }
            // With a flight recorder or metrics timeline wired, chunk the
            // run at the nearest sampling deadline: samples are taken
            // *between* simulator calls, so they cost zero virtual time and
            // the executed schedule is identical to an unchunked run.
            let mut chunk = remaining;
            if let Some(gap) = self.cfg.flight.next_snapshot_in(self.now()) {
                chunk = chunk.min(gap.max(1));
            }
            if let Some(gap) = self.cfg.timeline.next_sample_in(self.now()) {
                chunk = chunk.min(gap.max(1));
            }
            let mut action: Option<Action> = None;
            // Triggering a snapshot while the job is torn down for recovery
            // would only wedge on acks that can never arrive.
            let interval = if self.pending_recovery.is_some() {
                0
            } else {
                self.cfg.snapshot_interval
            };
            let registry = self.registry.clone();
            let transport = self.transport.clone();
            let net = self.net_faults.clone();
            let store_faults = self.store.faults();
            let retry_at = self.pending_recovery.as_ref().map(|p| p.next_at);
            // Disjoint borrows of self for the tick closure.
            let driver = &mut self.fault_driver;
            let coordinator = &mut self.coordinator;
            let done = self.sim.run_for_ctl(chunk, |tick| {
                if interval > 0 {
                    registry.maybe_trigger(tick.now, interval);
                }
                driver.drive(tick, &net, &store_faults);
                if let Some(coord) = coordinator.as_mut() {
                    let now = tick.now;
                    let ok = |m: u32| driver.member_ok(m, now);
                    if let Some(fenced) = coord.tick(now, transport.as_ref(), ok) {
                        action = Some(Action::Fence(fenced));
                        return false;
                    }
                }
                if let Some(at) = retry_at {
                    if tick.now >= at {
                        action = Some(Action::RetryRecovery);
                        return false;
                    }
                }
                hook(tick.now);
                true
            });
            if self.cfg.flight.is_enabled() {
                let now = self.now();
                if self.cfg.flight.snapshot_due(now) {
                    self.cfg.flight.record_snapshot(now, self.job_metrics());
                }
            }
            if self.cfg.timeline.is_enabled() {
                let now = self.now();
                if self.cfg.timeline.sample_due(now) {
                    self.cfg.timeline.record_sample(now, &self.job_metrics());
                }
            }
            match action {
                None => {
                    if done || self.now() >= end {
                        return done;
                    }
                    // Chunk boundary only — keep running until `end`.
                }
                Some(Action::Fence(member)) => self.handle_fence(member),
                Some(Action::RetryRecovery) => self.attempt_recovery(),
            }
        }
    }

    /// The failure detector fenced `member`: remove it from the cluster
    /// (promoting backup partition replicas, Fig. 6) and start self-healing
    /// recovery.
    fn handle_fence(&mut self, member: u32) {
        if let Some(coord) = self.coordinator.as_mut() {
            coord.remove_member(member);
        }
        // The grid may have already lost the member (e.g. fenced twice); a
        // kill error is not fatal to recovery.
        let _ = self.grid.kill_member(MemberId(member));
        self.cfg.members = self.grid.members().len();
        let now = self.now();
        self.pending_recovery = Some(PendingRecovery {
            member,
            attempt: 0,
            next_at: now,
            fenced_at: now,
        });
        self.attempt_recovery();
    }

    /// One recovery attempt: gate on snapshot-store availability, rebuild
    /// from the latest complete snapshot (cold restart if none exists), and
    /// on failure re-arm with bounded exponential backoff — up to
    /// `max_recovery_attempts`, after which the job is declared lost.
    fn attempt_recovery(&mut self) {
        let Some(mut pending) = self.pending_recovery.take() else {
            return;
        };
        pending.attempt += 1;
        let now = self.now();
        if let Some(coord) = self.coordinator.as_mut() {
            coord.record_recovery_started(pending.member, pending.attempt, now);
        }
        let failure: Option<String> = if !self.store.read_available() {
            Some("snapshot store reads unavailable".to_string())
        } else {
            let latest = self.store.latest_complete();
            match self.build_execution(latest) {
                Ok(()) => {
                    if let Some(coord) = self.coordinator.as_mut() {
                        coord.record_recovery_completed(
                            latest,
                            pending.attempt,
                            pending.fenced_at,
                            now,
                        );
                    }
                    return;
                }
                Err(e) => Some(format!("execution rebuild failed: {e}")),
            }
        };
        let cause = failure.unwrap();
        if let Some(coord) = self.coordinator.as_mut() {
            coord.record_recovery_failed(pending.attempt, now, &cause);
        }
        let ccfg = self.cfg.coordinator.clone().unwrap_or_default();
        if pending.attempt >= ccfg.max_recovery_attempts {
            self.job_failed = Some(format!(
                "recovery gave up after {} attempts: {cause}",
                pending.attempt
            ));
            self.pending_recovery = None;
        } else {
            let backoff = ccfg
                .recovery_backoff_base
                .checked_shl(pending.attempt - 1)
                .unwrap_or(u64::MAX)
                .min(ccfg.recovery_backoff_max);
            pending.next_at = now + backoff;
            self.pending_recovery = Some(pending);
        }
    }

    /// Why the job was declared lost, if recovery exhausted its attempts.
    pub fn failed(&self) -> Option<&str> {
        self.job_failed.as_deref()
    }

    /// The coordinator's event log (empty when no coordinator configured).
    pub fn cluster_events(&self) -> Vec<ClusterEvent> {
        self.coordinator
            .as_ref()
            .map(|c| c.events().to_vec())
            .unwrap_or_default()
    }

    /// The failure detector / recovery orchestrator, when configured.
    pub fn coordinator(&self) -> Option<&Coordinator> {
        self.coordinator.as_ref()
    }

    /// Network fault hooks (shared across execution rebuilds).
    pub fn net_faults(&self) -> &NetworkFaults {
        &self.net_faults
    }

    /// Cooperatively stop the job and drain.
    pub fn cancel(&self) {
        // ordering: SeqCst — rare control action, totally ordered with the
        // drain loop's checks for simple shutdown reasoning.
        self.cancelled
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Kill `member` abruptly and recover from the latest complete snapshot
    /// (§4.4). Returns the snapshot id recovered from (None = cold restart).
    ///
    /// This is the *API-kill* path (the caller already knows the member is
    /// gone); with a [`CoordinatorConfig`] configured, crashes injected via
    /// a [`FaultPlan`] instead go through heartbeat detection + fencing.
    pub fn kill_member_and_recover(&mut self, member: MemberId) -> Result<Option<u64>, String> {
        self.grid.kill_member(member).map_err(|e| e.to_string())?;
        if let Some(coord) = self.coordinator.as_mut() {
            coord.remove_member(member.0);
        }
        // In-flight state dies with the execution.
        let latest = self.store.latest_complete();
        self.cfg.members = self.grid.members().len();
        self.build_execution(latest)?;
        let now = self.now();
        if let Some(coord) = self.coordinator.as_mut() {
            coord.refresh(now);
        }
        Ok(latest)
    }

    /// Gracefully add a member and rescale: terminal snapshot, rebuild with
    /// the larger cluster from it (§4.3).
    ///
    /// If the terminal snapshot misses `max_wait`, the in-flight snapshot
    /// is aborted and the job is rebuilt from the last complete snapshot,
    /// so the registry keeps triggering and the half-snapshotted execution
    /// does not linger — the rescale itself fails with `Err`.
    pub fn add_member_and_rescale(&mut self, max_wait: u64) -> Result<MemberId, String> {
        if self.cfg.snapshot_interval == 0 {
            return Err("rescaling requires snapshots enabled".into());
        }
        let id = self
            .registry
            .trigger_terminal()
            .ok_or("terminal snapshot could not be triggered")?;
        let deadline = self.now() + max_wait;
        while self.registry.completed() < id && self.now() < deadline {
            self.run_for(self.cfg.quantum * 16);
        }
        if self.registry.completed() < id {
            // Unwedge: abandon the torn terminal snapshot (it can never be
            // restored from) and resume on the pre-rescale topology from
            // the last complete snapshot.
            self.registry.abort_in_flight();
            let latest = self.store.latest_complete();
            self.build_execution(latest)?;
            return Err("terminal snapshot did not complete in time".into());
        }
        let new_member = self.grid.add_member();
        self.cfg.members = self.grid.members().len();
        self.build_execution(Some(id))?;
        let now = self.now();
        if let Some(coord) = self.coordinator.as_mut() {
            coord.add_member(new_member.0, now);
        }
        Ok(new_member)
    }
}

//! Cluster job runtime over the virtual-time simulator: job start, periodic
//! snapshots, member failure + recovery (§4.4), and elastic rescaling
//! (§4.3).
//!
//! Recovery follows the paper exactly: "Jet will stop processing in all
//! nodes and vertices, reload the latest state snapshots from IMDG recorded
//! at the latest checkpoint, spawn a new instance to substitute the one
//! that failed, and ask the input sources to replay the input data
//! following the latest checkpoint." Here that is: kill the member in the
//! grid (backups get promoted, Fig. 6), drop every tasklet (in-flight data
//! is lost with them), rebuild the execution from the latest complete
//! snapshot over the surviving members, and resume on the same virtual
//! clock.

use crate::wiring::{build_cluster_execution, ClusterConfig, ClusterExecution};
use jet_core::metrics::{MetricsRegistry, MetricsSnapshot};
use jet_core::network::InMemoryTransport;
use jet_core::processor::Guarantee;
use jet_core::snapshot::SnapshotRegistry;
use jet_core::trace::{TraceData, Tracer};
use jet_core::Dag;
use jet_imdg::{Grid, MemberId, SnapshotStore};
use jet_sim::{CostModel, Simulator};
use jet_util::clock::{ManualClock, SharedClock};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Simulation-mode cluster configuration.
#[derive(Clone)]
pub struct SimClusterConfig {
    pub members: usize,
    pub cores_per_member: usize,
    pub partition_count: u32,
    /// Backup replicas per partition in the grid.
    pub backup_count: usize,
    pub guarantee: Guarantee,
    /// Snapshot interval in virtual nanos; 0 disables snapshots.
    pub snapshot_interval: u64,
    /// One-way network latency between members, virtual nanos.
    pub network_latency: u64,
    pub cost_model: CostModel,
    /// Simulation time step.
    pub quantum: u64,
    pub batch: usize,
    /// GC pause injection (§5 / ablation A2).
    pub gc: Option<jet_sim::GcModel>,
    /// Ablation A4: fixed (non-adaptive) receive window.
    pub fixed_receive_window: Option<u64>,
    /// Execution tracer shared by every tasklet; disabled by default.
    pub tracer: Tracer,
}

impl Default for SimClusterConfig {
    fn default() -> Self {
        SimClusterConfig {
            members: 1,
            cores_per_member: 12, // paper: 12 cooperative threads per node
            partition_count: jet_imdg::DEFAULT_PARTITION_COUNT,
            backup_count: 1,
            guarantee: Guarantee::None,
            snapshot_interval: 0,
            network_latency: 500_000, // 0.5 ms, same-AZ EC2 ballpark
            cost_model: CostModel::default(),
            quantum: 20_000, // 20 µs
            batch: jet_core::tasklet::DEFAULT_BATCH,
            gc: None,
            fixed_receive_window: None,
            tracer: Tracer::disabled(),
        }
    }
}

/// A running (or restartable) cluster job on the simulator.
pub struct SimCluster {
    cfg: SimClusterConfig,
    dag: Dag,
    grid: Grid,
    clock: Arc<ManualClock>,
    shared_clock: SharedClock,
    store: SnapshotStore,
    registry: Arc<SnapshotRegistry>,
    sim: Simulator,
    cancelled: Arc<AtomicBool>,
    job_id: u64,
    /// One metrics registry per live member, rebuilt with the execution.
    member_metrics: Vec<Arc<MetricsRegistry>>,
}

impl SimCluster {
    /// Build the grid, wire the job, and place tasklets on virtual cores.
    pub fn start(dag: Dag, cfg: SimClusterConfig) -> Result<SimCluster, String> {
        let grid = Grid::with_partition_count(cfg.members, cfg.backup_count, cfg.partition_count);
        let clock = Arc::new(ManualClock::new());
        let shared_clock: SharedClock = clock.clone();
        let store = SnapshotStore::new(&grid, 1);
        let registry = if cfg.snapshot_interval > 0 {
            Arc::new(SnapshotRegistry::new(store.clone(), 0))
        } else {
            Arc::new(SnapshotRegistry::disabled())
        };
        let mut me = SimCluster {
            cfg,
            dag,
            grid,
            clock,
            shared_clock,
            store,
            registry,
            sim: Simulator::new(Arc::new(ManualClock::new()), CostModel::default(), 1),
            cancelled: Arc::new(AtomicBool::new(false)),
            job_id: 1,
            member_metrics: Vec::new(),
        };
        me.build_execution(None)?;
        Ok(me)
    }

    fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            cores_per_member: self.cfg.cores_per_member,
            batch: self.cfg.batch,
            guarantee: self.cfg.guarantee,
            clock: self.shared_clock.clone(),
            partition_count: self.cfg.partition_count,
            fixed_receive_window: self.cfg.fixed_receive_window,
            tracer: self.cfg.tracer.clone(),
        }
    }

    /// (Re)build the execution — used at start, after failure, and after
    /// rescaling. `restore` names the snapshot to reload.
    fn build_execution(&mut self, restore: Option<u64>) -> Result<(), String> {
        let members = self.grid.members();
        let transport = Arc::new(InMemoryTransport::new(
            self.shared_clock.clone(),
            self.cfg.network_latency,
        ));
        // A fresh registry per execution (acks from the old execution must
        // not leak in), sharing the same durable store.
        self.registry = if self.cfg.snapshot_interval > 0 {
            let r = Arc::new(SnapshotRegistry::new(self.store.clone(), 0));
            // Continue snapshot ids after the restored one.
            if let Some(id) = restore {
                r.fast_forward_to(id);
            }
            r
        } else {
            Arc::new(SnapshotRegistry::disabled())
        };
        let table = self.grid.table();
        let restore_pair = restore.map(|id| (&self.store, id));
        let exec: ClusterExecution = build_cluster_execution(
            &self.dag,
            &members,
            &table,
            transport,
            &self.cluster_config(),
            &self.registry,
            match &restore_pair {
                Some((s, id)) => Some((s, *id)),
                None => None,
            },
        )?;
        self.cancelled = exec.cancelled.clone();
        self.member_metrics = exec.members.iter().map(|m| m.metrics.clone()).collect();
        // Fresh simulator on the SAME clock: virtual time continues across
        // recoveries, so latency measurements span the outage.
        let mut sim = Simulator::new(
            self.clock.clone(),
            self.cfg.cost_model.clone(),
            self.cfg.quantum,
        );
        if let Some(gc) = self.cfg.gc.clone() {
            sim = sim.with_gc(gc);
        }
        sim = sim.with_tracer(self.cfg.tracer.clone());
        for (mi, member_exec) in exec.members.into_iter().enumerate() {
            let base = mi * self.cfg.cores_per_member;
            let pid = members[mi].0;
            for c in 0..self.cfg.cores_per_member {
                sim.add_core_labeled(pid, &format!("m{}/core-{}", pid, c));
            }
            for (k, (tasklet, counters)) in member_exec.tasklets.into_iter().enumerate() {
                sim.assign(base + (k % self.cfg.cores_per_member), tasklet, counters);
            }
        }
        self.sim = sim;
        Ok(())
    }

    /// Job identifier (names the snapshot maps in the grid).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    pub fn registry(&self) -> Arc<SnapshotRegistry> {
        self.registry.clone()
    }

    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    pub fn clock(&self) -> Arc<ManualClock> {
        self.clock.clone()
    }

    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    pub fn live_tasklets(&self) -> usize {
        self.sim.live_tasklets()
    }

    /// Busy virtual nanos per core since execution (re)build — utilization
    /// diagnostics for calibration.
    pub fn busy_nanos(&self) -> Vec<u64> {
        self.sim.busy_nanos()
    }

    /// Per-member metrics registries of the current execution.
    pub fn member_metrics(&self) -> &[Arc<MetricsRegistry>] {
        &self.member_metrics
    }

    /// Aggregate every member's registry into one job-level snapshot,
    /// stamped with the `job` tag.
    pub fn job_metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for reg in &self.member_metrics {
            snap.merge(&reg.snapshot());
        }
        snap.with_tag("job", &self.job_id.to_string())
    }

    /// Prometheus text exposition of [`Self::job_metrics`].
    pub fn prometheus(&self) -> String {
        self.job_metrics().render_prometheus()
    }

    /// Per-tasklet (core, name, in, out) diagnostics.
    pub fn tasklet_stats(&self) -> Vec<(usize, String, u64, u64)> {
        self.sim.tasklet_stats()
    }

    /// Per-tasklet (core, name, state, in, out) diagnostics.
    pub fn tasklet_details(&self) -> Vec<(usize, String, &'static str, u64, u64)> {
        self.sim.tasklet_details()
    }

    /// The job's tracer (disabled unless configured via
    /// [`SimClusterConfig::tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.cfg.tracer
    }

    /// Drain pending span records from every worker ring into `data`.
    /// Call periodically during long traced runs so rings don't overflow.
    pub fn drain_trace_into(&self, data: &mut TraceData) {
        self.cfg.tracer.drain_into(data);
    }

    /// Render the plain-text job diagnostics dump. Pass the accumulated
    /// trace to include latency attribution; `None` renders the
    /// metrics-only view.
    pub fn diagnostics_dump(&self, trace: Option<&TraceData>) -> String {
        crate::diagnostics::render_dump(
            self.job_id,
            self.now(),
            &self.job_metrics(),
            &self.tasklet_details(),
            trace,
        )
    }

    /// Advance the job by `duration` virtual nanos, auto-triggering
    /// snapshots at the configured interval. Returns true if the job
    /// finished.
    pub fn run_for(&mut self, duration: u64) -> bool {
        let interval = self.cfg.snapshot_interval;
        let registry = self.registry.clone();
        self.sim.run_for(duration, |now| {
            if interval > 0 {
                registry.maybe_trigger(now, interval);
            }
        })
    }

    /// Run with a custom per-quantum hook in addition to snapshot triggers.
    pub fn run_for_with(&mut self, duration: u64, mut hook: impl FnMut(u64)) -> bool {
        let interval = self.cfg.snapshot_interval;
        let registry = self.registry.clone();
        self.sim.run_for(duration, |now| {
            if interval > 0 {
                registry.maybe_trigger(now, interval);
            }
            hook(now);
        })
    }

    /// Cooperatively stop the job and drain.
    pub fn cancel(&self) {
        self.cancelled
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Kill `member` abruptly and recover from the latest complete snapshot
    /// (§4.4). Returns the snapshot id recovered from (None = cold restart).
    pub fn kill_member_and_recover(&mut self, member: MemberId) -> Result<Option<u64>, String> {
        self.grid.kill_member(member).map_err(|e| e.to_string())?;
        // In-flight state dies with the execution.
        let latest = self.store.latest_complete();
        self.cfg.members = self.grid.members().len();
        self.build_execution(latest)?;
        Ok(latest)
    }

    /// Gracefully add a member and rescale: terminal snapshot, rebuild with
    /// the larger cluster from it (§4.3).
    pub fn add_member_and_rescale(&mut self, max_wait: u64) -> Result<MemberId, String> {
        if self.cfg.snapshot_interval == 0 {
            return Err("rescaling requires snapshots enabled".into());
        }
        let id = self
            .registry
            .trigger_terminal()
            .ok_or("terminal snapshot could not be triggered")?;
        let deadline = self.now() + max_wait;
        while self.registry.completed() < id && self.now() < deadline {
            self.run_for(self.cfg.quantum * 16);
        }
        if self.registry.completed() < id {
            return Err("terminal snapshot did not complete in time".into());
        }
        let new_member = self.grid.add_member();
        self.cfg.members = self.grid.members().len();
        self.build_execution(Some(id))?;
        Ok(new_member)
    }
}

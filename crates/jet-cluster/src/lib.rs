//! # jet-cluster — multi-member job execution
//!
//! Deploys a jet-core DAG across a cluster of members (paper §3.1, Fig. 3):
//! every member runs the complete dataflow, partitioned edges route by the
//! grid's partition table (aligning compute with IMDG state placement,
//! §4.1), and member boundaries are crossed through the flow-controlled
//! sender/receiver exchange pair (§3.3).
//!
//! * [`wiring`] — the multi-member execution planner.
//! * [`runtime`] — job lifecycle on the virtual-time simulator: periodic
//!   snapshots, failure + recovery (§4.4), elastic rescaling (§4.3).
//! * [`coordinator`] — heartbeat failure detection and recovery
//!   orchestration: suspect/fence with grace, bounded-backoff retry,
//!   documented degradation to cold restart (§4.4).
//! * [`controller`] — elastic autoscaling: windowed stall/occupancy/
//!   receive-window telemetry driving live rescale through a hysteresis +
//!   cooldown + bounded-backoff decision state machine (§4.3, §7.7).
//! * [`active_active`] — the §4.6 alternative to snapshots: run the job
//!   twice, fail over by switching consumers.

pub mod active_active;
pub mod controller;
pub mod coordinator;
pub mod diagnostics;
pub mod runtime;
pub mod wiring;

pub use active_active::{ActiveActive, ActiveSide};
pub use controller::{Controller, ControllerConfig, ControllerEvent, Direction, Phase};
pub use coordinator::{ClusterEvent, Coordinator, CoordinatorConfig, MemberHealth};
pub use runtime::{SimCluster, SimClusterConfig};
pub use wiring::{build_cluster_execution, ClusterConfig, ClusterExecution, MemberExecution};

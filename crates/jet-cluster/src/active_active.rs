//! Active-active deployments (paper §4.6).
//!
//! "Instead of running large deployments of a stream processor and
//! requiring very efficient fault-tolerance mechanisms, we opted for
//! enabling users to use less resources for a given workload, allowing them
//! to run active-active deployments in which the job is executed twice (one
//! active and one as active stand-by). In the absence of book-keeping and
//! overhead for fault tolerance such a deployment can sustain failures, but
//! it also performs extremely efficiently."
//!
//! Both replicas run the identical deterministic job with snapshots
//! disabled. The consumer reads from the active replica; on failure it
//! switches to the standby — no recovery pause, no barrier overhead, at the
//! cost of 2× resources. Ablation A3 quantifies the trade against
//! snapshot-based exactly-once.

use crate::runtime::{SimCluster, SimClusterConfig};
use jet_core::Dag;
use jet_imdg::MemberId;

/// Which replica the consumer currently reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveSide {
    Primary,
    Standby,
}

/// A pair of identical jobs; the consumer follows `active`.
pub struct ActiveActive {
    pub primary: SimCluster,
    pub standby: SimCluster,
    active: ActiveSide,
    primary_failed: bool,
}

impl ActiveActive {
    /// Launch the same DAG twice. The DAG's sinks should be parameterized by
    /// the caller so each replica writes to its own output (pass two dags
    /// built from the same pipeline with different sink targets).
    pub fn start(
        primary_dag: Dag,
        standby_dag: Dag,
        cfg: SimClusterConfig,
    ) -> Result<ActiveActive, String> {
        let mut cfg = cfg;
        cfg.guarantee = jet_core::Guarantee::None;
        cfg.snapshot_interval = 0; // §4.6: no book-keeping at all
        Ok(ActiveActive {
            primary: SimCluster::start(primary_dag, cfg.clone())?,
            standby: SimCluster::start(standby_dag, cfg)?,
            active: ActiveSide::Primary,
            primary_failed: false,
        })
    }

    pub fn active(&self) -> ActiveSide {
        self.active
    }

    /// Advance both replicas by the same virtual duration.
    pub fn run_for(&mut self, duration: u64) -> bool {
        let mut done = true;
        if !self.primary_failed {
            done &= self.primary.run_for(duration);
        }
        done &= self.standby.run_for(duration);
        done
    }

    /// Fail the whole primary deployment; the consumer switches to the
    /// standby instantly (that is the point: failover is a pointer swap,
    /// not a recovery protocol).
    pub fn fail_primary(&mut self) {
        self.primary_failed = true;
        // Kill every member so the replica truly stops producing.
        let members: Vec<MemberId> = self.primary.grid().members();
        for m in members {
            let _ = self.primary.grid().kill_member(m);
        }
        self.primary.cancel();
        self.active = ActiveSide::Standby;
    }

    pub fn primary_failed(&self) -> bool {
        self.primary_failed
    }
}

//! # jet-bench — the reproduction harness
//!
//! One binary per paper figure/table (see DESIGN.md §4 for the full index)
//! plus criterion micro-benches. This library holds the shared runner: build
//! a NEXMark query as a pipeline, execute it on the virtual-time cluster
//! simulator with the paper's measurement methodology (§7.1 — the latency
//! clock starts at each event's predetermined occurrence time; measurement
//! begins after warm-up), and report the percentile series the paper plots.
//!
//! Scale-down vs the paper (documented per experiment in EXPERIMENTS.md):
//! virtual cores per member, input rates, and measurement durations are
//! reduced so each figure reproduces in minutes on one physical CPU; the
//! *shapes* (who wins, where knees fall) are the reproduction target, not
//! absolute numbers.

use jet_cluster::{
    ClusterEvent, ControllerConfig, ControllerEvent, CoordinatorConfig, SimCluster,
    SimClusterConfig,
};
use jet_core::flight::{
    band_waterfalls, AttributionConfig, AttributionReport, FlightConfig, FlightRecorder,
    LatencyWatchdog, ProvenanceSampler, SpikeFidelity, SpikeReport, WatchdogConfig,
};
use jet_core::metrics::{
    json_escape, HistogramSummary, MetricsSnapshot, SharedCounter, SharedHistogram,
};
use jet_core::processor::Guarantee;
use jet_core::processors::WatermarkPolicy;
use jet_core::telemetry::{Timeline, TimelineConfig};
use jet_core::trace::{TraceData, Tracer};
use jet_core::{JobQuotas, Ts};
use jet_nexmark::{queries, NexmarkConfig};
use jet_pipeline::{Pipeline, WindowDef};
use jet_util::Histogram;
use std::fmt::Write as _;
use std::path::PathBuf;

pub const SEC: u64 = 1_000_000_000;
pub const MS: u64 = 1_000_000;

/// Traced runs capture the final stretch of the measurement window
/// (virtual nanos) rather than all of it — see [`run`].
pub const TRACE_TAIL_WINDOW: u64 = 250 * MS;

/// Which NEXMark query to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    Q5SingleStage,
    Q6,
    Q7,
    Q8,
    Q13,
}

impl Query {
    pub fn name(&self) -> &'static str {
        match self {
            Query::Q1 => "Q1",
            Query::Q2 => "Q2",
            Query::Q3 => "Q3",
            Query::Q4 => "Q4",
            Query::Q5 => "Q5",
            Query::Q5SingleStage => "Q5-single",
            Query::Q6 => "Q6",
            Query::Q7 => "Q7",
            Query::Q8 => "Q8",
            Query::Q13 => "Q13",
        }
    }
}

/// One experiment run description.
#[derive(Clone)]
pub struct RunSpec {
    pub query: Query,
    pub members: usize,
    pub cores_per_member: usize,
    /// Total input rate, events/second (all members together).
    pub total_rate: u64,
    /// Window definition for windowed queries.
    pub window: WindowDef,
    /// Virtual time to run before measurement starts (windows must fill).
    pub warmup: u64,
    /// Virtual measurement duration.
    pub measure: u64,
    pub guarantee: Guarantee,
    /// 0 disables snapshots.
    pub snapshot_interval: u64,
    pub nexmark: NexmarkConfig,
    pub gc: Option<jet_sim::GcModel>,
    pub cost_model: jet_sim::CostModel,
    pub fixed_receive_window: Option<u64>,
    pub partition_count: u32,
    /// Deterministic fault schedule injected on the virtual timeline.
    pub fault_plan: Option<jet_sim::FaultPlan>,
    /// Heartbeat failure detector + self-healing recovery; required for a
    /// `fault_plan` crash to be detected rather than fatal.
    pub coordinator: Option<CoordinatorConfig>,
    /// Capture an execution trace of the measurement period (Chrome
    /// trace-event spans + diagnostics dump in the [`RunResult`]).
    pub trace: bool,
    /// Arm the tail-latency watchdog + flight recorder: spikes detected
    /// online on the virtual timeline freeze their span window and are
    /// root-cause attributed in [`RunResult::spike`]. Implies span
    /// collection (the tracer runs even when `trace` is false), but is
    /// invisible on the virtual timeline — percentiles are bit-identical
    /// with the watchdog on or off.
    pub spike: Option<WatchdogConfig>,
    /// Arm full-distribution latency attribution: the latency sink stamps
    /// sampled per-event provenance and the flight recorder's span ring
    /// runs (no watchdog required), so [`RunResult::attribution`] carries a
    /// per-percentile-band latency waterfall. Invisible on the virtual
    /// timeline — percentiles are bit-identical on or off.
    pub attribution: bool,
    /// Sample the job-wide metrics snapshot into delta-encoded rings at a
    /// fixed cadence ([`RunResult::timeline`], exported by
    /// [`write_timeline`]). Invisible on the virtual timeline.
    pub timeline: Option<TimelineConfig>,
    /// Arm the elastic autoscaling controller: the cluster watches windowed
    /// occupancy/stall telemetry on the controller's cadence and live
    /// rescales itself mid-run. Decisions land in
    /// [`RunResult::controller_events`] and the `"controller"` section of
    /// `BENCH_*.json`.
    pub controller: Option<ControllerConfig>,
    /// Per-job weighted round-robin scheduling quotas (multi-tenant
    /// fairness, §7.7). Vertices opt in by `job<N>-` name prefix.
    pub quotas: Option<JobQuotas>,
}

impl RunSpec {
    pub fn new(query: Query, total_rate: u64) -> RunSpec {
        RunSpec {
            query,
            members: 1,
            cores_per_member: 4,
            total_rate,
            window: WindowDef::sliding(SEC as Ts, (10 * MS) as Ts),
            warmup: 2 * SEC,
            measure: 3 * SEC,
            guarantee: Guarantee::None,
            snapshot_interval: 0,
            nexmark: NexmarkConfig::default(),
            gc: None,
            cost_model: jet_sim::CostModel::paper_calibrated(),
            fixed_receive_window: None,
            partition_count: jet_imdg::DEFAULT_PARTITION_COUNT,
            fault_plan: None,
            coordinator: None,
            trace: false,
            spike: None,
            attribution: false,
            timeline: None,
            controller: None,
            quotas: None,
        }
    }
}

/// Result of one run.
pub struct RunResult {
    /// Latency histogram over the measurement period (nanos).
    pub hist: Histogram,
    /// Output events observed in the measurement period.
    pub outputs: u64,
    /// Input events generated in the measurement period (approximate:
    /// rate × duration).
    pub inputs: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_secs: f64,
    /// Virtual seconds simulated.
    pub virtual_secs: f64,
    /// Job-wide metrics snapshot taken at the end of the measurement
    /// period (all members merged).
    pub metrics: MetricsSnapshot,
    /// Execution trace of the measurement period ([`RunSpec::trace`]).
    pub trace: Option<TraceData>,
    /// Diagnostics dump rendered at the end of the run (always available
    /// when traced; trace sections fall back to `n/a` otherwise).
    pub diagnostics: Option<String>,
    /// Detector/recovery event log (empty unless a coordinator ran).
    pub cluster_events: Vec<ClusterEvent>,
    /// Spike forensics ([`RunSpec::spike`]): every detected excursion with
    /// its frozen window and critical-path attribution. `bench`/`run` are
    /// stamped by [`write_spike_report`].
    pub spike: Option<SpikeReport>,
    /// Full-distribution latency waterfall ([`RunSpec::attribution`]):
    /// p50/p99/p99.99 exemplar journeys decomposed into exact-sum cause
    /// slices; embedded in `BENCH_*.json` by [`BenchReport::add_run`].
    pub attribution: Option<AttributionReport>,
    /// The run's metrics timeline ([`RunSpec::timeline`]); export it with
    /// [`write_timeline`].
    pub timeline: Option<Timeline>,
    /// Autoscaling decision timeline ([`RunSpec::controller`]): `Some`
    /// (possibly empty) when a controller was armed; embedded in
    /// `BENCH_*.json` by [`BenchReport::add_run`].
    pub controller_events: Option<Vec<ControllerEvent>>,
    /// Cluster size when the run ended (equals the starting size unless the
    /// controller rescaled).
    pub members_final: usize,
}

impl RunResult {
    pub fn p(&self, pct: f64) -> f64 {
        self.hist.percentile(pct) as f64 / 1e6
    }

    pub fn summary(&self) -> String {
        format!(
            "{} | out={} ({:.2}M/s out) [{:.0}s wall]",
            self.hist.latency_summary_ms(),
            self.outputs,
            self.outputs as f64 / self.virtual_secs / 1e6,
            self.wall_secs,
        )
    }
}

/// Build the query pipeline with a latency sink attached.
pub fn build_query(spec: &RunSpec, hist: &SharedHistogram, count: &SharedCounter) -> Pipeline {
    build_query_watched(spec, hist, count, LatencyWatchdog::disabled())
}

/// As [`build_query`], but the latency sink also feeds each sample to the
/// spike watchdog.
pub fn build_query_watched(
    spec: &RunSpec,
    hist: &SharedHistogram,
    count: &SharedCounter,
    watchdog: LatencyWatchdog,
) -> Pipeline {
    build_query_instrumented(spec, hist, count, watchdog, ProvenanceSampler::disabled())
}

/// As [`build_query_watched`], but the latency sink also stamps sampled
/// per-event provenance for full-distribution attribution.
pub fn build_query_instrumented(
    spec: &RunSpec,
    hist: &SharedHistogram,
    count: &SharedCounter,
    watchdog: LatencyWatchdog,
    sampler: ProvenanceSampler,
) -> Pipeline {
    let p = Pipeline::create();
    let src = queries::source(
        &p,
        &spec.nexmark,
        spec.total_rate,
        None,
        WatermarkPolicy::default(),
    );
    let h = hist.clone();
    let c = count.clone();
    let w = watchdog;
    let s = sampler;
    match spec.query {
        Query::Q1 => {
            queries::q1(&src).write_to_latency_instrumented(h, c, w, s);
        }
        Query::Q2 => {
            queries::q2(&src).write_to_latency_instrumented(h, c, w, s);
        }
        Query::Q3 => {
            queries::q3(&src).write_to_latency_instrumented(h, c, w, s);
        }
        Query::Q4 => {
            queries::q4(&src, spec.window.size).write_to_latency_instrumented(h, c, w, s);
        }
        Query::Q5 => {
            queries::q5(&src, spec.window).write_to_latency_instrumented(h, c, w, s);
        }
        Query::Q5SingleStage => {
            queries::q5_single_stage(&src, spec.window).write_to_latency_instrumented(h, c, w, s);
        }
        Query::Q6 => {
            queries::q6(&src, spec.window.size).write_to_latency_instrumented(h, c, w, s);
        }
        Query::Q7 => {
            queries::q7(&src, spec.window.size).write_to_latency_instrumented(h, c, w, s);
        }
        Query::Q8 => {
            queries::q8(&src, spec.window.size).write_to_latency_instrumented(h, c, w, s);
        }
        Query::Q13 => {
            let side: Vec<(u64, String)> = (0..spec.nexmark.auctions)
                .map(|a| (a, format!("auction-{a}")))
                .collect();
            queries::q13(&p, &src, side).write_to_latency_instrumented(h, c, w, s);
        }
    }
    p
}

/// Execute one run: warm up, clear the histogram, measure.
pub fn run(spec: &RunSpec) -> RunResult {
    let hist = SharedHistogram::new();
    let count = SharedCounter::new();
    // Watchdog/flight-recorder observers live off the virtual timeline
    // (they never advance the clock), so arming them cannot move a single
    // percentile — the histogram is bit-identical with `spike` on or off.
    let watchdog = match &spec.spike {
        Some(wd) => LatencyWatchdog::with_config(wd.clone()),
        None => LatencyWatchdog::disabled(),
    };
    // Full-distribution attribution needs the span ring but not the
    // watchdog: a recorder with a disabled watchdog freezes no incident
    // windows and just keeps the rolling ring for `attribute_window`.
    let flight = if spec.spike.is_some() || spec.attribution {
        FlightRecorder::with_config(FlightConfig::default(), watchdog.clone())
    } else {
        FlightRecorder::disabled()
    };
    let sampler = if spec.attribution {
        ProvenanceSampler::enabled()
    } else {
        ProvenanceSampler::disabled()
    };
    let timeline = match &spec.timeline {
        Some(tc) => Timeline::with_config(tc.clone()),
        None => Timeline::disabled(),
    };
    let pipeline = build_query_instrumented(spec, &hist, &count, watchdog.clone(), sampler.clone());
    let dag = pipeline
        .compile(spec.cores_per_member)
        .expect("pipeline compiles");
    // Spike forensics needs the span stream even when no trace is kept.
    let collect_spans = spec.trace || flight.is_enabled();
    let tracer = if collect_spans {
        // Small rings (drained every ~10 ms of virtual time below) keep the
        // footprint bounded even at fig9 scale: 20 members × dozens of
        // writers each. Calls are sampled 1-in-16: they outnumber every
        // other span kind ~10:1 and the slowest ones still surface.
        Tracer::with_config(8192, 4)
    } else {
        Tracer::disabled()
    };
    let cfg = SimClusterConfig {
        members: spec.members,
        cores_per_member: spec.cores_per_member,
        partition_count: spec.partition_count,
        backup_count: 1,
        guarantee: spec.guarantee,
        snapshot_interval: spec.snapshot_interval,
        cost_model: spec.cost_model.clone(),
        gc: spec.gc.clone(),
        fixed_receive_window: spec.fixed_receive_window,
        tracer: tracer.clone(),
        fault_plan: spec.fault_plan.clone(),
        coordinator: spec.coordinator.clone(),
        flight: flight.clone(),
        timeline: timeline.clone(),
        controller: spec.controller.clone(),
        quotas: spec.quotas.clone(),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let mut cluster = SimCluster::start(dag, cfg).expect("cluster starts");
    cluster.run_for(spec.warmup);
    hist.clear();
    // The trace covers the measurement period only: throw away whatever the
    // warm-up left in the rings, and forget warm-up excursions (the adaptive
    // baseline the warm-up established is kept).
    if collect_spans {
        tracer.drain();
    }
    watchdog.clear_incidents();
    sampler.clear();
    let out_before = count.get();
    let trace = if collect_spans {
        // A full-fidelity trace of the whole measurement at fig9 scale is
        // ~15M spans; capture the *tail* of the window instead — a steady
        // -state zoom that fits the collector with near-zero drops. The
        // latency histogram still covers the full measurement period, and
        // the flight recorder ingests every drain, so spikes anywhere in the
        // measurement freeze their window.
        let tail = if spec.trace {
            spec.measure.min(TRACE_TAIL_WINDOW)
        } else {
            0
        };
        let head = spec.measure - tail;
        let mut scratch = TraceData::new();
        let mut data = TraceData::new();
        data.capacity = 2_000_000;
        if head > 0 {
            let mut next_drain = 0u64;
            cluster.run_for_with(head, |now| {
                if now >= next_drain {
                    tracer.drain_into(&mut scratch);
                    flight.ingest(&scratch, 0);
                    scratch.events.clear();
                    next_drain = now + 10 * MS;
                }
            });
            tracer.drain_into(&mut scratch); // reset ring drop counters
            flight.ingest(&scratch, 0);
            scratch.events.clear();
        }
        if tail > 0 {
            let mut next_drain = 0u64;
            cluster.run_for_with(tail, |now| {
                if now >= next_drain {
                    tracer.drain_into(&mut scratch);
                    flight.ingest(&scratch, 0);
                    data.absorb(&mut scratch);
                    next_drain = now + 10 * MS;
                }
            });
            tracer.drain_into(&mut scratch);
            flight.ingest(&scratch, 0);
            data.absorb(&mut scratch);
        }
        spec.trace.then_some(data)
    } else {
        cluster.run_for(spec.measure);
        None
    };
    let outputs = count.get() - out_before;
    let wall = started.elapsed().as_secs_f64();
    let metrics = cluster.job_metrics();
    let diagnostics =
        (spec.trace || flight.is_enabled()).then(|| cluster.diagnostics_dump(trace.as_ref()));
    let cluster_events = cluster.cluster_events();
    let spike = spec.spike.is_some().then(|| {
        let incidents = cluster.spike_forensics();
        let (observed, suppressed) = watchdog.stats();
        let (_ingested, evicted, spans_retained, snapshots_retained) = flight.stats();
        SpikeReport {
            bench: String::new(),
            run_label: String::new(),
            threshold_nanos: watchdog.threshold(),
            fidelity: SpikeFidelity {
                trace_ring_dropped: tracer.dropped_total(),
                collector_dropped: trace.as_ref().map_or(0, |d| d.dropped),
                recorder_evicted: evicted,
                sample_shift: tracer.sample_shift(),
                spans_retained,
                snapshots_retained,
                observed,
                suppressed,
            },
            incidents,
        }
    });
    let final_hist = hist.snapshot();
    let attribution = spec.attribution.then(|| {
        // Decompose the measured distribution at the paper's three
        // headline bands. The network hint matches the cluster's one-way
        // latency (the SimClusterConfig default — `run` does not override
        // it).
        let bands = [
            ("p50", 50.0, final_hist.percentile(50.0)),
            ("p99", 99.0, final_hist.percentile(99.0)),
            ("p99.99", 99.99, final_hist.percentile(99.99)),
        ];
        band_waterfalls(&sampler, &flight, &AttributionConfig::default(), &bands)
    });
    let controller_events = spec
        .controller
        .is_some()
        .then(|| cluster.controller_events());
    let members_final = cluster.grid().members().len();
    cluster.cancel();
    RunResult {
        hist: final_hist,
        outputs,
        inputs: spec.total_rate * spec.measure / SEC,
        wall_secs: wall,
        virtual_secs: spec.measure as f64 / 1e9,
        metrics,
        trace,
        diagnostics,
        cluster_events,
        spike,
        attribution,
        timeline: spec.timeline.is_some().then_some(timeline),
        controller_events,
        members_final,
    }
}

/// Write the captured trace as `results/TRACE_<name>.json` (Chrome
/// trace-event format — load it in Perfetto or `chrome://tracing`) and the
/// diagnostics dump as `results/TRACE_<name>.txt`. Returns the JSON path,
/// or `None` when the run was not traced.
pub fn write_trace(name: &str, r: &RunResult) -> std::io::Result<Option<PathBuf>> {
    let Some(trace) = &r.trace else {
        return Ok(None);
    };
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("TRACE_{name}.json"));
    std::fs::write(&path, trace.to_chrome_json())?;
    if let Some(dump) = &r.diagnostics {
        std::fs::write(dir.join(format!("TRACE_{name}.txt")), dump)?;
    }
    eprintln!(
        "  [trace written to {} — {} spans, {} dropped]",
        path.display(),
        trace.events.len(),
        trace.dropped
    );
    Ok(Some(path))
}

/// Write the spike forensics as `results/SPIKE_<name>.json` (schema
/// `jet-spike-v1`, validated by the `schema-check` xtask) and print a
/// one-line verdict per incident. Returns the path, or `None` when the run
/// had no watchdog armed.
pub fn write_spike_report(
    name: &str,
    label: &str,
    r: &RunResult,
) -> std::io::Result<Option<PathBuf>> {
    let Some(spike) = &r.spike else {
        return Ok(None);
    };
    let mut report = spike.clone();
    report.bench = name.to_string();
    report.run_label = label.to_string();
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("SPIKE_{name}.json"));
    std::fs::write(&path, report.to_json())?;
    eprintln!(
        "  [spike report written to {} — {} incidents]",
        path.display(),
        report.incidents.len()
    );
    for inc in &report.incidents {
        let a = &inc.attribution;
        eprintln!(
            "    incident #{}: peak {:.3}ms -> {} ({}){}",
            inc.incident.id,
            inc.incident.peak_latency as f64 / 1e6,
            a.top_cause.name(),
            a.top_group,
            match &a.blamed_vertex {
                Some(v) => format!(", vertex {v}"),
                None => String::new(),
            }
        );
    }
    Ok(Some(path))
}

/// Write the run's metrics timeline as `results/TIMELINE_<name>.json`
/// (schema `jet-timeline-v1`, validated by the `schema-check` xtask).
/// Returns the path, or `None` when the run had no timeline armed.
pub fn write_timeline(name: &str, label: &str, r: &RunResult) -> std::io::Result<Option<PathBuf>> {
    let Some(timeline) = &r.timeline else {
        return Ok(None);
    };
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("TIMELINE_{name}.json"));
    std::fs::write(&path, timeline.to_json(name, label))?;
    let (samples, series, _, evicted) = timeline.stats();
    eprintln!(
        "  [timeline written to {} — {} samples, {} series, {} ticks evicted]",
        path.display(),
        samples,
        series,
        evicted
    );
    Ok(Some(path))
}

/// One controller event as a JSON object (schema
/// `runs[].controller.events[]`, validated by the `schema-check` xtask):
/// always `at`/`kind`/`label`, plus the variant's numeric fields.
fn controller_event_json(e: &ControllerEvent) -> String {
    let mut s = format!(
        "{{\"at\": {}, \"kind\": \"{}\", \"label\": \"{}\"",
        e.at(),
        e.kind(),
        json_escape(&e.label())
    );
    match e {
        ControllerEvent::Decided {
            direction,
            occupancy,
            stall_rate,
            members,
            ..
        } => {
            let _ = write!(
                s,
                ", \"direction\": \"{}\", \"occupancy\": {occupancy}, \
                 \"stall_rate\": {stall_rate}, \"members\": {members}",
                direction.name()
            );
        }
        ControllerEvent::RescaleCompleted {
            direction, members, ..
        } => {
            let _ = write!(
                s,
                ", \"direction\": \"{}\", \"members\": {members}",
                direction.name()
            );
        }
        ControllerEvent::RescaleFailed {
            direction,
            failures,
            cause,
            ..
        } => {
            let _ = write!(
                s,
                ", \"direction\": \"{}\", \"failures\": {failures}, \"cause\": \"{}\"",
                direction.name(),
                json_escape(cause)
            );
        }
        ControllerEvent::CooldownEntered { until, .. } => {
            let _ = write!(s, ", \"until\": {until}");
        }
        ControllerEvent::BackoffEntered {
            until, failures, ..
        } => {
            let _ = write!(s, ", \"until\": {until}, \"failures\": {failures}");
        }
        ControllerEvent::Degraded { failures, .. } => {
            let _ = write!(s, ", \"failures\": {failures}");
        }
    }
    s.push('}');
    s
}

/// Standard percentile row used by the figure binaries.
pub fn percentile_row(h: &Histogram) -> String {
    format!(
        "p50={:8.3}ms p90={:8.3}ms p99={:8.3}ms p99.9={:8.3}ms p99.99={:8.3}ms max={:8.3}ms n={}",
        h.percentile(50.0) as f64 / 1e6,
        h.percentile(90.0) as f64 / 1e6,
        h.percentile(99.0) as f64 / 1e6,
        h.percentile(99.9) as f64 / 1e6,
        h.percentile(99.99) as f64 / 1e6,
        h.max() as f64 / 1e6,
        h.count(),
    )
}

/// The percentile curve (Fig. 9/11/12 style).
pub fn percentile_curve(h: &Histogram) -> Vec<(f64, f64)> {
    [50.0, 70.0, 80.0, 90.0, 95.0, 99.0, 99.9, 99.99, 100.0]
        .iter()
        .map(|&p| (p, h.percentile(p) as f64 / 1e6))
        .collect()
}

/// Machine-readable results file shared by every figure/ablation binary:
/// `results/BENCH_<name>.json` holds the bench-level parameters plus, per
/// run, its parameters, latency percentiles, throughput accounting, and the
/// job-wide metrics snapshot.
pub struct BenchReport {
    name: String,
    params: Vec<(String, String)>,
    runs: Vec<RunRecord>,
}

struct RunRecord {
    label: String,
    params: Vec<(String, String)>,
    values: Vec<(String, f64)>,
    latency: Option<HistogramSummary>,
    metrics: Option<MetricsSnapshot>,
    attribution: Option<AttributionReport>,
    /// Autoscaler decision timeline + final cluster size, when a
    /// controller was armed for the run.
    controller: Option<(Vec<ControllerEvent>, usize)>,
}

impl BenchReport {
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            params: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Record a bench-level parameter (applies to every run).
    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Record one measured run with its full [`RunResult`].
    pub fn add_run(&mut self, label: &str, params: &[(&str, String)], r: &RunResult) {
        self.runs.push(RunRecord {
            label: label.to_string(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            values: vec![
                ("outputs".into(), r.outputs as f64),
                ("inputs".into(), r.inputs as f64),
                ("wall_secs".into(), r.wall_secs),
                ("virtual_secs".into(), r.virtual_secs),
            ],
            latency: Some(HistogramSummary::of(&r.hist)),
            metrics: Some(r.metrics.clone()),
            attribution: r.attribution.clone(),
            controller: r
                .controller_events
                .as_ref()
                .map(|ev| (ev.clone(), r.members_final)),
        });
    }

    /// Record a run that has no latency histogram (e.g. wall-clock
    /// throughput ablations) as a bag of named scalars.
    pub fn add_values(&mut self, label: &str, params: &[(&str, String)], values: &[(&str, f64)]) {
        self.runs.push(RunRecord {
            label: label.to_string(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            values: values.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            latency: None,
            metrics: None,
            attribution: None,
            controller: None,
        });
    }

    pub fn to_json(&self) -> String {
        fn obj(pairs: &[(String, String)]) -> String {
            let body = pairs
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{{{body}}}")
        }
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"bench\": \"{}\",\n  \"params\": {},\n  \"runs\": [",
            json_escape(&self.name),
            obj(&self.params)
        );
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"label\": \"{}\", \"params\": {}",
                json_escape(&r.label),
                obj(&r.params)
            );
            for (k, v) in &r.values {
                let v = if v.is_finite() { *v } else { -1.0 };
                let _ = write!(s, ", \"{}\": {v}", json_escape(k));
            }
            if let Some(l) = &r.latency {
                let _ = write!(
                    s,
                    ", \"latency_nanos\": {{\"count\": {}, \"min\": {}, \"max\": {}, \
                     \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                     \"p999\": {}, \"p9999\": {}}}",
                    l.count, l.min, l.max, l.mean, l.p50, l.p90, l.p99, l.p999, l.p9999
                );
            }
            if let Some(m) = &r.metrics {
                let _ = write!(s, ", \"metrics\": {}", m.render_json());
            }
            if let Some(a) = &r.attribution {
                let _ = write!(s, ", \"attribution\": {}", a.to_json("    "));
            }
            if let Some((events, final_members)) = &r.controller {
                let _ = write!(
                    s,
                    ", \"controller\": {{\"final_members\": {final_members}, \"events\": ["
                );
                for (j, e) in events.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&controller_event_json(e));
                }
                s.push_str("]}");
            }
            s.push('}');
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Write `results/BENCH_<name>.json` next to the latency output and
    /// return its path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        eprintln!("  [report written to {}]", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_report_json_has_the_shared_schema() {
        let mut hist = Histogram::latency();
        for v in [MS, 2 * MS, 5 * MS, 10 * MS] {
            hist.record(v);
        }
        let reg = jet_core::metrics::MetricsRegistry::new();
        reg.counter(
            "jet_events_in_total",
            jet_core::metrics::tags(&[("vertex", "v")]),
        )
        .add(4);
        let r = RunResult {
            hist,
            outputs: 4,
            inputs: 100,
            wall_secs: 0.5,
            virtual_secs: 3.0,
            metrics: reg.snapshot(),
            trace: None,
            diagnostics: None,
            cluster_events: Vec::new(),
            spike: None,
            attribution: Some(AttributionReport {
                observed: 4,
                sampled: 4,
                sample_shift: 0,
                bands: Vec::new(),
            }),
            timeline: None,
            controller_events: Some(vec![
                ControllerEvent::Decided {
                    at: 15 * MS,
                    direction: jet_cluster::Direction::Up,
                    occupancy: 912_345,
                    stall_rate: 2_500,
                    members: 2,
                },
                ControllerEvent::RescaleCompleted {
                    at: 40 * MS,
                    direction: jet_cluster::Direction::Up,
                    members: 3,
                },
                ControllerEvent::CooldownEntered {
                    at: 40 * MS,
                    until: 90 * MS,
                },
            ]),
            members_final: 3,
        };
        let mut report = BenchReport::new("unit");
        report.param("query", "Q5").param("members", 2);
        report.add_run("case-a", &[("rate", "1000".to_string())], &r);
        report.add_values("case-b", &[], &[("speedup", 2.5)]);
        let json = report.to_json();
        for key in [
            "\"bench\": \"unit\"",
            "\"params\": {\"query\": \"Q5\", \"members\": \"2\"}",
            "\"label\": \"case-a\"",
            "\"latency_nanos\"",
            "\"p9999\"",
            "\"outputs\": 4",
            "\"metrics\": {\"metrics\":[",
            "jet_events_in_total",
            "\"speedup\": 2.5",
            "\"attribution\": {",
            "\"observed\": 4, \"sampled\": 4, \"sample_shift\": 0",
            "\"bands\": [",
            "\"controller\": {\"final_members\": 3, \"events\": [",
            "\"kind\": \"decided\"",
            "\"direction\": \"up\", \"occupancy\": 912345",
            "\"kind\": \"rescale-completed\"",
            "\"kind\": \"cooldown\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces/brackets — a cheap structural sanity check given
        // the writer emits JSON by hand.
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close, "unbalanced JSON:\n{json}");
    }
}

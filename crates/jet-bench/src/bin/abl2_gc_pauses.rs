//! **Ablation A2** — GC interference (paper §5): the evaluation configures
//! G1 with a 5 ms pause target doing most work concurrently; §5 argues that
//! keeping collection off the data path is what makes p99.99 < 10 ms
//! possible on the JVM. Rust has no GC; the simulator injects pauses to
//! quantify what the paper's engineering avoids:
//!
//! * none         — this repository's natural mode;
//! * concurrent   — rotating single-core 5 ms pauses (the paper's target);
//! * stop-world   — 50 ms global pauses (what an untuned collector does).

use jet_bench::{percentile_row, run, BenchReport, Query, RunSpec, MS, SEC};
use jet_core::Ts;
use jet_pipeline::WindowDef;
use jet_sim::GcModel;

fn main() {
    println!("# Ablation A2: injected GC pauses vs Q5 latency (1 member x 2 vcores, 1M ev/s)");
    let mut report = BenchReport::new("abl2");
    report.param("query", "Q5").param("total_rate", 1_000_000);
    let cases: Vec<(&str, Option<GcModel>)> = vec![
        ("none", None),
        ("concurrent-5ms/100ms", Some(GcModel::paper_g1())),
        (
            "stop-world-50ms/500ms",
            Some(GcModel::stop_world(50 * MS, 500 * MS)),
        ),
    ];
    for (name, gc) in cases {
        let mut spec = RunSpec::new(Query::Q5, 1_000_000);
        spec.cores_per_member = 2;
        spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
        spec.warmup = SEC + 500 * MS;
        spec.measure = 3 * SEC;
        spec.gc = gc;
        let r = run(&spec);
        println!("{name:24} {}", percentile_row(&r.hist));
        eprintln!("  [{name} done in {:.0}s wall]", r.wall_secs);
        report.add_run(name, &[("gc", name.to_string())], &r);
    }
    report.write().expect("report");
}

//! **Figure 12 reproduction** — "Latency for NEXMark queries on a 10-node
//! cluster" (§7.5). Same methodology as Figure 11 with a 10-member cluster;
//! the paper's observation is that the distributions barely move from the
//! 5-node ones.

use jet_bench::{percentile_curve, run, BenchReport, Query, RunSpec, MS, SEC};
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    println!("# Figure 12: latency distribution per query on a 10-member cluster (FT off)");
    let mut report = BenchReport::new("fig12");
    report
        .param("members", 10)
        .param("cores_per_member", 2)
        .param("total_rate", 400_000);
    for query in [Query::Q1, Query::Q2, Query::Q5, Query::Q8, Query::Q13] {
        let mut spec = RunSpec::new(query, 400_000);
        spec.members = 10;
        spec.cores_per_member = 2;
        spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
        spec.warmup = SEC + 500 * MS;
        spec.measure = 1500 * MS;
        spec.guarantee = jet_core::Guarantee::None;
        let r = run(&spec);
        print!("{:4}", query.name());
        for (p, ms) in percentile_curve(&r.hist) {
            print!("  p{p}={ms:.3}ms");
        }
        println!("  n={}", r.hist.count());
        eprintln!("  [{} done in {:.0}s wall]", query.name(), r.wall_secs);
        report.add_run(query.name(), &[("query", query.name().to_string())], &r);
    }
    report.write().expect("report");
}

//! **Figure 8 reproduction** — "99th percentile latency for all NEXMark
//! queries for fixed input throughput of 1M events/s" while scaling the
//! cluster out (paper: 1→20 nodes, DOP 12→240).
//!
//! Paper result: latency stays essentially FLAT in cluster size; p99.99
//! never exceeds 16 ms (worst: Q5 at DOP 240); simple queries (Q1, Q2) add
//! almost nothing; Q5/Q8 are the most demanding.
//!
//! Scale-down: 2 vcores/member, total rate 400k ev/s (fixed across sizes,
//! like the paper's fixed 1M), members ∈ {1, 5, 10, 20}.

use jet_bench::{run, BenchReport, Query, RunSpec, MS, SEC};
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    println!("# Figure 8: p99 latency, fixed total input rate, scaling members out");
    println!("# query members dop p99_ms p99.99_ms n");
    let mut report = BenchReport::new("fig8");
    report
        .param("total_rate", 400_000)
        .param("cores_per_member", 2);
    for query in [Query::Q1, Query::Q2, Query::Q5, Query::Q8, Query::Q13] {
        for members in [1usize, 5, 10, 20] {
            let mut spec = RunSpec::new(query, 400_000);
            spec.members = members;
            spec.cores_per_member = 2;
            spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
            spec.warmup = SEC + 500 * MS;
            spec.measure = 1500 * MS;
            let r = run(&spec);
            println!(
                "{:4} {:3} {:4} {:10.3} {:10.3} {}",
                query.name(),
                members,
                members * 2,
                r.p(99.0),
                r.p(99.99),
                r.hist.count(),
            );
            eprintln!(
                "  [{} x{members} done in {:.0}s wall]",
                query.name(),
                r.wall_secs
            );
            report.add_run(
                &format!("{}-x{members}", query.name()),
                &[
                    ("query", query.name().to_string()),
                    ("members", members.to_string()),
                ],
                &r,
            );
        }
    }
    report.write().expect("report");
}

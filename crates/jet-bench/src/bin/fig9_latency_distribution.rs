//! **Figure 9 reproduction** — "Distribution of latencies of all NEXMark
//! queries for 1M events per second and cluster size of DOP=240."
//!
//! Paper result: the 99.9th percentile latency is at worst 10 ms; simple
//! queries sit at/below 1 ms across the whole distribution, windowed
//! queries (Q5, Q8) rise towards the tail.
//!
//! Scale-down: largest cluster = 20 members × 2 vcores (DOP 40), total
//! rate 400k ev/s.
//!
//! Pass `--trace` (or set `JET_TRACE=1`) to capture an execution trace of
//! each query's measurement period: `results/TRACE_fig9_<query>.json` is
//! Chrome trace-event JSON (load in Perfetto), `.txt` the diagnostics dump.
//!
//! Pass `--spike-report` to also arm the tail-latency watchdog: detected
//! p99.99 excursions are frozen and root-cause attributed in
//! `results/SPIKE_fig9_<query>.json`. The watchdog observes off the virtual
//! timeline, so the percentile curves are bit-identical with or without it.
//!
//! Full-distribution attribution and the metrics timeline are always armed:
//! each run's `BENCH_fig9.json` record carries a p50/p99/p99.99 latency
//! waterfall and each query writes `results/TIMELINE_fig9_<query>.json`.
//! Both observe off the virtual timeline too — the percentile curves are
//! the reproduction target and stay bit-identical.

use jet_bench::{
    percentile_curve, run, write_spike_report, write_timeline, write_trace, BenchReport, Query,
    RunSpec, MS, SEC,
};
use jet_core::flight::WatchdogConfig;
use jet_core::telemetry::TimelineConfig;
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    let trace = std::env::args().any(|a| a == "--trace")
        || std::env::var("JET_TRACE").is_ok_and(|v| v == "1");
    let spike_report = std::env::args().any(|a| a == "--spike-report");
    println!("# Figure 9: latency distribution per query at the largest cluster size");
    println!("# query then (percentile, latency_ms) pairs");
    let mut report = BenchReport::new("fig9");
    report
        .param("members", 20)
        .param("cores_per_member", 2)
        .param("total_rate", 400_000)
        .param("trace", trace);
    for query in [Query::Q1, Query::Q2, Query::Q5, Query::Q8, Query::Q13] {
        let mut spec = RunSpec::new(query, 400_000);
        spec.members = 20;
        spec.cores_per_member = 2;
        spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
        spec.warmup = SEC + 500 * MS;
        spec.measure = 1500 * MS;
        spec.trace = trace;
        if spike_report {
            spec.spike = Some(WatchdogConfig::default());
        }
        spec.attribution = true;
        spec.timeline = Some(TimelineConfig::default());
        let r = run(&spec);
        print!("{:4}", query.name());
        for (p, ms) in percentile_curve(&r.hist) {
            print!("  p{p}={ms:.3}ms");
        }
        println!("  n={}", r.hist.count());
        eprintln!("  [{} done in {:.0}s wall]", query.name(), r.wall_secs);
        write_trace(&format!("fig9_{}", query.name()), &r).expect("trace");
        write_spike_report(&format!("fig9_{}", query.name()), query.name(), &r).expect("spike");
        write_timeline(&format!("fig9_{}", query.name()), query.name(), &r).expect("timeline");
        report.add_run(query.name(), &[("query", query.name().to_string())], &r);
    }
    report.write().expect("report");
}

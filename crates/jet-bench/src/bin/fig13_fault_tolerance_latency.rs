//! **Figure 13 reproduction** — "Latency in Query 5, with checkpoints
//! enabled" (§7.6): 1 s snapshot interval, exactly-once, 1 backup replica.
//!
//! Paper result: "Jet's latency at the 99.99th percentile when checkpoints
//! are enabled is about 350 ms. Latency remains very low for 70% of the
//! events approximately, then spikes up to approximately 200 ms at the 90%,
//! and continues to rise sharply up to the 99%th percentile where it
//! smoothens." The mechanism: while exactly-once barriers align, input
//! channels block; events queued behind the alignment inherit the stall.
//!
//! The same stepped distribution emerges here — low median, a sharp rise in
//! the upper percentiles driven by the once-per-second alignment stalls.

use jet_bench::{
    percentile_curve, run, write_spike_report, write_timeline, BenchReport, Query, RunSpec, MS, SEC,
};
use jet_core::flight::WatchdogConfig;
use jet_core::telemetry::TimelineConfig;
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    // `--spike-report` arms the tail-latency watchdog on the crash run and
    // writes `results/SPIKE_fig13.json` with the root-cause attribution of
    // every detected p99.99 excursion.
    let spike_report = std::env::args().any(|a| a == "--spike-report");
    let mut report = BenchReport::new("fig13");
    report
        .param("query", "Q5")
        .param("members", 2)
        .param("snapshot_interval", "1s");
    println!("# Figure 13: Q5 latency with 1s exactly-once checkpoints (2 members, 1 backup)");
    let mut spec = RunSpec::new(Query::Q5, 400_000);
    spec.members = 2;
    spec.cores_per_member = 2;
    // 3 s window so the snapshotted state is sizable (the paper used 10 s:
    // serializing the window state is what drives the spikes).
    spec.window = WindowDef::sliding((3 * SEC) as Ts, (10 * MS) as Ts);
    spec.warmup = 3 * SEC + 500 * MS;
    spec.measure = 8 * SEC; // cover several checkpoint rounds
    spec.guarantee = jet_core::Guarantee::ExactlyOnce;
    spec.snapshot_interval = SEC;
    // Every fig13 run carries a full-distribution latency waterfall; the
    // checkpointed run also samples a metrics timeline (the once-per-second
    // alignment stalls show up as breathing in the queue-depth sparklines).
    spec.attribution = true;
    spec.timeline = Some(TimelineConfig::default());
    let r = run(&spec);
    write_timeline("fig13", "exactly-once-1s", &r).expect("timeline");
    for (p, ms) in percentile_curve(&r.hist) {
        println!("p{p:6}  {ms:10.3} ms");
    }
    println!("# n={} wall={:.0}s", r.hist.count(), r.wall_secs);
    report.add_run(
        "exactly-once-1s",
        &[("guarantee", "exactly-once".to_string())],
        &r,
    );
    println!("# compare: same load without checkpoints");
    let mut base = spec.clone();
    base.guarantee = jet_core::Guarantee::None;
    base.snapshot_interval = 0;
    base.measure = 3 * SEC;
    let rb = run(&base);
    println!(
        "# no-checkpoint p50={:.3}ms p99.99={:.3}ms | with-checkpoint p50={:.3}ms p99.99={:.3}ms",
        rb.p(50.0),
        rb.p(99.99),
        r.p(50.0),
        r.p(99.99),
    );
    report.add_run("no-checkpoint", &[("guarantee", "none".to_string())], &rb);

    // Same checkpointed load with a member crash injected mid-measurement,
    // detected by the heartbeat coordinator (not an API kill): the upper
    // percentiles now include detection delay + snapshot-restore recovery,
    // the full outage a real deployment would see (§7.6).
    println!("# compare: same load with a detected member crash mid-measurement");
    let mut faulted = spec.clone();
    let crash_at = faulted.warmup + 4 * SEC;
    let mut plan = jet_sim::FaultPlan::new(13);
    plan.crash(crash_at, 1);
    faulted.fault_plan = Some(plan);
    faulted.coordinator = Some(jet_cluster::CoordinatorConfig::default());
    if spike_report {
        faulted.spike = Some(WatchdogConfig::default());
    }
    let rf = run(&faulted);
    write_spike_report("fig13", "detected-crash", &rf).expect("spike report");
    let fenced_at = rf
        .cluster_events
        .iter()
        .find(|e| matches!(e, jet_cluster::ClusterEvent::Fenced { .. }))
        .map(|e| e.at());
    let recovered_at = rf
        .cluster_events
        .iter()
        .find(|e| matches!(e, jet_cluster::ClusterEvent::RecoveryCompleted { .. }))
        .map(|e| e.at());
    let detection_ms = fenced_at
        .map(|t| (t - crash_at) as f64 / 1e6)
        .unwrap_or(-1.0);
    let recovery_ms = match (fenced_at, recovered_at) {
        (Some(f), Some(r)) => (r - f) as f64 / 1e6,
        _ => -1.0,
    };
    println!(
        "# detected-crash p50={:.3}ms p99.99={:.3}ms (detection {:.1}ms, recovery {:.1}ms)",
        rf.p(50.0),
        rf.p(99.99),
        detection_ms,
        recovery_ms,
    );
    report.add_run(
        "detected-crash",
        &[
            ("guarantee", "exactly-once".to_string()),
            ("crash_at_ms", (crash_at / MS).to_string()),
            ("detection_ms", format!("{detection_ms:.3}")),
            ("recovery_ms", format!("{recovery_ms:.3}")),
        ],
        &rf,
    );
    report.write().expect("report");
}

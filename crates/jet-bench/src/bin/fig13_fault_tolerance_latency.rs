//! **Figure 13 reproduction** — "Latency in Query 5, with checkpoints
//! enabled" (§7.6): 1 s snapshot interval, exactly-once, 1 backup replica.
//!
//! Paper result: "Jet's latency at the 99.99th percentile when checkpoints
//! are enabled is about 350 ms. Latency remains very low for 70% of the
//! events approximately, then spikes up to approximately 200 ms at the 90%,
//! and continues to rise sharply up to the 99%th percentile where it
//! smoothens." The mechanism: while exactly-once barriers align, input
//! channels block; events queued behind the alignment inherit the stall.
//!
//! The same stepped distribution emerges here — low median, a sharp rise in
//! the upper percentiles driven by the once-per-second alignment stalls.

use jet_bench::{percentile_curve, run, BenchReport, Query, RunSpec, MS, SEC};
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    let mut report = BenchReport::new("fig13");
    report
        .param("query", "Q5")
        .param("members", 2)
        .param("snapshot_interval", "1s");
    println!("# Figure 13: Q5 latency with 1s exactly-once checkpoints (2 members, 1 backup)");
    let mut spec = RunSpec::new(Query::Q5, 400_000);
    spec.members = 2;
    spec.cores_per_member = 2;
    // 3 s window so the snapshotted state is sizable (the paper used 10 s:
    // serializing the window state is what drives the spikes).
    spec.window = WindowDef::sliding((3 * SEC) as Ts, (10 * MS) as Ts);
    spec.warmup = 3 * SEC + 500 * MS;
    spec.measure = 8 * SEC; // cover several checkpoint rounds
    spec.guarantee = jet_core::Guarantee::ExactlyOnce;
    spec.snapshot_interval = SEC;
    let r = run(&spec);
    for (p, ms) in percentile_curve(&r.hist) {
        println!("p{p:6}  {ms:10.3} ms");
    }
    println!("# n={} wall={:.0}s", r.hist.count(), r.wall_secs);
    report.add_run(
        "exactly-once-1s",
        &[("guarantee", "exactly-once".to_string())],
        &r,
    );
    println!("# compare: same load without checkpoints");
    let mut base = spec.clone();
    base.guarantee = jet_core::Guarantee::None;
    base.snapshot_interval = 0;
    base.measure = 3 * SEC;
    let rb = run(&base);
    println!(
        "# no-checkpoint p50={:.3}ms p99.99={:.3}ms | with-checkpoint p50={:.3}ms p99.99={:.3}ms",
        rb.p(50.0),
        rb.p(99.99),
        r.p(50.0),
        r.p(99.99),
    );
    report.add_run("no-checkpoint", &[("guarantee", "none".to_string())], &rb);
    report.write().expect("report");
}

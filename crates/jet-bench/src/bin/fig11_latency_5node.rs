//! **Figure 11 reproduction** — "Latency for NEXMark queries on a 5-node
//! cluster" (fault tolerance disabled, §7.5).
//!
//! Paper result: map/filter queries stay at or below ~1 ms even at p99.99;
//! join/window queries reach 11–12 ms at p99.99 while ≥90% of their events
//! are at 2 ms or less — all with a window triggering every 10 ms.

use jet_bench::{percentile_curve, run, BenchReport, Query, RunSpec, MS, SEC};
use jet_core::Ts;
use jet_pipeline::WindowDef;

pub fn run_for_members(members: usize, report: &mut BenchReport) {
    for query in [Query::Q1, Query::Q2, Query::Q5, Query::Q8, Query::Q13] {
        let mut spec = RunSpec::new(query, 400_000);
        spec.members = members;
        spec.cores_per_member = 2;
        spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
        spec.warmup = SEC + 500 * MS;
        spec.measure = 1500 * MS;
        spec.guarantee = jet_core::Guarantee::None; // §7.5: FT disabled
        let r = run(&spec);
        print!("{:4}", query.name());
        for (p, ms) in percentile_curve(&r.hist) {
            print!("  p{p}={ms:.3}ms");
        }
        println!("  n={}", r.hist.count());
        eprintln!(
            "  [{} x{members} done in {:.0}s wall]",
            query.name(),
            r.wall_secs
        );
        report.add_run(query.name(), &[("query", query.name().to_string())], &r);
    }
}

fn main() {
    println!("# Figure 11: latency distribution per query on a 5-member cluster (FT off)");
    let mut report = BenchReport::new("fig11");
    report
        .param("members", 5)
        .param("cores_per_member", 2)
        .param("total_rate", 400_000);
    run_for_members(5, &mut report);
    report.write().expect("report");
}

//! **Keyed-state scale sweep** (`fig_keyscale`): p99.99 and resident
//! bytes-per-key as the keyspace grows 10k → 10M at a fixed event rate.
//!
//! The claim under test is the tentpole of the keyed frame store: tail
//! latency must not degrade with key count. Every per-window obligation
//! that used to be O(keys) in one quantum — emission, eviction,
//! checkpoint serialization — is amortized over bounded chunks, so the
//! p99.99 at 10M keys must stay within 3x of the p99.99 at 10k keys under
//! identical load, while open-addressing tables keep resident state at or
//! under 128 bytes per live key.
//!
//! Two branches share the workers:
//! * a keyed branch: `rate` events/s round-robin over `keys` distinct
//!   keys into a sliding counting window (8 s / 2 s), exactly-once with a
//!   1 s snapshot interval — the state-heavy job that used to produce
//!   O(keys) stalls;
//! * a probe branch: a light source straight into a latency sink. Its
//!   p99.99 is the clean interference signal: any stop-the-world work in
//!   the keyed job stalls the shared workers and shows up here.
//!
//! Resident bytes and live keys come from the `jet_state_resident_bytes` /
//! `jet_state_keys_records` gauges, read mid-stream (the generators are
//! unbounded; metrics are sampled before cancellation so the store is at
//! steady state, not drained).
//!
//! `--smoke` runs a scaled-down sweep for CI (small keyspaces, short
//! windows); the full sweep writes `results/BENCH_fig_keyscale.json`.

use jet_bench::{percentile_row, BenchReport, RunResult, MS, SEC};
use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::processors::agg::counting;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef};

struct Sweep {
    scales: &'static [u64],
    rate: u64,
    probe_rate: u64,
    window: Ts,
    slide: Ts,
    warmup: u64,
    measure: u64,
}

const FULL: Sweep = Sweep {
    scales: &[10_000, 100_000, 1_000_000, 10_000_000],
    rate: 400_000,
    probe_rate: 50_000,
    window: (8 * SEC) as Ts,
    slide: (2 * SEC) as Ts,
    warmup: 9 * SEC + 500 * MS,
    measure: 6 * SEC,
};

const SMOKE: Sweep = Sweep {
    scales: &[10_000, 50_000],
    rate: 100_000,
    probe_rate: 20_000,
    window: (2 * SEC) as Ts,
    slide: (500 * MS) as Ts,
    warmup: 2 * SEC + 500 * MS,
    measure: 2 * SEC,
};

struct ScaleResult {
    run: RunResult,
    window_hist: jet_util::Histogram,
    probe_p9999: f64,
    resident_bytes: f64,
    resident_keys: f64,
    bytes_per_key: f64,
}

fn run_scale(sweep: &Sweep, keys: u64) -> ScaleResult {
    let p = Pipeline::create();
    let probe_hist = SharedHistogram::new();
    let probe_count = SharedCounter::new();
    let window_hist = SharedHistogram::new();
    let window_count = SharedCounter::new();

    // Keyed branch: fixed rate, round-robin keyspace, sliding count.
    p.read_from_generator("keyed-src", sweep.rate, move |seq, _| (seq % keys, seq))
        .grouping_key(|(k, _): &(u64, u64)| *k)
        .window(WindowDef::sliding(sweep.window, sweep.slide))
        .aggregate(counting::<(u64, u64)>())
        .write_to_latency(window_hist.clone(), window_count.clone());

    // Probe branch: interference signal on the shared workers.
    p.read_from_generator("probe-src", sweep.probe_rate, |seq, _| seq)
        .write_to_latency(probe_hist.clone(), probe_count.clone());

    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members: 1,
        cores_per_member: 2,
        cost_model: jet_sim::CostModel::paper_calibrated(),
        guarantee: jet_core::processor::Guarantee::ExactlyOnce,
        snapshot_interval: SEC,
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(sweep.warmup);
    probe_hist.clear();
    window_hist.clear();
    let before = probe_count.get();
    cluster.run_for(sweep.measure);
    let outputs = probe_count.get() - before;
    // Mid-stream gauges: the generators are unbounded, so the keyed store
    // is at steady state here — `resident_keys` reflects live keys, not a
    // drained end-of-job store.
    let metrics = cluster.job_metrics();
    let resident_bytes: f64 = metrics
        .get_all("jet_state_resident_bytes")
        .filter_map(jet_core::metrics::Metric::as_gauge)
        .sum::<i64>() as f64;
    let resident_keys: f64 = metrics
        .get_all("jet_state_keys_records")
        .filter_map(jet_core::metrics::Metric::as_gauge)
        .sum::<i64>() as f64;
    let members_final = cluster.grid().members().len();
    cluster.cancel();
    let run = RunResult {
        hist: probe_hist.snapshot(),
        outputs,
        inputs: sweep.probe_rate * sweep.measure / SEC,
        wall_secs: started.elapsed().as_secs_f64(),
        virtual_secs: sweep.measure as f64 / 1e9,
        metrics,
        trace: None,
        diagnostics: None,
        cluster_events: Vec::new(),
        spike: None,
        attribution: None,
        timeline: None,
        controller_events: None,
        members_final,
    };
    let probe_p9999 = run.hist.percentile(99.99) as f64;
    ScaleResult {
        probe_p9999,
        resident_bytes,
        resident_keys,
        bytes_per_key: resident_bytes / resident_keys.max(1.0),
        window_hist: window_hist.snapshot(),
        run,
    }
}

fn scale_label(keys: u64) -> String {
    match keys {
        k if k >= 1_000_000 => format!("keys-{}M", k / 1_000_000),
        k => format!("keys-{}k", k / 1_000),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep = if smoke { &SMOKE } else { &FULL };
    println!(
        "# Keyed-state scale sweep{}: {}k ev/s over {:?} keys, window {}s/{}ms, \
         exactly-once @1s, probe {}k ev/s",
        if smoke { " (smoke)" } else { "" },
        sweep.rate / 1000,
        sweep.scales,
        sweep.window / SEC as Ts,
        sweep.slide / MS as Ts,
        sweep.probe_rate / 1000,
    );
    let mut report = BenchReport::new("fig_keyscale");
    report
        .param("rate", sweep.rate)
        .param("probe_rate", sweep.probe_rate)
        .param("window_ms", sweep.window / MS as Ts)
        .param("slide_ms", sweep.slide / MS as Ts)
        .param("snapshot_interval", "1s")
        .param("smoke", smoke)
        .param("measure_ms", sweep.measure / MS);

    let mut results: Vec<(u64, ScaleResult)> = Vec::new();
    for &keys in sweep.scales {
        let r = run_scale(sweep, keys);
        let label = scale_label(keys);
        println!("{label:10} probe  {}", percentile_row(&r.run.hist));
        println!("{label:10} window {}", percentile_row(&r.window_hist));
        println!(
            "{label:10} resident {:.1} MiB over {:.0} live keys = {:.1} B/key \
             (wall {:.0}s)",
            r.resident_bytes / (1024.0 * 1024.0),
            r.resident_keys,
            r.bytes_per_key,
            r.run.wall_secs,
        );
        report.add_run(&label, &[("keys", keys.to_string())], &r.run);
        report.add_values(
            &format!("{label}-state"),
            &[("keys", keys.to_string())],
            &[
                ("keys", keys as f64),
                ("probe_p9999_ms", r.probe_p9999 / 1e6),
                (
                    "window_p9999_ms",
                    r.window_hist.percentile(99.99) as f64 / 1e6,
                ),
                ("resident_bytes", r.resident_bytes),
                ("resident_keys", r.resident_keys),
                ("bytes_per_key", r.bytes_per_key),
            ],
        );
        results.push((keys, r));
    }

    let (min_keys, first) = &results[0];
    let (max_keys, last) = &results[results.len() - 1];
    let ratio = last.probe_p9999 / first.probe_p9999.max(1.0);
    println!(
        "probe p99.99: {:.3}ms @{} -> {:.3}ms @{} ({ratio:.2}x); \
         {:.1} B/key @{}",
        first.probe_p9999 / 1e6,
        scale_label(*min_keys),
        last.probe_p9999 / 1e6,
        scale_label(*max_keys),
        last.bytes_per_key,
        scale_label(*max_keys),
    );
    report.add_values(
        "sweep",
        &[],
        &[
            ("p9999_ratio", ratio),
            ("max_scale_bytes_per_key", last.bytes_per_key),
        ],
    );
    report.write().expect("report");

    assert!(
        ratio <= 3.0,
        "probe p99.99 degraded {ratio:.2}x from {} to {} keys (bound: 3x)",
        min_keys,
        max_keys
    );
    assert!(
        last.bytes_per_key <= 128.0,
        "resident state {:.1} B/key at {} keys exceeds the 128 B/key budget",
        last.bytes_per_key,
        max_keys
    );
    println!(
        "ACCEPTANCE: p99.99 within 3x across the sweep, \
         <=128 B/key at the largest scale"
    );
}

//! **Elastic autoscaling figure** (ROADMAP item 5, §4.5 machinery): an
//! undersized cluster saturated by its input stream scales itself up
//! mid-run — the controller watches windowed occupancy/stall telemetry on
//! its virtual-time cadence, orders a live rescale through the
//! terminal-snapshot path, and the backlog drains on the larger topology.
//!
//! Three runs on the same workload:
//! * `static-2` — the undersized topology, no controller (what the paper's
//!   operator would see before intervening);
//! * `static-3` — the provisioned topology, the latency target;
//! * `autoscale` — starts at 2 members with the controller armed and ends
//!   at 3, cutting the tail the undersized run accumulates.
//!
//! The controller's decision timeline is embedded in
//! `results/BENCH_fig_autoscale.json` (`runs[].controller`, validated by
//! the `schema-check` xtask).

use jet_bench::{percentile_row, BenchReport, RunResult, MS, SEC};
use jet_cluster::{ControllerConfig, ControllerEvent, SimCluster, SimClusterConfig};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::processor::Guarantee;
use jet_core::processors::agg::counting;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef};

const RATE: u64 = 16_000_000;
const LIMIT: u64 = 1_600_000;
const KEYS: u64 = 16;

/// The drained-backlog counting job from the chaos-autoscale lane: a 16M
/// ev/s generator against ~13M ev/s of 2-member capacity, so occupancy
/// pins near 100% until the topology grows.
fn build(hist: &SharedHistogram, count: &SharedCounter) -> jet_core::Dag {
    let p = Pipeline::create();
    p.read_from_generator_cfg(
        "gen",
        RATE,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _| (seq % KEYS, seq),
    )
    .grouping_key(|(k, _): &(u64, u64)| *k)
    .window(WindowDef::tumbling((10 * MS) as Ts))
    .aggregate(counting::<(u64, u64)>())
    .write_to_latency(hist.clone(), count.clone());
    p.compile(2).unwrap()
}

fn controller() -> ControllerConfig {
    ControllerConfig {
        cadence: 5 * MS,
        window: 4,
        scale_up_occupancy: 700_000,
        scale_down_occupancy: 100_000,
        min_members: 2,
        max_members: 3,
        cooldown: 50 * MS,
        rescale_max_wait: 200 * MS,
        ..ControllerConfig::default()
    }
}

fn run_one(members: usize, ctl: Option<ControllerConfig>) -> RunResult {
    let hist = SharedHistogram::new();
    let count = SharedCounter::new();
    let dag = build(&hist, &count);
    let cfg = SimClusterConfig {
        members,
        cores_per_member: 2,
        partition_count: 31,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        controller: ctl.clone(),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    // Finite stream: run to completion (the backlog drains well inside the
    // budget on every topology) and track when the job actually finished.
    let mut finished_at = 2 * SEC;
    let mut last = 0;
    let done = cluster.run_for_with(2 * SEC, |now| last = now);
    if done {
        finished_at = last.max(1);
    }
    assert!(done, "job did not drain its backlog in the budget");
    assert!(
        cluster.failed().is_none(),
        "job failed: {:?}",
        cluster.failed()
    );
    let controller_events = ctl.is_some().then(|| cluster.controller_events());
    let members_final = cluster.grid().members().len();
    let metrics = cluster.job_metrics();
    cluster.cancel();
    RunResult {
        hist: hist.snapshot(),
        outputs: count.get(),
        inputs: LIMIT,
        wall_secs: started.elapsed().as_secs_f64(),
        virtual_secs: finished_at as f64 / 1e9,
        metrics,
        trace: None,
        diagnostics: None,
        cluster_events: cluster.cluster_events(),
        spike: None,
        attribution: None,
        timeline: None,
        controller_events,
        members_final,
    }
}

fn main() {
    println!(
        "# Autoscale: counting job, {}M ev/s for {:.0}ms of input, \
         exactly-once, 5ms snapshots",
        RATE / 1_000_000,
        LIMIT as f64 / RATE as f64 * 1e3
    );
    let mut report = BenchReport::new("fig_autoscale");
    report
        .param("rate", RATE)
        .param("events", LIMIT)
        .param("guarantee", "exactly-once")
        .param("snapshot_interval_ms", 5)
        .param("scale_up_occupancy", controller().scale_up_occupancy)
        .param("cooldown_ms", controller().cooldown / MS);

    for (label, members, ctl) in [
        ("static-2", 2, None),
        ("static-3", 3, None),
        ("autoscale", 2, Some(controller())),
    ] {
        let r = run_one(members, ctl);
        println!(
            "{label:10}  members {}->{}  drained in {:7.1}ms  {}",
            members,
            r.members_final,
            r.virtual_secs * 1e3,
            percentile_row(&r.hist)
        );
        if let Some(events) = &r.controller_events {
            for e in events {
                println!("            t={:7.1}ms  {}", e.at() as f64 / 1e6, e.label());
            }
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, ControllerEvent::RescaleCompleted { members: 3, .. })),
                "controller never scaled the cluster up: {events:?}"
            );
            assert_eq!(r.members_final, 3, "autoscaled run must end at 3 members");
        }
        report.add_run(
            label,
            &[
                ("members_start", members.to_string()),
                ("controller", r.controller_events.is_some().to_string()),
            ],
            &r,
        );
    }
    report.write().expect("report");
}

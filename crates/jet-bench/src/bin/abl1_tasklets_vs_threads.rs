//! **Ablation A1** — tasklets + cooperative threads vs the
//! thread-per-operator model (paper §3.1–3.2: "Jet does not follow the
//! typical operator-per-core model"; §7.7's multi-tenancy rests on this).
//!
//! This ablation runs on REAL threads and the wall clock (not the
//! simulator): the same batch workload — N independent source→map→sink
//! chains — executed (a) by a fixed pool of cooperative worker threads
//! round-robining all tasklets, and (b) with one OS thread per tasklet.
//! As N grows, (b) drowns in context switches and scheduler pressure while
//! (a) degrades gracefully.

use jet_core::dag::{Dag, Edge};
use jet_core::exec::{spawn_thread_per_operator, spawn_threaded};
use jet_core::metrics::SharedCounter;
use jet_core::plan::{build_local, LocalConfig};
use jet_core::processors::{CountSink, GeneratorSource, TransformP};
use jet_core::snapshot::SnapshotRegistry;
use jet_core::supplier;
use std::sync::Arc;
use std::time::Instant;

const EVENTS_PER_CHAIN: u64 = 40_000;

fn build(chains: usize, count: &SharedCounter) -> (Dag, usize) {
    let mut dag = Dag::new();
    for c in 0..chains {
        let src = dag.vertex_with_parallelism(
            format!("src{c}"),
            1,
            supplier(move |_| {
                Box::new(
                    GeneratorSource::new(u64::MAX / 2, Arc::new(|seq, _| jet_core::boxed(seq)))
                        .with_limit(EVENTS_PER_CHAIN),
                )
            }),
        );
        let map = dag.vertex_with_parallelism(
            format!("map{c}"),
            1,
            supplier(|_| {
                Box::new(TransformP::new(vec![jet_core::processors::map_stage(
                    |v: &u64| v.wrapping_mul(2654435761),
                )]))
            }),
        );
        let c2 = count.clone();
        let sink = dag.vertex_with_parallelism(
            format!("sink{c}"),
            1,
            supplier(move |_| Box::new(CountSink::new(c2.clone()))),
        );
        dag.edge(Edge::between(src, map));
        dag.edge(Edge::between(map, sink));
    }
    (dag, chains * 3)
}

fn run_mode(chains: usize, thread_per_op: bool) -> (f64, u64) {
    let count = SharedCounter::new();
    let (dag, _tasklets) = build(chains, &count);
    let registry = Arc::new(SnapshotRegistry::disabled());
    let cfg = LocalConfig::new(1);
    let exec = build_local(&dag, &cfg, &registry, None).unwrap();
    let started = Instant::now();
    let handle = if thread_per_op {
        spawn_thread_per_operator(exec.tasklets, exec.cancelled)
    } else {
        spawn_threaded(exec.tasklets, 2, exec.cancelled)
    };
    handle.join();
    let secs = started.elapsed().as_secs_f64();
    (secs, count.get())
}

fn main() {
    println!(
        "# Ablation A1: cooperative tasklets vs thread-per-operator (real threads, wall clock)"
    );
    println!("# chains ops  tasklet_secs  tpo_secs  tasklet_Mev/s  tpo_Mev/s  speedup");
    let mut report = jet_bench::BenchReport::new("abl1");
    report
        .param("events_per_chain", EVENTS_PER_CHAIN)
        .param("workers", 2);
    for chains in [4usize, 16, 64, 128] {
        let (coop_secs, n1) = run_mode(chains, false);
        let (tpo_secs, n2) = run_mode(chains, true);
        assert_eq!(n1, chains as u64 * EVENTS_PER_CHAIN);
        assert_eq!(n2, chains as u64 * EVENTS_PER_CHAIN);
        let total = n1 as f64;
        println!(
            "{chains:6} {:4} {coop_secs:12.2} {tpo_secs:9.2} {:13.2} {:10.2} {:7.2}x",
            chains * 3,
            total / coop_secs / 1e6,
            total / tpo_secs / 1e6,
            tpo_secs / coop_secs,
        );
        report.add_values(
            &format!("{chains}-chains"),
            &[("chains", chains.to_string())],
            &[
                ("tasklet_secs", coop_secs),
                ("thread_per_op_secs", tpo_secs),
                ("events", total),
                ("speedup", tpo_secs / coop_secs),
            ],
        );
    }
    report.write().expect("report");
}

//! **Figure 10 reproduction** — "Throughput as we increase the cluster size
//! [...] for Q5 with a sliding window of 500ms."
//!
//! Paper result: aggregate ingest scales linearly from 12 cores to 240
//! cores (up to 468M events/s), with p99.99 never exceeding 17 ms —
//! possible because the two-stage combiners cap the data exchanged once the
//! 10k keys saturate.
//!
//! Scale-down: 1 vcore per member, members ∈ {1, 2, 4, 8}; per-core offered
//! rates laddered to find the max sustainable (p99.99 ≤ 50 ms and ≥ 99% of
//! the expected windows emitted).

use jet_bench::{run, BenchReport, Query, RunSpec, MS, SEC};
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    println!("# Figure 10: Q5 (500ms slide) max sustainable aggregate throughput vs cluster size");
    println!("# members cores offered_per_core max_sustainable_aggregate p99.99_ms");
    let mut report = BenchReport::new("fig10");
    report.param("query", "Q5").param("window", "2s/500ms");
    for members in [1usize, 2, 4, 8] {
        let mut best: Option<(u64, f64)> = None;
        for rate_k_per_core in [1000u64, 1500, 1900, 2100, 2300] {
            let total = rate_k_per_core * 1000 * members as u64;
            let mut spec = RunSpec::new(Query::Q5, total);
            spec.members = members;
            spec.cores_per_member = 1;
            spec.window = WindowDef::sliding((2 * SEC) as Ts, (500 * MS) as Ts);
            spec.warmup = 2 * SEC + 500 * MS;
            spec.measure = 1500 * MS;
            let r = run(&spec);
            // Sustainability: the tail must stay bounded and the expected
            // window results must actually appear.
            let expected_windows = 3u64 * spec.nexmark.auctions.min(10_000); // 3 slides measured
            let sustainable = r.p(99.99) <= 50.0 && r.outputs >= expected_windows * 95 / 100;
            eprintln!(
                "  members={members} offered={:.2}M/core p99.99={:.2}ms out={} sustainable={sustainable} [{:.0}s wall]",
                rate_k_per_core as f64 / 1000.0,
                r.p(99.99),
                r.outputs,
                r.wall_secs
            );
            report.add_run(
                &format!("x{members}-{rate_k_per_core}k-per-core"),
                &[
                    ("members", members.to_string()),
                    ("rate_per_core", format!("{rate_k_per_core}000")),
                    ("sustainable", sustainable.to_string()),
                ],
                &r,
            );
            if sustainable {
                best = Some((total, r.p(99.99)));
            }
        }
        match best {
            Some((total, p)) => println!(
                "{:3} {:4} {:8} {:.2}M/s {:10.3}",
                members,
                members,
                "-",
                total as f64 / 1e6,
                p
            ),
            None => println!("{members:3} {members:4} - UNSATURATED-LADDER -"),
        }
    }
    report.write().expect("report");
}

//! **Ablation A3** — processing guarantees (paper §4.4–4.6): none (the
//! active-active §4.6 mode: zero book-keeping) vs at-least-once (barriers
//! forwarded without channel blocking) vs exactly-once (aligned barriers).
//! The paper's Fig. 13 shows checkpointing costs ~2 orders of magnitude at
//! the tail; §4.4 notes at-least-once "decreas[es] latency" vs exactly-once.

use jet_bench::{percentile_row, run, BenchReport, Query, RunSpec, MS, SEC};
use jet_core::processor::Guarantee;
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    println!("# Ablation A3: guarantee level vs Q5 latency (2 members, 1s snapshots)");
    let mut report = BenchReport::new("abl3");
    report
        .param("query", "Q5")
        .param("members", 2)
        .param("total_rate", 400_000);
    for (name, guarantee, interval) in [
        ("none/active-active", Guarantee::None, 0u64),
        ("at-least-once", Guarantee::AtLeastOnce, SEC),
        ("exactly-once", Guarantee::ExactlyOnce, SEC),
    ] {
        let mut spec = RunSpec::new(Query::Q5, 400_000);
        spec.members = 2;
        spec.cores_per_member = 2;
        spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
        spec.warmup = 2 * SEC;
        spec.measure = 5 * SEC;
        spec.guarantee = guarantee;
        spec.snapshot_interval = interval;
        let r = run(&spec);
        println!("{name:20} {}", percentile_row(&r.hist));
        eprintln!("  [{name} done in {:.0}s wall]", r.wall_secs);
        report.add_run(name, &[("guarantee", name.to_string())], &r);
    }
    report.write().expect("report");
}

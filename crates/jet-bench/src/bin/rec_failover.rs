//! **Recovery experiment** (Fig. 6 mechanism + §4.4 protocol): crash a
//! member mid-stream under exactly-once snapshots — *injected on the fault
//! plan and detected by the heartbeat coordinator*, not killed through an
//! omniscient API — and report
//!
//! * the detection→recovery→first-output breakdown of the output gap
//!   (detection delay is now a measured component, not zero),
//! * the partition promotions the grid performed (Fig. 6),
//! * the snapshot generation recovered from, and
//! * exactness: every event counted exactly once despite the failure.

use jet_bench::BenchReport;
use jet_cluster::{ClusterEvent, CoordinatorConfig, SimCluster, SimClusterConfig};
use jet_core::processor::Guarantee;
use jet_core::processors::agg::counting;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use jet_sim::FaultPlan;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const SEC: u64 = 1_000_000_000;
const MS: u64 = 1_000_000;

/// Timestamped window counts collected by the sink across the failover.
type Collected = Arc<Mutex<Vec<(Ts, WindowResult<u64, u64>)>>>;

fn main() {
    const LIMIT: u64 = 60_000;
    const KEYS: u64 = 64;
    const RATE: u64 = 1_000_000;
    const CRASH_AT: u64 = 30 * MS;
    const VICTIM: u32 = 1;
    println!(
        "# Recovery: 3 members, exactly-once, 5ms snapshots, \
         injected crash of m{VICTIM} at t=30ms, heartbeat detection"
    );

    let p = Pipeline::create();
    let out: Collected = Arc::new(Mutex::new(Vec::new()));
    p.read_from_generator_cfg(
        "gen",
        RATE,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _| (seq % KEYS, seq),
    )
    .grouping_key(|(k, _): &(u64, u64)| *k)
    .window(WindowDef::tumbling((20 * MS) as Ts))
    .aggregate(counting::<(u64, u64)>())
    .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();

    let detector = CoordinatorConfig::default();
    let mut plan = FaultPlan::new(0xF0);
    plan.crash(CRASH_AT, VICTIM);
    let cfg = SimClusterConfig {
        members: 3,
        cores_per_member: 2,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        fault_plan: Some(plan),
        coordinator: Some(detector.clone()),
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();

    // Run up to the crash instant and capture the pre-failure state the
    // promotions check needs.
    cluster.run_for(CRASH_AT);
    let results_before = out.lock().len();
    let table_before = cluster.grid().table();
    let victim = jet_imdg::MemberId(VICTIM);
    let owned_by_victim = table_before.owned_primaries(victim).len();

    // Run through detection + recovery to completion, recording when the
    // first post-crash window result lands.
    let mut first_output_at = None;
    let done = cluster.run_for_with(120 * SEC, |now| {
        if first_output_at.is_none() && out.lock().len() > results_before {
            first_output_at = Some(now);
        }
    });
    assert!(done, "job did not finish after recovery");

    let events = cluster.cluster_events();
    let at_of = |f: &dyn Fn(&ClusterEvent) -> bool| events.iter().find(|e| f(e)).map(|e| e.at());
    let suspected_at = at_of(&|e| matches!(e, ClusterEvent::Suspected { .. }))
        .expect("victim was never suspected");
    let fenced_at =
        at_of(&|e| matches!(e, ClusterEvent::Fenced { .. })).expect("victim was never fenced");
    let recovered_at = at_of(&|e| matches!(e, ClusterEvent::RecoveryCompleted { .. }))
        .expect("recovery never completed");
    let recovered = events.iter().find_map(|e| match e {
        ClusterEvent::RecoveryCompleted { snapshot, .. } => Some(*snapshot),
        _ => None,
    });
    let first_output_at = first_output_at.expect("no output after the crash");

    let table_after = cluster.grid().table();
    println!(
        "m{VICTIM} crashed at t={:.1}ms; it owned {owned_by_victim} primary partitions",
        CRASH_AT as f64 / 1e6
    );
    println!(
        "suspected at {:.1}ms, fenced at {:.1}ms, recovered at {:.1}ms \
         from snapshot {:?}; table version {} -> {}",
        suspected_at as f64 / 1e6,
        fenced_at as f64 / 1e6,
        recovered_at as f64 / 1e6,
        recovered.flatten(),
        table_before.version(),
        table_after.version()
    );
    // Fig. 6: promotions — every partition the victim owned has a new live
    // primary that previously held its backup.
    let mut promoted = 0;
    for part in table_before.owned_primaries(victim) {
        let new_primary = table_after.primary(part).unwrap();
        if table_before.backups(part).contains(&new_primary) {
            promoted += 1;
        }
    }
    println!("promotions: {promoted}/{owned_by_victim} partitions promoted from their backups");

    // The output gap, broken into its components (§7.6: detection delay is
    // part of the gap a real deployment sees).
    let detection = fenced_at - CRASH_AT;
    let recovery = recovered_at - fenced_at;
    let resume = first_output_at.saturating_sub(recovered_at);
    let gap = first_output_at - CRASH_AT;
    println!(
        "output gap after crash: {:.1} ms = detection {:.1} + recovery {:.1} + resume {:.1}",
        gap as f64 / 1e6,
        detection as f64 / 1e6,
        recovery as f64 / 1e6,
        resume as f64 / 1e6,
    );

    // Exactness.
    let results = out.lock();
    let mut per_key: HashMap<u64, u64> = HashMap::new();
    let mut windows: HashMap<(u64, Ts), u64> = HashMap::new();
    for (_, r) in results.iter() {
        windows.insert((r.key, r.end), r.value);
    }
    for (&(k, _), &v) in windows.iter() {
        *per_key.entry(k).or_insert(0) += v;
    }
    let total: u64 = per_key.values().sum();
    println!(
        "exactness: counted {total} of {LIMIT} events across {} keys -> {}",
        per_key.len(),
        if total == LIMIT {
            "EXACTLY-ONCE HOLDS"
        } else {
            "VIOLATION"
        }
    );
    assert_eq!(total, LIMIT);

    let mut report = BenchReport::new("rec_failover");
    report
        .param("members", 3)
        .param("guarantee", "exactly-once")
        .param("snapshot_interval_ms", 5)
        .param("crash_at_ms", CRASH_AT / MS)
        .param("victim", format!("m{VICTIM}"))
        .param("heartbeat_interval_ms", detector.heartbeat_interval / MS)
        .param("fence_after_ms", detector.fence_after / MS);
    report.add_values(
        "detected-failure",
        &[("detection", "heartbeat".to_string())],
        &[
            ("detection_ms", detection as f64 / 1e6),
            ("recovery_ms", recovery as f64 / 1e6),
            ("resume_ms", resume as f64 / 1e6),
            ("output_gap_ms", gap as f64 / 1e6),
            ("suspected_after_ms", (suspected_at - CRASH_AT) as f64 / 1e6),
            (
                "recovered_snapshot",
                recovered.flatten().map(|id| id as f64).unwrap_or(-1.0),
            ),
            ("promoted_partitions", promoted as f64),
            ("victim_primaries", owned_by_victim as f64),
            ("events_counted", total as f64),
        ],
    );
    report.write().expect("report");
}

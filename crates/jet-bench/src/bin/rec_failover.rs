//! **Recovery experiment** (Fig. 6 mechanism + §4.4 protocol): kill a
//! member mid-stream under exactly-once snapshots and report
//!
//! * the partition promotions the grid performed (Fig. 6),
//! * the snapshot generation recovered from,
//! * the output gap (virtual time from the kill to the first post-recovery
//!   window result), and
//! * exactness: every event counted exactly once despite the failure.

use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::metrics::SharedCounter;
use jet_core::processor::Guarantee;
use jet_core::processors::agg::counting;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const SEC: u64 = 1_000_000_000;
const MS: u64 = 1_000_000;

/// Timestamped window counts collected by the sink across the failover.
type Collected = Arc<Mutex<Vec<(Ts, WindowResult<u64, u64>)>>>;

fn main() {
    const LIMIT: u64 = 60_000;
    const KEYS: u64 = 64;
    const RATE: u64 = 1_000_000;
    println!("# Recovery: 3 members, exactly-once, 5ms snapshots, kill at t=30ms");

    let p = Pipeline::create();
    let out: Collected = Arc::new(Mutex::new(Vec::new()));
    let first_result_at = SharedCounter::new();
    p.read_from_generator_cfg(
        "gen",
        RATE,
        Some(LIMIT),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _| (seq % KEYS, seq),
    )
    .grouping_key(|(k, _): &(u64, u64)| *k)
    .window(WindowDef::tumbling((20 * MS) as Ts))
    .aggregate(counting::<(u64, u64)>())
    .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();

    let cfg = SimClusterConfig {
        members: 3,
        cores_per_member: 2,
        guarantee: Guarantee::ExactlyOnce,
        snapshot_interval: 5 * MS,
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(30 * MS);
    let results_before = out.lock().len();
    let table_before = cluster.grid().table();
    let victim = cluster.grid().members()[1];
    let owned_by_victim = table_before.owned_primaries(victim).len();
    let kill_at = cluster.now();

    let recovered = cluster.kill_member_and_recover(victim).unwrap();
    let table_after = cluster.grid().table();
    println!(
        "killed {victim} at t={:.1}ms; it owned {owned_by_victim} primary partitions",
        kill_at as f64 / 1e6
    );
    println!(
        "recovered from snapshot {:?}; table version {} -> {}",
        recovered,
        table_before.version(),
        table_after.version()
    );
    // Fig. 6: promotions — every partition the victim owned has a new live
    // primary that previously held its backup.
    let mut promoted = 0;
    for p in table_before.owned_primaries(victim) {
        let new_primary = table_after.primary(p).unwrap();
        if table_before.backups(p).contains(&new_primary) {
            promoted += 1;
        }
    }
    println!("promotions: {promoted}/{owned_by_victim} partitions promoted from their backups");

    // Time-to-first-output after the kill.
    let mut gap_nanos = None;
    while cluster.now() < kill_at + 120 * SEC {
        let finished = cluster.run_for(5 * MS);
        if gap_nanos.is_none() && out.lock().len() > results_before {
            gap_nanos = Some(cluster.now() - kill_at);
        }
        if finished {
            break;
        }
    }
    let _ = first_result_at;
    println!(
        "output gap after kill: {:.1} ms (virtual)",
        gap_nanos.map(|g| g as f64 / 1e6).unwrap_or(f64::NAN)
    );

    // Exactness.
    let results = out.lock();
    let mut per_key: HashMap<u64, u64> = HashMap::new();
    for (_, r) in results.iter() {
        *per_key.entry(r.key).or_insert(0) += r.value;
    }
    let total: u64 = per_key.values().sum();
    println!(
        "exactness: counted {total} of {LIMIT} events across {} keys -> {}",
        per_key.len(),
        if total == LIMIT {
            "EXACTLY-ONCE HOLDS"
        } else {
            "VIOLATION"
        }
    );
    assert_eq!(total, LIMIT);
}

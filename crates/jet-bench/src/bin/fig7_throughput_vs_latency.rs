//! **Figure 7 reproduction** — "Throughput per CPU-core vs. Latency for Q5
//! on a single node with 10ms window slide."
//!
//! Paper result: p99.99 ≈ 13 ms at ~0.5M events/s/core, rising to ≈ 98 ms
//! at 2M events/s/core, with the knee around 1.75M — the latency hockey
//! stick as the offered rate approaches per-core capacity.
//!
//! Scale-down: 2 virtual cores per member (paper: 12 physical), 1 s window
//! (paper: 10 s — the slide, not the size, drives emission cost), shorter
//! measurement. Rates are *per core* as in the paper's x-axis.

use jet_bench::{percentile_row, run, BenchReport, Query, RunSpec, MS, SEC};
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    let cores = 2usize;
    println!("# Figure 7: Q5 throughput/core vs latency, 1 member x {cores} vcores, 10ms slide");
    println!("# rate_per_core_M  p50_ms p90 p99 p99.9 p99.99 max");
    let mut report = BenchReport::new("fig7");
    report
        .param("query", "Q5")
        .param("members", 1)
        .param("cores_per_member", cores);
    for rate_k_per_core in [250u64, 500, 1000, 1500, 1750, 2000] {
        let mut spec = RunSpec::new(Query::Q5, rate_k_per_core * 1000 * cores as u64);
        spec.cores_per_member = cores;
        spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
        spec.warmup = SEC + 500 * MS; // window fill + settle
        spec.measure = 2 * SEC;
        let r = run(&spec);
        println!(
            "{:.2}M/s/core  {}",
            rate_k_per_core as f64 / 1000.0,
            percentile_row(&r.hist)
        );
        report.add_run(
            &format!("{rate_k_per_core}k-per-core"),
            &[("rate_per_core", format!("{rate_k_per_core}000"))],
            &r,
        );
    }
    report.write().expect("report");
}

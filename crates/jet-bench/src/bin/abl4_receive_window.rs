//! **Ablation A4** — adaptive vs fixed receive window (paper §3.3): the
//! sender may only ship what the receiver granted; Jet sizes the grant to
//! ~300 ms of the observed flow and re-acks every 100 ms. A small fixed
//! window throttles throughput across member boundaries (grants run out
//! between acks); a huge fixed window removes the safety valve. The
//! adaptive policy tracks the rate.

use jet_bench::{percentile_row, run, BenchReport, Query, RunSpec, MS, SEC};
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    println!("# Ablation A4: receive-window policy vs Q5 latency (4 members, 1.6M ev/s total)");
    let mut report = BenchReport::new("abl4");
    report
        .param("query", "Q5")
        .param("members", 4)
        .param("total_rate", 1_600_000);
    for (name, fixed) in [
        ("adaptive-300ms", None),
        ("fixed-4096", Some(4096u64)),
        ("fixed-65536", Some(65_536u64)),
    ] {
        let mut spec = RunSpec::new(Query::Q5, 1_600_000);
        spec.members = 4;
        spec.cores_per_member = 2;
        spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
        spec.warmup = SEC + 500 * MS;
        spec.measure = 2 * SEC;
        spec.fixed_receive_window = fixed;
        let r = run(&spec);
        println!("{name:16} {} out={}", percentile_row(&r.hist), r.outputs);
        eprintln!("  [{name} done in {:.0}s wall]", r.wall_secs);
        report.add_run(name, &[("window_policy", name.to_string())], &r);
    }
    report.write().expect("report");
}

//! Debug: Q5 output over time on a 5-member cluster.
use jet_bench::{Query, RunSpec, MS, SEC};
use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    let members: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let mut spec = RunSpec::new(Query::Q5, 400_000);
    spec.members = members;
    spec.cores_per_member = 2;
    spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
    let hist = SharedHistogram::new();
    let count = SharedCounter::new();
    let p = jet_bench::build_query(&spec, &hist, &count);
    let dag = p.compile(2).unwrap();
    let cfg = SimClusterConfig {
        members,
        cores_per_member: 2,
        cost_model: spec.cost_model.clone(),
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    for step in 0..6 {
        cluster.run_for(250 * MS);
        println!(
            "t={:4}ms out={} live={}",
            (step + 1) * 250,
            count.get(),
            cluster.live_tasklets()
        );
    }
    let mut agg: std::collections::HashMap<String, (u64, u64, usize)> = Default::default();
    for (_c, name, i, o) in cluster.tasklet_stats() {
        let e = agg.entry(name).or_insert((0, 0, 0));
        e.0 += i;
        e.1 += o;
        e.2 += 1;
    }
    let mut rows: Vec<_> = agg.into_iter().collect();
    rows.sort();
    for (name, (i, o, n)) in rows {
        println!("{name:24} x{n:3} in={i:10} out={o:10}");
    }
}

//! Calibration diagnostic: virtual-core utilization for Q5 at a given rate.
use jet_bench::{Query, RunSpec, MS, SEC};
use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn main() {
    let rate_k: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let cores = 2usize;
    let mut spec = RunSpec::new(Query::Q5, rate_k * 1000 * cores as u64);
    spec.cores_per_member = cores;
    spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
    let hist = SharedHistogram::new();
    let count = SharedCounter::new();
    let p = jet_bench::build_query(&spec, &hist, &count);
    let dag = p.compile(cores).unwrap();
    let cfg = SimClusterConfig {
        members: 1,
        cores_per_member: cores,
        cost_model: spec.cost_model.clone(),
        ..Default::default()
    };
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(3 * SEC);
    let busy = cluster.busy_nanos();
    let elapsed = cluster.now();
    for (i, b) in busy.iter().enumerate() {
        println!("core {i}: busy {:.1}%", *b as f64 / elapsed as f64 * 100.0);
    }
    println!(
        "outputs: {}, hist: {}",
        count.get(),
        hist.snapshot().latency_summary_ms()
    );
}

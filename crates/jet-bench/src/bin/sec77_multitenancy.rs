//! **§7.7 reproduction** — multi-tenancy: "we executed one hundred Query 5
//! jobs concurrently on a single node [...] We observed roughly 200ms
//! 99.99th percentile latency, when running 100 concurrent jobs with an
//! aggregate throughput of one million events per second."
//!
//! The mechanism under test is the tasklet design: hundreds of operator
//! instances share the same few cooperative threads, and an idle tasklet
//! costs one cheap poll per round. We deploy 100 independent Q5-shaped
//! jobs into one execution (disconnected subgraphs — tasklets of all jobs
//! interleave in the same round-robin loops, exactly like 100 Jet jobs on
//! one member) and compare against a single job ingesting the same
//! aggregate rate.

use jet_bench::{percentile_row, MS, SEC};
use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::processors::agg::counting;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef};

fn tenant(
    p: &Pipeline,
    id: u64,
    rate: u64,
    keys: u64,
    hist: &SharedHistogram,
    count: &SharedCounter,
) {
    p.read_from_generator(&format!("job{id}-src"), rate, move |seq, _ts| {
        (seq % keys, seq)
    })
    .grouping_key(|(k, _): &(u64, u64)| *k)
    .window(WindowDef::sliding(SEC as Ts, (100 * MS) as Ts))
    .aggregate(counting::<(u64, u64)>())
    .write_to_latency(hist.clone(), count.clone());
}

fn run_jobs(jobs: u64, aggregate_rate: u64) -> (jet_util::Histogram, u64, f64) {
    let p = Pipeline::create();
    let hist = SharedHistogram::new();
    let count = SharedCounter::new();
    let per_job_keys = (10_000 / jobs).max(10);
    for j in 0..jobs {
        tenant(&p, j, aggregate_rate / jobs, per_job_keys, &hist, &count);
    }
    let dag = p.compile(1).unwrap(); // lp 1 per vertex: 100 jobs x ~4 tasklets
    let cfg = SimClusterConfig {
        members: 1,
        cores_per_member: 2,
        cost_model: jet_sim::CostModel::paper_calibrated(),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(SEC + 500 * MS);
    hist.clear();
    cluster.run_for(2 * SEC);
    cluster.cancel();
    (
        hist.snapshot(),
        count.get(),
        started.elapsed().as_secs_f64(),
    )
}

fn main() {
    println!("# §7.7: N concurrent jobs on one member (2 vcores), fixed 400k ev/s aggregate");
    println!("# jobs  tasklets~  latency");
    for jobs in [1u64, 10, 50, 100] {
        let (h, _outs, wall) = run_jobs(jobs, 400_000);
        println!("{jobs:4}  {}", percentile_row(&h));
        eprintln!("  [{jobs} jobs done in {wall:.0}s wall]");
    }
}

//! **Multi-tenant tail isolation stress** (§7.7 hardened): one
//! latency-critical tenant shares a member with 100 small jobs and must
//! hold its p99.99 within 2x of its solo-run baseline.
//!
//! Plain tasklet round-robin gives each tenant a share proportional to its
//! *tasklet count*, so 100 busy neighbours crowd the one job that matters.
//! Per-job weighted quotas (`JobQuotas`, jet-core::fairness) hand the
//! critical tenant a fixed share of every scheduling cycle instead.
//!
//! Churn: each small job carries a staggered event limit, so jobs drain
//! and leave continuously across the measurement window (tasklets of a
//! finished job are removed from the polling cycle — the "leave" half of
//! churn; mid-run joins are not representable on a statically deployed
//! DAG, so the lane stresses departure churn plus full-rate neighbours).
//!
//! Runs: `solo` (baseline), `crowd-rr` (100 neighbours, plain
//! round-robin), `crowd-quota` (same neighbours, critical tenant weighted).
//! The 2x acceptance bound is asserted on `crowd-quota`.

use jet_bench::{percentile_row, BenchReport, RunResult, MS, SEC};
use jet_cluster::{SimCluster, SimClusterConfig};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::processors::agg::counting;
use jet_core::{JobQuotas, Ts};
use jet_pipeline::{Pipeline, WindowDef};

const CRITICAL_JOB: u32 = 1;
const CRITICAL_RATE: u64 = 1_000_000;
const SMALL_JOBS: u64 = 100;
const SMALL_RATE: u64 = 10_000;
const WARMUP: u64 = SEC + 500 * MS;
const MEASURE: u64 = 2 * SEC;

/// The latency-critical tenant: the paper's Q5 shape — a 1s/100ms sliding
/// window over a 1k keyspace — with its own latency sink. Each slide
/// emits the full keyspace, so the tenant's solo tail is set by its own
/// emission-burst drain (milliseconds), the scale the paper reports.
fn critical(p: &Pipeline, hist: &SharedHistogram, count: &SharedCounter) {
    p.read_from_generator(
        &format!("job{CRITICAL_JOB}-src"),
        CRITICAL_RATE,
        |seq, _| (seq % 1_000, seq),
    )
    .grouping_key(|(k, _): &(u64, u64)| *k)
    .window(WindowDef::sliding(SEC as Ts, (100 * MS) as Ts))
    .aggregate(counting::<(u64, u64)>())
    .write_to_latency(hist.clone(), count.clone());
}

/// One small neighbour: full-rate until its staggered limit drains, then
/// it completes and leaves the scheduling cycle.
fn neighbour(p: &Pipeline, id: u64, count: &SharedCounter) {
    // Job `id` leaves at 2.0s + id*20ms: departures sweep the whole
    // measurement window.
    let limit = 2 * SMALL_RATE + SMALL_RATE * id * 20 / 1000;
    p.read_from_generator_cfg(
        &format!("job{id}-src"),
        SMALL_RATE,
        Some(limit),
        jet_core::processors::WatermarkPolicy::default(),
        |seq, _| (seq % 8, seq),
    )
    .grouping_key(|(k, _): &(u64, u64)| *k)
    .window(WindowDef::sliding(SEC as Ts, (100 * MS) as Ts))
    .aggregate(counting::<(u64, u64)>())
    .write_to_count(count.clone());
}

fn run_one(neighbours: u64, quotas: Option<JobQuotas>) -> RunResult {
    let p = Pipeline::create();
    let hist = SharedHistogram::new();
    let count = SharedCounter::new();
    critical(&p, &hist, &count);
    let small_out = SharedCounter::new();
    for j in 0..neighbours {
        neighbour(&p, 2 + j, &small_out);
    }
    let dag = p.compile(1).unwrap();
    let cfg = SimClusterConfig {
        members: 1,
        cores_per_member: 2,
        cost_model: jet_sim::CostModel::paper_calibrated(),
        guarantee: jet_core::processor::Guarantee::ExactlyOnce,
        snapshot_interval: 50 * MS,
        quotas: quotas.clone(),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let mut cluster = SimCluster::start(dag, cfg).unwrap();
    cluster.run_for(WARMUP);
    hist.clear();
    let before = count.get();
    cluster.run_for(MEASURE);
    let outputs = count.get() - before;
    let metrics = cluster.job_metrics();
    let members_final = cluster.grid().members().len();
    cluster.cancel();
    RunResult {
        hist: hist.snapshot(),
        outputs,
        inputs: CRITICAL_RATE * MEASURE / SEC,
        wall_secs: started.elapsed().as_secs_f64(),
        virtual_secs: MEASURE as f64 / 1e9,
        metrics,
        trace: None,
        diagnostics: None,
        cluster_events: Vec::new(),
        spike: None,
        attribution: None,
        timeline: None,
        controller_events: None,
        members_final,
    }
}

fn main() {
    println!(
        "# Tenant isolation: critical job at {}k ev/s vs {} neighbours at \
         {}k ev/s each, 1 member x 2 vcores",
        CRITICAL_RATE / 1000,
        SMALL_JOBS,
        SMALL_RATE / 1000
    );
    let quota = JobQuotas::new().with_weight(CRITICAL_JOB, 64);
    let mut report = BenchReport::new("fig_tenant_stress");
    report
        .param("critical_rate", CRITICAL_RATE)
        .param("small_jobs", SMALL_JOBS)
        .param("small_rate", SMALL_RATE)
        .param("critical_weight", 64)
        .param("measure_ms", MEASURE / MS);

    let mut p9999 = Vec::new();
    for (label, neighbours, quotas) in [
        ("solo", 0, None),
        ("crowd-rr", SMALL_JOBS, None),
        ("crowd-quota", SMALL_JOBS, Some(quota)),
    ] {
        let r = run_one(neighbours, quotas.clone());
        println!("{label:12}  {}", percentile_row(&r.hist));
        p9999.push(r.hist.percentile(99.99) as f64);
        report.add_run(
            label,
            &[
                ("neighbours", neighbours.to_string()),
                ("quotas", quotas.is_some().to_string()),
            ],
            &r,
        );
    }
    let (solo, rr, quota) = (p9999[0], p9999[1], p9999[2]);
    println!(
        "critical p99.99: solo {:.3}ms | crowd-rr {:.3}ms ({:.2}x) | \
         crowd-quota {:.3}ms ({:.2}x)",
        solo / 1e6,
        rr / 1e6,
        rr / solo,
        quota / 1e6,
        quota / solo
    );
    report.add_values(
        "isolation",
        &[],
        &[
            ("solo_p9999_ms", solo / 1e6),
            ("crowd_rr_p9999_ms", rr / 1e6),
            ("crowd_quota_p9999_ms", quota / 1e6),
            ("rr_ratio", rr / solo),
            ("quota_ratio", quota / solo),
        ],
    );
    report.write().expect("report");
    assert!(
        quota <= solo * 2.0,
        "quota run p99.99 {:.3}ms exceeds 2x solo baseline {:.3}ms",
        quota / 1e6,
        solo / 1e6
    );
    println!("ACCEPTANCE: crowd-quota p99.99 within 2x of solo baseline");
}

//! End-to-end spike forensics: the watchdog → freeze → attribute pipeline
//! over real benchmark runs.
//!
//! Two properties are load-bearing for the reproduction:
//!
//! 1. **Invisibility** — the watchdog + flight recorder observe off the
//!    virtual timeline, so arming them yields a bit-identical latency
//!    histogram (fig9's curves must not move when forensics are on).
//! 2. **Honest blame** — a spike caused by a member crash must attribute to
//!    the failure-detection/recovery phases, never to whichever innocent
//!    vertex happened to be running during the outage, and the per-cause
//!    decomposition must sum to the measured spike exactly.

use jet_bench::{run, Query, RunSpec, MS, SEC};
use jet_core::flight::{Cause, WatchdogConfig};
use jet_core::telemetry::TimelineConfig;
use jet_core::Ts;
use jet_pipeline::WindowDef;

fn small_q5() -> RunSpec {
    let mut spec = RunSpec::new(Query::Q5, 50_000);
    spec.members = 2;
    spec.cores_per_member = 2;
    spec.window = WindowDef::sliding((500 * MS) as Ts, (10 * MS) as Ts);
    spec.warmup = SEC;
    spec.measure = SEC;
    spec
}

#[test]
fn watchdog_is_invisible_on_the_virtual_timeline() {
    let plain = run(&small_q5());
    let mut spiked_spec = small_q5();
    // An absurdly low SLO fires the watchdog on ~every sample: maximum
    // observer activity, to give any timeline perturbation the best chance
    // to show.
    spiked_spec.spike = Some(WatchdogConfig {
        slo_nanos: Some(1),
        ..WatchdogConfig::default()
    });
    let spiked = run(&spiked_spec);
    assert!(plain.hist.count() > 0, "no samples measured");
    assert_eq!(
        plain.hist, spiked.hist,
        "arming the watchdog changed the latency histogram"
    );
    let report = spiked.spike.expect("spike report present when armed");
    assert!(report.fidelity.observed > 0, "watchdog observed nothing");
}

#[test]
fn timeline_and_attribution_are_invisible_and_waterfalls_sum_exactly() {
    let plain = run(&small_q5());
    let mut armed_spec = small_q5();
    // Full observability: provenance sampling on every sink event, metrics
    // timeline at a deliberately aggressive 10 ms cadence (maximum chunking
    // perturbation), flight ring retained for window attribution.
    armed_spec.attribution = true;
    armed_spec.timeline = Some(TimelineConfig {
        cadence_nanos: 10 * MS,
        ..TimelineConfig::default()
    });
    let armed = run(&armed_spec);
    assert!(plain.hist.count() > 0, "no samples measured");
    assert_eq!(
        plain.hist, armed.hist,
        "arming the timeline + provenance sampler changed the latency histogram"
    );

    // The waterfall decomposes each reported band's exemplar exactly: the
    // stamp is internally consistent and the cause slices partition the
    // measured end-to-end latency to the nanosecond.
    let report = armed.attribution.expect("attribution present when armed");
    assert!(report.observed > 0, "sampler observed nothing");
    assert!(report.sampled > 0, "sampler retained nothing");
    assert!(
        !report.bands.is_empty(),
        "no percentile band produced a waterfall (observed={})",
        report.observed
    );
    for band in &report.bands {
        let a = &band.attribution;
        assert_eq!(
            band.stamp.latency,
            band.stamp.emitted_at - band.stamp.event_ts,
            "band {}: stamp is inconsistent",
            band.band
        );
        assert_eq!(
            a.total_nanos, band.stamp.latency,
            "band {}: attribution window is not the exemplar's journey",
            band.band
        );
        let sum: u64 = a.slices.iter().map(|s| s.nanos).sum();
        assert_eq!(
            sum, a.total_nanos,
            "band {}: slices do not sum to the measured latency",
            band.band
        );
    }

    // The timeline actually sampled: multiple ticks, live series, and a
    // parseable jet-timeline-v1 document.
    let timeline = armed.timeline.expect("timeline present when armed");
    let (samples, series, ticks, _evicted) = timeline.stats();
    assert!(samples > 1, "timeline sampled {samples} time(s)");
    assert!(series > 0, "timeline recorded no series");
    assert_eq!(
        samples as usize, ticks,
        "no eviction expected at this scale"
    );
    let json = timeline.to_json("test", "q5");
    assert!(json.contains("\"schema\": \"jet-timeline-v1\""), "{json}");
}

#[test]
fn crash_spike_attributes_to_recovery_not_a_vertex() {
    // Scaled-down fig13 crash run: exactly-once checkpoints, a member crash
    // mid-measurement, heartbeat detection + self-healing recovery.
    let mut spec = RunSpec::new(Query::Q5, 100_000);
    spec.members = 2;
    spec.cores_per_member = 2;
    spec.window = WindowDef::sliding(SEC as Ts, (10 * MS) as Ts);
    spec.warmup = SEC + 500 * MS;
    spec.measure = 6 * SEC;
    spec.guarantee = jet_core::Guarantee::ExactlyOnce;
    spec.snapshot_interval = SEC;
    let mut plan = jet_sim::FaultPlan::new(13);
    plan.crash(spec.warmup + 2 * SEC, 1);
    spec.fault_plan = Some(plan);
    spec.coordinator = Some(jet_cluster::CoordinatorConfig::default());
    spec.spike = Some(WatchdogConfig::default());
    let r = run(&spec);

    let report = r.spike.expect("spike report present when armed");
    assert!(
        !report.incidents.is_empty(),
        "a detected crash must register at least one spike incident \
         (observed={} threshold={}ns)",
        report.fidelity.observed,
        report.threshold_nanos
    );
    // Incidents come worst-first; the outage spike dominates.
    let top = &report.incidents[0];
    let a = &top.attribution;
    assert_eq!(
        a.top_group, "recovery",
        "outage spike blamed {:?} ({}) instead of the recovery phases:\n{:#?}",
        a.top_cause, a.top_group, a.slices
    );
    assert!(
        matches!(
            a.top_cause,
            Cause::FaultDetection | Cause::Recovery | Cause::RecoveryCatchup
        ),
        "top cause {:?} is not a recovery-family phase",
        a.top_cause
    );
    assert!(
        a.blamed_vertex.is_none(),
        "an innocent vertex was blamed: {:?}",
        a.blamed_vertex
    );
    // Exact partition: the decomposition covers the measured spike latency
    // to the nanosecond (well inside the ≤1% reproduction criterion).
    let sum: u64 = a.slices.iter().map(|s| s.nanos).sum();
    assert_eq!(sum, a.total_nanos, "slices do not sum to the spike latency");
    assert_eq!(
        a.total_nanos, top.incident.peak_latency,
        "attribution window is not the peak event's journey"
    );
    // The frozen window actually holds forensic spans.
    assert!(top.window_events > 0, "frozen window is empty");
    // And the JSON report round-trips the verdict.
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"jet-spike-v1\""), "{json}");
    assert!(json.contains("\"top_group\": \"recovery\""), "{json}");
}

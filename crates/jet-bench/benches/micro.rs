//! Criterion micro-benchmarks of the engine's hot paths: the wait-free SPSC
//! queue and conveyor (§3.2's data exchange), partition hashing (§4.1),
//! histogram recording (the measurement path), sliding-window accumulation,
//! and grid map operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use jet_core::processor::{Inbox, Outbox, Processor};
use jet_core::processors::agg::counting;
use jet_core::processors::window::{SlidingWindowP, WindowDef};
use jet_imdg::{Grid, IMap};
use jet_queue::{spsc_channel, Conveyor};
use jet_util::{seq, Histogram};

fn bench_spsc(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc");
    g.throughput(Throughput::Elements(1));
    g.bench_function("offer_poll", |b| {
        let (mut p, mut q) = spsc_channel::<u64>(1024);
        b.iter(|| {
            p.offer(black_box(42)).unwrap();
            black_box(q.poll().unwrap());
        });
    });
    g.bench_function("offer_poll_batch64", |b| {
        let (mut p, mut q) = spsc_channel::<u64>(1024);
        b.iter(|| {
            for i in 0..64u64 {
                p.offer(i).unwrap();
            }
            for _ in 0..64 {
                black_box(q.poll().unwrap());
            }
        });
    });
    g.finish();
    let mut g = c.benchmark_group("spsc_batch");
    g.throughput(Throughput::Elements(64));
    // Same 64-item round trip as offer_poll_batch64, but through the bulk
    // APIs: one release store per batch instead of one per item.
    g.bench_function("offer_batch_drain_batch64", |b| {
        let (mut p, mut q) = spsc_channel::<u64>(1024);
        b.iter(|| {
            let mut it = 0..64u64;
            assert_eq!(p.offer_batch(&mut it), 64);
            let mut sum = 0u64;
            q.drain_batch(64, |v| sum += v);
            black_box(sum);
        });
    });
    g.finish();
}

fn bench_conveyor(c: &mut Criterion) {
    let mut g = c.benchmark_group("conveyor");
    g.throughput(Throughput::Elements(64));
    g.bench_function("drain_4_lanes", |b| {
        let (mut conv, mut producers) = Conveyor::<u64>::new(4, 256);
        b.iter(|| {
            for p in &mut producers {
                for i in 0..16u64 {
                    p.offer(i).unwrap();
                }
            }
            while let Some((_, v)) = conv.poll_any() {
                black_box(v);
            }
        });
    });
    g.bench_function("drain_4_lanes_batch", |b| {
        let (mut conv, mut producers) = Conveyor::<u64>::new(4, 256);
        b.iter(|| {
            for p in &mut producers {
                let mut it = 0..16u64;
                p.offer_batch(&mut it);
            }
            let mut sum = 0u64;
            while conv.drain_lanes_batch(64, |_, v| sum += v) > 0 {}
            black_box(sum);
        });
    });
    g.finish();
}

fn bench_object(c: &mut Criterion) {
    let mut g = c.benchmark_group("object");
    g.throughput(Throughput::Elements(1));
    // Small payloads (<= INLINE_CAP bytes) store inline: no allocator call
    // on construct, clone, or drop.
    g.bench_function("inline_u64_box_clone_take", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1);
            let obj = jet_core::boxed(black_box(v));
            let copy = obj.clone_object();
            drop(obj);
            black_box(jet_core::object::take::<u64>(copy))
        });
    });
    // Oversized payloads take the heap fallback — the cost the inline
    // representation removes from the common case.
    g.bench_function("boxed_32b_box_clone_take", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1);
            let obj = jet_core::boxed([black_box(v); 4]);
            let copy = obj.clone_object();
            drop(obj);
            black_box(jet_core::object::take::<[u64; 4]>(copy))
        });
    });
    g.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioning");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hash_route_u64", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(seq::bucket_of(seq::hash_of(&k), 271));
        });
    });
    g.bench_function("hash_route_str", |b| {
        b.iter(|| black_box(seq::bucket_of(seq::hash_of("auction-123456"), 271)));
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("record", |b| {
        let mut h = Histogram::latency();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 40));
        });
    });
    g.bench_function("p9999_of_100k", |b| {
        let mut h = Histogram::latency();
        for i in 0..100_000u64 {
            h.record(i * 17 % 10_000_000);
        }
        b.iter(|| black_box(h.percentile(99.99)));
    });
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("window");
    g.throughput(Throughput::Elements(256));
    g.bench_function("accumulate_256_events", |b| {
        let mut p = SlidingWindowP::new::<u64>(
            WindowDef::sliding(1_000_000_000, 10_000_000),
            |v: &u64| *v % 1000,
            counting::<u64>(),
        );
        let ctx = test_ctx();
        let mut outbox = Outbox::new(1, 1024);
        let mut ts = 0i64;
        b.iter(|| {
            let mut inbox = Inbox::new();
            for i in 0..256u64 {
                ts += 40_000; // ~25k events/s of event time
                inbox.push(ts, jet_core::boxed(i));
            }
            p.process(0, &mut inbox, &mut outbox, &ctx);
        });
    });
    g.finish();
}

fn bench_imap(c: &mut Criterion) {
    let mut g = c.benchmark_group("imap");
    g.throughput(Throughput::Elements(1));
    let grid = Grid::new(3, 1);
    let map: IMap<u64, u64> = IMap::new(&grid, "bench");
    g.bench_function("put_replicated", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 100_000;
            map.put(black_box(k), black_box(k * 2));
        });
    });
    for k in 0..100_000u64 {
        map.put(k, k);
    }
    g.bench_function("get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 100_000;
            black_box(map.get(&k));
        });
    });
    g.finish();
}

fn test_ctx() -> jet_core::ProcessorContext {
    jet_core::ProcessorContext {
        vertex: "bench".into(),
        global_index: 0,
        total_parallelism: 1,
        member: 0,
        clock: jet_util::clock::system_clock(),
        guarantee: jet_core::Guarantee::None,
        cancelled: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
        partition_count: 271,
        owned_partitions: std::sync::Arc::new(vec![true; 271]),
    }
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_spsc, bench_conveyor, bench_object, bench_partitioning, bench_histogram, bench_window, bench_imap
}
criterion_main!(micro);

//! Distributed Ringbuffer — one of IMDG's core data structures the paper
//! lists alongside Map and Queue (§1: "IMDG's data structures include Map,
//! Queue, Ringbuffer, etc.").
//!
//! A ringbuffer is an append-only bounded log addressed by monotonically
//! increasing sequence numbers: readers poll any retained range, which makes
//! it a natural *replayable source* (§4.5) and the structure Hazelcast
//! builds reliable topics on. Unlike the per-partition IMap event journal,
//! a ringbuffer is a single totally-ordered log living in one partition
//! (chosen by its name), replicated to backups like any other partition
//! data.

use crate::grid::{AnyMapSlice, Grid};
use crate::types::{partition_for_key, GridError, PartitionId};
use std::any::Any;
use std::collections::VecDeque;

/// Storage slice holding one ringbuffer's log.
struct RingSlice<T> {
    items: VecDeque<T>,
    head_seq: u64,
    capacity: usize,
}

impl<T: Clone + Send + 'static> AnyMapSlice for RingSlice<T> {
    fn clone_box(&self) -> Box<dyn AnyMapSlice> {
        Box::new(RingSlice {
            items: self.items.clone(),
            head_seq: self.head_seq,
            capacity: self.capacity,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn entry_count(&self) -> usize {
        self.items.len()
    }

    fn absorb(&mut self, other: &dyn AnyMapSlice) {
        let other = other
            .as_any()
            .downcast_ref::<RingSlice<T>>()
            .expect("absorb called with mismatched ringbuffer type");
        // Adopt the longer log (migration/restore semantics).
        if other.head_seq + other.items.len() as u64 > self.head_seq + self.items.len() as u64 {
            self.items = other.items.clone();
            self.head_seq = other.head_seq;
        }
    }
}

/// Handle to a named distributed ringbuffer. Cheap to clone.
pub struct Ringbuffer<T> {
    grid: Grid,
    name: String,
    capacity: usize,
    partition: PartitionId,
    _t: std::marker::PhantomData<fn(T)>,
}

impl<T> Clone for Ringbuffer<T> {
    fn clone(&self) -> Self {
        Ringbuffer {
            grid: self.grid.clone(),
            name: self.name.clone(),
            capacity: self.capacity,
            partition: self.partition,
            _t: std::marker::PhantomData,
        }
    }
}

/// Default retention.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

impl<T: Clone + Send + 'static> Ringbuffer<T> {
    pub fn new(grid: &Grid, name: &str) -> Self {
        Self::with_capacity(grid, name, DEFAULT_RING_CAPACITY)
    }

    pub fn with_capacity(grid: &Grid, name: &str, capacity: usize) -> Self {
        Ringbuffer {
            grid: grid.clone(),
            name: format!("__ring.{name}"),
            capacity: capacity.max(1),
            partition: partition_for_key(name, grid.partition_count()),
            _t: std::marker::PhantomData,
        }
    }

    fn with_slice<R>(
        &self,
        node: &crate::grid::MemberNode,
        f: impl FnOnce(&mut RingSlice<T>) -> R,
    ) -> R {
        let cap = self.capacity;
        let mut store = node.partition(self.partition);
        let slice = store.slice_mut(&self.name, || {
            Box::new(RingSlice::<T> {
                items: VecDeque::new(),
                head_seq: 0,
                capacity: cap,
            })
        });
        f(slice
            .as_any_mut()
            .downcast_mut::<RingSlice<T>>()
            .expect("ringbuffer opened with mismatched type"))
    }

    /// Append an item, returning its sequence number. Replicated to backups.
    pub fn add(&self, item: T) -> Result<u64, GridError> {
        let replicas = self.grid.replica_nodes(self.partition);
        if replicas.is_empty() {
            return Err(GridError::NoMembers);
        }
        let mut seq = 0;
        for (i, node) in replicas.iter().enumerate() {
            let s = self.with_slice(node, |r| {
                if r.items.len() == r.capacity {
                    r.items.pop_front();
                    r.head_seq += 1;
                }
                r.items.push_back(item.clone());
                r.head_seq + r.items.len() as u64 - 1
            });
            if i == 0 {
                seq = s;
            }
        }
        Ok(seq)
    }

    /// Earliest retained sequence.
    pub fn head_sequence(&self) -> Result<u64, GridError> {
        let node = self.grid.primary_node(self.partition)?;
        Ok(self.with_slice(&node, |r| r.head_seq))
    }

    /// Sequence the next `add` will return.
    pub fn tail_sequence(&self) -> Result<u64, GridError> {
        let node = self.grid.primary_node(self.partition)?;
        Ok(self.with_slice(&node, |r| r.head_seq + r.items.len() as u64))
    }

    /// Read up to `max` items starting at `from_seq` (clamped into the
    /// retained range). Returns the items and the sequence to resume from.
    pub fn read(&self, from_seq: u64, max: usize) -> Result<(Vec<T>, u64), GridError> {
        let node = self.grid.primary_node(self.partition)?;
        Ok(self.with_slice(&node, |r| {
            let start = from_seq.max(r.head_seq);
            let offset = (start - r.head_seq) as usize;
            let out: Vec<T> = r.items.iter().skip(offset).take(max).cloned().collect();
            let next = start + out.len() as u64;
            (out, next)
        }))
    }

    /// Number of retained items.
    pub fn len(&self) -> Result<usize, GridError> {
        let node = self.grid.primary_node(self.partition)?;
        Ok(self.with_slice(&node, |r| r.items.len()))
    }

    pub fn is_empty(&self) -> Result<bool, GridError> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MemberId;

    fn grid() -> Grid {
        Grid::with_partition_count(3, 1, 31)
    }

    #[test]
    fn add_assigns_monotonic_sequences() {
        let g = grid();
        let ring: Ringbuffer<String> = Ringbuffer::new(&g, "events");
        assert_eq!(ring.add("a".into()).unwrap(), 0);
        assert_eq!(ring.add("b".into()).unwrap(), 1);
        assert_eq!(ring.add("c".into()).unwrap(), 2);
        assert_eq!(ring.head_sequence().unwrap(), 0);
        assert_eq!(ring.tail_sequence().unwrap(), 3);
        assert_eq!(ring.len().unwrap(), 3);
    }

    #[test]
    fn read_returns_range_and_resume_point() {
        let g = grid();
        let ring: Ringbuffer<u64> = Ringbuffer::new(&g, "r");
        for i in 0..10 {
            ring.add(i).unwrap();
        }
        let (items, next) = ring.read(3, 4).unwrap();
        assert_eq!(items, vec![3, 4, 5, 6]);
        assert_eq!(next, 7);
        let (items, next) = ring.read(next, 100).unwrap();
        assert_eq!(items, vec![7, 8, 9]);
        assert_eq!(next, 10);
        let (empty, next) = ring.read(10, 5).unwrap();
        assert!(empty.is_empty());
        assert_eq!(next, 10);
    }

    #[test]
    fn overflow_drops_oldest_and_clamps_reads() {
        let g = grid();
        let ring: Ringbuffer<u64> = Ringbuffer::with_capacity(&g, "small", 4);
        for i in 0..10 {
            ring.add(i).unwrap();
        }
        assert_eq!(ring.head_sequence().unwrap(), 6);
        assert_eq!(ring.len().unwrap(), 4);
        // A reader asking for an expired range is fast-forwarded.
        let (items, next) = ring.read(0, 100).unwrap();
        assert_eq!(items, vec![6, 7, 8, 9]);
        assert_eq!(next, 10);
    }

    #[test]
    fn ring_survives_member_failure() {
        let g = grid();
        let ring: Ringbuffer<u64> = Ringbuffer::new(&g, "durable");
        for i in 0..100 {
            ring.add(i).unwrap();
        }
        // Kill the primary owner of the ring's partition.
        let owner = g.table().primary(ring.partition).unwrap();
        g.kill_member(owner).unwrap();
        let (items, _) = ring.read(0, 1000).unwrap();
        assert_eq!(items.len(), 100, "ringbuffer lost entries on failover");
        assert_eq!(items[99], 99);
        assert_eq!(ring.tail_sequence().unwrap(), 100);
    }

    #[test]
    fn two_rings_are_independent() {
        let g = grid();
        let a: Ringbuffer<u64> = Ringbuffer::new(&g, "a");
        let b: Ringbuffer<u64> = Ringbuffer::new(&g, "b");
        a.add(1).unwrap();
        b.add(2).unwrap();
        b.add(3).unwrap();
        assert_eq!(a.len().unwrap(), 1);
        assert_eq!(b.len().unwrap(), 2);
    }

    #[test]
    fn dead_grid_reports_no_members() {
        let g = Grid::with_partition_count(1, 0, 7);
        let ring: Ringbuffer<u64> = Ringbuffer::new(&g, "r");
        ring.add(1).unwrap();
        g.kill_member(MemberId(0)).unwrap();
        assert!(ring.add(2).is_err());
    }
}

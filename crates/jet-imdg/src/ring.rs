//! Consistent-hash ring for member → partition assignment.
//!
//! §4.3: "During the rebalancing phase, Jet minimizes data migration between
//! the nodes employing consistent hashing." Each member projects a fixed
//! number of virtual nodes onto a `u64` ring; a partition is owned by the
//! first virtual node clockwise from the partition's hash. Adding or
//! removing one member therefore only moves the partitions adjacent to that
//! member's virtual nodes — the minimal-migration property the
//! `partition_table` property tests assert.

use crate::types::MemberId;
use jet_util::seq;

/// Virtual nodes per member. More vnodes → smoother balance, slower lookups.
pub const DEFAULT_VNODES: u32 = 128;

/// A consistent-hash ring over the current member set.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(position, member)` pairs.
    points: Vec<(u64, MemberId)>,
}

impl HashRing {
    /// Build a ring with `vnodes` virtual nodes per member.
    pub fn new(members: &[MemberId], vnodes: u32) -> Self {
        let mut points = Vec::with_capacity(members.len() * vnodes as usize);
        // Salted double-mix so ring positions can never coincide with the
        // partition hashes (`mix64(p)`) used to look them up — an exact
        // collision would deterministically hand those partitions to one
        // member.
        const RING_SALT: u64 = 0xA076_1D64_78BD_642F;
        for &m in members {
            for v in 0..vnodes {
                let pos = seq::mix64(seq::mix64(((m.0 as u64) << 32) | v as u64) ^ RING_SALT);
                points.push((pos, m));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The member owning ring position `hash` (first point clockwise).
    pub fn owner(&self, hash: u64) -> Option<MemberId> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        let idx = if idx == self.points.len() { 0 } else { idx };
        Some(self.points[idx].1)
    }

    /// The first `n` *distinct* members clockwise from `hash` — the replica
    /// chain (primary first, then backups).
    pub fn replica_chain(&self, hash: u64, n: usize) -> Vec<MemberId> {
        let mut out = Vec::with_capacity(n);
        if self.points.is_empty() || n == 0 {
            return out;
        }
        let start = self.points.partition_point(|&(p, _)| p < hash);
        for off in 0..self.points.len() {
            let (_, m) = self.points[(start + off) % self.points.len()];
            if !out.contains(&m) {
                out.push(m);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// Distinct members present on the ring.
    pub fn member_count(&self) -> usize {
        let mut ms: Vec<MemberId> = self.points.iter().map(|&(_, m)| m).collect();
        ms.sort_unstable();
        ms.dedup();
        ms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u32) -> Vec<MemberId> {
        (0..n).map(MemberId).collect()
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let r = HashRing::new(&[], DEFAULT_VNODES);
        assert!(r.is_empty());
        assert_eq!(r.owner(42), None);
        assert!(r.replica_chain(42, 3).is_empty());
    }

    #[test]
    fn single_member_owns_everything() {
        let r = HashRing::new(&members(1), 8);
        for h in [0u64, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(r.owner(h), Some(MemberId(0)));
        }
    }

    #[test]
    fn replica_chain_has_distinct_members() {
        let r = HashRing::new(&members(5), DEFAULT_VNODES);
        for h in (0..1000u64).map(jet_util::seq::mix64) {
            let chain = r.replica_chain(h, 3);
            assert_eq!(chain.len(), 3);
            let mut sorted = chain.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate member in chain {chain:?}");
            assert_eq!(chain[0], r.owner(h).unwrap());
        }
    }

    #[test]
    fn chain_shorter_than_request_when_few_members() {
        let r = HashRing::new(&members(2), 16);
        assert_eq!(r.replica_chain(7, 5).len(), 2);
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let r = HashRing::new(&members(4), DEFAULT_VNODES);
        let mut counts = [0u32; 4];
        for h in (0..40_000u64).map(jet_util::seq::mix64) {
            counts[r.owner(h).unwrap().0 as usize] += 1;
        }
        for &c in &counts {
            assert!((4_000..=20_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn removing_a_member_only_moves_its_keys() {
        let all = members(5);
        let fewer: Vec<MemberId> = all.iter().copied().filter(|m| m.0 != 2).collect();
        let r_all = HashRing::new(&all, DEFAULT_VNODES);
        let r_fewer = HashRing::new(&fewer, DEFAULT_VNODES);
        for h in (0..10_000u64).map(jet_util::seq::mix64) {
            let before = r_all.owner(h).unwrap();
            let after = r_fewer.owner(h).unwrap();
            if before.0 != 2 {
                assert_eq!(before, after, "key moved although its owner survived");
            } else {
                assert_ne!(after.0, 2);
            }
        }
    }

    #[test]
    fn member_count_reports_distinct() {
        let r = HashRing::new(&members(7), 4);
        assert_eq!(r.member_count(), 7);
    }
}

//! Job snapshot storage over the grid (paper §2.4, §4.4).
//!
//! "Unlike most streaming systems that store their snapshots in stable
//! object storage like Amazon's S3, Jet uses IMDG for storing snapshots in a
//! partitioned and replicated manner."
//!
//! A snapshot is a bag of `(vertex, state-key) → state-bytes` records plus a
//! completion marker. Like Jet, we keep the records in an `IMap` keyed so
//! that they partition by the *state key*, aligning snapshot data placement
//! with processing placement. Two generations are retained (the map is keyed
//! by snapshot id), and a snapshot only counts once its completion marker —
//! written after every processor acked — is present.

use crate::grid::Grid;
use crate::imap::IMap;
use crate::types::MemberId;

/// Key of one snapshot record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SnapshotKey {
    pub snapshot_id: u64,
    pub vertex: String,
    /// Serialized state key; partitioning uses this component so state lands
    /// with its processing partition.
    pub key: Vec<u8>,
}

/// Snapshot storage for one job.
#[derive(Clone)]
pub struct SnapshotStore {
    records: IMap<SnapshotKey, Vec<u8>>,
    /// snapshot id → (completion marker, source offsets blob)
    markers: IMap<u64, Vec<u8>>,
}

impl SnapshotStore {
    pub fn new(grid: &Grid, job_id: u64) -> Self {
        SnapshotStore {
            records: IMap::new(grid, &format!("__jet.snapshot.{job_id}.records")),
            markers: IMap::new(grid, &format!("__jet.snapshot.{job_id}.markers")),
        }
    }

    /// Write one state record into snapshot `snapshot_id`.
    pub fn write(&self, snapshot_id: u64, vertex: &str, key: Vec<u8>, value: Vec<u8>) {
        self.records.put(
            SnapshotKey {
                snapshot_id,
                vertex: vertex.to_string(),
                key,
            },
            value,
        );
    }

    /// Mark `snapshot_id` complete, storing the serialized source offsets
    /// alongside (they are what recovery replays from, §4.5).
    pub fn mark_complete(&self, snapshot_id: u64, offsets: Vec<u8>) {
        self.markers.put(snapshot_id, offsets);
        // Garbage-collect snapshots older than the previous one: Jet keeps
        // the current and one prior generation.
        let keep_from = snapshot_id.saturating_sub(1);
        let stale: Vec<SnapshotKey> = self
            .records
            .values_where(|k, _| k.snapshot_id < keep_from)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for k in stale {
            self.records.remove(&k);
        }
        let stale_markers: Vec<u64> = self
            .markers
            .values_where(|&id, _| id < keep_from)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for id in stale_markers {
            self.markers.remove(&id);
        }
    }

    /// Highest complete snapshot id, if any.
    pub fn latest_complete(&self) -> Option<u64> {
        self.markers.entries().into_iter().map(|(id, _)| id).max()
    }

    /// The source-offsets blob stored with a complete snapshot.
    pub fn offsets_of(&self, snapshot_id: u64) -> Option<Vec<u8>> {
        self.markers.get(&snapshot_id)
    }

    /// All state records of `vertex` in snapshot `snapshot_id`.
    pub fn read_vertex(&self, snapshot_id: u64, vertex: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.records
            .values_where(|k, _| k.snapshot_id == snapshot_id && k.vertex == vertex)
            .into_iter()
            .map(|(k, v)| (k.key, v))
            .collect()
    }

    /// Number of records in one snapshot generation (diagnostics/tests).
    pub fn record_count(&self, snapshot_id: u64) -> usize {
        self.records
            .values_where(|k, _| k.snapshot_id == snapshot_id)
            .len()
    }

    /// Drop all snapshot data for the job.
    pub fn clear(&self) {
        self.records.clear();
        self.markers.clear();
    }

    /// Verify the store survives the loss of `member` (used by recovery
    /// tests): data must be readable after a kill.
    pub fn survives_kill_of(&self, grid: &Grid, member: MemberId) -> bool {
        let before = self.records.len();
        let _ = grid.kill_member(member);
        self.records.len() == before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (Grid, SnapshotStore) {
        let g = Grid::with_partition_count(3, 1, 31);
        let s = SnapshotStore::new(&g, 7);
        (g, s)
    }

    #[test]
    fn write_and_read_back_by_vertex() {
        let (_g, s) = store();
        s.write(1, "agg", b"k1".to_vec(), b"v1".to_vec());
        s.write(1, "agg", b"k2".to_vec(), b"v2".to_vec());
        s.write(1, "other", b"k1".to_vec(), b"x".to_vec());
        let mut recs = s.read_vertex(1, "agg");
        recs.sort();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (b"k1".to_vec(), b"v1".to_vec()));
        assert_eq!(s.read_vertex(1, "other").len(), 1);
        assert_eq!(s.read_vertex(2, "agg").len(), 0);
    }

    #[test]
    fn completion_markers_and_latest() {
        let (_g, s) = store();
        assert_eq!(s.latest_complete(), None);
        s.mark_complete(1, b"off1".to_vec());
        s.mark_complete(2, b"off2".to_vec());
        assert_eq!(s.latest_complete(), Some(2));
        assert_eq!(s.offsets_of(2), Some(b"off2".to_vec()));
    }

    #[test]
    fn old_generations_are_garbage_collected() {
        let (_g, s) = store();
        for id in 1..=4u64 {
            s.write(id, "v", b"k".to_vec(), vec![id as u8]);
            s.mark_complete(id, vec![]);
        }
        // After snapshot 4 completes, snapshots < 3 are gone.
        assert_eq!(s.record_count(1), 0);
        assert_eq!(s.record_count(2), 0);
        assert_eq!(s.record_count(3), 1);
        assert_eq!(s.record_count(4), 1);
        assert_eq!(s.latest_complete(), Some(4));
    }

    #[test]
    fn snapshot_survives_member_failure() {
        let (g, s) = store();
        for i in 0..100u64 {
            s.write(1, "agg", i.to_le_bytes().to_vec(), vec![1]);
        }
        s.mark_complete(1, b"offs".to_vec());
        assert!(s.survives_kill_of(&g, MemberId(1)));
        assert_eq!(s.latest_complete(), Some(1));
        assert_eq!(s.read_vertex(1, "agg").len(), 100);
    }

    #[test]
    fn clear_removes_everything() {
        let (_g, s) = store();
        s.write(1, "v", b"k".to_vec(), b"v".to_vec());
        s.mark_complete(1, vec![]);
        s.clear();
        assert_eq!(s.latest_complete(), None);
        assert_eq!(s.record_count(1), 0);
    }
}

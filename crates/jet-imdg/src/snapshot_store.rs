//! Job snapshot storage over the grid (paper §2.4, §4.4).
//!
//! "Unlike most streaming systems that store their snapshots in stable
//! object storage like Amazon's S3, Jet uses IMDG for storing snapshots in a
//! partitioned and replicated manner."
//!
//! A snapshot is a bag of `(vertex, state-key) → state-bytes` records plus a
//! completion marker. Like Jet, we keep the records in an `IMap` keyed so
//! that they partition by the *state key*, aligning snapshot data placement
//! with processing placement. Two generations are retained (the map is keyed
//! by snapshot id), and a snapshot only counts once its completion marker —
//! written after every processor acked — is present.

use crate::grid::Grid;
use crate::imap::IMap;
use crate::types::MemberId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Injectable snapshot-store failure switches (fault testing, §4.4).
///
/// The switches model an unavailable backing store: writes fail (the
/// snapshot being taken can never become a recovery point) or reads fail
/// (recovery cannot load state and must retry). Counters record every
/// rejected operation for the metrics registry.
#[derive(Debug, Default)]
pub struct StoreFaults {
    fail_writes: AtomicBool,
    fail_reads: AtomicBool,
    write_failures: AtomicU64,
    read_failures: AtomicU64,
}

impl StoreFaults {
    pub fn set_fail_writes(&self, fail: bool) {
        self.fail_writes.store(fail, Ordering::Release);
    }

    pub fn set_fail_reads(&self, fail: bool) {
        self.fail_reads.store(fail, Ordering::Release);
    }

    pub fn writes_failing(&self) -> bool {
        self.fail_writes.load(Ordering::Acquire)
    }

    pub fn reads_failing(&self) -> bool {
        self.fail_reads.load(Ordering::Acquire)
    }

    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }

    pub fn read_failures(&self) -> u64 {
        self.read_failures.load(Ordering::Relaxed)
    }
}

/// Key of one snapshot record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SnapshotKey {
    pub snapshot_id: u64,
    pub vertex: String,
    /// Serialized state key; partitioning uses this component so state lands
    /// with its processing partition.
    pub key: Vec<u8>,
}

/// Snapshot storage for one job.
#[derive(Clone)]
pub struct SnapshotStore {
    records: IMap<SnapshotKey, Vec<u8>>,
    /// snapshot id → (completion marker, source offsets blob)
    markers: IMap<u64, Vec<u8>>,
    /// Shared failure switches; all clones see the same state.
    faults: Arc<StoreFaults>,
}

impl SnapshotStore {
    pub fn new(grid: &Grid, job_id: u64) -> Self {
        SnapshotStore {
            records: IMap::new(grid, &format!("__jet.snapshot.{job_id}.records")),
            markers: IMap::new(grid, &format!("__jet.snapshot.{job_id}.markers")),
            faults: Arc::new(StoreFaults::default()),
        }
    }

    /// The store's injectable failure switches.
    pub fn faults(&self) -> Arc<StoreFaults> {
        self.faults.clone()
    }

    /// Write one state record into snapshot `snapshot_id`. Returns false if
    /// the store rejected the write (injected outage) — the caller must
    /// treat the whole snapshot as unusable.
    #[must_use]
    pub fn write(&self, snapshot_id: u64, vertex: &str, key: Vec<u8>, value: Vec<u8>) -> bool {
        if self.faults.writes_failing() {
            self.faults.write_failures.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.records.put(
            SnapshotKey {
                snapshot_id,
                vertex: vertex.to_string(),
                key,
            },
            value,
        );
        true
    }

    /// Mark `snapshot_id` complete, storing the serialized source offsets
    /// alongside (they are what recovery replays from, §4.5).
    pub fn mark_complete(&self, snapshot_id: u64, offsets: Vec<u8>) {
        self.markers.put(snapshot_id, offsets);
        // Garbage-collect snapshots older than the previous one: Jet keeps
        // the current and one prior generation.
        let keep_from = snapshot_id.saturating_sub(1);
        let stale: Vec<SnapshotKey> = self
            .records
            .values_where(|k, _| k.snapshot_id < keep_from)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for k in stale {
            self.records.remove(&k);
        }
        let stale_markers: Vec<u64> = self
            .markers
            .values_where(|&id, _| id < keep_from)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for id in stale_markers {
            self.markers.remove(&id);
        }
    }

    /// Are reads currently served? Under an injected read outage this
    /// returns false and records one failed read attempt — recovery calls
    /// it before loading state and retries with backoff on failure.
    pub fn read_available(&self) -> bool {
        if self.faults.reads_failing() {
            self.faults.read_failures.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Highest complete snapshot id, if any.
    pub fn latest_complete(&self) -> Option<u64> {
        self.markers.entries().into_iter().map(|(id, _)| id).max()
    }

    /// The source-offsets blob stored with a complete snapshot.
    pub fn offsets_of(&self, snapshot_id: u64) -> Option<Vec<u8>> {
        self.markers.get(&snapshot_id)
    }

    /// All state records of `vertex` in snapshot `snapshot_id`.
    pub fn read_vertex(&self, snapshot_id: u64, vertex: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.records
            .values_where(|k, _| k.snapshot_id == snapshot_id && k.vertex == vertex)
            .into_iter()
            .map(|(k, v)| (k.key, v))
            .collect()
    }

    /// Number of records in one snapshot generation (diagnostics/tests).
    pub fn record_count(&self, snapshot_id: u64) -> usize {
        self.records
            .values_where(|k, _| k.snapshot_id == snapshot_id)
            .len()
    }

    /// Remove every record and marker newer than `snapshot_id`. Recovery
    /// calls this when rebuilding: the dead execution may have written
    /// partial records for snapshots that never completed, and the new
    /// execution reuses those ids — a stale record the new attempt does not
    /// overwrite would otherwise merge into it and resurrect state on a
    /// later restore.
    pub fn purge_newer_than(&self, snapshot_id: u64) {
        let stale: Vec<SnapshotKey> = self
            .records
            .values_where(|k, _| k.snapshot_id > snapshot_id)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for k in stale {
            self.records.remove(&k);
        }
        let stale_markers: Vec<u64> = self
            .markers
            .values_where(|&id, _| id > snapshot_id)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for id in stale_markers {
            self.markers.remove(&id);
        }
    }

    /// Drop all snapshot data for the job.
    pub fn clear(&self) {
        self.records.clear();
        self.markers.clear();
    }

    /// Verify the store survives the loss of `member` (used by recovery
    /// tests): data must be readable after a kill.
    pub fn survives_kill_of(&self, grid: &Grid, member: MemberId) -> bool {
        let before = self.records.len();
        let _ = grid.kill_member(member);
        self.records.len() == before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (Grid, SnapshotStore) {
        let g = Grid::with_partition_count(3, 1, 31);
        let s = SnapshotStore::new(&g, 7);
        (g, s)
    }

    #[test]
    fn write_and_read_back_by_vertex() {
        let (_g, s) = store();
        assert!(s.write(1, "agg", b"k1".to_vec(), b"v1".to_vec()));
        assert!(s.write(1, "agg", b"k2".to_vec(), b"v2".to_vec()));
        assert!(s.write(1, "other", b"k1".to_vec(), b"x".to_vec()));
        let mut recs = s.read_vertex(1, "agg");
        recs.sort();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (b"k1".to_vec(), b"v1".to_vec()));
        assert_eq!(s.read_vertex(1, "other").len(), 1);
        assert_eq!(s.read_vertex(2, "agg").len(), 0);
    }

    #[test]
    fn injected_write_outage_rejects_and_counts() {
        let (_g, s) = store();
        let faults = s.faults();
        faults.set_fail_writes(true);
        assert!(!s.write(1, "agg", b"k".to_vec(), b"v".to_vec()));
        assert_eq!(faults.write_failures(), 1);
        assert_eq!(s.record_count(1), 0, "rejected write must not land");
        faults.set_fail_writes(false);
        assert!(s.write(1, "agg", b"k".to_vec(), b"v".to_vec()));
        // Clones share the same switches.
        let s2 = s.clone();
        s2.faults().set_fail_writes(true);
        assert!(!s.write(1, "agg", b"k2".to_vec(), b"v".to_vec()));
    }

    #[test]
    fn injected_read_outage_gates_read_availability() {
        let (_g, s) = store();
        assert!(s.read_available());
        s.faults().set_fail_reads(true);
        assert!(!s.read_available());
        assert!(!s.read_available());
        assert_eq!(s.faults().read_failures(), 2);
        s.faults().set_fail_reads(false);
        assert!(s.read_available());
    }

    #[test]
    fn completion_markers_and_latest() {
        let (_g, s) = store();
        assert_eq!(s.latest_complete(), None);
        s.mark_complete(1, b"off1".to_vec());
        s.mark_complete(2, b"off2".to_vec());
        assert_eq!(s.latest_complete(), Some(2));
        assert_eq!(s.offsets_of(2), Some(b"off2".to_vec()));
    }

    #[test]
    fn old_generations_are_garbage_collected() {
        let (_g, s) = store();
        for id in 1..=4u64 {
            assert!(s.write(id, "v", b"k".to_vec(), vec![id as u8]));
            s.mark_complete(id, vec![]);
        }
        // After snapshot 4 completes, snapshots < 3 are gone.
        assert_eq!(s.record_count(1), 0);
        assert_eq!(s.record_count(2), 0);
        assert_eq!(s.record_count(3), 1);
        assert_eq!(s.record_count(4), 1);
        assert_eq!(s.latest_complete(), Some(4));
    }

    #[test]
    fn snapshot_survives_member_failure() {
        let (g, s) = store();
        for i in 0..100u64 {
            assert!(s.write(1, "agg", i.to_le_bytes().to_vec(), vec![1]));
        }
        s.mark_complete(1, b"offs".to_vec());
        assert!(s.survives_kill_of(&g, MemberId(1)));
        assert_eq!(s.latest_complete(), Some(1));
        assert_eq!(s.read_vertex(1, "agg").len(), 100);
    }

    #[test]
    fn purge_drops_torn_records_but_keeps_complete_generations() {
        let (_g, s) = store();
        assert!(s.write(3, "v", b"k".to_vec(), b"v3".to_vec()));
        s.mark_complete(3, b"off3".to_vec());
        // A torn attempt at id 4: records but no completion marker.
        assert!(s.write(4, "v", b"stale".to_vec(), b"v4".to_vec()));
        s.purge_newer_than(3);
        assert_eq!(s.latest_complete(), Some(3));
        assert_eq!(s.record_count(3), 1);
        assert_eq!(s.record_count(4), 0, "torn records must be purged");
        // The reused id starts from a clean slate.
        assert!(s.write(4, "v", b"k".to_vec(), b"v4b".to_vec()));
        assert_eq!(
            s.read_vertex(4, "v"),
            vec![(b"k".to_vec(), b"v4b".to_vec())]
        );
    }

    #[test]
    fn clear_removes_everything() {
        let (_g, s) = store();
        assert!(s.write(1, "v", b"k".to_vec(), b"v".to_vec()));
        s.mark_complete(1, vec![]);
        s.clear();
        assert_eq!(s.latest_complete(), None);
        assert_eq!(s.record_count(1), 0);
    }
}

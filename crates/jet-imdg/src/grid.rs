//! The grid: a cluster of in-process member nodes holding partitioned,
//! replicated data (paper Fig. 5/6).
//!
//! Storage layout: every member node has one `PartitionStore` per partition
//! id; a store holds the per-partition slice of every named map. Whether a
//! member's copy of partition P is the *primary* or a *backup* is decided
//! solely by the [`PartitionTable`] — promotion is a metadata change, which
//! is why recovery is fast (the paper's Fig. 6 argument).
//!
//! Writes go to the primary and are replicated synchronously to all backup
//! replicas. Reads are served by the primary. When a member is killed its
//! data vanishes with it; the table promotes backups and the grid re-copies
//! data to restore redundancy. Graceful shutdown rebalances *first*, so no
//! data is lost even with zero backups.

use crate::partition_table::{Migration, PartitionTable};
use crate::types::{GridError, MemberId, PartitionId, DEFAULT_PARTITION_COUNT};
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Type-erased per-partition slice of a named map. The grid migrates and
/// replicates through this trait without knowing key/value types.
pub trait AnyMapSlice: Send {
    fn clone_box(&self) -> Box<dyn AnyMapSlice>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn entry_count(&self) -> usize;
    /// Merge `other` (same concrete type) into self, overwriting keys.
    fn absorb(&mut self, other: &dyn AnyMapSlice);
}

/// The per-partition container: map name → type-erased slice.
#[derive(Default)]
pub struct PartitionStore {
    maps: HashMap<String, Box<dyn AnyMapSlice>>,
}

impl PartitionStore {
    // jet-analyze: allow(alloc) — IMDG stand-in: named-slice tables are keyed by owned strings
    pub fn slice_mut<F>(&mut self, name: &str, create: F) -> &mut Box<dyn AnyMapSlice>
    where
        F: FnOnce() -> Box<dyn AnyMapSlice>,
    {
        self.maps.entry(name.to_string()).or_insert_with(create)
    }

    pub fn slice(&self, name: &str) -> Option<&dyn AnyMapSlice> {
        self.maps.get(name).map(|b| b.as_ref())
    }

    pub fn entry_count(&self) -> usize {
        self.maps.values().map(|m| m.entry_count()).sum()
    }

    fn clone_all(&self) -> PartitionStore {
        PartitionStore {
            maps: self
                .maps
                .iter()
                .map(|(k, v)| (k.clone(), v.clone_box()))
                .collect(),
        }
    }

    fn absorb(&mut self, other: &PartitionStore) {
        for (name, slice) in &other.maps {
            match self.maps.get_mut(name) {
                Some(mine) => mine.absorb(slice.as_ref()),
                None => {
                    self.maps.insert(name.clone(), slice.clone_box());
                }
            }
        }
    }
}

/// One cluster member's storage.
pub struct MemberNode {
    pub id: MemberId,
    partitions: Vec<Mutex<PartitionStore>>,
}

impl MemberNode {
    fn new(id: MemberId, partition_count: u32) -> Self {
        MemberNode {
            id,
            partitions: (0..partition_count)
                .map(|_| Mutex::new(PartitionStore::default()))
                .collect(),
        }
    }

    /// Lock the store of one partition.
    // jet-analyze: allow(block) — IMDG stand-in: partition tables under short locks model the member boundary
    pub fn partition(&self, p: PartitionId) -> parking_lot::MutexGuard<'_, PartitionStore> {
        self.partitions[p.0 as usize].lock()
    }

    /// Total entries across all partitions and maps on this member.
    // jet-analyze: allow(block) — IMDG stand-in: partition tables under short locks model the member boundary
    pub fn entry_count(&self) -> usize {
        self.partitions.iter().map(|p| p.lock().entry_count()).sum()
    }
}

struct ClusterState {
    next_member: u32,
    table: PartitionTable,
    nodes: HashMap<MemberId, Arc<MemberNode>>,
}

struct GridInner {
    partition_count: u32,
    backup_count: usize,
    state: RwLock<ClusterState>,
}

/// Handle to the in-memory data grid. Cheap to clone; all clones address the
/// same cluster.
#[derive(Clone)]
pub struct Grid {
    inner: Arc<GridInner>,
}

impl Grid {
    /// Start a grid with `members` initial members, the default 271
    /// partitions, and `backup_count` backup replicas per partition.
    pub fn new(members: usize, backup_count: usize) -> Self {
        Self::with_partition_count(members, backup_count, DEFAULT_PARTITION_COUNT)
    }

    /// As [`Grid::new`] with an explicit partition count (tests use small
    /// counts to make exhaustive checks cheap).
    pub fn with_partition_count(members: usize, backup_count: usize, partition_count: u32) -> Self {
        assert!(members > 0, "grid needs at least one member");
        let ids: Vec<MemberId> = (0..members as u32).map(MemberId).collect();
        let table = PartitionTable::assign(&ids, partition_count, backup_count);
        let nodes = ids
            .iter()
            .map(|&id| (id, Arc::new(MemberNode::new(id, partition_count))))
            .collect();
        Grid {
            inner: Arc::new(GridInner {
                partition_count,
                backup_count,
                state: RwLock::new(ClusterState {
                    next_member: members as u32,
                    table,
                    nodes,
                }),
            }),
        }
    }

    pub fn partition_count(&self) -> u32 {
        self.inner.partition_count
    }

    pub fn backup_count(&self) -> usize {
        self.inner.backup_count
    }

    /// Live member ids, ascending.
    pub fn members(&self) -> Vec<MemberId> {
        let mut ms: Vec<MemberId> = self.inner.state.read().nodes.keys().copied().collect();
        ms.sort_unstable();
        ms
    }

    /// Snapshot of the current partition table.
    pub fn table(&self) -> PartitionTable {
        self.inner.state.read().table.clone()
    }

    /// The node storing `m`'s data, if alive.
    pub fn node(&self, m: MemberId) -> Result<Arc<MemberNode>, GridError> {
        self.inner
            .state
            .read()
            .nodes
            .get(&m)
            .cloned()
            .ok_or(GridError::MemberDown(m))
    }

    /// Primary owner node of partition `p`.
    // jet-analyze: allow(block) — IMDG stand-in: partition tables under short locks model the member boundary
    pub fn primary_node(&self, p: PartitionId) -> Result<Arc<MemberNode>, GridError> {
        let st = self.inner.state.read();
        let m = st.table.primary(p).ok_or(GridError::NoMembers)?;
        st.nodes.get(&m).cloned().ok_or(GridError::MemberDown(m))
    }

    /// All replica nodes (primary first) of partition `p` that are alive.
    // jet-analyze: allow(alloc, block) — IMDG stand-in: partition tables under short locks model the member boundary
    pub fn replica_nodes(&self, p: PartitionId) -> Vec<Arc<MemberNode>> {
        let st = self.inner.state.read();
        st.table
            .replicas(p)
            .iter()
            .filter_map(|m| st.nodes.get(m).cloned())
            .collect()
    }

    /// Add a new member and rebalance, copying migrated partition data.
    /// Returns the new member's id.
    pub fn add_member(&self) -> MemberId {
        let mut st = self.inner.state.write();
        let id = MemberId(st.next_member);
        st.next_member += 1;
        let node = Arc::new(MemberNode::new(id, self.inner.partition_count));
        st.nodes.insert(id, node);
        let mut members: Vec<MemberId> = st.nodes.keys().copied().collect();
        members.sort_unstable();
        let (next_table, migrations) = st.table.rebalance(&members);
        Self::apply_migrations(&st.nodes, &migrations);
        Self::drop_stale_replicas(&st.nodes, &st.table, &next_table);
        st.table = next_table;
        id
    }

    /// Kill a member abruptly: its data is lost, backups are promoted, and
    /// redundancy is restored by copying from the new primaries (Fig. 6).
    pub fn kill_member(&self, m: MemberId) -> Result<(), GridError> {
        let mut st = self.inner.state.write();
        if st.nodes.remove(&m).is_none() {
            return Err(GridError::MemberDown(m));
        }
        if st.nodes.is_empty() {
            return Ok(()); // cluster is gone; table left as-is
        }
        let (next_table, migrations) = st.table.promote_on_failure(m);
        Self::apply_migrations(&st.nodes, &migrations);
        st.table = next_table;
        Ok(())
    }

    /// Gracefully shut down a member: migrate its data away first, then
    /// remove it. No data is lost even with `backup_count == 0`.
    pub fn shutdown_member(&self, m: MemberId) -> Result<(), GridError> {
        let mut st = self.inner.state.write();
        if !st.nodes.contains_key(&m) {
            return Err(GridError::MemberDown(m));
        }
        let members: Vec<MemberId> = st.nodes.keys().copied().filter(|&x| x != m).collect();
        if members.is_empty() {
            st.nodes.remove(&m);
            return Ok(());
        }
        let mut sorted = members.clone();
        sorted.sort_unstable();
        let (next_table, migrations) = st.table.rebalance(&sorted);
        Self::apply_migrations(&st.nodes, &migrations);
        st.nodes.remove(&m);
        st.table = next_table;
        Ok(())
    }

    fn apply_migrations(nodes: &HashMap<MemberId, Arc<MemberNode>>, migrations: &[Migration]) {
        for mig in migrations {
            let (Some(src), Some(dst)) = (nodes.get(&mig.from), nodes.get(&mig.to)) else {
                continue;
            };
            let copied = src.partition(mig.partition).clone_all();
            dst.partition(mig.partition).absorb(&copied);
        }
    }

    /// Remove partition copies from members that no longer appear in the
    /// new table's replica chain (post-rebalance cleanup).
    fn drop_stale_replicas(
        nodes: &HashMap<MemberId, Arc<MemberNode>>,
        old: &PartitionTable,
        new: &PartitionTable,
    ) {
        for p in 0..old.partition_count() {
            let pid = PartitionId(p);
            for m in old.replicas(pid) {
                if !new.replicas(pid).contains(m) {
                    if let Some(node) = nodes.get(m) {
                        *node.partition(pid) = PartitionStore::default();
                    }
                }
            }
        }
    }

    /// Sum of entries over primary replicas of a named map — the logical
    /// size of the map.
    // jet-analyze: allow(block) — IMDG stand-in: partition tables under short locks model the member boundary
    pub fn map_size(&self, name: &str) -> usize {
        let st = self.inner.state.read();
        let mut total = 0;
        for p in 0..self.inner.partition_count {
            let pid = PartitionId(p);
            if let Some(m) = st.table.primary(pid) {
                if let Some(node) = st.nodes.get(&m) {
                    if let Some(slice) = node.partition(pid).slice(name) {
                        total += slice.entry_count();
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imap::IMap;

    #[test]
    fn new_grid_has_members_and_full_table() {
        let g = Grid::with_partition_count(3, 1, 31);
        assert_eq!(g.members(), vec![MemberId(0), MemberId(1), MemberId(2)]);
        g.table().check_invariants().unwrap();
        assert_eq!(g.partition_count(), 31);
    }

    #[test]
    fn add_member_grows_cluster_and_keeps_invariants() {
        let g = Grid::with_partition_count(2, 1, 31);
        let id = g.add_member();
        assert_eq!(id, MemberId(2));
        assert_eq!(g.members().len(), 3);
        g.table().check_invariants().unwrap();
    }

    #[test]
    fn kill_member_promotes_and_data_survives() {
        let g = Grid::with_partition_count(3, 1, 31);
        let map: IMap<u64, String> = IMap::new(&g, "test");
        for i in 0..500u64 {
            map.put(i, format!("v{i}"));
        }
        assert_eq!(map.len(), 500);
        g.kill_member(MemberId(0)).unwrap();
        assert_eq!(g.members().len(), 2);
        assert_eq!(map.len(), 500, "entries lost after kill");
        for i in 0..500u64 {
            assert_eq!(map.get(&i).as_deref(), Some(format!("v{i}").as_str()));
        }
        g.table().check_invariants().unwrap();
    }

    #[test]
    fn double_failure_with_one_backup_loses_nothing_if_sequential() {
        // Sequential failures allow re-replication in between, so a single
        // backup still protects the data.
        let g = Grid::with_partition_count(4, 1, 31);
        let map: IMap<u64, u64> = IMap::new(&g, "m");
        for i in 0..300 {
            map.put(i, i * 2);
        }
        g.kill_member(MemberId(1)).unwrap();
        g.kill_member(MemberId(2)).unwrap();
        assert_eq!(map.len(), 300);
    }

    #[test]
    fn graceful_shutdown_preserves_data_with_zero_backups() {
        let g = Grid::with_partition_count(3, 0, 31);
        let map: IMap<u64, u64> = IMap::new(&g, "m");
        for i in 0..300 {
            map.put(i, i);
        }
        g.shutdown_member(MemberId(0)).unwrap();
        assert_eq!(map.len(), 300, "graceful shutdown lost data");
    }

    #[test]
    fn kill_with_zero_backups_loses_that_members_partitions_only() {
        let g = Grid::with_partition_count(3, 0, 31);
        let map: IMap<u64, u64> = IMap::new(&g, "m");
        for i in 0..300 {
            map.put(i, i);
        }
        let owned = g.table().owned_primaries(MemberId(0)).len();
        assert!(owned > 0);
        g.kill_member(MemberId(0)).unwrap();
        let remaining = map.len();
        assert!(remaining < 300, "no data lost despite zero backups?");
        assert!(remaining > 0);
    }

    #[test]
    fn killing_unknown_member_errors() {
        let g = Grid::with_partition_count(1, 0, 7);
        assert_eq!(
            g.kill_member(MemberId(9)),
            Err(GridError::MemberDown(MemberId(9)))
        );
    }

    #[test]
    fn node_lookup_fails_for_dead_member() {
        let g = Grid::with_partition_count(2, 1, 7);
        g.kill_member(MemberId(1)).unwrap();
        assert!(g.node(MemberId(1)).is_err());
        assert!(g.node(MemberId(0)).is_ok());
    }

    #[test]
    fn replica_nodes_lists_live_chain() {
        let g = Grid::with_partition_count(3, 1, 7);
        let nodes = g.replica_nodes(PartitionId(0));
        assert_eq!(nodes.len(), 2);
    }
}

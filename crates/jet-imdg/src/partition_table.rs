//! The partition table: which member holds each partition's primary and
//! backup replicas (paper Fig. 5), plus the three reconfiguration paths:
//!
//! * **promotion** on member failure (Fig. 6): the first surviving backup of
//!   every partition the dead member owned becomes primary, and new backups
//!   are appointed so the configured redundancy is restored;
//! * **rebalance** on member join (§4.3): a fresh assignment computed from
//!   the consistent-hash ring, which by construction moves only the
//!   partitions adjacent to the new member's ring positions;
//! * **migration planning**: the diff between two tables, used by the grid
//!   to copy exactly the data that must move.

use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::types::{MemberId, PartitionId};
use jet_util::seq;

/// Replica assignment for every partition. Index 0 of a replica chain is the
/// primary; the rest are backups in promotion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionTable {
    replicas: Vec<Vec<MemberId>>,
    backup_count: usize,
    version: u64,
}

/// One planned data movement: partition `partition`'s replica must be copied
/// from `from` (a member that has the data) to `to` (a member that needs it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    pub partition: PartitionId,
    pub from: MemberId,
    pub to: MemberId,
    /// True if `to` becomes the primary owner, false for a backup copy.
    pub to_primary: bool,
}

impl PartitionTable {
    /// Build the initial table for `members` with `backup_count` backups per
    /// partition (replica chain length `backup_count + 1`, truncated when
    /// the cluster is smaller).
    pub fn assign(members: &[MemberId], partition_count: u32, backup_count: usize) -> Self {
        assert!(partition_count > 0, "partition count must be positive");
        let ring = HashRing::new(members, DEFAULT_VNODES);
        let replicas = (0..partition_count)
            .map(|p| {
                let hash = seq::mix64(p as u64);
                ring.replica_chain(hash, backup_count + 1)
            })
            .collect();
        PartitionTable {
            replicas,
            backup_count,
            version: 1,
        }
    }

    pub fn partition_count(&self) -> u32 {
        self.replicas.len() as u32
    }

    pub fn backup_count(&self) -> usize {
        self.backup_count
    }

    /// Table version, bumped on every reconfiguration.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Full replica chain of a partition (primary first). Empty only when the
    /// cluster has no members.
    pub fn replicas(&self, p: PartitionId) -> &[MemberId] {
        &self.replicas[p.0 as usize]
    }

    /// Primary owner of a partition.
    pub fn primary(&self, p: PartitionId) -> Option<MemberId> {
        self.replicas[p.0 as usize].first().copied()
    }

    /// Backup owners of a partition.
    pub fn backups(&self, p: PartitionId) -> &[MemberId] {
        let chain = &self.replicas[p.0 as usize];
        if chain.is_empty() {
            chain
        } else {
            &chain[1..]
        }
    }

    /// All partitions whose primary is `m`.
    pub fn owned_primaries(&self, m: MemberId) -> Vec<PartitionId> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, chain)| chain.first() == Some(&m))
            .map(|(i, _)| PartitionId(i as u32))
            .collect()
    }

    /// All distinct members appearing anywhere in the table.
    pub fn members(&self) -> Vec<MemberId> {
        let mut ms: Vec<MemberId> = self.replicas.iter().flatten().copied().collect();
        ms.sort_unstable();
        ms.dedup();
        ms
    }

    /// Handle the failure of `dead`: promote the first surviving backup of
    /// every partition `dead` was primary for, drop `dead` from all chains,
    /// and appoint replacement backups from the ring over the survivors.
    ///
    /// Returns the migrations needed to restore redundancy (copies from the
    /// new primary to the newly appointed backups). Promotions themselves
    /// need no data movement — that is the point of the design (Fig. 6).
    pub fn promote_on_failure(&self, dead: MemberId) -> (PartitionTable, Vec<Migration>) {
        let survivors: Vec<MemberId> = self.members().into_iter().filter(|&m| m != dead).collect();
        let ring = HashRing::new(&survivors, DEFAULT_VNODES);
        let mut migrations = Vec::new();
        let replicas: Vec<Vec<MemberId>> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, chain)| {
                let mut chain: Vec<MemberId> =
                    chain.iter().copied().filter(|&m| m != dead).collect();
                // Top up the chain from the ring, skipping members already in it.
                let hash = seq::mix64(i as u64);
                let want = (self.backup_count + 1).min(survivors.len());
                if chain.len() < want {
                    for cand in ring.replica_chain(hash, survivors.len()) {
                        if chain.len() == want {
                            break;
                        }
                        if !chain.contains(&cand) {
                            // New backup: data must be copied from the (new) primary.
                            if let Some(&src) = chain.first() {
                                migrations.push(Migration {
                                    partition: PartitionId(i as u32),
                                    from: src,
                                    to: cand,
                                    to_primary: chain.is_empty(),
                                });
                            }
                            chain.push(cand);
                        }
                    }
                }
                chain
            })
            .collect();
        (
            PartitionTable {
                replicas,
                backup_count: self.backup_count,
                version: self.version + 1,
            },
            migrations,
        )
    }

    /// Rebalance for a new member set (typically after a join). Computes the
    /// ring-based assignment and the migration plan from `self`.
    pub fn rebalance(&self, members: &[MemberId]) -> (PartitionTable, Vec<Migration>) {
        let mut next = PartitionTable::assign(members, self.partition_count(), self.backup_count);
        next.version = self.version + 1;
        let migrations = self.plan_migrations(&next);
        (next, migrations)
    }

    /// Diff two tables into a migration plan. For every replica a member
    /// gains, pick a source member that holds the partition in the *old*
    /// table (preferring the old primary).
    pub fn plan_migrations(&self, next: &PartitionTable) -> Vec<Migration> {
        assert_eq!(self.partition_count(), next.partition_count());
        let mut out = Vec::new();
        for i in 0..self.replicas.len() {
            let old = &self.replicas[i];
            let new = &next.replicas[i];
            for (pos, &m) in new.iter().enumerate() {
                if !old.contains(&m) {
                    if let Some(&src) = old.first() {
                        out.push(Migration {
                            partition: PartitionId(i as u32),
                            from: src,
                            to: m,
                            to_primary: pos == 0,
                        });
                    }
                }
            }
        }
        out
    }

    /// Validate structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let members = self.members();
        let expected_len = (self.backup_count + 1).min(members.len());
        for (i, chain) in self.replicas.iter().enumerate() {
            let mut sorted = chain.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != chain.len() {
                return Err(format!(
                    "partition {i}: duplicate member in chain {chain:?}"
                ));
            }
            if !members.is_empty() && chain.len() != expected_len {
                return Err(format!(
                    "partition {i}: chain length {} != expected {expected_len}",
                    chain.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u32) -> Vec<MemberId> {
        (0..n).map(MemberId).collect()
    }

    #[test]
    fn assign_covers_every_partition_with_full_chains() {
        let t = PartitionTable::assign(&members(5), 271, 2);
        t.check_invariants().unwrap();
        for p in 0..271 {
            let chain = t.replicas(PartitionId(p));
            assert_eq!(chain.len(), 3);
            assert_eq!(t.primary(PartitionId(p)), Some(chain[0]));
            assert_eq!(t.backups(PartitionId(p)), &chain[1..]);
        }
    }

    #[test]
    fn chains_truncate_in_tiny_clusters() {
        let t = PartitionTable::assign(&members(2), 31, 3);
        t.check_invariants().unwrap();
        for p in 0..31 {
            assert_eq!(t.replicas(PartitionId(p)).len(), 2);
        }
    }

    #[test]
    fn primaries_are_roughly_balanced() {
        let t = PartitionTable::assign(&members(5), 271, 1);
        for m in members(5) {
            let owned = t.owned_primaries(m).len();
            assert!((20..=100).contains(&owned), "member {m} owns {owned}");
        }
    }

    #[test]
    fn promotion_requires_no_data_movement_for_primaries() {
        let t = PartitionTable::assign(&members(4), 271, 1);
        let dead = MemberId(1);
        let lost: Vec<PartitionId> = t.owned_primaries(dead);
        let (t2, migrations) = t.promote_on_failure(dead);
        t2.check_invariants().unwrap();
        assert!(!t2.members().contains(&dead));
        // Every partition the dead member owned is now owned by its old backup.
        for p in lost {
            let old_backup = t.backups(p)[0];
            assert_eq!(t2.primary(p), Some(old_backup), "partition {p}");
        }
        // Promotions move no data; only backup restoration does.
        for m in &migrations {
            assert!(!m.to_primary, "primary handover required data copy: {m:?}");
        }
    }

    #[test]
    fn promotion_restores_redundancy() {
        let t = PartitionTable::assign(&members(4), 271, 1);
        let (t2, migrations) = t.promote_on_failure(MemberId(0));
        for p in 0..271 {
            assert_eq!(
                t2.replicas(PartitionId(p)).len(),
                2,
                "partition {p} lost redundancy"
            );
        }
        // Each migration's source actually holds the partition in t2.
        for m in &migrations {
            assert_eq!(t2.primary(m.partition), Some(m.from));
            assert!(t2.backups(m.partition).contains(&m.to));
        }
    }

    #[test]
    fn rebalance_on_join_moves_little_data() {
        let t = PartitionTable::assign(&members(4), 271, 1);
        let mut more = members(4);
        more.push(MemberId(10));
        let (t2, migrations) = t.rebalance(&more);
        t2.check_invariants().unwrap();
        // The new member holds roughly 2*271/5 replicas; migrations should be
        // near that, far below total replica count (consistent hashing).
        let total_replicas = 271 * 2;
        assert!(
            migrations.len() < total_replicas / 2,
            "too many migrations: {}",
            migrations.len()
        );
        // Every surviving (partition, member) replica pair stayed put.
        let mut moved_to_new = 0;
        for m in &migrations {
            if m.to == MemberId(10) {
                moved_to_new += 1;
            }
        }
        assert!(moved_to_new > 0, "new member received nothing");
    }

    #[test]
    fn version_bumps_on_reconfiguration() {
        let t = PartitionTable::assign(&members(3), 31, 1);
        assert_eq!(t.version(), 1);
        let (t2, _) = t.promote_on_failure(MemberId(0));
        assert_eq!(t2.version(), 2);
        let (t3, _) = t2.rebalance(&[MemberId(1), MemberId(2), MemberId(5)]);
        assert_eq!(t3.version(), 3);
    }

    #[test]
    fn single_member_cluster_survives_table_ops() {
        let t = PartitionTable::assign(&members(1), 31, 1);
        t.check_invariants().unwrap();
        for p in 0..31 {
            assert_eq!(t.replicas(PartitionId(p)).len(), 1);
        }
    }

    #[test]
    fn migration_plan_is_empty_for_identical_tables() {
        let t = PartitionTable::assign(&members(3), 31, 1);
        assert!(t.plan_migrations(&t.clone()).is_empty());
    }
}

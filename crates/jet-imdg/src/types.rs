//! Identifier newtypes and grid-wide constants.

use jet_util::seq;

/// Hazelcast's default partition count — a prime, so keys spread evenly even
/// for pathological hash distributions.
pub const DEFAULT_PARTITION_COUNT: u32 = 271;

/// Identity of a cluster member (a "node"). Monotonically assigned by the
/// grid; never reused, so a rejoined machine is a *new* member, as in
/// Hazelcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemberId(pub u32);

impl std::fmt::Display for MemberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Index of a data partition in `0..partition_count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Route a key hash to its partition. All routing in the engine and the grid
/// goes through this single function so they can never disagree (the paper's
/// locality argument depends on Jet and IMDG partitioning *aligning*).
#[inline]
pub fn partition_for_hash(hash: u64, partition_count: u32) -> PartitionId {
    PartitionId(seq::bucket_of(hash, partition_count))
}

/// Route a hashable key to its partition.
#[inline]
pub fn partition_for_key<K: std::hash::Hash + ?Sized>(
    key: &K,
    partition_count: u32,
) -> PartitionId {
    partition_for_hash(seq::hash_of(key), partition_count)
}

/// Errors surfaced by grid operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// The addressed member has left the cluster or was killed.
    MemberDown(MemberId),
    /// The cluster has no live members.
    NoMembers,
    /// A typed map handle was opened with a different type than the map was
    /// created with.
    TypeMismatch { map: String },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::MemberDown(m) => write!(f, "member {m} is down"),
            GridError::NoMembers => write!(f, "cluster has no live members"),
            GridError::TypeMismatch { map } => write!(f, "map '{map}' opened with wrong types"),
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_routing_is_stable_and_in_range() {
        for key in 0..10_000u64 {
            let p = partition_for_key(&key, DEFAULT_PARTITION_COUNT);
            assert!(p.0 < DEFAULT_PARTITION_COUNT);
            assert_eq!(p, partition_for_key(&key, DEFAULT_PARTITION_COUNT));
        }
    }

    #[test]
    fn string_and_int_keys_route_consistently() {
        let p1 = partition_for_key("user-42", 271);
        let p2 = partition_for_key("user-42", 271);
        assert_eq!(p1, p2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MemberId(3).to_string(), "m3");
        assert_eq!(PartitionId(17).to_string(), "p17");
        assert_eq!(
            GridError::MemberDown(MemberId(1)).to_string(),
            "member m1 is down"
        );
    }
}

//! The typed `IMap` handle and the per-partition event journal.
//!
//! `IMap` is the data structure the paper leans on everywhere: Jet stores
//! snapshots in it (§2.4), reads reference data from it (Listing 2's hash
//! join build side), and users maintain materialized views over its change
//! stream (§6 "View Maintenance"). The handle routes every operation to the
//! partition owning the key (via the shared stable hash), applies it on the
//! primary replica and synchronously on every backup replica.
//!
//! The **event journal** is a bounded per-partition ring of entry events
//! (put/update/remove). It makes the map a *replayable source* in the §4.5
//! sense: a reader can poll events from any retained sequence number, which
//! is exactly what exactly-once recovery needs.

use crate::grid::{AnyMapSlice, Grid};
use crate::types::{partition_for_key, GridError, PartitionId};
use std::any::Any;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::marker::PhantomData;

/// Kind of change recorded in the event journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryEventKind {
    Added,
    Updated,
    Removed,
}

/// One event-journal record.
#[derive(Debug, Clone)]
pub struct EntryEvent<K, V> {
    pub seq: u64,
    pub kind: EntryEventKind,
    pub key: K,
    /// New value for Added/Updated; the removed value for Removed.
    pub value: V,
}

/// Bounded per-partition journal. Oldest events fall off when full; a reader
/// that asks for an expired sequence is told the earliest retained one.
#[derive(Debug, Clone)]
pub struct Journal<K, V> {
    events: VecDeque<EntryEvent<K, V>>,
    next_seq: u64,
    capacity: usize,
}

impl<K: Clone, V: Clone> Journal<K, V> {
    fn new(capacity: usize) -> Self {
        Journal {
            events: VecDeque::new(),
            next_seq: 0,
            capacity,
        }
    }

    // jet-analyze: allow(alloc) — journal ring reaches configured capacity, then overwrites
    fn append(&mut self, kind: EntryEventKind, key: K, value: V) {
        if self.capacity == 0 {
            self.next_seq += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(EntryEvent {
            seq: self.next_seq,
            kind,
            key,
            value,
        });
        self.next_seq += 1;
    }

    /// Earliest retained sequence (== next_seq when empty).
    pub fn head_seq(&self) -> u64 {
        self.events.front().map(|e| e.seq).unwrap_or(self.next_seq)
    }

    /// Sequence the next event will get.
    pub fn tail_seq(&self) -> u64 {
        self.next_seq
    }

    /// Read up to `max` events starting at `from_seq`; returns the events
    /// and the sequence to continue from.
    // jet-analyze: allow(alloc) — read materializes the requested batch for the caller
    pub fn read(&self, from_seq: u64, max: usize) -> (Vec<EntryEvent<K, V>>, u64) {
        let start = from_seq.max(self.head_seq());
        let mut out = Vec::new();
        for e in &self.events {
            if e.seq >= start {
                out.push(e.clone());
                if out.len() == max {
                    break;
                }
            }
        }
        let next = out.last().map(|e| e.seq + 1).unwrap_or(start);
        (out, next)
    }
}

/// Per-partition slice of a typed map: the entries plus the journal.
pub struct MapSlice<K, V> {
    pub entries: HashMap<K, V>,
    pub journal: Journal<K, V>,
}

impl<K, V> MapSlice<K, V>
where
    K: Clone + Eq + Hash + Send + 'static,
    V: Clone + Send + 'static,
{
    fn new(journal_capacity: usize) -> Self {
        MapSlice {
            entries: HashMap::new(),
            journal: Journal::new(journal_capacity),
        }
    }
}

impl<K, V> AnyMapSlice for MapSlice<K, V>
where
    K: Clone + Eq + Hash + Send + 'static,
    V: Clone + Send + 'static,
{
    fn clone_box(&self) -> Box<dyn AnyMapSlice> {
        Box::new(MapSlice {
            entries: self.entries.clone(),
            journal: self.journal.clone(),
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn entry_count(&self) -> usize {
        self.entries.len()
    }

    fn absorb(&mut self, other: &dyn AnyMapSlice) {
        let other = other
            .as_any()
            .downcast_ref::<MapSlice<K, V>>()
            .expect("absorb called with mismatched map slice type");
        for (k, v) in &other.entries {
            self.entries.insert(k.clone(), v.clone());
        }
        // Adopt the longer journal so replay can continue after migration.
        if other.journal.tail_seq() > self.journal.tail_seq() {
            self.journal = other.journal.clone();
        }
    }
}

/// Default journal capacity per partition.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 14;

/// Typed, partitioned, replicated map handle. Cheap to clone.
pub struct IMap<K, V> {
    grid: Grid,
    name: String,
    journal_capacity: usize,
    _types: PhantomData<fn(K, V)>,
}

impl<K, V> Clone for IMap<K, V> {
    fn clone(&self) -> Self {
        IMap {
            grid: self.grid.clone(),
            name: self.name.clone(),
            journal_capacity: self.journal_capacity,
            _types: PhantomData,
        }
    }
}

impl<K, V> IMap<K, V>
where
    K: Clone + Eq + Hash + Send + 'static,
    V: Clone + Send + 'static,
{
    /// Open (or create) the named map on `grid`.
    pub fn new(grid: &Grid, name: &str) -> Self {
        Self::with_journal_capacity(grid, name, DEFAULT_JOURNAL_CAPACITY)
    }

    /// Open with an explicit per-partition journal capacity (0 disables the
    /// journal).
    pub fn with_journal_capacity(grid: &Grid, name: &str, journal_capacity: usize) -> Self {
        IMap {
            grid: grid.clone(),
            name: name.to_string(),
            journal_capacity,
            _types: PhantomData,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Partition the key routes to.
    pub fn partition_of(&self, key: &K) -> PartitionId {
        partition_for_key(key, self.grid.partition_count())
    }

    // jet-analyze: allow(alloc, panic) — IMDG stand-in: boxed partition closure per operation; member-side in the real system
    fn with_slice_mut<R>(
        &self,
        node: &crate::grid::MemberNode,
        p: PartitionId,
        f: impl FnOnce(&mut MapSlice<K, V>) -> R,
    ) -> R {
        let cap = self.journal_capacity;
        let mut store = node.partition(p);
        let slice = store.slice_mut(&self.name, || Box::new(MapSlice::<K, V>::new(cap)));
        let typed = slice
            .as_any_mut()
            .downcast_mut::<MapSlice<K, V>>()
            .expect("map opened with mismatched types");
        f(typed)
    }

    /// Insert or replace; returns the previous value. Applied to the primary
    /// and synchronously to every backup replica.
    // jet-analyze: allow(alloc) — owned key/value storage clones on insert by design (the map owns its entries)
    pub fn put(&self, key: K, value: V) -> Option<V> {
        let p = self.partition_of(&key);
        let replicas = self.grid.replica_nodes(p);
        let mut prev = None;
        for (i, node) in replicas.iter().enumerate() {
            let old = self.with_slice_mut(node, p, |s| {
                let kind = match s.entries.entry(key.clone()) {
                    Entry::Occupied(mut e) => {
                        let old = e.insert(value.clone());
                        s.journal
                            .append(EntryEventKind::Updated, key.clone(), value.clone());
                        return Some(old);
                    }
                    Entry::Vacant(e) => {
                        e.insert(value.clone());
                        EntryEventKind::Added
                    }
                };
                s.journal.append(kind, key.clone(), value.clone());
                None
            });
            if i == 0 {
                prev = old;
            }
        }
        prev
    }

    /// Read from the primary replica.
    pub fn get(&self, key: &K) -> Option<V> {
        let p = self.partition_of(key);
        let node = self.grid.primary_node(p).ok()?;
        let mut store = node.partition(p);
        let slice = store.slice_mut(&self.name, || {
            Box::new(MapSlice::<K, V>::new(self.journal_capacity))
        });
        slice
            .as_any()
            .downcast_ref::<MapSlice<K, V>>()
            .expect("map opened with mismatched types")
            .entries
            .get(key)
            .cloned()
    }

    /// Remove; returns the removed value (from the primary).
    pub fn remove(&self, key: &K) -> Option<V> {
        let p = self.partition_of(key);
        let replicas = self.grid.replica_nodes(p);
        let mut prev = None;
        for (i, node) in replicas.iter().enumerate() {
            let old = self.with_slice_mut(node, p, |s| {
                let old = s.entries.remove(key);
                if let Some(v) = &old {
                    s.journal
                        .append(EntryEventKind::Removed, key.clone(), v.clone());
                }
                old
            });
            if i == 0 {
                prev = old;
            }
        }
        prev
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Logical entry count (sum over primary replicas).
    pub fn len(&self) -> usize {
        self.grid.map_size(&self.name)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all entries (on every replica).
    pub fn clear(&self) {
        for p in 0..self.grid.partition_count() {
            let pid = PartitionId(p);
            for node in self.grid.replica_nodes(pid) {
                self.with_slice_mut(&node, pid, |s| s.entries.clear());
            }
        }
    }

    /// Materialize all `(key, value)` pairs from primary replicas. A
    /// point-in-time scan, not a consistent snapshot (AP semantics, §1).
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for p in 0..self.grid.partition_count() {
            let pid = PartitionId(p);
            if let Ok(node) = self.grid.primary_node(pid) {
                let store = node.partition(pid);
                if let Some(slice) = store.slice(&self.name) {
                    let typed = slice
                        .as_any()
                        .downcast_ref::<MapSlice<K, V>>()
                        .expect("map opened with mismatched types");
                    out.extend(typed.entries.iter().map(|(k, v)| (k.clone(), v.clone())));
                }
            }
        }
        out
    }

    /// Predicate scan over primary replicas ("queryable" map, §4.2).
    pub fn values_where(&self, mut pred: impl FnMut(&K, &V) -> bool) -> Vec<(K, V)> {
        self.entries()
            .into_iter()
            .filter(|(k, v)| pred(k, v))
            .collect()
    }

    /// Atomically update the value under `key` on the primary (then
    /// replicate), returning the new value. Used for counters/aggregates.
    pub fn compute(&self, key: K, f: impl FnOnce(Option<&V>) -> Option<V>) -> Option<V> {
        let p = self.partition_of(&key);
        let replicas = self.grid.replica_nodes(p);
        if replicas.is_empty() {
            return None;
        }
        // Decide on the primary, then propagate the decision to backups.
        let decided: Option<V> = self.with_slice_mut(&replicas[0], p, |s| {
            let new = f(s.entries.get(&key));
            match &new {
                Some(v) => {
                    let kind = if s.entries.contains_key(&key) {
                        EntryEventKind::Updated
                    } else {
                        EntryEventKind::Added
                    };
                    s.entries.insert(key.clone(), v.clone());
                    s.journal.append(kind, key.clone(), v.clone());
                }
                None => {
                    if let Some(old) = s.entries.remove(&key) {
                        s.journal.append(EntryEventKind::Removed, key.clone(), old);
                    }
                }
            }
            new
        });
        for node in &replicas[1..] {
            self.with_slice_mut(node, p, |s| match &decided {
                Some(v) => {
                    s.entries.insert(key.clone(), v.clone());
                }
                None => {
                    s.entries.remove(&key);
                }
            });
        }
        decided
    }

    /// Poll the event journal of partition `p` starting at `from_seq`.
    /// Returns the events and the sequence to resume from.
    // jet-analyze: allow(panic) — journal bounds are checked against the caller-provided sequence
    pub fn read_journal(
        &self,
        p: PartitionId,
        from_seq: u64,
        max: usize,
    ) -> Result<(Vec<EntryEvent<K, V>>, u64), GridError> {
        let node = self.grid.primary_node(p)?;
        let store = node.partition(p);
        match store.slice(&self.name) {
            Some(slice) => {
                let typed = slice
                    .as_any()
                    .downcast_ref::<MapSlice<K, V>>()
                    .expect("map opened with mismatched types");
                Ok(typed.journal.read(from_seq, max))
            }
            None => Ok((Vec::new(), from_seq)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MemberId;

    fn grid() -> Grid {
        Grid::with_partition_count(3, 1, 31)
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let g = grid();
        let m: IMap<String, u64> = IMap::new(&g, "m");
        assert_eq!(m.put("a".into(), 1), None);
        assert_eq!(m.put("a".into(), 2), Some(1));
        assert_eq!(m.get(&"a".into()), Some(2));
        assert!(m.contains_key(&"a".into()));
        assert_eq!(m.remove(&"a".into()), Some(2));
        assert_eq!(m.get(&"a".into()), None);
        assert!(m.is_empty());
    }

    #[test]
    fn len_counts_across_partitions() {
        let g = grid();
        let m: IMap<u64, u64> = IMap::new(&g, "m");
        for i in 0..200 {
            m.put(i, i);
        }
        assert_eq!(m.len(), 200);
        m.clear();
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn entries_and_predicate_scan() {
        let g = grid();
        let m: IMap<u64, u64> = IMap::new(&g, "m");
        for i in 0..100 {
            m.put(i, i * 10);
        }
        let mut all = m.entries();
        all.sort_unstable();
        assert_eq!(all.len(), 100);
        assert_eq!(all[5], (5, 50));
        let evens = m.values_where(|k, _| k.is_multiple_of(2));
        assert_eq!(evens.len(), 50);
    }

    #[test]
    fn compute_inserts_updates_and_removes() {
        let g = grid();
        let m: IMap<&'static str, u64> = IMap::new(&g, "m");
        assert_eq!(
            m.compute("k", |old| Some(old.copied().unwrap_or(0) + 1)),
            Some(1)
        );
        assert_eq!(
            m.compute("k", |old| Some(old.copied().unwrap_or(0) + 1)),
            Some(2)
        );
        assert_eq!(m.get(&"k"), Some(2));
        assert_eq!(m.compute("k", |_| None), None);
        assert_eq!(m.get(&"k"), None);
    }

    #[test]
    fn compute_survives_failover() {
        let g = grid();
        let m: IMap<u64, u64> = IMap::new(&g, "m");
        for i in 0..100 {
            m.compute(i, |old| Some(old.copied().unwrap_or(0) + i));
        }
        g.kill_member(MemberId(0)).unwrap();
        for i in 0..100 {
            assert_eq!(m.get(&i), Some(i), "key {i} lost or stale after failover");
        }
    }

    #[test]
    fn journal_records_changes_in_order() {
        let g = Grid::with_partition_count(1, 0, 1); // single partition
        let m: IMap<u64, u64> = IMap::new(&g, "m");
        m.put(1, 10);
        m.put(1, 11);
        m.remove(&1);
        let (events, next) = m.read_journal(PartitionId(0), 0, 100).unwrap();
        assert_eq!(next, 3);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EntryEventKind::Added);
        assert_eq!(events[1].kind, EntryEventKind::Updated);
        assert_eq!(events[1].value, 11);
        assert_eq!(events[2].kind, EntryEventKind::Removed);
    }

    #[test]
    fn journal_read_is_resumable_and_bounded() {
        let g = Grid::with_partition_count(1, 0, 1);
        let m: IMap<u64, u64> = IMap::new(&g, "m");
        for i in 0..10 {
            m.put(i, i);
        }
        let (batch1, next) = m.read_journal(PartitionId(0), 0, 4).unwrap();
        assert_eq!(batch1.len(), 4);
        let (batch2, next2) = m.read_journal(PartitionId(0), next, 100).unwrap();
        assert_eq!(batch2.len(), 6);
        assert_eq!(next2, 10);
        let (empty, next3) = m.read_journal(PartitionId(0), next2, 100).unwrap();
        assert!(empty.is_empty());
        assert_eq!(next3, 10);
    }

    #[test]
    fn journal_overflow_drops_oldest() {
        let g = Grid::with_partition_count(1, 0, 1);
        let m: IMap<u64, u64> = IMap::with_journal_capacity(&g, "m", 4);
        for i in 0..10 {
            m.put(i, i);
        }
        let (events, _) = m.read_journal(PartitionId(0), 0, 100).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].seq, 6, "expected oldest retained seq 6");
    }

    #[test]
    fn journal_survives_member_kill() {
        let g = Grid::with_partition_count(3, 1, 8);
        let m: IMap<u64, u64> = IMap::new(&g, "m");
        for i in 0..50 {
            m.put(i, i);
        }
        let before: usize = (0..8)
            .map(|p| m.read_journal(PartitionId(p), 0, 1000).unwrap().0.len())
            .sum();
        assert_eq!(before, 50);
        g.kill_member(MemberId(2)).unwrap();
        let after: usize = (0..8)
            .map(|p| m.read_journal(PartitionId(p), 0, 1000).unwrap().0.len())
            .sum();
        assert_eq!(after, 50, "journal entries lost on failover");
    }

    #[test]
    fn two_maps_same_grid_are_independent() {
        let g = grid();
        let a: IMap<u64, u64> = IMap::new(&g, "a");
        let b: IMap<u64, u64> = IMap::new(&g, "b");
        a.put(1, 100);
        b.put(1, 200);
        assert_eq!(a.get(&1), Some(100));
        assert_eq!(b.get(&1), Some(200));
        assert_eq!(g.map_size("a"), 1);
        assert_eq!(g.map_size("b"), 1);
    }
}

//! In-memory data grid — the substrate Jet stores its state in (paper §2.4,
//! §4).
//!
//! Hazelcast IMDG is "a distributed, in-memory object store" whose key
//! property for Jet is that data is **partitioned** (271 partitions by
//! default) and **replicated** (each partition has a primary replica and one
//! or more backups on other members). Jet aligns its own partitioning with
//! the grid's so that state reads/writes stay node-local, and recovers from
//! member failure by *promoting* backup replicas to primary (Fig. 6).
//!
//! This crate is a faithful in-process reconstruction:
//!
//! * [`ring`] — consistent-hash ring used to assign partitions to members
//!   with minimal migration on membership change (§4.3 cites Chord [30]).
//! * [`partition_table`] — the replica assignment (primary + backups per
//!   partition), its invariants, promotion on failure, rebalancing on join,
//!   and a migration planner that computes which partitions move.
//! * [`grid`] — the cluster of member nodes holding the actual data, with
//!   membership changes, synchronous backup replication, member kill
//!   (data on that node is lost, backups take over) and re-replication.
//! * [`imap`] — the typed `IMap` handle: `put`/`get`/`remove`, predicate
//!   scans, and a per-partition **event journal** (the replayable change
//!   stream behind the CDC / view-maintenance use case of §6).
//! * [`snapshot_store`] — the job snapshot storage Jet layers over IMaps
//!   (§4.4): bytes keyed by `(job, snapshot id, vertex, state key)`.
//!
//! Everything is in-process: a "member" is a data structure, not an OS
//! process, but the replication, promotion, and migration logic is real and
//! is what the fault-tolerance experiments exercise.

pub mod grid;
pub mod imap;
pub mod partition_table;
pub mod ring;
pub mod ringbuffer;
pub mod snapshot_store;
pub mod types;

pub use grid::Grid;
pub use imap::IMap;
pub use partition_table::PartitionTable;
pub use ringbuffer::Ringbuffer;
pub use snapshot_store::{SnapshotStore, StoreFaults};
pub use types::{MemberId, PartitionId, DEFAULT_PARTITION_COUNT};

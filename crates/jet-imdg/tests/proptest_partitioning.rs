//! Property tests over the partition table and grid reconfiguration paths.
//!
//! These check the invariants the paper's recovery story (Fig. 6) rests on:
//! replica chains stay duplicate-free and fully redundant through arbitrary
//! sequences of joins, kills, and graceful shutdowns, and data written
//! before a (survivable) failure remains readable after it.

use jet_imdg::grid::Grid;
use jet_imdg::imap::IMap;
use jet_imdg::partition_table::PartitionTable;
use jet_imdg::types::MemberId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum ClusterOp {
    Add,
    Kill(usize),
    Shutdown(usize),
    Put(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = ClusterOp> {
    prop_oneof![
        2 => Just(ClusterOp::Add),
        2 => (0usize..16).prop_map(ClusterOp::Kill),
        2 => (0usize..16).prop_map(ClusterOp::Shutdown),
        6 => (0u64..500, 0u64..1000).prop_map(|(k, v)| ClusterOp::Put(k, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn table_invariants_hold_through_membership_churn(
        initial in 1u32..6,
        ops in proptest::collection::vec(op_strategy(), 1..25),
    ) {
        let g = Grid::with_partition_count(initial as usize, 1, 31);
        let mut model = std::collections::HashMap::<u64, u64>::new();
        let map: IMap<u64, u64> = IMap::new(&g, "pt");
        for op in ops {
            let members = g.members();
            match op {
                ClusterOp::Add => {
                    g.add_member();
                }
                ClusterOp::Kill(i) => {
                    // Keep at least 2 members so a single backup always
                    // protects the data (kill with 1 member drops the data
                    // legitimately — not what we assert here).
                    if members.len() >= 3 {
                        g.kill_member(members[i % members.len()]).unwrap();
                    }
                }
                ClusterOp::Shutdown(i) => {
                    if members.len() >= 2 {
                        g.shutdown_member(members[i % members.len()]).unwrap();
                    }
                }
                ClusterOp::Put(k, v) => {
                    map.put(k, v);
                    model.insert(k, v);
                }
            }
            g.table().check_invariants().unwrap();
            // Every partition has a live primary.
            let table = g.table();
            let live = g.members();
            for p in 0..table.partition_count() {
                let pid = jet_imdg::types::PartitionId(p);
                let primary = table.primary(pid).unwrap();
                prop_assert!(live.contains(&primary), "dead primary for {pid}");
                for b in table.backups(pid) {
                    prop_assert!(live.contains(b), "dead backup for {pid}");
                }
            }
        }
        // All surviving data matches the model (churn was survivable).
        for (k, v) in &model {
            prop_assert_eq!(map.get(k), Some(*v), "key {} diverged", k);
        }
        prop_assert_eq!(map.len(), model.len());
    }

    #[test]
    fn rebalance_migration_count_is_near_optimal(
        start in 2u32..8,
    ) {
        // Adding one member to an n-member cluster should migrate about
        // replicas/(n+1) partitions, and certainly under 2x that.
        let members: Vec<MemberId> = (0..start).map(MemberId).collect();
        let t = PartitionTable::assign(&members, 271, 1);
        let mut grown = members.clone();
        grown.push(MemberId(100));
        let (t2, migrations) = t.rebalance(&grown);
        t2.check_invariants().unwrap();
        let total_replicas = 271usize * 2;
        let fair_share = total_replicas / (start as usize + 1);
        prop_assert!(
            migrations.len() <= fair_share * 3,
            "{} migrations for fair share {}",
            migrations.len(),
            fair_share
        );
    }
}

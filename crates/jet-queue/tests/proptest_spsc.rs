//! Property tests: the SPSC queue and conveyor behave like their sequential
//! models (a VecDeque / a set of VecDeques) under arbitrary operation
//! interleavings issued from the legal (single-producer, single-consumer)
//! thread discipline.

#![cfg(not(miri))]

use jet_queue::{spsc_channel, Conveyor};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum Op {
    Offer(u32),
    Poll,
    Peek,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..1000u32).prop_map(Op::Offer),
        Just(Op::Poll),
        Just(Op::Peek),
    ]
}

proptest! {
    #[test]
    fn spsc_matches_vecdeque_model(
        cap in 1usize..64,
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let (mut p, mut c) = spsc_channel::<u32>(cap);
        let real_cap = p.capacity();
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Offer(v) => {
                    let r = p.offer(v);
                    if model.len() < real_cap {
                        prop_assert_eq!(r, Ok(()));
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(r, Err(v));
                    }
                }
                Op::Poll => {
                    prop_assert_eq!(c.poll(), model.pop_front());
                }
                Op::Peek => {
                    prop_assert_eq!(c.peek().copied(), model.front().copied());
                }
            }
            prop_assert_eq!(c.len(), model.len());
            prop_assert_eq!(c.is_empty(), model.is_empty());
        }
    }

    // The bulk APIs are observationally identical to the single-item ones:
    // a queue driven by interleaved `offer_batch`/`drain_batch` calls of
    // random sizes yields exactly the item sequence (and the same per-call
    // admission counts) as a model queue driven item-by-item, including
    // when the producer signals `done()` partway through.
    #[test]
    fn batch_apis_match_single_item_apis(
        cap in 1usize..64,
        batches in proptest::collection::vec((0..48u32, 0usize..48, 0usize..2), 1..60),
        // 0..60 = done() before that batch index; >= 60 = never.
        done_raw in 0usize..120,
    ) {
        let done_at = (done_raw < 60).then_some(done_raw);
        let (mut p, mut c) = spsc_channel::<u32>(cap);
        let (mut mp, mut mc) = spsc_channel::<u32>(cap);
        let mut next = 0u32;
        for (i, (offer_n, drain_n, drain_first)) in batches.into_iter().enumerate() {
            let drain_first = drain_first == 1;
            if done_at == Some(i) {
                p.done();
                mp.done();
            }
            let mut offer = |next: &mut u32| -> (usize, usize) {
                let base = *next;
                let mut it = base..base + offer_n;
                let moved = p.offer_batch(&mut it);
                let mut model_moved = 0;
                for v in base..base + offer_n {
                    if mp.offer(v).is_err() {
                        break;
                    }
                    model_moved += 1;
                }
                *next = base + offer_n;
                (moved, model_moved)
            };
            let mut drain = || -> (Vec<u32>, Vec<u32>) {
                let mut got = Vec::new();
                let n = c.drain_batch(drain_n, |v| got.push(v));
                assert_eq!(n, got.len(), "drain_batch return vs items sunk");
                let mut model_got = Vec::new();
                for _ in 0..drain_n {
                    match mc.poll() {
                        Some(v) => model_got.push(v),
                        None => break,
                    }
                }
                (got, model_got)
            };
            if drain_first {
                let (got, model_got) = drain();
                prop_assert_eq!(got, model_got);
                let (moved, model_moved) = offer(&mut next);
                prop_assert_eq!(moved, model_moved);
            } else {
                let (moved, model_moved) = offer(&mut next);
                prop_assert_eq!(moved, model_moved);
                let (got, model_got) = drain();
                prop_assert_eq!(got, model_got);
            }
            prop_assert_eq!(c.len(), mc.len());
            prop_assert_eq!(c.is_finished(), mc.is_finished());
        }
        // Drain both dry: the remainders must agree item-for-item.
        let mut rest = Vec::new();
        c.drain_batch(usize::MAX, |v| rest.push(v));
        let mut model_rest = Vec::new();
        while let Some(v) = mc.poll() {
            model_rest.push(v);
        }
        prop_assert_eq!(rest, model_rest);
    }

    #[test]
    fn conveyor_preserves_per_lane_fifo(
        lanes in 1usize..5,
        items in proptest::collection::vec((0usize..5, 0..1000u32), 0..200),
        mutes in proptest::collection::vec(0usize..5, 0..10),
    ) {
        let (mut conv, mut producers) = Conveyor::<u32>::new(lanes, 512);
        let mut models: Vec<VecDeque<u32>> = vec![VecDeque::new(); lanes];
        for (lane, v) in items {
            let lane = lane % lanes;
            if producers[lane].offer(v).is_ok() {
                models[lane].push_back(v);
            }
        }
        for m in mutes {
            conv.mute(m % lanes);
        }
        let muted: Vec<bool> = (0..lanes).map(|l| conv.is_muted(l)).collect();
        // Drain everything pollable and check per-lane order + mute respect.
        while let Some((lane, v)) = conv.poll_any() {
            prop_assert!(!muted[lane], "polled from muted lane {}", lane);
            prop_assert_eq!(models[lane].pop_front(), Some(v));
        }
        // Unmuted lanes must be fully drained.
        for (lane, model) in models.iter().enumerate() {
            if !muted[lane] {
                prop_assert!(model.is_empty());
            } else {
                prop_assert_eq!(conv.lane_len(lane), model.len());
            }
        }
        // After unmuting, the remainder drains in FIFO order.
        conv.unmute_all();
        while let Some((lane, v)) = conv.poll_any() {
            prop_assert_eq!(models[lane].pop_front(), Some(v));
        }
        prop_assert!(conv.is_empty());
    }
}

//! Property tests: the SPSC queue and conveyor behave like their sequential
//! models (a VecDeque / a set of VecDeques) under arbitrary operation
//! interleavings issued from the legal (single-producer, single-consumer)
//! thread discipline.

#![cfg(not(miri))]

use jet_queue::{spsc_channel, Conveyor};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum Op {
    Offer(u32),
    Poll,
    Peek,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..1000u32).prop_map(Op::Offer),
        Just(Op::Poll),
        Just(Op::Peek),
    ]
}

proptest! {
    #[test]
    fn spsc_matches_vecdeque_model(
        cap in 1usize..64,
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let (mut p, mut c) = spsc_channel::<u32>(cap);
        let real_cap = p.capacity();
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Offer(v) => {
                    let r = p.offer(v);
                    if model.len() < real_cap {
                        prop_assert_eq!(r, Ok(()));
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(r, Err(v));
                    }
                }
                Op::Poll => {
                    prop_assert_eq!(c.poll(), model.pop_front());
                }
                Op::Peek => {
                    prop_assert_eq!(c.peek().copied(), model.front().copied());
                }
            }
            prop_assert_eq!(c.len(), model.len());
            prop_assert_eq!(c.is_empty(), model.is_empty());
        }
    }

    #[test]
    fn conveyor_preserves_per_lane_fifo(
        lanes in 1usize..5,
        items in proptest::collection::vec((0usize..5, 0..1000u32), 0..200),
        mutes in proptest::collection::vec(0usize..5, 0..10),
    ) {
        let (mut conv, mut producers) = Conveyor::<u32>::new(lanes, 512);
        let mut models: Vec<VecDeque<u32>> = vec![VecDeque::new(); lanes];
        for (lane, v) in items {
            let lane = lane % lanes;
            if producers[lane].offer(v).is_ok() {
                models[lane].push_back(v);
            }
        }
        for m in mutes {
            conv.mute(m % lanes);
        }
        let muted: Vec<bool> = (0..lanes).map(|l| conv.is_muted(l)).collect();
        // Drain everything pollable and check per-lane order + mute respect.
        while let Some((lane, v)) = conv.poll_any() {
            prop_assert!(!muted[lane], "polled from muted lane {}", lane);
            prop_assert_eq!(models[lane].pop_front(), Some(v));
        }
        // Unmuted lanes must be fully drained.
        for (lane, model) in models.iter().enumerate() {
            if !muted[lane] {
                prop_assert!(model.is_empty());
            } else {
                prop_assert_eq!(conv.lane_len(lane), model.len());
            }
        }
        // After unmuting, the remainder drains in FIFO order.
        conv.unmute_all();
        while let Some((lane, v)) = conv.poll_any() {
            prop_assert_eq!(models[lane].pop_front(), Some(v));
        }
        prop_assert!(conv.is_empty());
    }
}

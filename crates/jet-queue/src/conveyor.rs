//! Jet's `ConcurrentConveyor`: N producers → 1 consumer via N SPSC queues.
//!
//! Each upstream tasklet gets its own SPSC queue into the consumer, so the
//! whole structure stays wait-free — there is no multi-producer contention
//! point. The consumer drains the queues round-robin, and can mark individual
//! queues *muted*: a muted queue is skipped by `drain`, which is the
//! primitive the exactly-once barrier alignment builds on (paper §4.4 — an
//! input channel that already delivered the current checkpoint barrier must
//! block until the rest catch up).
//!
//! Lanes whose producer has called [`Producer::done`] (or dropped) and that
//! have been drained are *finished*; [`Conveyor::all_finished`] is the
//! livelock-free termination signal for the consumer loop.

use crate::spsc::{spsc_channel, Consumer, DepthProbe, Producer};

/// Consumer-side view over the per-producer queues.
pub struct Conveyor<T> {
    queues: Vec<Consumer<T>>,
    muted: Vec<bool>,
    /// Round-robin start position so one busy queue cannot starve the rest.
    next: usize,
}

impl<T> Conveyor<T> {
    /// Build a conveyor with `producers` input lanes of `capacity` each.
    /// Returns the conveyor and one [`Producer`] handle per lane.
    pub fn new(producers: usize, capacity: usize) -> (Self, Vec<Producer<T>>) {
        assert!(producers > 0, "conveyor needs at least one lane");
        let mut queues = Vec::with_capacity(producers);
        let mut handles = Vec::with_capacity(producers);
        for _ in 0..producers {
            let (p, c) = spsc_channel(capacity);
            queues.push(c);
            handles.push(p);
        }
        let muted = vec![false; producers];
        (
            Conveyor {
                queues,
                muted,
                next: 0,
            },
            handles,
        )
    }

    /// Number of input lanes.
    pub fn lane_count(&self) -> usize {
        self.queues.len()
    }

    /// Mute a lane: `drain` and `poll_any` will skip it until unmuted.
    pub fn mute(&mut self, lane: usize) {
        self.muted[lane] = true;
    }

    pub fn unmute(&mut self, lane: usize) {
        self.muted[lane] = false;
    }

    pub fn unmute_all(&mut self) {
        self.muted.iter_mut().for_each(|m| *m = false);
    }

    pub fn is_muted(&self, lane: usize) -> bool {
        self.muted[lane]
    }

    /// Are all lanes muted? (During barrier alignment this means the barrier
    /// has arrived on every input and the snapshot can proceed.)
    pub fn all_muted(&self) -> bool {
        self.muted.iter().all(|&m| m)
    }

    /// Poll one item from lane `lane` regardless of mute state.
    pub fn poll_lane(&mut self, lane: usize) -> Option<T> {
        self.queues[lane].poll()
    }

    /// Peek lane `lane`'s head item.
    pub fn peek_lane(&mut self, lane: usize) -> Option<&T> {
        self.queues[lane].peek()
    }

    /// Has lane `lane`'s producer finished (done/dropped) with its queue
    /// fully drained? A `true` result is final for that lane.
    pub fn lane_finished(&mut self, lane: usize) -> bool {
        self.queues[lane].is_finished()
    }

    /// Have *all* producers finished and all queues drained? This is the
    /// termination condition for a consumer loop: once true, no item can
    /// ever arrive again, so the loop can exit without polling further —
    /// finished producers are skipped without livelock.
    pub fn all_finished(&mut self) -> bool {
        self.queues.iter_mut().all(Consumer::is_finished)
    }

    /// Poll the next item from any unmuted lane, fair round-robin. Returns
    /// `(lane, item)`.
    pub fn poll_any(&mut self) -> Option<(usize, T)> {
        let n = self.queues.len();
        for off in 0..n {
            let lane = (self.next + off) % n;
            if self.muted[lane] {
                continue;
            }
            if let Some(item) = self.queues[lane].poll() {
                self.next = (lane + 1) % n;
                return Some((lane, item));
            }
        }
        None
    }

    /// Drain up to `max` items from unmuted lanes into `sink`, tagging each
    /// with its lane. Round-robin across lanes in batches.
    pub fn drain(&mut self, sink: &mut Vec<(usize, T)>, max: usize) -> usize {
        let mut moved = 0;
        while moved < max {
            match self.poll_any() {
                Some(pair) => {
                    sink.push(pair);
                    moved += 1;
                }
                None => break,
            }
        }
        moved
    }

    /// Bulk-drain lane `lane` (regardless of mute state, like `poll_lane`):
    /// up to `max` items, stopping without consuming at the first item
    /// `accept` rejects. One head publish per call — see
    /// [`Consumer::drain_batch_while`].
    pub fn drain_lane_batch_while(
        &mut self,
        lane: usize,
        max: usize,
        accept: impl FnMut(&T) -> bool,
        sink: impl FnMut(T),
    ) -> usize {
        self.queues[lane].drain_batch_while(max, accept, sink)
    }

    /// Bulk-drain up to `max` items across unmuted lanes, round-robin at
    /// *batch* granularity: each lane contributes its whole available run
    /// (bounded by the remaining budget) before the next lane is visited,
    /// and the starting lane rotates per call. Items arrive in `sink` tagged
    /// with their lane; per-lane FIFO order is preserved. Each visited lane
    /// costs one tail read and at most one head publish.
    pub fn drain_lanes_batch(&mut self, max: usize, mut sink: impl FnMut(usize, T)) -> usize {
        let n = self.queues.len();
        let mut moved = 0;
        for off in 0..n {
            if moved >= max {
                break;
            }
            let lane = (self.next + off) % n;
            if self.muted[lane] {
                continue;
            }
            moved += self.queues[lane].drain_batch(max - moved, |item| sink(lane, item));
        }
        self.next = (self.next + 1) % n;
        moved
    }

    /// Total queued items across all lanes (approximate).
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Queued items on one lane.
    pub fn lane_len(&self, lane: usize) -> usize {
        self.queues[lane].len()
    }
}

impl<T: Send + 'static> Conveyor<T> {
    /// One thread-safe occupancy probe per lane, for registering queue-depth
    /// gauges without handing the (thread-affine) conveyor to the metrics
    /// layer.
    pub fn probes(&self) -> Vec<DepthProbe> {
        self.queues.iter().map(Consumer::probe).collect()
    }
}

/// Loom models of the conveyor's multi-producer drain and termination
/// protocol. Run with `RUSTFLAGS="--cfg loom" cargo test -p jet-queue`.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::*;
    use loom::thread;

    /// Two concurrent producers, per-lane FIFO checked on every schedule,
    /// `all_finished` as the exit condition — the model terminates on every
    /// interleaving, proving done-lanes are skipped without livelock.
    #[cfg(not(jet_weak_ordering))]
    #[test]
    fn two_producers_drain_fifo_until_finished() {
        loom::model(|| {
            let (mut conv, producers) = Conveyor::<u64>::new(2, 2);
            let handles: Vec<_> = producers
                .into_iter()
                .enumerate()
                .map(|(lane, mut p)| {
                    thread::spawn(move || {
                        for i in 0..2u64 {
                            let mut v = (lane as u64) * 10 + i;
                            loop {
                                match p.offer(v) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        v = back;
                                        thread::yield_now();
                                    }
                                }
                            }
                        }
                        p.done();
                    })
                })
                .collect();
            let mut last = [None::<u64>; 2];
            let mut got = 0;
            loop {
                if let Some((lane, v)) = conv.poll_any() {
                    if let Some(prev) = last[lane] {
                        assert!(v > prev, "lane {lane} reordered: {v} after {prev}");
                    }
                    last[lane] = Some(v);
                    got += 1;
                } else if conv.all_finished() {
                    break;
                } else {
                    thread::yield_now();
                }
            }
            assert_eq!(got, 4, "termination before all items were delivered");
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    /// A lane whose producer finishes immediately (here: is dropped without
    /// offering) must not stall the drain of the remaining lanes.
    #[cfg(not(jet_weak_ordering))]
    #[test]
    fn idle_done_lane_does_not_block_termination() {
        loom::model(|| {
            let (mut conv, mut producers) = Conveyor::<u64>::new(2, 2);
            let idle = producers.pop().unwrap();
            let mut active = producers.pop().unwrap();
            drop(idle); // dropped producer counts as done
            let t = thread::spawn(move || {
                active.offer(7).unwrap();
                active.done();
            });
            let mut sum = 0;
            loop {
                if let Some((_lane, v)) = conv.poll_any() {
                    sum += v;
                } else if conv.all_finished() {
                    break;
                } else {
                    thread::yield_now();
                }
            }
            assert_eq!(sum, 7);
            t.join().unwrap();
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair_across_lanes() {
        let (mut conv, mut producers) = Conveyor::<u32>::new(3, 8);
        for (lane, p) in producers.iter_mut().enumerate() {
            for i in 0..3 {
                p.offer((lane as u32) * 10 + i).unwrap();
            }
        }
        let mut sink = Vec::new();
        conv.drain(&mut sink, 9);
        // First three polls must come from three distinct lanes.
        let first_lanes: Vec<usize> = sink.iter().take(3).map(|(l, _)| *l).collect();
        let mut sorted = first_lanes.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![0, 1, 2],
            "lanes not interleaved: {first_lanes:?}"
        );
        assert_eq!(sink.len(), 9);
    }

    #[test]
    fn muted_lane_is_skipped_until_unmuted() {
        let (mut conv, mut producers) = Conveyor::<u32>::new(2, 8);
        producers[0].offer(100).unwrap();
        producers[1].offer(200).unwrap();
        conv.mute(0);
        assert_eq!(conv.poll_any(), Some((1, 200)));
        assert_eq!(conv.poll_any(), None);
        conv.unmute(0);
        assert_eq!(conv.poll_any(), Some((0, 100)));
    }

    #[test]
    fn all_muted_detection() {
        let (mut conv, _producers) = Conveyor::<u32>::new(2, 8);
        assert!(!conv.all_muted());
        conv.mute(0);
        assert!(!conv.all_muted());
        conv.mute(1);
        assert!(conv.all_muted());
        conv.unmute_all();
        assert!(!conv.all_muted());
    }

    #[test]
    fn poll_lane_ignores_mute() {
        let (mut conv, mut producers) = Conveyor::<u32>::new(1, 8);
        producers[0].offer(7).unwrap();
        conv.mute(0);
        assert_eq!(conv.poll_lane(0), Some(7));
    }

    #[test]
    fn per_lane_order_is_preserved() {
        let (mut conv, mut producers) = Conveyor::<u32>::new(2, 64);
        for i in 0..20 {
            producers[0].offer(i).unwrap();
            producers[1].offer(100 + i).unwrap();
        }
        let mut sink = Vec::new();
        conv.drain(&mut sink, usize::MAX - 1);
        let lane0: Vec<u32> = sink
            .iter()
            .filter(|(l, _)| *l == 0)
            .map(|(_, v)| *v)
            .collect();
        let lane1: Vec<u32> = sink
            .iter()
            .filter(|(l, _)| *l == 1)
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(lane0, (0..20).collect::<Vec<_>>());
        assert_eq!(lane1, (100..120).collect::<Vec<_>>());
    }

    #[test]
    fn drain_lanes_batch_rotates_start_lane_and_respects_mute() {
        let (mut conv, mut producers) = Conveyor::<u32>::new(3, 8);
        for (lane, p) in producers.iter_mut().enumerate() {
            for i in 0..2 {
                p.offer((lane as u32) * 10 + i).unwrap();
            }
        }
        conv.mute(1);
        let mut out = Vec::new();
        assert_eq!(conv.drain_lanes_batch(16, |lane, v| out.push((lane, v))), 4);
        // Batch-granular round-robin: lane 0's full run, then lane 2's
        // (lane 1 is muted).
        assert_eq!(out, vec![(0, 0), (0, 1), (2, 20), (2, 21)]);
        // The start lane rotated, so after unmuting, lane 1 leads.
        conv.unmute(1);
        out.clear();
        assert_eq!(conv.drain_lanes_batch(16, |lane, v| out.push((lane, v))), 2);
        assert_eq!(out, vec![(1, 10), (1, 11)]);
    }

    #[test]
    fn drain_lanes_batch_respects_budget() {
        let (mut conv, mut producers) = Conveyor::<u32>::new(2, 8);
        for i in 0..4 {
            producers[0].offer(i).unwrap();
            producers[1].offer(100 + i).unwrap();
        }
        let mut out = Vec::new();
        // Budget 6: all of lane 0's run, then only 2 from lane 1.
        assert_eq!(conv.drain_lanes_batch(6, |lane, v| out.push((lane, v))), 6);
        assert_eq!(
            out,
            vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 100), (1, 101)]
        );
        assert_eq!(conv.lane_len(1), 2);
    }

    #[test]
    fn drain_lane_batch_while_leaves_rejected_head_and_ignores_mute() {
        let (mut conv, mut producers) = Conveyor::<u32>::new(1, 8);
        for v in [1, 2, 99, 3] {
            producers[0].offer(v).unwrap();
        }
        conv.mute(0);
        let mut out = Vec::new();
        let n = conv.drain_lane_batch_while(0, 16, |v| *v < 10, |v| out.push(v));
        assert_eq!(n, 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(conv.peek_lane(0), Some(&99));
    }

    #[test]
    fn len_sums_lanes() {
        let (conv, mut producers) = Conveyor::<u32>::new(3, 8);
        producers[0].offer(1).unwrap();
        producers[2].offer(2).unwrap();
        producers[2].offer(3).unwrap();
        assert_eq!(conv.len(), 3);
        assert_eq!(conv.lane_len(0), 1);
        assert_eq!(conv.lane_len(1), 0);
        assert_eq!(conv.lane_len(2), 2);
        assert!(!conv.is_empty());
    }

    #[test]
    fn probes_expose_per_lane_depth() {
        let (conv, mut producers) = Conveyor::<u32>::new(2, 8);
        let probes = conv.probes();
        assert_eq!(probes.len(), 2);
        producers[1].offer(1).unwrap();
        producers[1].offer(2).unwrap();
        assert_eq!(probes[0].depth(), 0);
        assert_eq!(probes[1].depth(), 2);
        assert!(probes.iter().all(|p| p.capacity() == 8));
    }

    #[test]
    fn finished_lanes_and_termination() {
        let (mut conv, mut producers) = Conveyor::<u32>::new(2, 8);
        producers[0].offer(1).unwrap();
        assert!(!conv.lane_finished(0));
        assert!(!conv.all_finished());
        producers[0].done();
        assert!(!conv.lane_finished(0), "finished with an item still queued");
        assert_eq!(conv.poll_any(), Some((0, 1)));
        assert!(conv.lane_finished(0));
        assert!(!conv.all_finished(), "lane 1's producer is still live");
        drop(producers); // dropping the rest finishes every lane
        assert!(conv.all_finished());
    }

    #[test]
    fn concurrent_producers_all_delivered() {
        let (mut conv, producers) = Conveyor::<u64>::new(4, 64);
        const PER_LANE: u64 = if cfg!(miri) { 200 } else { 50_000 };
        let joins: Vec<_> = producers
            .into_iter()
            .enumerate()
            .map(|(lane, mut p)| {
                std::thread::spawn(move || {
                    for i in 0..PER_LANE {
                        let mut v = (lane as u64) << 32 | i;
                        loop {
                            match p.offer(v) {
                                Ok(()) => break,
                                Err(b) => {
                                    v = b;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let mut received = 0u64;
        let mut last_per_lane = [None::<u64>; 4];
        while received < PER_LANE * 4 {
            if let Some((lane, v)) = conv.poll_any() {
                let seq = v & 0xFFFF_FFFF;
                assert_eq!((v >> 32) as usize, lane);
                if let Some(prev) = last_per_lane[lane] {
                    assert_eq!(seq, prev + 1, "lane {lane} out of order");
                }
                last_per_lane[lane] = Some(seq);
                received += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(conv.is_empty());
    }

    /// Stress: concurrent producers that finish at different times; the
    /// consumer exits via `all_finished` (not an item count), per-producer
    /// FIFO holds across drain batches, and done lanes never cause livelock.
    #[test]
    fn stress_fifo_across_drains_with_staggered_done() {
        let (mut conv, producers) = Conveyor::<u64>::new(4, 32);
        // Lane `i` sends (i+1) * PER units, so lanes finish staggered.
        const PER: u64 = if cfg!(miri) { 100 } else { 10_000 };
        let joins: Vec<_> = producers
            .into_iter()
            .enumerate()
            .map(|(lane, mut p)| {
                std::thread::spawn(move || {
                    let count = (lane as u64 + 1) * PER;
                    for i in 0..count {
                        let mut v = (lane as u64) << 32 | i;
                        loop {
                            match p.offer(v) {
                                Ok(()) => break,
                                Err(b) => {
                                    v = b;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                    p.done();
                })
            })
            .collect();
        let mut sink = Vec::new();
        let mut next_expected = [0u64; 4];
        let mut received = 0u64;
        loop {
            sink.clear();
            if conv.drain(&mut sink, 128) == 0 {
                if conv.all_finished() {
                    break;
                }
                std::hint::spin_loop();
                continue;
            }
            for &(lane, v) in &sink {
                assert_eq!((v >> 32) as usize, lane);
                let seq = v & 0xFFFF_FFFF;
                assert_eq!(
                    seq, next_expected[lane],
                    "lane {lane} FIFO violated across drain batches"
                );
                next_expected[lane] += 1;
                received += 1;
            }
        }
        assert_eq!(received, PER + 2 * PER + 3 * PER + 4 * PER);
        for j in joins {
            j.join().unwrap();
        }
        assert!(conv.all_finished(), "all_finished must be stable");
    }
}

//! Wait-free queues for tasklet-to-tasklet data exchange (paper §3.2).
//!
//! "Tasklets within the same node exchange data through shared-memory,
//! single-producer-single-consumer queues that use wait-free algorithms."
//!
//! * [`spsc`] — a bounded, wait-free SPSC ring queue in the style of the
//!   one-to-one concurrent array queues Jet uses. Producer and consumer each
//!   own a cache-padded position counter and keep a cached copy of the
//!   other's to avoid cache-line ping-pong on the fast path.
//! * [`conveyor`] — Jet's `ConcurrentConveyor`: a bundle of SPSC queues, one
//!   per upstream producer, drained by a single consumer. The consumer can
//!   drain queues selectively, which is exactly the hook the exactly-once
//!   snapshot alignment needs (a queue that already delivered the current
//!   barrier is skipped until the others catch up).

pub mod conveyor;
pub mod spsc;
pub mod sync;

pub use conveyor::Conveyor;
pub use spsc::{spsc_channel, Consumer, DepthProbe, Producer};

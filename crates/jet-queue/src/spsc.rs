//! Bounded wait-free single-producer single-consumer ring queue.
//!
//! The design follows the classic lock-free SPSC array queue (Lamport's ring
//! buffer with the cache-friendly refinements used by Aeron and Jet's
//! `OneToOneConcurrentArrayQueue`):
//!
//! * `head` is only written by the consumer, `tail` only by the producer —
//!   each operation is a handful of instructions and never retries, i.e. the
//!   queue is *wait-free*, which is what bounds per-item latency jitter.
//! * both counters live on their own cache line (`CachePadded`),
//! * the producer caches the consumer's `head` (and vice versa) so the
//!   common case touches only one shared cache line.
//!
//! Single-producer/single-consumer discipline is enforced at compile time by
//! handing out a `!Clone` [`Producer`] and [`Consumer`] pair.

use crossbeam::utils::CachePadded;
use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Shared<T> {
    buffer: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written by consumer only.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written by producer only.
    tail: CachePadded<AtomicUsize>,
}

// Safety: only the producer writes slots between head..tail boundaries it
// owns, only the consumer reads slots it owns; positions are published with
// release stores and observed with acquire loads.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Producer half of an SPSC queue. Not cloneable.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer's private copy of `tail` (avoids an atomic load).
    tail: Cell<usize>,
    /// Cached consumer position; refreshed only when the queue looks full.
    cached_head: Cell<usize>,
}

/// Consumer half of an SPSC queue. Not cloneable.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer's private copy of `head`.
    head: Cell<usize>,
    /// Cached producer position; refreshed only when the queue looks empty.
    cached_tail: Cell<usize>,
}

unsafe impl<T: Send> Send for Producer<T> {}
unsafe impl<T: Send> Send for Consumer<T> {}

/// Create a bounded SPSC queue with capacity rounded up to a power of two.
pub fn spsc_channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buffer: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        buffer,
        mask: cap - 1,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: shared.clone(),
            tail: Cell::new(0),
            cached_head: Cell::new(0),
        },
        Consumer {
            shared,
            head: Cell::new(0),
            cached_tail: Cell::new(0),
        },
    )
}

impl<T> Producer<T> {
    /// Capacity of the queue (power of two).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Try to enqueue one item; returns it back if the queue is full.
    #[inline]
    pub fn offer(&self, item: T) -> Result<(), T> {
        let tail = self.tail.get();
        if tail.wrapping_sub(self.cached_head.get()) > self.shared.mask {
            // Looks full — refresh the consumer position.
            self.cached_head
                .set(self.shared.head.load(Ordering::Acquire));
            if tail.wrapping_sub(self.cached_head.get()) > self.shared.mask {
                return Err(item);
            }
        }
        let slot = &self.shared.buffer[tail & self.shared.mask];
        unsafe { (*slot.get()).write(item) };
        self.tail.set(tail.wrapping_add(1));
        self.shared
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Free slots available for offers right now (a lower bound: the consumer
    /// may free more concurrently).
    pub fn remaining_capacity(&self) -> usize {
        let head = self.shared.head.load(Ordering::Acquire);
        self.cached_head.set(head);
        self.capacity() - self.tail.get().wrapping_sub(head)
    }

    /// True if `offer` would currently fail.
    pub fn is_full(&self) -> bool {
        self.remaining_capacity() == 0
    }
}

impl<T> Consumer<T> {
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Dequeue one item if available.
    #[inline]
    pub fn poll(&self) -> Option<T> {
        let head = self.head.get();
        if head == self.cached_tail.get() {
            self.cached_tail
                .set(self.shared.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        let slot = &self.shared.buffer[head & self.shared.mask];
        let item = unsafe { (*slot.get()).assume_init_read() };
        self.head.set(head.wrapping_add(1));
        self.shared
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Peek at the next item without consuming it.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        let head = self.head.get();
        if head == self.cached_tail.get() {
            self.cached_tail
                .set(self.shared.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        let slot = &self.shared.buffer[head & self.shared.mask];
        Some(unsafe { (*slot.get()).assume_init_ref() })
    }

    /// Drain up to `max` items into `sink`, returning how many were moved.
    pub fn drain_into(&self, sink: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.poll() {
                Some(item) => {
                    sink.push(item);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Number of items currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.load(Ordering::Acquire);
        tail.wrapping_sub(self.head.get())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Drain remaining items so their destructors run.
        while self.poll().is_some() {}
    }
}

/// Type-erased view of one queue's occupancy, readable from *any* thread.
///
/// `Producer`/`Consumer` cache positions in non-`Sync` `Cell`s, so their
/// `len()`-style accessors must stay on the owning thread. The probe reads
/// only the shared atomics (the same ones the SPSC protocol publishes with
/// release stores), which makes it safe for a metrics thread to sample
/// depth concurrently with traffic — the value is approximate by nature.
#[derive(Clone)]
pub struct DepthProbe {
    source: Arc<dyn DepthSource + Send + Sync>,
}

trait DepthSource {
    fn depth(&self) -> usize;
    fn capacity(&self) -> usize;
}

impl<T> DepthSource for Shared<T> {
    fn depth(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        // `tail` was read first: a concurrent poll can make `head` pass it,
        // so clamp instead of wrapping to a huge value.
        tail.wrapping_sub(head).min(self.mask + 1)
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

impl DepthProbe {
    /// Items currently queued (approximate under concurrency, never above
    /// capacity).
    pub fn depth(&self) -> usize {
        self.source.depth()
    }

    pub fn capacity(&self) -> usize {
        self.source.capacity()
    }
}

impl<T: Send + 'static> Producer<T> {
    /// A thread-safe occupancy probe for this queue.
    pub fn probe(&self) -> DepthProbe {
        DepthProbe {
            source: self.shared.clone(),
        }
    }
}

impl<T: Send + 'static> Consumer<T> {
    /// A thread-safe occupancy probe for this queue.
    pub fn probe(&self) -> DepthProbe {
        DepthProbe {
            source: self.shared.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_poll_roundtrip() {
        let (p, c) = spsc_channel::<u32>(4);
        assert!(c.poll().is_none());
        p.offer(1).unwrap();
        p.offer(2).unwrap();
        assert_eq!(c.poll(), Some(1));
        assert_eq!(c.poll(), Some(2));
        assert!(c.poll().is_none());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = spsc_channel::<u8>(5);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = spsc_channel::<u8>(0);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn full_queue_rejects_and_returns_item() {
        let (p, c) = spsc_channel::<u32>(2);
        p.offer(1).unwrap();
        p.offer(2).unwrap();
        assert_eq!(p.offer(3), Err(3));
        assert!(p.is_full());
        assert_eq!(c.poll(), Some(1));
        p.offer(3).unwrap();
        assert_eq!(c.poll(), Some(2));
        assert_eq!(c.poll(), Some(3));
    }

    #[test]
    fn peek_does_not_consume() {
        let (p, c) = spsc_channel::<String>(4);
        p.offer("a".to_string()).unwrap();
        assert_eq!(c.peek().map(|s| s.as_str()), Some("a"));
        assert_eq!(c.peek().map(|s| s.as_str()), Some("a"));
        assert_eq!(c.poll().as_deref(), Some("a"));
        assert!(c.peek().is_none());
    }

    #[test]
    fn len_tracks_contents() {
        let (p, c) = spsc_channel::<u32>(8);
        assert!(c.is_empty());
        for i in 0..5 {
            p.offer(i).unwrap();
        }
        assert_eq!(c.len(), 5);
        c.poll();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn wraparound_many_times() {
        let (p, c) = spsc_channel::<u64>(4);
        for i in 0..10_000u64 {
            p.offer(i).unwrap();
            assert_eq!(c.poll(), Some(i));
        }
    }

    #[test]
    fn drain_into_respects_max() {
        let (p, c) = spsc_channel::<u32>(16);
        for i in 0..10 {
            p.offer(i).unwrap();
        }
        let mut sink = Vec::new();
        assert_eq!(c.drain_into(&mut sink, 4), 4);
        assert_eq!(sink, vec![0, 1, 2, 3]);
        assert_eq!(c.drain_into(&mut sink, 100), 6);
        assert_eq!(sink.len(), 10);
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (p, c) = spsc_channel::<D>(8);
        for _ in 0..5 {
            assert!(p.offer(D).is_ok());
        }
        drop(c);
        drop(p);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let (p, c) = spsc_channel::<u64>(128);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.offer(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = c.poll() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(c.poll().is_none());
    }

    #[test]
    fn remaining_capacity_reflects_consumption() {
        let (p, c) = spsc_channel::<u32>(4);
        assert_eq!(p.remaining_capacity(), 4);
        p.offer(1).unwrap();
        p.offer(2).unwrap();
        assert_eq!(p.remaining_capacity(), 2);
        c.poll();
        assert_eq!(p.remaining_capacity(), 3);
    }

    #[test]
    fn depth_probe_tracks_occupancy_from_another_thread() {
        let (p, c) = spsc_channel::<u32>(8);
        let probe = p.probe();
        assert_eq!(probe.capacity(), 8);
        assert_eq!(probe.depth(), 0);
        for i in 0..5 {
            p.offer(i).unwrap();
        }
        let handle = std::thread::spawn(move || probe.depth());
        assert_eq!(handle.join().unwrap(), 5);
        c.poll();
        assert_eq!(c.probe().depth(), 4);
        // Producer- and consumer-derived probes see the same queue.
        assert_eq!(p.probe().depth(), c.probe().depth());
    }
}

//! Bounded wait-free single-producer single-consumer ring queue.
//!
//! The design follows the classic lock-free SPSC array queue (Lamport's ring
//! buffer with the cache-friendly refinements used by Aeron and Jet's
//! `OneToOneConcurrentArrayQueue`):
//!
//! * `head` is only written by the consumer, `tail` only by the producer —
//!   each operation is a handful of instructions and never retries, i.e. the
//!   queue is *wait-free*, which is what bounds per-item latency jitter.
//! * both counters live on their own cache line (`CachePadded`),
//! * the producer caches the consumer's `head` (and vice versa) so the
//!   common case touches only one shared cache line.
//!
//! Single-producer/single-consumer discipline is enforced at compile time by
//! handing out a `!Clone` [`Producer`] and [`Consumer`] pair, and the
//! mutating operations take `&mut self` so a reference returned by
//! [`Consumer::peek`] can never be invalidated by a concurrent-looking
//! [`Consumer::poll`] through the same handle.
//!
//! The memory-ordering protocol (and the `UnsafeCell` slot discipline) is
//! model-checked: `RUSTFLAGS="--cfg loom" cargo test -p jet-queue` runs the
//! `loom_tests` module below under exhaustive interleaving exploration, and
//! the `--cfg jet_weak_ordering` mutation lane proves the checker fails on
//! a deliberately weakened publish ordering. See DESIGN.md "Correctness
//! toolkit".

use crate::sync::{Arc, AtomicBool, AtomicUsize, CachePadded, Ordering, UnsafeCell};
use std::mem::MaybeUninit;

/// Ordering of the producer's publish store of `tail`.
///
/// ordering: `Release` pairs with the consumer's `Acquire` load of `tail`,
/// making the slot write visible before the new position. The
/// `jet_weak_ordering` cfg (loom mutation lane only) deliberately weakens it
/// to `Relaxed` to prove the model checker catches exactly this bug class —
/// never enable it in a real build.
const TAIL_PUBLISH: Ordering = if cfg!(jet_weak_ordering) {
    Ordering::Relaxed
} else {
    Ordering::Release
};

/// Publish-on-drop guard for the consumer's bulk drains: the freed run is
/// made visible to the producer by a single release store of `head`, even
/// when a caller closure panics mid-batch (otherwise `Shared::drop` would
/// double-drop the items already moved out).
struct HeadPublish<'a> {
    head: &'a AtomicUsize,
    val: usize,
    start: usize,
}

impl Drop for HeadPublish<'_> {
    fn drop(&mut self) {
        if self.val != self.start {
            // ordering: Release — same contract as the per-item store in
            // `poll` (pairs with the producer's Acquire refresh of `head`),
            // but one store per batch.
            self.head.store(self.val, Ordering::Release);
        }
    }
}

struct Shared<T> {
    buffer: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written by consumer only.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written by producer only.
    tail: CachePadded<AtomicUsize>,
    /// Set once the producer guarantees no further offers (explicit
    /// [`Producer::done`] or producer drop).
    done: AtomicBool,
}

// SAFETY: only the producer writes slots between head..tail boundaries it
// owns, only the consumer reads slots it owns; positions are published with
// release stores and observed with acquire loads (model-checked by the loom
// tests below).
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: as above — the head/tail protocol gives each side exclusive
// access to disjoint slots, so shared references to `Shared` are fine.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Runs when the *last* of the two handles goes away: any items still
        // sitting in `head..tail` (including items offered after the
        // consumer was dropped) must have their destructors run or they leak.
        // ordering: Relaxed suffices — `&mut self` proves unique ownership,
        // and `Arc`'s drop protocol already ordered all prior accesses.
        let tail = self.tail.load(Ordering::Relaxed);
        let mut head = self.head.load(Ordering::Relaxed);
        while head != tail {
            // SAFETY: slots in `head..tail` hold initialized items that no
            // handle can access anymore (we are the unique owner), so moving
            // them out exactly once is sound.
            drop(self.buffer[head & self.mask].with_mut(|p| unsafe { (*p).assume_init_read() }));
            head = head.wrapping_add(1);
        }
    }
}

/// Producer half of an SPSC queue. Not cloneable.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer's private copy of `tail` (avoids an atomic load).
    tail: usize,
    /// Cached consumer position; refreshed only when the queue looks full.
    cached_head: usize,
}

/// Consumer half of an SPSC queue. Not cloneable.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer's private copy of `head`.
    head: usize,
    /// Cached producer position; refreshed only when the queue looks empty.
    cached_tail: usize,
}

// SAFETY: moving the producer to another thread moves the only writer of
// `tail` and the slots it owns; `T: Send` carries the items across.
unsafe impl<T: Send> Send for Producer<T> {}
// SAFETY: as above for the consumer side.
unsafe impl<T: Send> Send for Consumer<T> {}

/// Create a bounded SPSC queue with capacity rounded up to a power of two.
pub fn spsc_channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buffer: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        buffer,
        mask: cap - 1,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        done: AtomicBool::new(false),
    });
    (
        Producer {
            shared: shared.clone(),
            tail: 0,
            cached_head: 0,
        },
        Consumer {
            shared,
            head: 0,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Capacity of the queue (power of two).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Try to enqueue one item; returns it back if the queue is full.
    #[inline]
    pub fn offer(&mut self, item: T) -> Result<(), T> {
        let tail = self.tail;
        if tail.wrapping_sub(self.cached_head) > self.shared.mask {
            // Looks full — refresh the consumer position.
            // ordering: Acquire pairs with the consumer's Release store of
            // `head` in `poll`: slots the consumer freed are fully read
            // before we may overwrite them.
            self.cached_head = self.shared.head.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) > self.shared.mask {
                return Err(item);
            }
        }
        // SAFETY: `tail` is within `cached_head..cached_head+capacity`, so
        // this slot is either uninitialized or already moved out by the
        // consumer; the producer is the only writer and publishes the slot
        // only after this write via the `tail` release store below.
        self.shared.buffer[tail & self.shared.mask].with_mut(|p| unsafe { (*p).write(item) });
        self.tail = tail.wrapping_add(1);
        self.shared.tail.store(self.tail, TAIL_PUBLISH);
        Ok(())
    }

    /// Bulk enqueue: move items out of `iter` into the ring until the
    /// iterator is exhausted or the queue is full, returning how many were
    /// moved. Items the queue had no room for stay in the iterator (which is
    /// why it is taken by `&mut`).
    ///
    /// The batch costs the same number of shared-memory operations as a
    /// *single* `offer`: the head/tail snapshot is read once, the consumer
    /// position is refreshed at most once (only when the snapshot cannot
    /// satisfy the batch), every slot is filled with a plain write, and the
    /// whole run is published by one release store of `tail`.
    pub fn offer_batch<I>(&mut self, iter: &mut I) -> usize
    where
        I: Iterator<Item = T>,
    {
        let mask = self.shared.mask;
        let start = self.tail;
        // Publish-on-drop guard: `iter.next()` runs arbitrary caller code,
        // and a panic there must still publish the items already written
        // into their slots (otherwise `Shared::drop` would leak them).
        struct Publish<'a> {
            tail: &'a AtomicUsize,
            val: usize,
            start: usize,
        }
        impl Drop for Publish<'_> {
            fn drop(&mut self) {
                if self.val != self.start {
                    // ordering: same contract as the single-item publish —
                    // `TAIL_PUBLISH` (Release) makes every slot write in the
                    // batch visible before the new position. One store per
                    // batch is the whole point of this method.
                    self.tail.store(self.val, TAIL_PUBLISH);
                }
            }
        }
        let mut publish = Publish {
            tail: &self.shared.tail,
            val: start,
            start,
        };
        let mut refreshed = false;
        'fill: loop {
            let mut free = (mask + 1).wrapping_sub(publish.val.wrapping_sub(self.cached_head));
            if free == 0 {
                if refreshed {
                    break;
                }
                // Looks full — refresh the consumer position, at most once
                // per batch.
                // ordering: Acquire — same pairing as the refresh in `offer`.
                self.cached_head = self.shared.head.load(Ordering::Acquire);
                refreshed = true;
                free = (mask + 1).wrapping_sub(publish.val.wrapping_sub(self.cached_head));
                if free == 0 {
                    break;
                }
            }
            // Fill the contiguous run up to the wrap point: borrowing the
            // segment as a slice hoists the bounds check and index masking
            // out of the per-item path.
            let off = publish.val & mask;
            let seg = free.min(mask + 1 - off);
            for slot in &self.shared.buffer[off..off + seg] {
                let Some(item) = iter.next() else { break 'fill };
                // SAFETY: `free > 0` keeps `publish.val` within
                // `cached_head..cached_head+capacity`, so this slot is free
                // (uninit or moved out); the producer is the only writer, and
                // the batch becomes visible only via the guard's single tail
                // store, after every slot write it covers.
                slot.with_mut(|p| unsafe { (*p).write(item) });
                publish.val = publish.val.wrapping_add(1);
            }
        }
        let n = publish.val.wrapping_sub(start);
        self.tail = publish.val;
        drop(publish);
        n
    }

    /// Free slots available for offers right now (a lower bound: the consumer
    /// may free more concurrently).
    pub fn remaining_capacity(&mut self) -> usize {
        // ordering: Acquire — same pairing as the refresh in `offer`.
        let head = self.shared.head.load(Ordering::Acquire);
        self.cached_head = head;
        self.capacity() - self.tail.wrapping_sub(head)
    }

    /// True if `offer` would currently fail.
    pub fn is_full(&mut self) -> bool {
        self.remaining_capacity() == 0
    }

    /// Promise that no further items will be offered. The consumer observes
    /// this through [`Consumer::is_finished`] once the queue is drained.
    /// Dropping the producer makes the same promise implicitly.
    pub fn done(&self) {
        // ordering: Release pairs with the Acquire load in `is_finished`, so
        // a consumer that sees `done` also sees every item offered before it.
        self.shared.done.store(true, Ordering::Release);
    }

    /// Has [`Producer::done`] been called (or the producer dropped)?
    pub fn is_done(&self) -> bool {
        self.shared.done.load(Ordering::Acquire)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // A dropped producer can never offer again: equivalent to `done()`.
        self.done();
    }
}

impl<T> Consumer<T> {
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Dequeue one item if available.
    #[inline]
    pub fn poll(&mut self) -> Option<T> {
        let head = self.head;
        if head == self.cached_tail {
            // ordering: Acquire pairs with the producer's Release store of
            // `tail`: the slot write is visible before the new position.
            self.cached_tail = self.shared.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: `head < cached_tail` (acquire-published), so the slot
        // holds an initialized item the producer will not touch until we
        // release `head` past it below; reading it out exactly once is sound.
        let item = self.shared.buffer[head & self.shared.mask]
            .with(|p| unsafe { (*p).assume_init_read() });
        self.head = head.wrapping_add(1);
        // ordering: Release pairs with the producer's Acquire refresh of
        // `head` in `offer`: our slot read completes before the producer may
        // overwrite the slot.
        self.shared.head.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Peek at the next item without consuming it. Holding the returned
    /// reference borrows the consumer, so the slot cannot be `poll`ed (and
    /// recycled by the producer) while it is alive.
    #[inline]
    pub fn peek(&mut self) -> Option<&T> {
        let head = self.head;
        if head == self.cached_tail {
            // ordering: Acquire — same pairing as in `poll`.
            self.cached_tail = self.shared.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: as in `poll`, the slot is initialized and producer-stable;
        // we hand out a shared borrow tied to `&mut self`, so no `poll` can
        // move the item out while the reference lives.
        Some(
            self.shared.buffer[head & self.shared.mask].with(|p| unsafe { (*p).assume_init_ref() }),
        )
    }

    /// Bulk dequeue: move up to `max` items into `sink`, returning how many
    /// were moved. Equivalent to `max` successful `poll`s but pays the
    /// shared-memory cost of one: the producer position is refreshed at most
    /// once (only when the cached snapshot cannot satisfy the batch), slots
    /// are read with plain loads, and the freed run is published by a single
    /// release store of `head`.
    #[inline]
    pub fn drain_batch(&mut self, max: usize, mut sink: impl FnMut(T)) -> usize {
        let mask = self.shared.mask;
        let start = self.head;
        let mut avail = self.cached_tail.wrapping_sub(start);
        if avail < max {
            // The cache cannot satisfy the whole batch — refresh the
            // producer position, at most once per batch.
            // ordering: Acquire — same pairing as in `poll`: the slot writes
            // are visible before the new position.
            self.cached_tail = self.shared.tail.load(Ordering::Acquire);
            avail = self.cached_tail.wrapping_sub(start);
        }
        let n = avail.min(max);
        if n == 0 {
            return 0;
        }
        // Publish-on-drop guard: `sink` runs arbitrary caller code, and a
        // panic there must still publish the slots already read out
        // (otherwise `Shared::drop` would double-drop the moved items).
        let mut publish = HeadPublish {
            head: &self.shared.head,
            val: start,
            start,
        };
        let mut left = n;
        while left > 0 {
            // Walk the contiguous run up to the wrap point: borrowing the
            // segment as a slice hoists the bounds check and index masking
            // out of the per-item path.
            let off = publish.val & mask;
            let seg = left.min(mask + 1 - off);
            for slot in &self.shared.buffer[off..off + seg] {
                // SAFETY: the slot is below the acquire-published `tail`, so
                // it holds an initialized item the producer cannot touch
                // until `head` is released past it; it is read out exactly
                // once, and the cursor advances *before* `sink` runs so a
                // panic inside it cannot double-drop the moved item.
                let item = slot.with(|p| unsafe { (*p).assume_init_read() });
                publish.val = publish.val.wrapping_add(1);
                sink(item);
            }
            left -= seg;
        }
        self.head = publish.val;
        drop(publish);
        n
    }

    /// Like [`Consumer::drain_batch`], but stops (without consuming) at the
    /// first item `accept` rejects. This is the primitive the engine uses to
    /// bulk-move a run of data items while leaving a control item (barrier,
    /// watermark) at the head of the queue for one-at-a-time handling.
    pub fn drain_batch_while(
        &mut self,
        max: usize,
        mut accept: impl FnMut(&T) -> bool,
        mut sink: impl FnMut(T),
    ) -> usize {
        let mask = self.shared.mask;
        let start = self.head;
        let mut avail = self.cached_tail.wrapping_sub(start);
        if avail < max {
            // The cache cannot satisfy the whole batch — refresh the
            // producer position, at most once per batch.
            // ordering: Acquire — same pairing as in `poll`: the slot writes
            // are visible before the new position.
            self.cached_tail = self.shared.tail.load(Ordering::Acquire);
            avail = self.cached_tail.wrapping_sub(start);
        }
        let n = avail.min(max);
        if n == 0 {
            return 0;
        }
        // Publish-on-drop guard: `accept`/`sink` run arbitrary caller code,
        // and a panic there must still publish the slots already read out
        // (otherwise `Shared::drop` would double-drop the moved items).
        let mut publish = HeadPublish {
            head: &self.shared.head,
            val: start,
            start,
        };
        while publish.val.wrapping_sub(start) < n {
            let slot = &self.shared.buffer[publish.val & mask];
            // SAFETY: the slot is below the acquire-published `tail`, so it
            // holds an initialized item the producer cannot touch until
            // `head` is released past it; peeking by shared reference before
            // deciding to consume is the same discipline as `peek`.
            if !slot.with(|p| unsafe { accept((*p).assume_init_ref()) }) {
                break;
            }
            // SAFETY: as above; the slot is read out exactly once, and the
            // cursor advances *before* `sink` runs so a panic inside it
            // cannot double-drop the item already moved out.
            let item = slot.with(|p| unsafe { (*p).assume_init_read() });
            publish.val = publish.val.wrapping_add(1);
            sink(item);
        }
        let taken = publish.val.wrapping_sub(start);
        self.head = publish.val;
        drop(publish);
        taken
    }

    /// Drain up to `max` items into `sink`, returning how many were moved.
    pub fn drain_into(&mut self, sink: &mut Vec<T>, max: usize) -> usize {
        self.drain_batch(max, |item| sink.push(item))
    }

    /// Number of items currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        // ordering: Acquire keeps the count consistent with what `poll`
        // could actually return next.
        let tail = self.shared.tail.load(Ordering::Acquire);
        tail.wrapping_sub(self.head)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the producer called [`Producer::done`] (or was dropped)
    /// *and* every item it offered has been polled. A `true` result is
    /// final: no further item can ever arrive on this queue.
    pub fn is_finished(&mut self) -> bool {
        // ordering: Acquire pairs with the Release store in `done`; seeing
        // `done == true` therefore also makes the producer's final `tail`
        // visible to the refresh below, so "empty" is conclusive.
        if !self.shared.done.load(Ordering::Acquire) {
            return false;
        }
        self.cached_tail = self.shared.tail.load(Ordering::Acquire);
        self.head == self.cached_tail
    }
}

/// Type-erased view of one queue's occupancy, readable from *any* thread.
///
/// `Producer`/`Consumer` cache positions privately, so their `len()`-style
/// accessors must stay on the owning thread. The probe reads only the shared
/// atomics (the same ones the SPSC protocol publishes with release stores),
/// which makes it safe for a metrics thread to sample depth concurrently
/// with traffic — the value is approximate by nature.
#[derive(Clone)]
pub struct DepthProbe {
    // A std Arc even in loom builds: the dyn-erasure needs std's unsize
    // coercion, and the concrete source inside holds the queue via the shim
    // `Arc`, so loom still tracks the underlying accesses.
    source: std::sync::Arc<dyn DepthSource + Send + Sync>,
}

trait DepthSource {
    fn depth(&self) -> usize;
    fn capacity(&self) -> usize;
}

/// Concrete probe source: keeps the shared ring alive through the shim
/// [`Arc`] while presenting the dyn-compatible [`DepthSource`] face.
struct ProbeSource<T>(Arc<Shared<T>>);

impl<T> DepthSource for ProbeSource<T> {
    fn depth(&self) -> usize {
        // ordering: Acquire on both — the probe only needs a consistent
        // snapshot no newer than either counter.
        let tail = self.0.tail.load(Ordering::Acquire);
        let head = self.0.head.load(Ordering::Acquire);
        // `tail` was read first: a concurrent poll can make `head` pass it,
        // so clamp instead of wrapping to a huge value.
        tail.wrapping_sub(head).min(self.0.mask + 1)
    }

    fn capacity(&self) -> usize {
        self.0.mask + 1
    }
}

impl DepthProbe {
    /// Items currently queued (approximate under concurrency, never above
    /// capacity).
    pub fn depth(&self) -> usize {
        self.source.depth()
    }

    pub fn capacity(&self) -> usize {
        self.source.capacity()
    }
}

impl<T: Send + 'static> Producer<T> {
    /// A thread-safe occupancy probe for this queue.
    pub fn probe(&self) -> DepthProbe {
        DepthProbe {
            source: std::sync::Arc::new(ProbeSource(self.shared.clone())),
        }
    }
}

impl<T: Send + 'static> Consumer<T> {
    /// A thread-safe occupancy probe for this queue.
    pub fn probe(&self) -> DepthProbe {
        DepthProbe {
            source: std::sync::Arc::new(ProbeSource(self.shared.clone())),
        }
    }
}

/// Loom models of the SPSC protocol. Run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jet-queue` (see DESIGN.md).
///
/// The models are deliberately tiny — capacity 2, a handful of items — so
/// the DFS stays exhaustive within the preemption bound while still forcing
/// every boundary case: wrap-around, the full-queue `cached_head` refresh,
/// the empty-queue `cached_tail` refresh, and drop with in-flight items.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::*;
    use loom::thread;

    /// Move `n` items through a capacity-`cap` ring with retry/yield loops
    /// on both sides, asserting order and completeness.
    fn transfer_model(cap: usize, n: u64) {
        loom::model(move || {
            let (mut p, mut c) = spsc_channel::<u64>(cap);
            let producer = thread::spawn(move || {
                for i in 0..n {
                    let mut v = i;
                    loop {
                        match p.offer(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                thread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut expected = 0u64;
            while expected < n {
                match c.poll() {
                    Some(v) => {
                        assert_eq!(v, expected, "items reordered or corrupted");
                        expected += 1;
                    }
                    None => thread::yield_now(),
                }
            }
            producer.join().unwrap();
            assert!(c.poll().is_none(), "phantom item after the last offer");
        });
    }

    /// Move `n` items through a capacity-`cap` ring using only the *batch*
    /// APIs (`offer_batch` retrying on full, `drain_batch` in runs of
    /// `batch`, `done()` after the final batch), asserting order and
    /// completeness. Exercises wrap-around, the at-most-once cache refresh
    /// on both sides, and the done()-during-batch hand-shake.
    fn batch_transfer_model(cap: usize, n: u64, batch: usize) {
        loom::model(move || {
            let (mut p, mut c) = spsc_channel::<u64>(cap);
            let producer = thread::spawn(move || {
                let mut iter = 0..n;
                let mut left = n as usize;
                while left > 0 {
                    let moved = p.offer_batch(&mut iter);
                    left -= moved;
                    if moved == 0 {
                        thread::yield_now();
                    }
                }
                p.done();
            });
            let mut expected = 0u64;
            loop {
                let got = c.drain_batch(batch, |v| {
                    assert_eq!(v, expected, "batch drain reordered or corrupted");
                    expected += 1;
                });
                if got == 0 {
                    if c.is_finished() {
                        break;
                    }
                    thread::yield_now();
                }
            }
            assert_eq!(expected, n, "is_finished() fired before the last batch");
            producer.join().unwrap();
        });
    }

    /// Wrap-around plus both cache-refresh races: 3 items through a 2-slot
    /// ring force the producer's full-refresh and the consumer's
    /// empty-refresh on every schedule.
    #[cfg(not(jet_weak_ordering))]
    #[test]
    fn transfer_wraparound_and_cache_refresh() {
        transfer_model(2, 3);
    }

    /// Batch wrap-around: 3 items in runs of 2 through a 2-slot ring force
    /// partial batches, the single-refresh path, and slot reuse across the
    /// index wrap on every schedule.
    #[cfg(not(jet_weak_ordering))]
    #[test]
    fn batch_transfer_wraparound_and_cache_refresh() {
        batch_transfer_model(2, 3, 2);
    }

    /// done() racing a consumer mid-batch: the producer publishes its last
    /// batch and immediately promises completion; a consumer observing
    /// `is_finished()` must already have drained every item of that batch.
    #[cfg(not(jet_weak_ordering))]
    #[test]
    fn batch_done_during_drain_is_conclusive() {
        batch_transfer_model(4, 3, 4);
    }

    /// Mixed APIs: single-item offers against a batch drainer (and the
    /// peek-based `drain_batch_while` reject path) interoperate with the
    /// same ordering guarantees.
    #[cfg(not(jet_weak_ordering))]
    #[test]
    fn batch_drain_interoperates_with_single_offer() {
        loom::model(|| {
            let (mut p, mut c) = spsc_channel::<u64>(2);
            let producer = thread::spawn(move || {
                for i in 0..3u64 {
                    let mut v = i;
                    loop {
                        match p.offer(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                thread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut expected = 0u64;
            while expected < 3 {
                // Accept everything below 2, then fall back to plain drain:
                // the rejected item must stay queued for the next call.
                let got = c.drain_batch_while(
                    4,
                    |v| *v < 2,
                    |v| {
                        assert_eq!(v, expected);
                        expected += 1;
                    },
                );
                if got == 0 {
                    if c.peek().is_some() {
                        assert_eq!(c.poll(), Some(expected));
                        expected += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
            producer.join().unwrap();
        });
    }

    /// Mutation lane, batch flavor: with `--cfg jet_weak_ordering` the batch
    /// publish in `offer_batch` degrades to `Relaxed` (it shares
    /// [`TAIL_PUBLISH`] with the single-item path) and the checker must
    /// report the slot hand-off to `drain_batch` as a data race.
    #[cfg(jet_weak_ordering)]
    #[test]
    #[should_panic(expected = "data race")]
    fn batch_weakened_tail_publish_is_caught() {
        batch_transfer_model(2, 2, 2);
    }

    /// The mutation lane: with `--cfg jet_weak_ordering` the tail publish
    /// store degrades to `Relaxed` (see [`TAIL_PUBLISH`]) and the checker
    /// must report the slot hand-off as a data race. This is the proof that
    /// the loom models have teeth.
    #[cfg(jet_weak_ordering)]
    #[test]
    #[should_panic(expected = "data race")]
    fn weakened_tail_publish_is_caught() {
        transfer_model(2, 2);
    }

    /// Items still in flight when both handles drop must be released exactly
    /// once, under every drop order the scheduler can produce.
    #[cfg(not(jet_weak_ordering))]
    #[test]
    fn drop_with_in_flight_items_releases_all() {
        use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
        use std::sync::Arc as StdArc;

        struct D(StdArc<StdAtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, StdOrdering::SeqCst);
            }
        }

        loom::model(|| {
            let drops = StdArc::new(StdAtomicUsize::new(0));
            let (mut p, mut c) = spsc_channel::<D>(2);
            assert!(p.offer(D(drops.clone())).is_ok());
            assert!(p.offer(D(drops.clone())).is_ok());
            let consumer = thread::spawn(move || {
                // Consume at most one item, then drop with the rest in
                // flight; completeness must not depend on who drops last.
                let _maybe = c.poll();
            });
            drop(p);
            consumer.join().unwrap();
            assert_eq!(
                drops.load(StdOrdering::SeqCst),
                2,
                "in-flight items leaked on drop"
            );
        });
    }

    /// The done() hand-shake: a consumer that sees `is_finished()` must have
    /// observed every offered item first — no early termination.
    #[cfg(not(jet_weak_ordering))]
    #[test]
    fn done_is_conclusive_only_after_last_item() {
        loom::model(|| {
            let (mut p, mut c) = spsc_channel::<u64>(2);
            let producer = thread::spawn(move || {
                p.offer(1).unwrap();
                p.offer(2).unwrap();
                p.done();
            });
            let mut sum = 0u64;
            loop {
                if let Some(v) = c.poll() {
                    sum += v;
                } else if c.is_finished() {
                    break;
                } else {
                    thread::yield_now();
                }
            }
            assert_eq!(sum, 3, "is_finished() fired before the queue drained");
            producer.join().unwrap();
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn offer_poll_roundtrip() {
        let (mut p, mut c) = spsc_channel::<u32>(4);
        assert!(c.poll().is_none());
        p.offer(1).unwrap();
        p.offer(2).unwrap();
        assert_eq!(c.poll(), Some(1));
        assert_eq!(c.poll(), Some(2));
        assert!(c.poll().is_none());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = spsc_channel::<u8>(5);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = spsc_channel::<u8>(0);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn full_queue_rejects_and_returns_item() {
        let (mut p, mut c) = spsc_channel::<u32>(2);
        p.offer(1).unwrap();
        p.offer(2).unwrap();
        assert_eq!(p.offer(3), Err(3));
        assert!(p.is_full());
        assert_eq!(c.poll(), Some(1));
        p.offer(3).unwrap();
        assert_eq!(c.poll(), Some(2));
        assert_eq!(c.poll(), Some(3));
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut p, mut c) = spsc_channel::<String>(4);
        p.offer("a".to_string()).unwrap();
        assert_eq!(c.peek().map(|s| s.as_str()), Some("a"));
        assert_eq!(c.peek().map(|s| s.as_str()), Some("a"));
        assert_eq!(c.poll().as_deref(), Some("a"));
        assert!(c.peek().is_none());
    }

    #[test]
    fn len_tracks_contents() {
        let (mut p, mut c) = spsc_channel::<u32>(8);
        assert!(c.is_empty());
        for i in 0..5 {
            p.offer(i).unwrap();
        }
        assert_eq!(c.len(), 5);
        c.poll();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn wraparound_many_times() {
        let (mut p, mut c) = spsc_channel::<u64>(4);
        let n: u64 = if cfg!(miri) { 200 } else { 10_000 };
        for i in 0..n {
            p.offer(i).unwrap();
            assert_eq!(c.poll(), Some(i));
        }
    }

    #[test]
    fn drain_into_respects_max() {
        let (mut p, mut c) = spsc_channel::<u32>(16);
        for i in 0..10 {
            p.offer(i).unwrap();
        }
        let mut sink = Vec::new();
        assert_eq!(c.drain_into(&mut sink, 4), 4);
        assert_eq!(sink, vec![0, 1, 2, 3]);
        assert_eq!(c.drain_into(&mut sink, 100), 6);
        assert_eq!(sink.len(), 10);
    }

    #[test]
    fn offer_batch_moves_what_fits_and_keeps_the_rest() {
        let (mut p, mut c) = spsc_channel::<u32>(4);
        let mut iter = 0..10u32;
        // Queue has room for 4: exactly 4 move, the iterator keeps 4..10.
        assert_eq!(p.offer_batch(&mut iter), 4);
        assert_eq!(iter.next(), Some(4));
        assert_eq!(p.offer_batch(&mut iter), 0, "full queue must move nothing");
        assert_eq!(
            iter.next(),
            Some(5),
            "full queue must not consume the iterator"
        );
        assert_eq!(c.poll(), Some(0));
        assert_eq!(c.poll(), Some(1));
        // Two slots freed by the consumer: the refresh finds them.
        assert_eq!(p.offer_batch(&mut iter), 2);
        let mut out = Vec::new();
        c.drain_batch(16, |v| out.push(v));
        assert_eq!(out, vec![2, 3, 6, 7]);
    }

    #[test]
    fn offer_batch_with_short_iterator_publishes_once() {
        let (mut p, mut c) = spsc_channel::<u32>(16);
        let mut iter = [7u32, 8, 9].into_iter();
        assert_eq!(p.offer_batch(&mut iter), 3);
        assert_eq!(c.len(), 3, "batch must be visible after the single publish");
        assert_eq!(p.offer_batch(&mut std::iter::empty::<u32>()), 0);
        assert_eq!(c.poll(), Some(7));
    }

    #[test]
    fn drain_batch_respects_max_and_preserves_fifo() {
        let (mut p, mut c) = spsc_channel::<u32>(16);
        for i in 0..10 {
            p.offer(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(c.drain_batch(4, |v| out.push(v)), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(c.drain_batch(100, |v| out.push(v)), 6);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(c.drain_batch(1, |_| panic!("queue is empty")), 0);
    }

    #[test]
    fn drain_batch_while_stops_at_rejected_item_without_consuming_it() {
        let (mut p, mut c) = spsc_channel::<u32>(16);
        for v in [1, 2, 99, 3] {
            p.offer(v).unwrap();
        }
        let mut out = Vec::new();
        // Reject 99: the run before it drains, 99 stays at the head.
        assert_eq!(c.drain_batch_while(16, |v| *v < 10, |v| out.push(v)), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(c.peek(), Some(&99));
        assert_eq!(c.poll(), Some(99));
        assert_eq!(c.drain_batch_while(16, |v| *v < 10, |v| out.push(v)), 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn batch_apis_wrap_around_many_times() {
        let (mut p, mut c) = spsc_channel::<u64>(4);
        let n: u64 = if cfg!(miri) { 200 } else { 10_000 };
        let mut iter = 0..n;
        let mut expected = 0u64;
        while expected < n {
            p.offer_batch(&mut iter);
            c.drain_batch(3, |v| {
                assert_eq!(v, expected);
                expected += 1;
            });
        }
    }

    #[test]
    fn drain_batch_sees_done_after_final_batch() {
        let (mut p, mut c) = spsc_channel::<u32>(8);
        let mut iter = [1u32, 2].into_iter();
        p.offer_batch(&mut iter);
        p.done();
        assert!(!c.is_finished(), "finished while the final batch is queued");
        let mut out = Vec::new();
        assert_eq!(c.drain_batch(8, |v| out.push(v)), 2);
        assert_eq!(out, vec![1, 2]);
        assert!(c.is_finished());
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, c) = spsc_channel::<D>(8);
        for _ in 0..5 {
            assert!(p.offer(D).is_ok());
        }
        drop(c);
        drop(p);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    /// Regression (loom/Miri audit): items offered *after* the consumer was
    /// dropped used to leak — the old `Consumer::drop` drained the queue,
    /// but nothing released what arrived later. The queue's backing storage
    /// now owns the cleanup, so drop order and timing no longer matter.
    #[test]
    fn items_offered_after_consumer_drop_are_released() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, c) = spsc_channel::<D>(8);
        for _ in 0..3 {
            assert!(p.offer(D).is_ok());
        }
        drop(c);
        // The consumer is gone; these items can never be polled.
        for _ in 0..2 {
            assert!(p.offer(D).is_ok());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "items dropped too early");
        drop(p);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5, "in-flight items leaked");
    }

    #[test]
    fn done_flag_finishes_only_when_drained() {
        let (mut p, mut c) = spsc_channel::<u32>(4);
        p.offer(1).unwrap();
        assert!(!c.is_finished());
        p.done();
        assert!(p.is_done());
        assert!(!c.is_finished(), "finished while an item is still queued");
        assert_eq!(c.poll(), Some(1));
        assert!(c.is_finished());
        // `is_finished` is final and idempotent.
        assert!(c.is_finished());
    }

    #[test]
    fn producer_drop_implies_done() {
        let (p, mut c) = spsc_channel::<u32>(4);
        drop(p);
        assert!(c.is_finished());
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let (mut p, mut c) = spsc_channel::<u64>(128);
        const N: u64 = if cfg!(miri) { 500 } else { 200_000 };
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.offer(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = c.poll() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(c.poll().is_none());
    }

    #[test]
    fn remaining_capacity_reflects_consumption() {
        let (mut p, mut c) = spsc_channel::<u32>(4);
        assert_eq!(p.remaining_capacity(), 4);
        p.offer(1).unwrap();
        p.offer(2).unwrap();
        assert_eq!(p.remaining_capacity(), 2);
        c.poll();
        assert_eq!(p.remaining_capacity(), 3);
    }

    #[test]
    fn depth_probe_tracks_occupancy_from_another_thread() {
        let (mut p, mut c) = spsc_channel::<u32>(8);
        let probe = p.probe();
        assert_eq!(probe.capacity(), 8);
        assert_eq!(probe.depth(), 0);
        for i in 0..5 {
            p.offer(i).unwrap();
        }
        let handle = std::thread::spawn(move || probe.depth());
        assert_eq!(handle.join().unwrap(), 5);
        c.poll();
        assert_eq!(c.probe().depth(), 4);
        // Producer- and consumer-derived probes see the same queue.
        assert_eq!(p.probe().depth(), c.probe().depth());
    }
}

//! Property tests for the measurement substrate: the histogram's relative
//! error bound (the paper's p99.99 claims rest on it) and the token
//! bucket's exactness (input rates in the evaluation are fixed by it).

use jet_util::{Histogram, TokenBucket};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_quantiles_within_one_percent(
        mut values in proptest::collection::vec(1u64..100_000_000_000, 10..800),
        qs in proptest::collection::vec(0.01f64..1.0, 1..6),
    ) {
        let mut h = Histogram::new(7);
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in qs {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.value_at_quantile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(
                err < 0.01,
                "q={q}: est {est} exact {exact} err {err}"
            );
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *values.last().unwrap());
        prop_assert_eq!(h.min(), values[0]);
    }

    #[test]
    fn histogram_merge_is_exact_union(
        a in proptest::collection::vec(1u64..1_000_000, 0..200),
        b in proptest::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new(6);
        let mut hb = Histogram::new(6);
        let mut hu = Histogram::new(6);
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        for q in [0.1, 0.5, 0.9, 0.999] {
            prop_assert_eq!(ha.value_at_quantile(q), hu.value_at_quantile(q));
        }
    }

    #[test]
    fn token_bucket_hands_out_every_due_event_exactly_once(
        rate in 1u64..5_000_000,
        steps in proptest::collection::vec(1u64..50_000_000, 1..100),
        burst in 1u64..10_000,
    ) {
        let mut bucket = TokenBucket::new(rate, 0, burst);
        let mut now = 0u64;
        let mut last_end = 0u64;
        let mut total = 0u64;
        for step in steps {
            now += step;
            let r = bucket.take(now, u64::MAX);
            // Ranges are contiguous: no sequence skipped or repeated.
            prop_assert_eq!(r.start, last_end);
            prop_assert!(r.end - r.start <= burst);
            last_end = r.end;
            total += r.end - r.start;
            // Every handed-out event was actually due.
            if r.end > r.start {
                prop_assert!(bucket.schedule_of(r.end - 1) <= now);
            }
        }
        // Nothing due is withheld forever: drain with repeated takes.
        loop {
            let r = bucket.take(now, u64::MAX);
            if r.start == r.end {
                break;
            }
            total += r.end - r.start;
        }
        let due = (now as u128 * rate as u128 / 1_000_000_000) as u64 + 1;
        prop_assert_eq!(total, due);
    }
}

//! Token-bucket rate control for sources.
//!
//! The evaluation (§7.1) fixes the input throughput (e.g. 1M events/s) and
//! measures latency. A source tasklet asks the bucket how many events it may
//! emit *now*; the bucket accrues capacity from the (possibly virtual) clock.
//! Crucially, the paper's latency clock starts at each event's
//! *predetermined occurrence time*: the bucket therefore also hands out the
//! scheduled timestamp of every permitted event so emission delay is charged
//! to the reported latency.

/// Deterministic token bucket producing `rate_per_sec` permits per second.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Emission period in nanoseconds, as a rational to avoid drift:
    /// event i is scheduled at `origin + i * num / den` nanos.
    num: u64,
    den: u64,
    origin_nanos: u64,
    emitted: u64,
    burst_cap: u64,
}

impl TokenBucket {
    /// A bucket emitting `rate_per_sec` events per second starting at
    /// `origin_nanos`. `burst_cap` bounds how many events may be handed out
    /// in one call (a stalled source catches up gradually rather than in one
    /// giant burst).
    pub fn new(rate_per_sec: u64, origin_nanos: u64, burst_cap: u64) -> Self {
        assert!(rate_per_sec > 0, "rate must be positive");
        TokenBucket {
            num: 1_000_000_000,
            den: rate_per_sec,
            origin_nanos,
            emitted: 0,
            burst_cap: burst_cap.max(1),
        }
    }

    /// Scheduled occurrence time (nanos) of event `i`.
    #[inline]
    pub fn schedule_of(&self, i: u64) -> u64 {
        self.origin_nanos + (i as u128 * self.num as u128 / self.den as u128) as u64
    }

    /// Number of events already handed out.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// How many events are due at time `now_nanos`, capped by the burst
    /// limit. Does not consume them.
    pub fn due(&self, now_nanos: u64) -> u64 {
        if now_nanos < self.origin_nanos {
            return 0;
        }
        let elapsed = (now_nanos - self.origin_nanos) as u128;
        let due_total = (elapsed * self.den as u128 / self.num as u128) as u64 + 1;
        due_total.saturating_sub(self.emitted).min(self.burst_cap)
    }

    /// Consume up to `max` due events, returning an iterator-friendly range
    /// of event indices. Each index's scheduled time is `schedule_of(i)`.
    pub fn take(&mut self, now_nanos: u64, max: u64) -> std::ops::Range<u64> {
        let n = self.due(now_nanos).min(max);
        let start = self.emitted;
        self.emitted += n;
        start..self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_exact_for_round_rates() {
        let b = TokenBucket::new(1000, 0, u64::MAX); // 1 event per ms
        assert_eq!(b.schedule_of(0), 0);
        assert_eq!(b.schedule_of(1), 1_000_000);
        assert_eq!(b.schedule_of(1000), 1_000_000_000);
    }

    #[test]
    fn no_drift_for_awkward_rates() {
        // 3 events/s: schedules at 0, 333_333_333, 666_666_666, 1_000_000_000
        let b = TokenBucket::new(3, 0, u64::MAX);
        assert_eq!(b.schedule_of(3), 1_000_000_000);
        assert_eq!(b.schedule_of(3_000_000), 1_000_000_000_000_000);
    }

    #[test]
    fn due_counts_events_whose_schedule_passed() {
        let b = TokenBucket::new(1000, 0, u64::MAX);
        assert_eq!(b.due(0), 1); // event 0 scheduled at t=0
        assert_eq!(b.due(999_999), 1);
        assert_eq!(b.due(1_000_000), 2);
        assert_eq!(b.due(10_000_000), 11);
    }

    #[test]
    fn take_consumes_and_respects_burst_cap() {
        let mut b = TokenBucket::new(1_000_000, 0, 5);
        let r = b.take(1_000_000_000, u64::MAX); // 1s in: 1M events due, capped at 5
        assert_eq!(r, 0..5);
        let r = b.take(1_000_000_000, 2);
        assert_eq!(r, 5..7);
        assert_eq!(b.emitted(), 7);
    }

    #[test]
    fn nothing_due_before_origin() {
        let b = TokenBucket::new(100, 1_000_000, u64::MAX);
        assert_eq!(b.due(999_999), 0);
        assert_eq!(b.due(1_000_000), 1);
    }

    #[test]
    fn take_is_monotone_and_complete() {
        let mut b = TokenBucket::new(7919, 0, 64);
        let mut total = 0u64;
        let mut now = 0u64;
        for _ in 0..10_000 {
            now += 137_301; // arbitrary step
            let r = b.take(now, u64::MAX);
            total += r.end - r.start;
        }
        // All events scheduled before `now` must eventually be handed out
        // (burst cap only smooths, never loses).
        let expected = (now as u128 * 7919 / 1_000_000_000) as u64 + 1;
        assert_eq!(total, expected);
    }
}

//! Concurrency shim: `std` types in normal builds, [`loom`] model-checked
//! types under `--cfg loom`.
//!
//! The lock-free layer (`jet-queue`'s SPSC ring / conveyor and
//! `jet-core`'s trace rings) is written against this module instead of
//! `std::sync` directly. A normal build re-exports the `std` types and a
//! `#[repr(transparent)]` `UnsafeCell` wrapper whose accessors are
//! `#[inline]` pass-throughs — the compiled code is identical to using
//! `std::cell::UnsafeCell::get` (no trait objects, no branches, no extra
//! state). Under `RUSTFLAGS="--cfg loom"` the same code compiles against
//! the model checker, which exhaustively explores interleavings and fails
//! on any missing `Release`/`Acquire` pair or `UnsafeCell` data race.
//!
//! Rules of the road:
//! * every cell access goes through [`UnsafeCell::with`] /
//!   [`UnsafeCell::with_mut`] so loom can observe it;
//! * cross-thread handles are shared through this module's [`Arc`] so the
//!   checker credits the release/acquire edges `Arc::drop` provides;
//! * spin/backoff points in loom tests use `loom::thread::yield_now`.

#[cfg(loom)]
pub use loom::cell::UnsafeCell;
#[cfg(loom)]
pub use loom::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub use loom::sync::Arc;

#[cfg(not(loom))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub use std::sync::Arc;

pub use crossbeam::utils::CachePadded;

/// `std::cell::UnsafeCell` with loom's closure-based API, so the same call
/// sites compile against the race-checked loom cell under `--cfg loom`.
#[cfg(not(loom))]
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    #[inline]
    pub const fn new(value: T) -> UnsafeCell<T> {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }

    /// Shared access to the slot as a raw pointer. The caller promises the
    /// usual `UnsafeCell` aliasing discipline; in loom builds the promise is
    /// checked by the race detector.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get() as *const T)
    }

    /// Exclusive access to the slot as a raw pointer (see [`Self::with`]).
    #[inline]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn unsafe_cell_is_transparent_and_zero_cost() {
        // The shim must compile to the bare std type: same size, same
        // alignment, no discriminants or side tables.
        assert_eq!(
            std::mem::size_of::<UnsafeCell<u64>>(),
            std::mem::size_of::<u64>()
        );
        assert_eq!(
            std::mem::align_of::<UnsafeCell<u64>>(),
            std::mem::align_of::<u64>()
        );
        let c = UnsafeCell::new(41u64);
        // SAFETY: `c` is local to this test; no aliasing is possible.
        c.with_mut(|p| unsafe { *p += 1 });
        // SAFETY: as above.
        assert_eq!(c.with(|p| unsafe { *p }), 42);
    }
}

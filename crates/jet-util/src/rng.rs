//! Seeded deterministic pseudo-random numbers.
//!
//! The fault-injection layer (and anything else that needs randomness inside
//! the simulation) must be reproducible: the same seed has to yield the same
//! decision sequence on every run and every platform. `std` offers no seeded
//! RNG, so this is a tiny splitmix64 stream generator built on
//! [`crate::seq::mix64`] — statistically strong enough for fault schedules
//! and far simpler than carrying a full RNG crate.

use crate::seq::mix64;

/// A deterministic splitmix64 stream: `state` advances by the golden-ratio
/// increment and each output is the finalizer mix of the new state.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Two generators with different seeds produce unrelated streams; the
    /// seed itself is pre-mixed so small seeds (0, 1, 2…) diverge immediately.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: mix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform in `[0, n)` without modulo bias (Lemire's method). `n` must
    /// be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`; `lo < hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// True with probability `millionths / 1_000_000`.
    pub fn chance(&mut self, millionths: u32) -> bool {
        self.below(1_000_000) < millionths as u64
    }

    /// Split off an independent generator (for per-subsystem streams that
    /// must not perturb each other's draw sequences).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(0);
        let mut b = SimRng::new(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_spreads() {
        let mut r = SimRng::new(7);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.below(10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500 && c < 1500, "bucket {i} count {c}");
        }
    }

    #[test]
    fn chance_approximates_probability() {
        let mut r = SimRng::new(99);
        let hits = (0..100_000).filter(|_| r.chance(250_000)).count();
        assert!((20_000..30_000).contains(&hits), "25% chance hit {hits}");
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut a = SimRng::new(5);
        let mut fa = a.fork();
        let mut b = SimRng::new(5);
        let mut fb = b.fork();
        for _ in 0..100 {
            assert_eq!(fa.next_u64(), fb.next_u64());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! The tri-state progress signal tasklets report to the worker loop (§3.2).

/// Outcome of one tasklet timeslice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// The tasklet did useful work; keep it in the rotation.
    MadeProgress,
    /// The tasklet had no input (or its output queues were full); the worker
    /// counts consecutive `NoProgress` rounds to drive the idle strategy.
    NoProgress,
    /// The tasklet finished for good and must be removed from the rotation.
    Done,
}

impl Progress {
    /// Combine two progress observations: `Done` only if both are done,
    /// progress if either progressed.
    pub fn and(self, other: Progress) -> Progress {
        use Progress::*;
        match (self, other) {
            (Done, Done) => Done,
            (MadeProgress, _) | (_, MadeProgress) => MadeProgress,
            _ => NoProgress,
        }
    }

    pub fn made_progress(self) -> bool {
        self == Progress::MadeProgress
    }

    pub fn is_done(self) -> bool {
        self == Progress::Done
    }

    /// Map a bool (did we do work?) to a progress value.
    pub fn from_worked(worked: bool) -> Progress {
        if worked {
            Progress::MadeProgress
        } else {
            Progress::NoProgress
        }
    }
}

/// Accumulates progress across the steps of a composite operation, mirroring
/// Jet's `ProgressTracker`.
#[derive(Debug, Default)]
pub struct ProgressTracker {
    made_progress: bool,
    all_done: bool,
}

impl ProgressTracker {
    pub fn new() -> Self {
        ProgressTracker {
            made_progress: false,
            all_done: true,
        }
    }

    /// Reset at the start of a scheduling round.
    pub fn reset(&mut self) {
        self.made_progress = false;
        self.all_done = true;
    }

    /// Merge one sub-step's outcome.
    pub fn observe(&mut self, p: Progress) {
        match p {
            Progress::MadeProgress => {
                self.made_progress = true;
                self.all_done = false;
            }
            Progress::NoProgress => self.all_done = false,
            Progress::Done => {}
        }
    }

    /// Note that some work happened without a full Progress value.
    pub fn mark_progress(&mut self) {
        self.made_progress = true;
        self.all_done = false;
    }

    /// Note that a sub-step still exists but made no progress.
    pub fn mark_not_done(&mut self) {
        self.all_done = false;
    }

    pub fn to_progress(&self) -> Progress {
        if self.all_done {
            Progress::Done
        } else if self.made_progress {
            Progress::MadeProgress
        } else {
            Progress::NoProgress
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Progress::*;

    #[test]
    fn and_combinations() {
        assert_eq!(Done.and(Done), Done);
        assert_eq!(Done.and(NoProgress), NoProgress);
        assert_eq!(Done.and(MadeProgress), MadeProgress);
        assert_eq!(NoProgress.and(NoProgress), NoProgress);
        assert_eq!(MadeProgress.and(NoProgress), MadeProgress);
        assert_eq!(MadeProgress.and(MadeProgress), MadeProgress);
    }

    #[test]
    fn tracker_defaults_to_done_when_nothing_observed() {
        let mut t = ProgressTracker::new();
        t.reset();
        assert_eq!(t.to_progress(), Done);
    }

    #[test]
    fn tracker_aggregates() {
        let mut t = ProgressTracker::new();
        t.observe(Done);
        assert_eq!(t.to_progress(), Done);
        t.observe(NoProgress);
        assert_eq!(t.to_progress(), NoProgress);
        t.observe(MadeProgress);
        assert_eq!(t.to_progress(), MadeProgress);
        t.reset();
        assert_eq!(t.to_progress(), Done);
    }

    #[test]
    fn from_worked_maps_bool() {
        assert_eq!(Progress::from_worked(true), MadeProgress);
        assert_eq!(Progress::from_worked(false), NoProgress);
    }
}

//! Bounded exponential backoff with optional seeded jitter.
//!
//! Both the recovery retry loop and the autoscaling controller follow the
//! same "degrade instead of flap" discipline: after a failure, wait
//! `base << (attempt-1)` capped at `max` before trying again, and reset the
//! ladder on the first success. The ladder lives here — away from any
//! engine state — so the cap, the jitter determinism, and the
//! reset-on-success contract can be tested in isolation.
//!
//! Jitter is drawn from a [`SimRng`] stream owned by the ladder: the same
//! seed yields the same jitter sequence on every run and platform, which the
//! chaos suite's bit-for-bit replay oracle depends on. `reset()` clears the
//! attempt counter but deliberately does *not* rewind the jitter stream —
//! two distinct failure episodes in one run must not reuse the same draws,
//! while two same-seed runs still replay identically.

use crate::rng::SimRng;

/// Bounded exponential backoff: `delay(n) = min(base << (n-1), max)`, plus
/// an optional deterministic jitter of up to `jitter_millionths` of the
/// delay.
#[derive(Debug, Clone)]
pub struct BackoffLadder {
    base: u64,
    max: u64,
    jitter_millionths: u32,
    rng: SimRng,
    attempt: u32,
}

impl BackoffLadder {
    /// A jitter-free ladder. `base` must be positive and `max >= base`
    /// (checked with `debug_assert` — callers validate configs upstream).
    pub fn new(base: u64, max: u64) -> BackoffLadder {
        debug_assert!(base > 0, "backoff base must be positive");
        debug_assert!(max >= base, "backoff max below base");
        BackoffLadder {
            base,
            max,
            jitter_millionths: 0,
            rng: SimRng::new(0),
            attempt: 0,
        }
    }

    /// Add a deterministic jitter of up to `millionths/1e6` of each delay,
    /// drawn from a seeded stream.
    pub fn with_jitter(mut self, millionths: u32, seed: u64) -> BackoffLadder {
        self.jitter_millionths = millionths;
        self.rng = SimRng::new(seed);
        self
    }

    /// Completed (failed) attempts since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The capped un-jittered delay after `attempt` failures (1-based).
    /// `attempt == 0` means "no failure yet" and yields 0.
    pub fn raw_delay(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        self.base
            .checked_shl(attempt - 1)
            .unwrap_or(u64::MAX)
            .min(self.max)
    }

    /// Record a failure and return how long to wait before the next
    /// attempt (capped, jittered when configured).
    pub fn next_delay(&mut self) -> u64 {
        self.attempt += 1;
        let d = self.raw_delay(self.attempt);
        if self.jitter_millionths == 0 {
            return d;
        }
        let span = (d as u128 * self.jitter_millionths as u128 / 1_000_000) as u64;
        d + if span > 0 {
            self.rng.below(span + 1)
        } else {
            0
        }
    }

    /// Success: the next failure starts the ladder from the bottom again.
    /// The jitter stream is *not* rewound (see module docs).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_then_cap() {
        let mut l = BackoffLadder::new(2_000_000, 32_000_000);
        let delays: Vec<u64> = (0..8).map(|_| l.next_delay()).collect();
        assert_eq!(
            delays,
            vec![
                2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000, 32_000_000, 32_000_000,
                32_000_000
            ]
        );
        assert_eq!(l.attempt(), 8);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let l = BackoffLadder::new(1 << 40, u64::MAX);
        // Shifting past 64 bits saturates instead of wrapping.
        assert_eq!(l.raw_delay(200), u64::MAX);
        let mut l = BackoffLadder::new(1, 1 << 20);
        for _ in 0..100 {
            assert!(l.next_delay() <= 1 << 20);
        }
    }

    #[test]
    fn reset_on_success_restarts_from_base() {
        let mut l = BackoffLadder::new(1_000, 64_000);
        assert_eq!(l.next_delay(), 1_000);
        assert_eq!(l.next_delay(), 2_000);
        assert_eq!(l.next_delay(), 4_000);
        l.reset();
        assert_eq!(l.attempt(), 0);
        assert_eq!(l.next_delay(), 1_000);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic_under_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mut l = BackoffLadder::new(1_000_000, 16_000_000).with_jitter(250_000, seed);
            (0..10).map(|_| l.next_delay()).collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must replay the same jitter");
        let c = run(43);
        assert_ne!(a, c, "different seeds should diverge");
        // Every jittered delay stays within [raw, raw * 1.25].
        let l = BackoffLadder::new(1_000_000, 16_000_000);
        for (i, &d) in a.iter().enumerate() {
            let raw = l.raw_delay(i as u32 + 1);
            assert!(d >= raw && d <= raw + raw / 4, "attempt {i}: {d} vs {raw}");
        }
    }

    #[test]
    fn reset_does_not_rewind_the_jitter_stream() {
        let mut l = BackoffLadder::new(1_000_000, 16_000_000).with_jitter(500_000, 7);
        let first = l.next_delay();
        l.reset();
        let second = l.next_delay();
        // Same raw delay (attempt 1 both times) but a fresh draw — with a
        // 50% jitter span the odds of an accidental collision are ~1e-6;
        // seed 7 is known not to collide.
        assert_ne!(first, second);
    }

    #[test]
    fn zero_attempt_means_no_delay() {
        let l = BackoffLadder::new(5, 10);
        assert_eq!(l.raw_delay(0), 0);
    }
}

//! Foundational utilities shared by every jet-rs crate.
//!
//! This crate deliberately has no knowledge of the streaming engine. It
//! provides the low-level building blocks the paper's design leans on:
//!
//! * [`clock`] — a pluggable nanosecond clock. The engine is written against
//!   [`clock::Clock`] so the same code runs on the wall clock (threaded
//!   executor) and on a manually advanced clock (the virtual-time cluster
//!   simulator used to reproduce the paper's experiments).
//! * [`histogram`] — an HDR-style log-linear histogram used for every latency
//!   measurement in the evaluation (the paper reports 99.99th percentiles,
//!   which require a histogram with bounded relative error, not sampling).
//! * [`idle`] — the progressive backoff idle strategy cooperative worker
//!   threads use when none of their tasklets made progress.
//! * [`rate`] — token-bucket pacing for sources that must emit at a fixed
//!   events/second rate (the evaluation fixes input throughput).
//! * [`progress`] — the `MadeProgress`/`NoProgress`/`Done` tri-state that
//!   tasklets report to their worker loop.
//! * [`seq`] — deterministic 64-bit mixing/hash helpers (partition hashing
//!   must be stable across nodes and runs).

pub mod backoff;
pub mod clock;
pub mod codec;
pub mod histogram;
pub mod idle;
pub mod progress;
pub mod rate;
pub mod rng;
pub mod seq;
pub mod sync;

pub use backoff::BackoffLadder;
pub use clock::{Clock, ManualClock, SharedClock, SystemClock};
pub use codec::{ByteReader, ByteWriter, DecodeError};
pub use histogram::Histogram;
pub use idle::{BackoffIdle, IdleStrategy};
pub use progress::Progress;
pub use rate::TokenBucket;
pub use rng::SimRng;

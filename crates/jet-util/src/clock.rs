//! Pluggable nanosecond clocks.
//!
//! All engine code reads time through a [`SharedClock`] handle. The threaded
//! executor installs a [`SystemClock`]; the virtual-time simulator installs a
//! [`ManualClock`] it advances deterministically. This is the substitution
//! that lets a 1-CPU container reproduce latency curves measured on a
//! 240-core cluster: queueing and scheduling delays accrue in *virtual*
//! nanoseconds instead of wall nanoseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds since an arbitrary epoch.
    fn now_nanos(&self) -> u64;

    /// Convenience: current time in milliseconds.
    fn now_millis(&self) -> u64 {
        self.now_nanos() / 1_000_000
    }
}

/// Wall-clock backed by [`Instant`], anchored at construction.
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    // jet-analyze: allow(instant) — this is the clock abstraction; monotonic reads are its purpose
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A clock advanced explicitly by the simulator.
///
/// Reads are a single atomic load, so tasklets can poll it from the hot path.
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        ManualClock {
            nanos: AtomicU64::new(0),
        }
    }

    pub fn starting_at(nanos: u64) -> Self {
        ManualClock {
            nanos: AtomicU64::new(nanos),
        }
    }

    /// Move time forward by `delta` nanoseconds, returning the new now.
    pub fn advance(&self, delta: u64) -> u64 {
        self.nanos.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Jump the clock to `nanos`. Panics if that would move time backwards.
    pub fn set(&self, nanos: u64) {
        let prev = self.nanos.swap(nanos, Ordering::Relaxed);
        assert!(
            nanos >= prev,
            "ManualClock moved backwards: {prev} -> {nanos}"
        );
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

/// Shareable handle to a clock implementation.
pub type SharedClock = Arc<dyn Clock>;

/// Helper constructing a shared system clock.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock::new())
}

/// Helper constructing a shared manual clock, returning both the typed handle
/// (for the driver that advances it) and the erased handle (for the engine).
pub fn manual_clock() -> (Arc<ManualClock>, SharedClock) {
    let c = Arc::new(ManualClock::new());
    (c.clone(), c as SharedClock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_starts_at_zero_and_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(10), 15);
        assert_eq!(c.now_nanos(), 15);
        assert_eq!(c.now_millis(), 0);
        c.advance(2_000_000);
        assert_eq!(c.now_millis(), 2);
    }

    #[test]
    fn manual_clock_set_forward() {
        let c = ManualClock::starting_at(100);
        c.set(200);
        assert_eq!(c.now_nanos(), 200);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_set_backward_panics() {
        let c = ManualClock::starting_at(100);
        c.set(50);
    }

    #[test]
    fn shared_handles_observe_same_time() {
        let (typed, erased) = manual_clock();
        typed.advance(42);
        assert_eq!(erased.now_nanos(), 42);
    }
}

//! Minimal, dependency-free binary codec.
//!
//! Snapshot state (paper §4.4) must cross "node" boundaries and survive the
//! death of the process that wrote it, so processors serialize their state
//! to bytes. The format is little-endian with LEB128 varints for lengths —
//! small, fast, and deterministic.

/// Append-only byte writer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    // jet-analyze: allow(alloc) — encode path appends to a caller-owned buffer (snapshot/replication, amortized growth)
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// LEB128 unsigned varint.
    #[inline]
    // jet-analyze: allow(alloc) — encode path appends to a caller-owned buffer (snapshot/replication, amortized growth)
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    #[inline]
    // jet-analyze: allow(alloc) — encode path appends to a caller-owned buffer (snapshot/replication, amortized growth)
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    #[inline]
    // jet-analyze: allow(alloc) — encode path appends to a caller-owned buffer (snapshot/replication, amortized growth)
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    #[inline]
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Error returned when decoding runs off the end of the buffer or finds
/// malformed data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Cursor-based byte reader, the inverse of [`ByteWriter`].
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError("unexpected end of buffer"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError("invalid bool")),
        }
    }

    pub fn get_varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(DecodeError("varint too long"));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.get_u64()? as i64)
    }

    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.get_varint()? as usize;
        self.take(len)
    }

    pub fn get_str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| DecodeError("invalid utf8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_varint(0);
        w.put_varint(127);
        w.put_varint(128);
        w.put_varint(u64::MAX);
        w.put_u64(0xDEAD_BEEF_CAFE_BABE);
        w.put_i64(-42);
        w.put_u32(99);
        w.put_f64(3.125);
        w.put_bytes(b"abc");
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_varint().unwrap(), 0);
        assert_eq!(r.get_varint().unwrap(), 127);
        assert_eq!(r.get_varint().unwrap(), 128);
        assert_eq!(r.get_varint().unwrap(), u64::MAX);
        assert_eq!(r.get_u64().unwrap(), 0xDEAD_BEEF_CAFE_BABE);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_u32().unwrap(), 99);
        assert_eq!(r.get_f64().unwrap(), 3.125);
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_buffer_errors_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..4]);
        assert!(r.get_u64().is_err());
    }

    #[test]
    fn invalid_bool_and_utf8_error() {
        let mut r = ByteReader::new(&[2]);
        assert!(r.get_bool().is_err());
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn varint_length_is_minimal() {
        for (v, len) in [(0u64, 1), (127, 1), (128, 2), (16_383, 2), (16_384, 3)] {
            let mut w = ByteWriter::new();
            w.put_varint(v);
            assert_eq!(w.len(), len, "varint({v})");
        }
    }
}

//! Deterministic 64-bit mixing and hashing.
//!
//! Partition routing must agree across nodes and across runs, so the engine
//! cannot use `std`'s randomly-seeded hashers. We use the splitmix64 finalizer
//! as a fast, high-quality bit mixer and build a simple streaming hasher on
//! top of it for composite keys.

/// splitmix64 finalizer: a bijective 64-bit mix with excellent avalanche.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic streaming hasher for partition keys.
///
/// Implements `std::hash::Hasher`, so any `Hash` key can be routed with
/// [`hash_of`]. The mixing is splitmix64 over 8-byte chunks — stable across
/// platforms and process restarts (unlike `DefaultHasher`).
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    pub fn new() -> Self {
        StableHasher {
            state: 0x51_7C_C1_B7_27_22_0A_95,
        }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl std::hash::Hasher for StableHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = mix64(self.state ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = mix64(self.state ^ v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Stable hash of any hashable key.
#[inline]
pub fn hash_of<K: std::hash::Hash + ?Sized>(key: &K) -> u64 {
    use std::hash::Hasher as _;
    let mut h = StableHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Map a hash to one of `n` buckets without modulo bias (Lemire's method).
#[inline]
pub fn bucket_of(hash: u64, n: u32) -> u32 {
    ((hash as u128 * n as u128) >> 64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_injective_on_sample() {
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn hash_is_stable_across_calls() {
        assert_eq!(hash_of("hello"), hash_of("hello"));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of("hello"), hash_of("hellp"));
    }

    #[test]
    fn bucket_of_stays_in_range_and_spreads() {
        let n = 271u32;
        let mut counts = vec![0u32; n as usize];
        for i in 0..100_000u64 {
            let b = bucket_of(hash_of(&i), n);
            assert!(b < n);
            counts[b as usize] += 1;
        }
        let expected = 100_000 / n;
        let (min, max) = counts
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(min > expected / 2, "min bucket too empty: {min}");
        assert!(max < expected * 2, "max bucket too full: {max}");
    }

    #[test]
    fn str_and_byte_hash_differ_by_length_padding_only_safely() {
        // Multi-chunk inputs must all hash distinctly on a sample.
        let inputs: Vec<String> = (0..1000)
            .map(|i| format!("key-{i}-{}", "x".repeat(i % 32)))
            .collect();
        let hashes: HashSet<u64> = inputs.iter().map(|s| hash_of(s.as_str())).collect();
        assert_eq!(hashes.len(), inputs.len());
    }
}

//! HDR-style log-linear histogram.
//!
//! The paper's headline metric is latency at the 99.99th percentile. To
//! report that faithfully over 24,000+ samples we need a histogram with
//! bounded *relative* error across many orders of magnitude — the design
//! popularized by HdrHistogram. Values are bucketed log-linearly: buckets
//! double in width, and each bucket is split into `1 << precision_bits`
//! equal sub-buckets, giving a worst-case relative error of
//! `2^-precision_bits`.
//!
//! The implementation is single-writer; the engine keeps one histogram per
//! measured stream and merges them at report time.

/// Log-linear histogram of `u64` values (typically nanoseconds).
/// Equality is exact (bucket-for-bucket) — used by tests asserting that
/// observers off the virtual timeline cannot move a single sample.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of sub-bucket index bits: relative error is `2^-bits`.
    precision_bits: u32,
    /// `1 << precision_bits`.
    sub_buckets: u64,
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl Histogram {
    /// Create a histogram with the given precision (3..=8 bits; 7 bits gives
    /// < 1% relative error, plenty for latency percentiles).
    pub fn new(precision_bits: u32) -> Self {
        assert!(
            (3..=8).contains(&precision_bits),
            "precision must be 3..=8 bits"
        );
        let sub_buckets = 1u64 << precision_bits;
        // 64 value magnitudes, each with `sub_buckets` slots, is enough to
        // cover the full u64 range.
        let slots = (64 - precision_bits as usize + 1) * sub_buckets as usize;
        Histogram {
            precision_bits,
            sub_buckets,
            counts: vec![0; slots],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    /// Default latency histogram: 7 precision bits (< 1% error).
    pub fn latency() -> Self {
        Self::new(7)
    }

    #[inline]
    fn index_of(&self, value: u64) -> usize {
        let v = value.max(1);
        let magnitude = 63 - v.leading_zeros() as u64; // floor(log2(v))
        if magnitude < self.precision_bits as u64 {
            // Values small enough to be exact.
            v as usize
        } else {
            let shift = magnitude - self.precision_bits as u64;
            let sub = v >> shift; // in [sub_buckets, 2*sub_buckets)
            let bucket = magnitude - self.precision_bits as u64 + 1;
            (bucket * self.sub_buckets + (sub - self.sub_buckets)) as usize
        }
    }

    /// Lowest value that maps to slot `idx` (inverse of `index_of`).
    fn value_of(&self, idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < self.sub_buckets {
            idx
        } else {
            let bucket = idx / self.sub_buckets;
            let sub = idx % self.sub_buckets + self.sub_buckets;
            sub << (bucket - 1)
        }
    }

    /// Highest value that maps to slot `idx` (saturating at `u64::MAX`).
    fn slot_high(&self, idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < self.sub_buckets {
            idx
        } else {
            let bucket = idx / self.sub_buckets;
            let sub = (idx % self.sub_buckets + self.sub_buckets) as u128;
            let high = ((sub + 1) << (bucket - 1)) - 1;
            high.min(u64::MAX as u128) as u64
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        if value > self.max {
            self.max = value;
        }
        if value < self.min {
            self.min = value;
        }
    }

    /// Record `count` observations of the same value.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let idx = self.index_of(value);
        self.counts[idx] += count;
        self.total += count;
        self.sum += value as u128 * count as u128;
        if value > self.max {
            self.max = value;
        }
        if value < self.min {
            self.min = value;
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`. Returns the mid-point of the
    /// bucket holding the q-th observation (clamped into the recorded
    /// `[min, max]` range), so the estimate is off by at most *half* the
    /// bucket width in either direction. Buckets below `sub_buckets` hold a
    /// single value, so small values are still reported exactly.
    ///
    /// Returning the bucket's upper bound instead (the previous behaviour)
    /// systematically over-reported sparse extreme quantiles: a p99.99 that
    /// lands in a near-empty high bucket snapped to the bucket ceiling, a
    /// one-sided error of up to the full bucket relative error.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let low = self.value_of(idx);
                let high = self.slot_high(idx);
                let mid = low + (high - low) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand for the percentiles the paper reports.
    pub fn percentile(&self, p: f64) -> u64 {
        self.value_at_quantile(p / 100.0)
    }

    /// Merge another histogram (must have identical precision) into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.precision_bits, other.precision_bits,
            "cannot merge histograms of different precision"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Reset all recorded data, keeping the configuration.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.max = 0;
        self.min = u64::MAX;
        self.sum = 0;
    }

    /// Iterate `(bucket_low_value, count)` over non-empty buckets.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (self.value_of(i), c))
    }

    /// Render the standard percentile summary line used by the benches,
    /// with values converted from nanos to fractional milliseconds.
    pub fn latency_summary_ms(&self) -> String {
        let ms = |v: u64| v as f64 / 1e6;
        format!(
            "n={} mean={:.3}ms p50={:.3}ms p90={:.3}ms p99={:.3}ms p99.9={:.3}ms p99.99={:.3}ms max={:.3}ms",
            self.count(),
            self.mean() / 1e6,
            ms(self.percentile(50.0)),
            ms(self.percentile(90.0)),
            ms(self.percentile(99.0)),
            ms(self.percentile(99.9)),
            ms(self.percentile(99.99)),
            ms(self.max()),
        )
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("p99.99", &self.percentile(99.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.99), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new(7);
        for v in 0..128 {
            h.record(v);
        }
        assert_eq!(h.count(), 128);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 127);
        // The 64th observation (rank ceil(0.5*128)) is the value 63.
        assert_eq!(h.value_at_quantile(0.5), 63);
    }

    #[test]
    fn single_value_percentiles() {
        let mut h = Histogram::latency();
        h.record(1_000_000);
        for p in [0.0, 50.0, 99.0, 99.99, 100.0] {
            let v = h.percentile(p);
            assert!(relative_err(v, 1_000_000) < 0.01, "p{p}: {v}");
        }
    }

    #[test]
    fn relative_error_bound_holds() {
        let mut h = Histogram::new(7);
        let values: Vec<u64> = (0..10_000).map(|i| 1 + i * 7919).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = sorted
                [((p / 100.0 * sorted.len() as f64).ceil() as usize - 1).min(sorted.len() - 1)];
            let est = h.percentile(p);
            assert!(
                relative_err(est, exact) < 0.01,
                "p{p}: est {est} exact {exact}"
            );
        }
    }

    #[test]
    fn extreme_quantiles_interpolate_not_snap() {
        // Regression: p99.99 on a sparse high bucket used to snap to the
        // bucket *upper* bound. With mid-point interpolation the estimate
        // must stay within half a bucket (2^-(bits+1) relative error) of the
        // exact order statistic, in BOTH directions.
        let mut h = Histogram::new(7);
        let values: Vec<u64> = (0..100_000u64).map(|i| 10_000 + i * 131).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for p in [99.0, 99.9, 99.99, 99.999] {
            let exact = sorted
                [((p / 100.0 * sorted.len() as f64).ceil() as usize - 1).min(sorted.len() - 1)];
            let est = h.percentile(p);
            assert!(
                relative_err(est, exact) < 1.0 / 256.0 + 1e-9,
                "p{p}: est {est} exact {exact} err {}",
                relative_err(est, exact)
            );
        }
        // A lone outlier in an otherwise-empty high bucket: the estimate for
        // the top quantile must not exceed the recorded max (exactness at the
        // extremes), nor round up to the bucket ceiling above it.
        let mut sparse = Histogram::new(7);
        for _ in 0..9_998 {
            sparse.record(1_000_000);
        }
        sparse.record(400_000_001); // sole occupant of a ~2.1 ms-wide bucket
                                    // 9_999 samples total: rank ceil(0.9999 * 9999) = 9999 is the outlier.
        let est = sparse.percentile(99.99);
        assert!(est <= 400_000_001, "p99.99 {est} over-reports lone max");
        assert!(
            relative_err(est, 400_000_001) < 1.0 / 256.0 + 1e-9,
            "p99.99 {est} not within half-bucket of exact 400000001"
        );
    }

    #[test]
    fn max_is_exact_not_bucketed() {
        let mut h = Histogram::new(3);
        h.record(1_000_003);
        assert_eq!(h.max(), 1_000_003);
        assert!(h.percentile(100.0) <= 1_000_003);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new(7);
        let mut b = Histogram::new(7);
        let mut both = Histogram::new(7);
        for i in 0..1000u64 {
            let v = i * i + 17;
            if i.is_multiple_of(2) {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.min(), both.min());
        for p in [10.0, 50.0, 99.0] {
            assert_eq!(a.percentile(p), both.percentile(p));
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new(5);
        let mut b = Histogram::new(5);
        a.record_n(12345, 10);
        for _ in 0..10 {
            b.record(12345);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::latency();
        h.record(5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_mismatched_precision_panics() {
        let mut a = Histogram::new(5);
        let b = Histogram::new(7);
        a.merge(&b);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = Histogram::new(7);
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) >= u64::MAX / 2);
    }

    fn relative_err(a: u64, b: u64) -> f64 {
        let (a, b) = (a as f64, b as f64);
        (a - b).abs() / b.max(1.0)
    }
}

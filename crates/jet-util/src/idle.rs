//! Idle strategies for cooperative worker threads.
//!
//! When a worker's round-robin pass over its tasklets makes no progress the
//! paper's engine backs off progressively (spin → yield → short park) instead
//! of burning the core or surrendering it to the OS scheduler — §3.2's point
//! about staying on the same CPU to preserve cache lines.

use std::time::Duration;

/// Strategy invoked once per fruitless scheduling round.
pub trait IdleStrategy: Send {
    /// Called with the number of consecutive rounds without progress.
    fn idle(&mut self, idle_rounds: u64);

    /// Called when progress resumes.
    fn reset(&mut self) {}
}

/// Progressive backoff: busy-spin, then `yield_now`, then park with
/// exponentially growing duration up to `max_park`.
pub struct BackoffIdle {
    spin_rounds: u64,
    yield_rounds: u64,
    min_park: Duration,
    max_park: Duration,
}

impl BackoffIdle {
    // jet-analyze: allow(panic) — constructor parameter validation at wiring time
    pub fn new(
        spin_rounds: u64,
        yield_rounds: u64,
        min_park: Duration,
        max_park: Duration,
    ) -> Self {
        assert!(min_park <= max_park);
        BackoffIdle {
            spin_rounds,
            yield_rounds,
            min_park,
            max_park,
        }
    }

    /// Parameters close to Jet's defaults: a few spins, a few yields, then
    /// parking from 25µs up to 1ms.
    pub fn jet_default() -> Self {
        Self::new(10, 5, Duration::from_micros(25), Duration::from_millis(1))
    }

    /// Compute the park duration for a given round (exposed for tests).
    pub fn park_duration(&self, idle_rounds: u64) -> Option<Duration> {
        if idle_rounds <= self.spin_rounds + self.yield_rounds {
            return None;
        }
        let park_round = idle_rounds - self.spin_rounds - self.yield_rounds - 1;
        let factor = 1u32 << park_round.min(20) as u32;
        Some((self.min_park * factor).min(self.max_park))
    }
}

impl IdleStrategy for BackoffIdle {
    fn idle(&mut self, idle_rounds: u64) {
        if idle_rounds <= self.spin_rounds {
            std::hint::spin_loop();
        } else if idle_rounds <= self.spin_rounds + self.yield_rounds {
            std::thread::yield_now();
        } else if let Some(d) = self.park_duration(idle_rounds) {
            std::thread::sleep(d);
        }
    }
}

/// No-op idle strategy (used by the virtual-time simulator, where "idle" is
/// modeled by advancing the manual clock instead of blocking a real thread).
pub struct NoopIdle;

impl IdleStrategy for NoopIdle {
    fn idle(&mut self, _idle_rounds: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn park_duration_grows_then_caps() {
        let b = BackoffIdle::new(2, 2, Duration::from_micros(10), Duration::from_micros(80));
        assert_eq!(b.park_duration(1), None);
        assert_eq!(b.park_duration(4), None);
        assert_eq!(b.park_duration(5), Some(Duration::from_micros(10)));
        assert_eq!(b.park_duration(6), Some(Duration::from_micros(20)));
        assert_eq!(b.park_duration(7), Some(Duration::from_micros(40)));
        assert_eq!(b.park_duration(8), Some(Duration::from_micros(80)));
        assert_eq!(b.park_duration(9), Some(Duration::from_micros(80)));
        assert_eq!(b.park_duration(1000), Some(Duration::from_micros(80)));
    }

    #[test]
    fn idle_does_not_panic_across_ranges() {
        let mut b = BackoffIdle::new(1, 1, Duration::from_nanos(1), Duration::from_nanos(4));
        for r in 0..10 {
            b.idle(r);
        }
        b.reset();
    }

    #[test]
    fn jet_default_parks_at_most_one_ms() {
        let b = BackoffIdle::jet_default();
        assert_eq!(b.park_duration(10_000), Some(Duration::from_millis(1)));
    }

    #[test]
    fn jet_default_phase_boundaries() {
        // 10 spin rounds, 5 yield rounds, then parking starts at 25 µs.
        let b = BackoffIdle::jet_default();
        assert_eq!(b.park_duration(15), None, "round 15 is the last yield");
        assert_eq!(b.park_duration(16), Some(Duration::from_micros(25)));
        assert_eq!(b.park_duration(17), Some(Duration::from_micros(50)));
        // 25µs * 2^6 = 1.6ms caps at 1ms on round 22.
        assert_eq!(b.park_duration(22), Some(Duration::from_millis(1)));
    }

    #[test]
    fn park_duration_is_monotone_nondecreasing() {
        let b = BackoffIdle::new(3, 4, Duration::from_micros(5), Duration::from_millis(2));
        let mut prev = Duration::ZERO;
        for r in 8..200 {
            let d = b.park_duration(r).expect("past spin+yield rounds");
            assert!(d >= prev, "park shrank at round {r}: {prev:?} -> {d:?}");
            assert!(d <= Duration::from_millis(2));
            prev = d;
        }
    }

    #[test]
    fn huge_round_counts_do_not_overflow_the_shift() {
        let b = BackoffIdle::new(0, 0, Duration::from_nanos(1), Duration::from_secs(1));
        // Round u64::MAX would shift by (u64::MAX - 1) without the clamp.
        assert_eq!(
            b.park_duration(u64::MAX),
            Some(Duration::from_nanos(1 << 20))
        );
    }

    #[test]
    fn equal_min_and_max_parks_flat() {
        let b = BackoffIdle::new(1, 0, Duration::from_micros(7), Duration::from_micros(7));
        for r in 2..40 {
            assert_eq!(b.park_duration(r), Some(Duration::from_micros(7)));
        }
    }

    #[test]
    fn zero_spin_and_yield_parks_immediately() {
        let b = BackoffIdle::new(0, 0, Duration::from_micros(10), Duration::from_millis(1));
        assert_eq!(b.park_duration(0), None, "round 0 means no idle round yet");
        assert_eq!(b.park_duration(1), Some(Duration::from_micros(10)));
    }
}

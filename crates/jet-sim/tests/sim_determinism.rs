//! Simulator-level behavioural tests: determinism of full pipeline runs and
//! the latency effect of injected GC pauses (ablation A2's mechanism).

use jet_core::dag::{Dag, Edge};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::plan::{build_local, LocalConfig};
use jet_core::processors::GeneratorSource;
use jet_core::snapshot::SnapshotRegistry;
use jet_core::supplier;
use jet_core::tasklet::Tasklet;
use jet_sim::{CostModel, GcModel, Simulator};
use jet_util::clock::ManualClock;
use std::sync::Arc;

const SEC: u64 = 1_000_000_000;

/// Build a generator -> latency-sink job against `clock` and run it on a
/// 2-core simulator; returns the latency histogram.
fn run_sim(gc: Option<GcModel>, rate: u64, limit: u64) -> jet_util::Histogram {
    let clock = Arc::new(ManualClock::new());
    let hist = SharedHistogram::new();
    let count = SharedCounter::new();
    let mut dag = Dag::new();
    let src = dag.vertex_with_parallelism(
        "gen",
        2,
        supplier(move |_| {
            Box::new(
                GeneratorSource::new(rate, Arc::new(|seq, _| jet_core::boxed(seq)))
                    .with_limit(limit),
            )
        }),
    );
    let h2 = hist.clone();
    let c2 = count.clone();
    let sink = dag.vertex_with_parallelism(
        "latency-sink",
        2,
        supplier(move |_| {
            Box::new(jet_core::processors::LatencySink::new(
                h2.clone(),
                c2.clone(),
            ))
        }),
    );
    dag.edge(Edge::between(src, sink));
    let cfg = LocalConfig::new(2).with_clock(clock.clone());
    let registry = Arc::new(SnapshotRegistry::disabled());
    let exec = build_local(&dag, &cfg, &registry, None).unwrap();

    let mut sim = Simulator::new(clock, CostModel::default(), 20_000);
    if let Some(gc) = gc {
        sim = sim.with_gc(gc);
    }
    let c0 = sim.add_core();
    let c1 = sim.add_core();
    for (i, t) in exec.tasklets.into_iter().enumerate() {
        let t: Box<dyn Tasklet> = t;
        sim.assign(if i.is_multiple_of(2) { c0 } else { c1 }, t, None);
    }
    assert!(
        sim.run_until_done(600 * SEC),
        "job did not finish in simulated time"
    );
    assert_eq!(count.get(), limit);
    hist.snapshot()
}

#[test]
fn identical_runs_are_bit_identical() {
    let a = run_sim(None, 500_000, 30_000);
    let b = run_sim(None, 500_000, 30_000);
    assert_eq!(a.count(), b.count());
    for p in [10.0, 50.0, 90.0, 99.0, 99.9, 99.99, 100.0] {
        assert_eq!(
            a.percentile(p),
            b.percentile(p),
            "simulation must be deterministic (p{p})"
        );
    }
}

#[test]
fn stop_world_gc_inflates_the_tail() {
    let clean = run_sim(None, 500_000, 50_000);
    let gc = run_sim(
        Some(GcModel::stop_world(20_000_000, 50_000_000)),
        500_000,
        50_000,
    );
    // Median barely moves; the tail absorbs the pauses.
    assert!(
        gc.percentile(99.99) >= clean.percentile(99.99) + 10_000_000,
        "stop-world pauses must show at p99.99: clean={} gc={}",
        clean.percentile(99.99),
        gc.percentile(99.99)
    );
    // The percentile is a bucket mid-point estimate, so allow half a bucket
    // (2^-8 relative at 7 precision bits) of quantization below the exact
    // 20 ms pause length.
    let half_bucket = 20_000_000 / 256;
    assert!(
        gc.percentile(99.99) >= 20_000_000 - half_bucket,
        "tail below one pause length: {}",
        gc.percentile(99.99)
    );
}

#[test]
fn concurrent_gc_hurts_less_than_stop_world() {
    let concurrent = run_sim(
        Some(GcModel::concurrent(20_000_000, 50_000_000)),
        500_000,
        50_000,
    );
    let stop_world = run_sim(
        Some(GcModel::stop_world(20_000_000, 50_000_000)),
        500_000,
        50_000,
    );
    assert!(
        concurrent.percentile(99.0) <= stop_world.percentile(99.0),
        "a rotating single-core pause must beat a global pause: conc={} sw={}",
        concurrent.percentile(99.0),
        stop_world.percentile(99.0)
    );
}

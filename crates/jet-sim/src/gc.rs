//! Garbage-collection pause injection (paper §5).
//!
//! Rust has no GC, but the paper dedicates a section to taming the JVM's:
//! "the G1 garbage collector is configured with a GC pause target of at
//! most 5 milliseconds; it does most of the GC work concurrently" (§7.1).
//! To reproduce the *effect* the paper engineers around, the simulator can
//! stall virtual cores:
//!
//! * [`GcModel::Concurrent`] — a rotating single-core stall, approximating
//!   a concurrent collector that steals one core's worth of cycles with a
//!   bounded pause target (the paper's configuration).
//! * [`GcModel::StopWorld`] — all cores stall simultaneously,
//!   approximating a full stop-the-world collector (what the paper's
//!   design avoids; ablation A2 shows the p99.99 damage).

/// GC pause injection model. All times are virtual nanos.
#[derive(Debug, Clone)]
pub enum GcModel {
    /// Every `interval`, one core (round-robin) stalls for `pause`.
    Concurrent {
        pause: u64,
        interval: u64,
        next_at: u64,
        next_core: usize,
    },
    /// Every `interval`, all cores stall for `pause`.
    StopWorld {
        pause: u64,
        interval: u64,
        next_at: u64,
    },
}

impl GcModel {
    /// The paper's configuration: 5 ms pause target, mostly-concurrent.
    pub fn paper_g1() -> GcModel {
        GcModel::concurrent(5_000_000, 100_000_000)
    }

    pub fn concurrent(pause: u64, interval: u64) -> GcModel {
        GcModel::Concurrent {
            pause,
            interval,
            next_at: interval,
            next_core: 0,
        }
    }

    pub fn stop_world(pause: u64, interval: u64) -> GcModel {
        GcModel::StopWorld {
            pause,
            interval,
            next_at: interval,
        }
    }

    /// Apply pauses due at `now` by raising cores' `stalled_until`.
    pub fn apply<'a>(&mut self, now: u64, stalls: &mut impl Iterator<Item = &'a mut u64>) {
        match self {
            GcModel::Concurrent {
                pause,
                interval,
                next_at,
                next_core,
            } => {
                if now < *next_at {
                    return;
                }
                *next_at = now + *interval;
                let stalls: Vec<&'a mut u64> = stalls.collect();
                if stalls.is_empty() {
                    return;
                }
                let idx = *next_core % stalls.len();
                *next_core = next_core.wrapping_add(1);
                for (i, s) in stalls.into_iter().enumerate() {
                    if i == idx {
                        *s = (*s).max(now + *pause);
                    }
                }
            }
            GcModel::StopWorld {
                pause,
                interval,
                next_at,
            } => {
                if now < *next_at {
                    return;
                }
                *next_at = now + *interval;
                for s in stalls {
                    *s = (*s).max(now + *pause);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_world_stalls_every_core() {
        let mut gc = GcModel::stop_world(1_000, 10_000);
        let mut stalls = vec![0u64, 0, 0];
        gc.apply(5_000, &mut stalls.iter_mut());
        assert_eq!(stalls, vec![0, 0, 0], "not due yet");
        gc.apply(10_000, &mut stalls.iter_mut());
        assert_eq!(stalls, vec![11_000, 11_000, 11_000]);
    }

    #[test]
    fn concurrent_rotates_single_core() {
        let mut gc = GcModel::concurrent(1_000, 10_000);
        let mut stalls = [0u64, 0];
        gc.apply(10_000, &mut stalls.iter_mut());
        assert_eq!(stalls.iter().filter(|&&s| s > 0).count(), 1);
        let first: Vec<bool> = stalls.iter().map(|&s| s > 0).collect();
        gc.apply(20_000, &mut stalls.iter_mut());
        let second: Vec<bool> = stalls.iter().map(|&s| s > 20_000).collect();
        assert_ne!(first, second, "pause did not rotate cores");
    }

    #[test]
    fn interval_is_respected() {
        let mut gc = GcModel::stop_world(100, 1_000);
        let mut stalls = [0u64];
        gc.apply(1_000, &mut stalls.iter_mut());
        let s1 = stalls[0];
        gc.apply(1_500, &mut stalls.iter_mut());
        assert_eq!(stalls[0], s1, "fired again before interval elapsed");
        gc.apply(2_000, &mut stalls.iter_mut());
        assert!(stalls[0] > s1);
    }
}

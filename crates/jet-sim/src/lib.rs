//! # jet-sim — deterministic virtual-time execution
//!
//! Runs the *real* jet-core tasklets on simulated CPU cores against a
//! manually advanced clock. This is how the repository reproduces the
//! paper's 12-to-240-core experiments on a small container (see DESIGN.md's
//! substitution table): the engine code, queues, watermarks, barriers and
//! flow control are identical to the threaded executor's — only the notion
//! of time and CPU capacity is modeled.
//!
//! * [`cost`] — per-timeslice cost model (calibrated to the paper's
//!   ~2M events/s/core Q5 saturation point).
//! * [`sim`] — the time-stepped multi-core simulator.
//! * [`gc`] — GC pause injection (§5 / ablation A2).
//! * [`fault`] — deterministic seeded fault schedules (crash, stall,
//!   partition, channel chaos, store outages) on the virtual timeline.

pub mod cost;
pub mod fault;
pub mod gc;
pub mod sim;

pub use cost::{CostModel, CostedTasklet};
pub use fault::{FaultEvent, FaultKind, FaultPlan, RandomFaultSpec};
pub use gc::GcModel;
pub use sim::{CoreId, SimTick, Simulator};

//! Deterministic fault injection on the virtual timeline.
//!
//! A [`FaultPlan`] is a time-sorted script of fault events — member crashes,
//! transient stalls, network partitions, channel chaos (seeded drop/delay),
//! snapshot-store outages — scheduled in virtual nanos. The plan only
//! *describes* faults; the cluster runtime applies them from its per-quantum
//! hook, so a plan replays bit-for-bit under the same seed: the simulation
//! is single-threaded on a manual clock and every random decision flows from
//! [`SimRng`].
//!
//! Plans can be written by hand (benchmarks use a single scripted crash) or
//! drawn from a seeded distribution via [`FaultPlan::random`] — the chaos
//! suite's generator.

use jet_util::rng::SimRng;

/// One fault to apply at a point in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Member dies abruptly: its cores stop forever and its heartbeats
    /// cease. Recovery requires detection + rebuild.
    Crash {
        member: u32,
    },
    /// Member freezes (GC-like straggler) until `until`; it resumes
    /// afterwards. Within the detector's grace this must NOT cause a kill.
    Stall {
        member: u32,
        until: u64,
    },
    /// Network partition `id` begins: members in `side` cannot exchange
    /// messages with members outside it until [`FaultKind::PartitionEnd`].
    PartitionStart {
        id: u32,
        side: Vec<u32>,
    },
    /// Partition `id` heals; parked traffic delivers (TCP retransmit).
    PartitionEnd {
        id: u32,
    },
    /// Channel chaos begins: every data batch gets up to
    /// `max_extra_delay_nanos` of seeded jitter, and with probability
    /// `drop_millionths`/1e6 a batch is "dropped" — modeled as a retransmit
    /// delay, never a real loss (the engine assumes a reliable transport).
    /// Heartbeats ARE really dropped at that probability.
    ChaosStart {
        drop_millionths: u32,
        max_extra_delay_nanos: u64,
    },
    ChaosEnd,
    /// Snapshot-store writes fail until the matching end event: snapshots
    /// taken in the window are poisoned and never become recovery points.
    StoreWriteFailStart,
    StoreWriteFailEnd,
    /// Snapshot-store reads fail until the matching end event: recovery
    /// attempts in the window fail and must retry with backoff.
    StoreReadFailStart,
    StoreReadFailEnd,
}

impl FaultKind {
    /// Short stable label (trace args, logs, determinism digests).
    pub fn label(&self) -> String {
        match self {
            FaultKind::Crash { member } => format!("crash(m{member})"),
            FaultKind::Stall { member, until } => format!("stall(m{member},until={until})"),
            FaultKind::PartitionStart { id, side } => format!("partition-start({id},{side:?})"),
            FaultKind::PartitionEnd { id } => format!("partition-end({id})"),
            FaultKind::ChaosStart {
                drop_millionths,
                max_extra_delay_nanos,
            } => format!("chaos-start(drop={drop_millionths}ppm,delay<={max_extra_delay_nanos})"),
            FaultKind::ChaosEnd => "chaos-end".to_string(),
            FaultKind::StoreWriteFailStart => "store-write-fail-start".to_string(),
            FaultKind::StoreWriteFailEnd => "store-write-fail-end".to_string(),
            FaultKind::StoreReadFailStart => "store-read-fail-start".to_string(),
            FaultKind::StoreReadFailEnd => "store-read-fail-end".to_string(),
        }
    }
}

/// A fault scheduled at virtual time `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    pub at: u64,
    pub kind: FaultKind,
}

/// Time-sorted fault script plus the seed for in-flight randomness (channel
/// chaos draws). Consumed through a cursor by the cluster runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// Seed for the transport's chaos RNG; the schedule above is fixed, this
    /// only drives per-message drop/jitter draws.
    pub seed: u64,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            events: Vec::new(),
            seed,
        }
    }

    pub fn push(&mut self, at: u64, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    pub fn crash(&mut self, at: u64, member: u32) -> &mut Self {
        self.push(at, FaultKind::Crash { member })
    }

    pub fn stall(&mut self, at: u64, member: u32, duration: u64) -> &mut Self {
        self.push(
            at,
            FaultKind::Stall {
                member,
                until: at + duration,
            },
        )
    }

    /// Partition `side` away from the rest of the cluster for `duration`.
    pub fn partition(&mut self, at: u64, duration: u64, side: Vec<u32>) -> &mut Self {
        let id = self.events.len() as u32;
        self.push(at, FaultKind::PartitionStart { id, side });
        self.push(at + duration, FaultKind::PartitionEnd { id })
    }

    pub fn chaos(
        &mut self,
        at: u64,
        duration: u64,
        drop_millionths: u32,
        max_extra_delay_nanos: u64,
    ) -> &mut Self {
        self.push(
            at,
            FaultKind::ChaosStart {
                drop_millionths,
                max_extra_delay_nanos,
            },
        );
        self.push(at + duration, FaultKind::ChaosEnd)
    }

    pub fn store_write_outage(&mut self, at: u64, duration: u64) -> &mut Self {
        self.push(at, FaultKind::StoreWriteFailStart);
        self.push(at + duration, FaultKind::StoreWriteFailEnd)
    }

    pub fn store_read_outage(&mut self, at: u64, duration: u64) -> &mut Self {
        self.push(at, FaultKind::StoreReadFailStart);
        self.push(at + duration, FaultKind::StoreReadFailEnd)
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Stable one-line-per-event digest, used by determinism tests to assert
    /// two runs drew the identical schedule.
    pub fn digest(&self) -> String {
        self.events
            .iter()
            .map(|e| format!("{}:{}", e.at, e.kind.label()))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Draw a random plan from `spec` under `seed`. Same seed + same spec =>
    /// identical plan, bit for bit.
    pub fn random(seed: u64, spec: &RandomFaultSpec) -> FaultPlan {
        let mut rng = SimRng::new(seed);
        let mut plan = FaultPlan::new(seed);
        assert!(spec.members >= 2, "fault plans need at least 2 members");
        assert!(spec.crash_floor < spec.horizon);

        // At most `max_crashes` members die; victims are distinct.
        let mut victims: Vec<u32> = Vec::new();
        let crashes = rng.below(spec.max_crashes as u64 + 1) as usize;
        for _ in 0..crashes {
            let m = rng.below(spec.members as u64) as u32;
            if victims.contains(&m) {
                continue;
            }
            let at = rng.range(spec.crash_floor, spec.horizon);
            plan.crash(at, m);
            victims.push(m);
            // A read outage overlapping the crash exercises recovery retry.
            if spec.recovery_read_outage_millionths > 0
                && rng.chance(spec.recovery_read_outage_millionths)
            {
                let dur = rng.range(spec.read_outage_min, spec.read_outage_max);
                plan.store_read_outage(at, dur);
            }
        }

        if rng.chance(spec.stall_millionths) {
            let m = rng.below(spec.members as u64) as u32;
            let at = rng.range(spec.crash_floor / 2, spec.horizon);
            let dur = rng.range(spec.stall_min, spec.stall_max);
            plan.stall(at, m, dur);
        }

        if rng.chance(spec.partition_millionths) {
            let m = rng.below(spec.members as u64) as u32;
            let at = rng.range(spec.crash_floor / 2, spec.horizon);
            let dur = rng.range(spec.partition_min, spec.partition_max);
            plan.partition(at, dur, vec![m]);
        }

        if rng.chance(spec.chaos_millionths) {
            let at = rng.range(0, spec.horizon / 2);
            let dur = rng.range(spec.horizon / 4, spec.horizon);
            let drop = rng.below(spec.chaos_drop_max_millionths as u64 + 1) as u32;
            let delay = rng.below(spec.chaos_delay_max + 1);
            plan.chaos(at, dur, drop, delay);
        }

        if rng.chance(spec.store_write_outage_millionths) {
            let at = rng.range(spec.crash_floor / 2, spec.horizon);
            let dur = rng.range(spec.write_outage_min, spec.write_outage_max);
            plan.store_write_outage(at, dur);
        }

        plan
    }

    /// Draw a random plan whose fault *onsets* all land inside `[lo, hi)` —
    /// the chaos-autoscale lane uses this to aim crash/stall/partition/
    /// store-outage faults into an expected controller-decision or rescale
    /// window, rather than spraying them over the whole run. Windowed
    /// faults (stalls, partitions, outages) may extend past `hi`; only
    /// their start instant is constrained. Same seed + same spec + same
    /// window => identical plan, bit for bit.
    pub fn random_in_window(seed: u64, spec: &RandomFaultSpec, lo: u64, hi: u64) -> FaultPlan {
        assert!(lo < hi, "empty fault window");
        let mut rng = SimRng::new(seed);
        let mut plan = FaultPlan::new(seed);
        assert!(spec.members >= 2, "fault plans need at least 2 members");

        let mut victims: Vec<u32> = Vec::new();
        let crashes = rng.below(spec.max_crashes as u64 + 1) as usize;
        for _ in 0..crashes {
            let m = rng.below(spec.members as u64) as u32;
            if victims.contains(&m) {
                continue;
            }
            plan.crash(rng.range(lo, hi), m);
            victims.push(m);
        }

        if rng.chance(spec.stall_millionths) {
            let m = rng.below(spec.members as u64) as u32;
            let at = rng.range(lo, hi);
            let dur = rng.range(spec.stall_min, spec.stall_max);
            plan.stall(at, m, dur);
        }

        if rng.chance(spec.partition_millionths) {
            let m = rng.below(spec.members as u64) as u32;
            let at = rng.range(lo, hi);
            let dur = rng.range(spec.partition_min, spec.partition_max);
            plan.partition(at, dur, vec![m]);
        }

        if rng.chance(spec.store_write_outage_millionths) {
            let at = rng.range(lo, hi);
            let dur = rng.range(spec.write_outage_min, spec.write_outage_max);
            plan.store_write_outage(at, dur);
        }

        plan
    }
}

/// Distribution a random fault schedule is drawn from. Times in virtual
/// nanos; probabilities in millionths.
#[derive(Debug, Clone)]
pub struct RandomFaultSpec {
    pub members: usize,
    /// Events are scheduled before this time.
    pub horizon: u64,
    /// No crash before this time (lets the first snapshots complete so a
    /// recovery point exists — the cold-restart path is tested separately).
    pub crash_floor: u64,
    pub max_crashes: usize,
    pub stall_millionths: u32,
    pub stall_min: u64,
    pub stall_max: u64,
    pub partition_millionths: u32,
    pub partition_min: u64,
    pub partition_max: u64,
    pub chaos_millionths: u32,
    pub chaos_drop_max_millionths: u32,
    pub chaos_delay_max: u64,
    pub store_write_outage_millionths: u32,
    pub write_outage_min: u64,
    pub write_outage_max: u64,
    /// Chance a crash is paired with a store read outage starting at the
    /// crash instant (recovery must retry with backoff until it lifts).
    pub recovery_read_outage_millionths: u32,
    pub read_outage_min: u64,
    pub read_outage_max: u64,
}

const MS: u64 = 1_000_000;

impl Default for RandomFaultSpec {
    fn default() -> Self {
        RandomFaultSpec {
            members: 3,
            horizon: 80 * MS,
            crash_floor: 25 * MS,
            max_crashes: 1,
            stall_millionths: 500_000,
            stall_min: MS,
            // Stall and partition can hit the same member back to back; their
            // combined dark window plus heartbeat delivery tail must stay
            // under the detector's default 10 ms fence grace so pure-delay
            // faults never fence (3 + 3 + ~2.5 ms of interval/latency/jitter).
            stall_max: 3 * MS,
            partition_millionths: 400_000,
            partition_min: MS,
            partition_max: 3 * MS,
            chaos_millionths: 700_000,
            chaos_drop_max_millionths: 200_000,
            chaos_delay_max: MS,
            store_write_outage_millionths: 300_000,
            write_outage_min: 5 * MS,
            write_outage_max: 15 * MS,
            recovery_read_outage_millionths: 300_000,
            read_outage_min: 10 * MS,
            read_outage_max: 20 * MS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_time_sorted() {
        let mut p = FaultPlan::new(1);
        p.crash(50, 0);
        p.stall(10, 1, 5);
        p.partition(30, 100, vec![2]);
        let times: Vec<u64> = p.events().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn windowed_helpers_expand_to_start_end_pairs() {
        let mut p = FaultPlan::new(0);
        p.chaos(100, 50, 1000, 200);
        p.store_write_outage(10, 5);
        assert_eq!(p.events().len(), 4);
        assert!(matches!(p.events()[0].kind, FaultKind::StoreWriteFailStart));
        assert_eq!(p.events()[1].at, 15);
        assert!(matches!(p.events()[3].kind, FaultKind::ChaosEnd));
        assert_eq!(p.events()[3].at, 150);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let spec = RandomFaultSpec::default();
        for seed in 0..50 {
            let a = FaultPlan::random(seed, &spec);
            let b = FaultPlan::random(seed, &spec);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert_eq!(a.digest(), b.digest());
        }
    }

    #[test]
    fn random_plans_differ_across_seeds() {
        let spec = RandomFaultSpec::default();
        let distinct: std::collections::HashSet<String> = (0..100)
            .map(|s| FaultPlan::random(s, &spec).digest())
            .collect();
        assert!(
            distinct.len() > 50,
            "only {} distinct plans",
            distinct.len()
        );
    }

    #[test]
    fn windowed_random_plans_start_inside_the_window() {
        let spec = RandomFaultSpec::default();
        let (lo, hi) = (40 * MS, 55 * MS);
        for seed in 0..200 {
            let p = FaultPlan::random_in_window(seed, &spec, lo, hi);
            for e in p.events() {
                let onset = match &e.kind {
                    // End events of windowed faults may land past `hi`.
                    FaultKind::PartitionEnd { .. }
                    | FaultKind::ChaosEnd
                    | FaultKind::StoreWriteFailEnd
                    | FaultKind::StoreReadFailEnd => continue,
                    _ => e.at,
                };
                assert!(
                    (lo..hi).contains(&onset),
                    "seed {seed}: onset {onset} outside [{lo},{hi})"
                );
            }
        }
    }

    #[test]
    fn windowed_random_plans_are_deterministic_per_seed() {
        let spec = RandomFaultSpec::default();
        for seed in 0..50 {
            let a = FaultPlan::random_in_window(seed, &spec, 10 * MS, 20 * MS);
            let b = FaultPlan::random_in_window(seed, &spec, 10 * MS, 20 * MS);
            assert_eq!(a, b, "seed {seed} not reproducible");
        }
    }

    #[test]
    fn random_crashes_respect_floor_and_count() {
        let spec = RandomFaultSpec {
            max_crashes: 1,
            ..RandomFaultSpec::default()
        };
        for seed in 0..200 {
            let p = FaultPlan::random(seed, &spec);
            let crashes: Vec<&FaultEvent> = p
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
                .collect();
            assert!(crashes.len() <= 1);
            for c in crashes {
                assert!(c.at >= spec.crash_floor, "seed {seed} crash too early");
                assert!(c.at < spec.horizon);
            }
        }
    }
}

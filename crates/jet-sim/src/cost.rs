//! The simulator's cost model: how much virtual CPU time a tasklet
//! timeslice consumes.
//!
//! A timeslice's cost is `call_cost + per_item * items_moved`, where
//! `items_moved` comes from the tasklet's counters (events consumed from
//! inboxes + events emitted by sources). Per-vertex overrides let the bench
//! calibrate heavier operators (windowed aggregation) against lighter ones
//! (map/filter); EXPERIMENTS.md records the calibration used for each
//! figure, anchored to the paper's observed ~2M events/s/core saturation
//! point for Q5 (§7.3).

use jet_core::metrics::TaskletCounters;
use jet_core::tasklet::Tasklet;
use jet_util::progress::Progress;
use std::sync::Arc;

/// Nanoseconds of virtual time per scheduling action.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed cost of invoking a tasklet (scheduling + cache effects).
    pub call_cost: u64,
    /// Default cost per item moved.
    pub per_item: u64,
    /// Cost per state record serialized into a snapshot (serialization +
    /// replicated IMap put). This is the dominant term behind the Fig. 13
    /// checkpoint latency spikes: windowed state is large. With chunked
    /// snapshots the records of one checkpoint spread across many quanta,
    /// so the per-quantum charge is bounded by the chunk size instead of
    /// the keyed-state size.
    pub snapshot_record_cost: u64,
    /// Fixed cost per snapshot *chunk* (one non-empty `save_snapshot`
    /// quantum): the store round-trip setup a chunked write pays each time
    /// it resumes — batch framing, map dispatch, replication enqueue.
    pub snapshot_chunk_cost: u64,
    /// Cost charged once per queue-hop batch (an inbox fill or a source
    /// outbox flush run) rather than per item: the atomic publish, cache-line
    /// transfer, and index bookkeeping a bulk drain amortizes over the whole
    /// run. The batched hot path increments `queue_batches` at most once per
    /// `events_in`/`events_out` increment, so splitting per-item cost into
    /// `per_item + queue_hop_cost` never charges more than the flat model
    /// and charges less the larger the batches get.
    pub queue_hop_cost: u64,
    /// Overrides matched by substring against the tasklet name.
    pub per_vertex: Vec<(String, u64)>,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so a 4-vertex Q5 pipeline saturates one virtual core
        // near 2M events/s (paper §7.3): the per-event cost summed over the
        // stages an event touches is ~500 ns.
        CostModel {
            call_cost: 150,
            per_item: 120,
            snapshot_record_cost: 250,
            snapshot_chunk_cost: 0,
            queue_hop_cost: 0,
            per_vertex: Vec::new(),
        }
    }
}

impl CostModel {
    /// Calibration used by the reproduction benches (EXPERIMENTS.md):
    /// summed over the stages a Q5 event touches this charges ~0.5 µs of
    /// core time per event, saturating a virtual core just above
    /// 1.75M events/s — the knee the paper reports in §7.3.
    /// 24 ns of each stage's former per-item charge is really per-*hop*
    /// overhead (atomic publish + cache-line transfer), so it moves to
    /// `queue_hop_cost` and is now charged once per batch. At batch size 1
    /// the totals match the previous calibration exactly; larger batches
    /// amortize it, which is where the batched hot path's simulated
    /// throughput gain comes from.
    pub fn paper_calibrated() -> Self {
        let mut m = CostModel::default();
        m.per_item -= 24;
        m.queue_hop_cost = 24;
        m.snapshot_chunk_cost = 400;
        m.with_vertex_cost("nexmark", 135 - 24) // source: build + emit
            .with_vertex_cost("window-accumulate", 250 - 24)
            .with_vertex_cost("window-combine", 200 - 24)
            .with_vertex_cost("window-single", 350 - 24)
            .with_vertex_cost("latency-sink", 100 - 24)
            .with_vertex_cost("sender", 60 - 24)
            .with_vertex_cost("receiver", 60 - 24)
    }

    pub fn with_vertex_cost(mut self, pattern: &str, per_item: u64) -> Self {
        self.per_vertex.push((pattern.to_string(), per_item));
        self
    }

    /// Per-item cost for a tasklet name.
    pub fn per_item_for(&self, name: &str) -> u64 {
        for (pat, cost) in &self.per_vertex {
            if name.contains(pat.as_str()) {
                return *cost;
            }
        }
        self.per_item
    }
}

/// A tasklet wrapped with cost accounting.
pub struct CostedTasklet {
    inner: Box<dyn Tasklet>,
    counters: Option<Arc<TaskletCounters>>,
    last_in: u64,
    last_out: u64,
    last_snap: u64,
    last_chunks: u64,
    last_batches: u64,
    call_cost: u64,
    per_item: u64,
    snapshot_record_cost: u64,
    snapshot_chunk_cost: u64,
    queue_hop_cost: u64,
    pub done: bool,
    /// Interned trace name id (0 when the simulator runs untraced).
    pub trace_name: u32,
}

impl CostedTasklet {
    pub fn new(
        inner: Box<dyn Tasklet>,
        counters: Option<Arc<TaskletCounters>>,
        model: &CostModel,
    ) -> Self {
        let per_item = model.per_item_for(inner.name());
        CostedTasklet {
            inner,
            counters,
            last_in: 0,
            last_out: 0,
            last_snap: 0,
            last_chunks: 0,
            last_batches: 0,
            call_cost: model.call_cost,
            per_item,
            snapshot_record_cost: model.snapshot_record_cost,
            snapshot_chunk_cost: model.snapshot_chunk_cost,
            queue_hop_cost: model.queue_hop_cost,
            done: false,
            trace_name: 0,
        }
    }

    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Tenant job of the wrapped tasklet (per-job scheduling quotas).
    pub fn job(&self) -> u32 {
        self.inner.job()
    }

    /// Current execution state of the wrapped tasklet (diagnostics).
    pub fn state(&self) -> &'static str {
        if self.done {
            "done"
        } else {
            self.inner.state()
        }
    }

    /// (events_in, events_out) observed so far (0,0 when uncounted).
    pub fn stats(&self) -> (u64, u64) {
        self.counters
            .as_ref()
            .map(|c| {
                let (i, o, _, _) = c.snapshot();
                (i, o)
            })
            .unwrap_or((0, 0))
    }

    /// Run one timeslice; returns (progress, virtual nanos consumed).
    pub fn run(&mut self) -> (Progress, u64) {
        if self.done {
            return (Progress::Done, 0);
        }
        let p = self.inner.call();
        if p == Progress::Done {
            self.done = true;
        }
        let mut items = 0u64;
        let mut snap_records = 0u64;
        let mut snap_chunks = 0u64;
        let mut batches = 0u64;
        if let Some(c) = &self.counters {
            let (i, o, _, _) = c.snapshot();
            // Charge the larger of the two deltas: a transform that consumed
            // n events and emitted n (events_out is now credited at the
            // outbox for every vertex, not just sources) moved n items, not
            // 2n. Sources are charged for what they emit, sinks for what
            // they consume — the calibration the paper figures rest on.
            items = (i - self.last_in).max(o - self.last_out);
            self.last_in = i;
            self.last_out = o;
            let sr = c.snapshot_records();
            snap_records = sr - self.last_snap;
            self.last_snap = sr;
            let sc = c.snapshot_chunks();
            snap_chunks = sc - self.last_chunks;
            self.last_chunks = sc;
            let qb = c.queue_batches();
            batches = qb - self.last_batches;
            self.last_batches = qb;
        }
        let cost = match p {
            Progress::NoProgress => self.call_cost / 4, // cheap poll
            _ => {
                self.call_cost
                    + items * self.per_item
                    + batches * self.queue_hop_cost
                    + snap_records * self.snapshot_record_cost
                    + snap_chunks * self.snapshot_chunk_cost
            }
        };
        (p, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u32);
    impl Tasklet for Fixed {
        fn call(&mut self) -> Progress {
            if self.0 == 0 {
                return Progress::Done;
            }
            self.0 -= 1;
            Progress::MadeProgress
        }
        fn name(&self) -> &str {
            "window-accumulate"
        }
    }

    #[test]
    fn per_vertex_override_matches_substring() {
        let m = CostModel::default().with_vertex_cost("window", 900);
        assert_eq!(m.per_item_for("window-accumulate"), 900);
        assert_eq!(m.per_item_for("map"), m.per_item);
    }

    #[test]
    fn costed_tasklet_charges_call_cost_and_terminates() {
        let m = CostModel {
            call_cost: 100,
            per_item: 10,
            snapshot_record_cost: 0,
            snapshot_chunk_cost: 0,
            queue_hop_cost: 0,
            per_vertex: vec![],
        };
        let mut t = CostedTasklet::new(Box::new(Fixed(2)), None, &m);
        let (p, c) = t.run();
        assert_eq!(p, Progress::MadeProgress);
        assert_eq!(c, 100);
        t.run();
        let (p, c) = t.run();
        assert_eq!(p, Progress::Done);
        assert!(t.done);
        assert_eq!(c, 100);
        let (p, c) = t.run();
        assert_eq!((p, c), (Progress::Done, 0));
    }

    #[test]
    fn item_costs_use_counters() {
        let m = CostModel {
            call_cost: 50,
            per_item: 7,
            snapshot_record_cost: 0,
            snapshot_chunk_cost: 0,
            queue_hop_cost: 0,
            per_vertex: vec![],
        };
        let counters = TaskletCounters::shared();
        struct Counting(Arc<TaskletCounters>);
        impl Tasklet for Counting {
            fn call(&mut self) -> Progress {
                self.0.add_in(3);
                self.0.add_out(2);
                Progress::MadeProgress
            }
            fn name(&self) -> &str {
                "counting"
            }
        }
        let mut t = CostedTasklet::new(Box::new(Counting(counters.clone())), Some(counters), &m);
        // 3 in, 2 out per call: the call moved max(3, 2) = 3 items.
        let (_, c) = t.run();
        assert_eq!(c, 50 + 3 * 7);
        let (_, c) = t.run();
        assert_eq!(c, 50 + 3 * 7, "delta accounting must reset");
    }

    #[test]
    fn queue_hop_cost_is_charged_per_batch_not_per_item() {
        let m = CostModel {
            call_cost: 50,
            per_item: 7,
            snapshot_record_cost: 0,
            snapshot_chunk_cost: 0,
            queue_hop_cost: 12,
            per_vertex: vec![],
        };
        let counters = TaskletCounters::shared();
        struct Batched(Arc<TaskletCounters>);
        impl Tasklet for Batched {
            fn call(&mut self) -> Progress {
                // One inbox fill moved 8 items this timeslice.
                self.0.add_in(8);
                self.0.add_queue_batches(1);
                Progress::MadeProgress
            }
            fn name(&self) -> &str {
                "batched"
            }
        }
        let mut t = CostedTasklet::new(Box::new(Batched(counters.clone())), Some(counters), &m);
        let (_, c) = t.run();
        assert_eq!(c, 50 + 8 * 7 + 12, "hop overhead amortized over the batch");
        let (_, c) = t.run();
        assert_eq!(c, 50 + 8 * 7 + 12, "batch delta accounting must reset");
    }

    #[test]
    fn paper_calibration_totals_match_flat_model_at_batch_size_one() {
        let m = CostModel::paper_calibrated();
        // per_item + queue_hop_cost must reproduce the former flat charges.
        assert_eq!(m.per_item + m.queue_hop_cost, 120);
        assert_eq!(
            m.per_item_for("window-accumulate#0") + m.queue_hop_cost,
            250
        );
        assert_eq!(m.per_item_for("nexmark#1") + m.queue_hop_cost, 135);
    }
}

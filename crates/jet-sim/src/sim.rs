//! The virtual-time executor: N virtual cores round-robining real tasklets,
//! with time advanced by a cost model instead of a wall clock.
//!
//! This is the substitution that reproduces the paper's cluster-scale
//! experiments on a 1-CPU container (DESIGN.md §2): queueing, backpressure,
//! barrier alignment, and scheduling delay all arise from the *same engine
//! code* the threaded executor runs — only the clock is virtual. The
//! simulation is time-stepped: every core receives a `quantum` of budget,
//! runs tasklets until the budget is spent or nothing makes progress, then
//! the global [`ManualClock`] advances by the quantum.

use crate::cost::{CostModel, CostedTasklet};
use crate::gc::GcModel;
use jet_core::fairness::{FairPoller, JobQuotas};
use jet_core::metrics::TaskletCounters;
use jet_core::tasklet::Tasklet;
use jet_core::trace::{TraceWriter, Tracer};
use jet_util::clock::{Clock, ManualClock};
use jet_util::progress::Progress;
use std::sync::Arc;

/// Index of a virtual core.
pub type CoreId = usize;

struct SimCore {
    /// Member id this core belongs to (fault injection targets members).
    pid: u32,
    tasklets: Vec<CostedTasklet>,
    rr: usize,
    /// Virtual nanos this core actually computed (utilization metric).
    busy_nanos: u64,
    /// Virtual nanos the core is stalled for (GC pause injection).
    stalled_until: u64,
    /// Work charged beyond the last quantum's budget: a tasklet timeslice is
    /// not preemptible, so its cost can overrun the quantum; the overrun is
    /// paid back before the core runs again (otherwise every quantum would
    /// hand out one free oversized timeslice and inflate core capacity).
    debt: u64,
    /// Execution-trace writer for this virtual core (no-op when untraced).
    trace: TraceWriter,
    /// Per-job fairness quotas (§7.7): when set, the round-robin becomes a
    /// weighted round-robin over job groups. `None` keeps the original
    /// tasklet-level loop bit-identically.
    fair: Option<FairPoller>,
}

impl SimCore {
    /// Run until `budget` is exhausted or a full round makes no progress.
    /// `now` is the quantum's virtual start time, used to stamp call spans.
    /// Returns nanos of budget consumed.
    fn run_quantum(&mut self, budget: u64, now: u64) -> u64 {
        if self.fair.is_some() {
            let mut poller = self.fair.take().expect("checked");
            let spent = self.run_quantum_fair(&mut poller, budget, now);
            self.fair = Some(poller);
            return spent;
        }
        if self.debt >= budget {
            self.debt -= budget;
            self.busy_nanos += budget;
            return budget;
        }
        let debt = std::mem::take(&mut self.debt);
        let budget = budget - debt;
        let mut spent = 0u64;
        let n = self.tasklets.len();
        if n == 0 {
            return 0;
        }
        let traced = self.trace.enabled();
        loop {
            let mut round_progress = false;
            for _ in 0..n {
                if self.tasklets.is_empty() {
                    return spent;
                }
                let idx = self.rr % self.tasklets.len();
                let (p, cost) = self.tasklets[idx].run();
                // Progressing timeslices become spans on the virtual
                // timeline; NoProgress polls are elided (they would drown
                // every ring in idle-spin noise).
                if traced && !matches!(p, Progress::NoProgress) {
                    let name = self.tasklets[idx].trace_name;
                    self.trace
                        .record_call(now + debt + spent, cost.max(1), name);
                }
                spent += cost;
                match p {
                    Progress::Done => {
                        self.tasklets.remove(idx);
                        round_progress = true;
                    }
                    Progress::MadeProgress => {
                        round_progress = true;
                        self.rr = idx + 1;
                    }
                    Progress::NoProgress => {
                        self.rr = idx + 1;
                    }
                }
                if spent >= budget {
                    self.debt = spent - budget;
                    self.busy_nanos += budget;
                    return spent;
                }
            }
            if !round_progress {
                // Core idles the rest of the quantum (paper: tasklets back
                // off; the idle strategy parks the real thread — here the
                // remaining budget simply evaporates).
                self.busy_nanos += spent;
                return spent;
            }
        }
    }

    /// The quota-scheduled variant of [`SimCore::run_quantum`]: identical
    /// budget/debt/busy accounting, but polling order comes from the
    /// weighted [`FairPoller`] and one "round" is a coverage round (every
    /// live tasklet polled at least once).
    fn run_quantum_fair(&mut self, poller: &mut FairPoller, budget: u64, now: u64) -> u64 {
        if self.debt >= budget {
            self.debt -= budget;
            self.busy_nanos += budget;
            return budget;
        }
        let debt = std::mem::take(&mut self.debt);
        let budget = budget - debt;
        let mut spent = 0u64;
        if self.tasklets.is_empty() {
            return 0;
        }
        let traced = self.trace.enabled();
        loop {
            let mut round_progress = false;
            let coverage = poller.coverage_polls();
            if coverage == 0 {
                // Every group drained: the core is done.
                self.busy_nanos += spent;
                return spent;
            }
            for _ in 0..coverage {
                let Some(idx) = poller.next() else {
                    return spent;
                };
                let (p, cost) = self.tasklets[idx].run();
                if traced && !matches!(p, Progress::NoProgress) {
                    let name = self.tasklets[idx].trace_name;
                    self.trace
                        .record_call(now + debt + spent, cost.max(1), name);
                }
                spent += cost;
                match p {
                    Progress::Done => {
                        self.tasklets.remove(idx);
                        poller.remove_index(idx);
                        round_progress = true;
                    }
                    Progress::MadeProgress => round_progress = true,
                    Progress::NoProgress => {}
                }
                if spent >= budget {
                    self.debt = spent - budget;
                    self.busy_nanos += budget;
                    return spent;
                }
            }
            if !round_progress {
                self.busy_nanos += spent;
                return spent;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.tasklets.is_empty()
    }
}

/// The virtual-time simulator.
pub struct Simulator {
    clock: Arc<ManualClock>,
    cores: Vec<SimCore>,
    model: CostModel,
    quantum: u64,
    gc: Option<GcModel>,
    tracer: Tracer,
}

impl Simulator {
    /// `quantum` is the time-step granularity in virtual nanos (20 µs is a
    /// good default: fine enough for millisecond latencies, coarse enough
    /// to simulate seconds of cluster time quickly).
    pub fn new(clock: Arc<ManualClock>, model: CostModel, quantum: u64) -> Self {
        assert!(quantum > 0);
        Simulator {
            clock,
            cores: Vec::new(),
            model,
            quantum,
            gc: None,
            tracer: Tracer::disabled(),
        }
    }

    pub fn with_gc(mut self, gc: GcModel) -> Self {
        self.gc = Some(gc);
        self
    }

    /// Install an execution tracer: cores added afterwards record their
    /// tasklets' timeslices as spans on the virtual timeline.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    pub fn add_core(&mut self) -> CoreId {
        let id = self.cores.len();
        self.add_core_labeled(0, &format!("core-{id}"))
    }

    /// Add a core with an explicit trace identity: `pid` groups cores by
    /// member in the timeline viewer, `label` names the track.
    pub fn add_core_labeled(&mut self, pid: u32, label: &str) -> CoreId {
        self.cores.push(SimCore {
            pid,
            tasklets: Vec::new(),
            rr: 0,
            busy_nanos: 0,
            stalled_until: 0,
            debt: 0,
            trace: self.tracer.writer(pid, label),
            fair: None,
        });
        self.cores.len() - 1
    }

    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Assign a tasklet to a core. Pass the tasklet's counters when
    /// available so the cost model can charge per item.
    pub fn assign(
        &mut self,
        core: CoreId,
        tasklet: Box<dyn Tasklet>,
        counters: Option<Arc<TaskletCounters>>,
    ) {
        let mut costed = CostedTasklet::new(tasklet, counters, &self.model);
        costed.trace_name = self.cores[core].trace.intern(costed.name());
        self.cores[core].tasklets.push(costed);
    }

    /// Install per-job fairness quotas (§7.7): every core's round-robin
    /// becomes a weighted round-robin over the job groups of its currently
    /// assigned tasklets. Call after all tasklets are assigned — tasklets
    /// assigned later are not scheduled until quotas are re-installed.
    pub fn set_job_quotas(&mut self, quotas: &JobQuotas) {
        for core in &mut self.cores {
            let jobs: Vec<u32> = core.tasklets.iter().map(|t| t.job()).collect();
            core.fair = Some(FairPoller::new(&jobs, quotas));
        }
    }

    /// Live tasklets across all cores.
    pub fn live_tasklets(&self) -> usize {
        self.cores.iter().map(|c| c.tasklets.len()).sum()
    }

    /// Busy virtual nanos per core (utilization).
    pub fn busy_nanos(&self) -> Vec<u64> {
        self.cores.iter().map(|c| c.busy_nanos).collect()
    }

    /// Per-tasklet (core, name, events_in, events_out) diagnostics.
    pub fn tasklet_stats(&self) -> Vec<(usize, String, u64, u64)> {
        let mut out = Vec::new();
        for (ci, core) in self.cores.iter().enumerate() {
            for t in &core.tasklets {
                let (i, o) = t.stats();
                out.push((ci, t.name().to_string(), i, o));
            }
        }
        out
    }

    /// Per-tasklet (core, name, state, events_in, events_out) — the richer
    /// variant behind the diagnostics dump. Finished tasklets have already
    /// left their core and are not listed.
    pub fn tasklet_details(&self) -> Vec<(usize, String, &'static str, u64, u64)> {
        let mut out = Vec::new();
        for (ci, core) in self.cores.iter().enumerate() {
            for t in &core.tasklets {
                let (i, o) = t.stats();
                out.push((ci, t.name().to_string(), t.state(), i, o));
            }
        }
        out
    }

    pub fn now(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Advance the simulation by `duration` virtual nanos. `on_tick(now)`
    /// runs once per quantum — the hook for snapshot triggers, failure
    /// injection, and rate changes. Returns true when every tasklet
    /// finished before the duration elapsed.
    pub fn run_for(&mut self, duration: u64, mut on_tick: impl FnMut(u64)) -> bool {
        self.run_for_ctl(duration, |tick| {
            on_tick(tick.now);
            true
        })
    }

    /// As [`Self::run_for`], but the hook receives a [`SimTick`] control
    /// handle (member stall/halt injection) and may return `false` to break
    /// out before the duration elapses — used by the cluster runtime when a
    /// failure-detector decision requires rebuilding the execution, which
    /// cannot happen from inside the tick closure.
    pub fn run_for_ctl(
        &mut self,
        duration: u64,
        mut on_tick: impl FnMut(&mut SimTick) -> bool,
    ) -> bool {
        let end = self.clock.now_nanos() + duration;
        while self.clock.now_nanos() < end {
            let now = self.clock.now_nanos();
            let mut tick = SimTick {
                now,
                cores: &mut self.cores,
            };
            if !on_tick(&mut tick) {
                return self.cores.iter().all(|c| c.is_done());
            }
            if let Some(gc) = &mut self.gc {
                gc.apply(
                    now,
                    &mut self.cores.iter_mut().map(|c| &mut c.stalled_until),
                );
            }
            for core in &mut self.cores {
                if core.stalled_until > now {
                    continue; // GC pause: whole quantum lost
                }
                core.run_quantum(self.quantum, now);
            }
            self.clock.advance(self.quantum);
            if self.cores.iter().all(|c| c.is_done()) {
                return true;
            }
        }
        self.cores.iter().all(|c| c.is_done())
    }

    /// Run until all tasklets complete or `max_duration` virtual nanos pass.
    pub fn run_until_done(&mut self, max_duration: u64) -> bool {
        self.run_for(max_duration, |_| {})
    }
}

/// Per-quantum control handle handed to [`Simulator::run_for_ctl`] hooks:
/// inspect the current virtual time and inject member-level stalls/halts.
pub struct SimTick<'a> {
    /// Virtual time of this quantum's start.
    pub now: u64,
    cores: &'a mut Vec<SimCore>,
}

impl SimTick<'_> {
    /// Freeze all cores of member `pid` until virtual time `until`
    /// (straggler injection). Extends, never shortens, existing stalls.
    pub fn stall_member(&mut self, pid: u32, until: u64) {
        for c in self.cores.iter_mut().filter(|c| c.pid == pid) {
            c.stalled_until = c.stalled_until.max(until);
        }
    }

    /// Permanently halt member `pid` (crash). Its tasklets are kept — a
    /// crashed member must not count as "finished" — but never run again;
    /// only rebuilding the execution removes them.
    pub fn halt_member(&mut self, pid: u32) {
        self.stall_member(pid, u64::MAX);
    }

    /// Is any core of member `pid` currently stalled past `now`?
    pub fn member_stalled(&self, pid: u32) -> bool {
        self.cores
            .iter()
            .any(|c| c.pid == pid && c.stalled_until > self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Emitter {
        remaining: u32,
    }
    impl Tasklet for Emitter {
        fn call(&mut self) -> Progress {
            if self.remaining == 0 {
                return Progress::Done;
            }
            self.remaining -= 1;
            Progress::MadeProgress
        }
        fn name(&self) -> &str {
            "emitter"
        }
    }

    fn sim(quantum: u64) -> Simulator {
        let clock = Arc::new(ManualClock::new());
        Simulator::new(
            clock,
            CostModel {
                call_cost: 100,
                per_item: 0,
                snapshot_record_cost: 0,
                snapshot_chunk_cost: 0,
                queue_hop_cost: 0,
                per_vertex: vec![],
            },
            quantum,
        )
    }

    #[test]
    fn time_advances_by_quanta() {
        let mut s = sim(1_000);
        let c = s.add_core();
        s.assign(
            c,
            Box::new(Emitter {
                remaining: 1_000_000,
            }),
            None,
        );
        assert!(!s.run_for(10_000, |_| {}));
        assert_eq!(s.now(), 10_000);
    }

    #[test]
    fn completion_is_detected() {
        let mut s = sim(1_000);
        let c = s.add_core();
        s.assign(c, Box::new(Emitter { remaining: 5 }), None);
        assert!(s.run_until_done(1_000_000));
        assert_eq!(s.live_tasklets(), 0);
        assert!(s.now() < 1_000_000);
    }

    #[test]
    fn budget_bounds_work_per_quantum() {
        // call cost 100, quantum 1000 -> at most ~10 calls per quantum.
        let mut s = sim(1_000);
        let c = s.add_core();
        s.assign(c, Box::new(Emitter { remaining: 100 }), None);
        s.run_for(1_000, |_| {});
        // 100 calls would need 10 quanta; after 1 quantum the tasklet lives.
        assert_eq!(s.live_tasklets(), 1);
        assert!(s.run_until_done(100_000));
    }

    #[test]
    fn on_tick_fires_every_quantum() {
        let mut s = sim(500);
        let c = s.add_core();
        s.assign(
            c,
            Box::new(Emitter {
                remaining: u32::MAX,
            }),
            None,
        );
        let mut ticks = 0;
        s.run_for(5_000, |_| ticks += 1);
        assert_eq!(ticks, 10);
    }

    #[test]
    fn traced_simulation_records_spans_on_the_virtual_timeline() {
        use jet_core::trace::TraceKind;
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::enabled();
        let mut s = Simulator::new(
            clock,
            CostModel {
                call_cost: 100,
                per_item: 0,
                snapshot_record_cost: 0,
                snapshot_chunk_cost: 0,
                queue_hop_cost: 0,
                per_vertex: vec![],
            },
            1_000,
        )
        .with_tracer(tracer.clone());
        let c = s.add_core_labeled(3, "m3/core-0");
        s.assign(c, Box::new(Emitter { remaining: 25 }), None);
        assert!(s.run_until_done(1_000_000));
        let data = tracer.drain();
        let calls: Vec<_> = data.of_kind(TraceKind::Call).collect();
        // 25 progressing timeslices + the final Done timeslice.
        assert_eq!(calls.len(), 26);
        // Spans sit on the virtual timeline: back to back at the call cost,
        // crossing quantum boundaries seamlessly (10 calls per 1µs quantum).
        for (i, e) in calls.iter().enumerate() {
            assert_eq!(e.rec.ts, i as u64 * 100, "call {i} misplaced");
            assert_eq!(e.rec.dur, 100);
        }
        assert_eq!(data.name(calls[0].rec.name), "emitter");
        assert_eq!(data.tracks[0].pid, 3);
        assert_eq!(data.tracks[0].label, "m3/core-0");
    }

    #[test]
    fn stalled_member_freezes_and_resumes() {
        let mut s = sim(1_000);
        let c = s.add_core_labeled(7, "m7/core-0");
        s.assign(
            c,
            Box::new(Emitter {
                remaining: u32::MAX,
            }),
            None,
        );
        // Stall member 7 for the first half of the run.
        s.run_for_ctl(10_000, |tick| {
            if tick.now == 0 {
                tick.stall_member(7, 5_000);
            }
            true
        });
        let busy = s.busy_nanos()[0];
        assert!(busy <= 5_000, "stalled member ran: busy={busy}");
        assert!(busy >= 4_000, "member never resumed: busy={busy}");
    }

    #[test]
    fn halted_member_never_finishes() {
        let mut s = sim(1_000);
        let c = s.add_core_labeled(2, "m2/core-0");
        s.assign(c, Box::new(Emitter { remaining: 1 }), None);
        let done = s.run_for_ctl(20_000, |tick| {
            if tick.now == 0 {
                tick.halt_member(2);
            }
            assert!(tick.member_stalled(2));
            true
        });
        assert!(!done, "halted member reported completion");
        assert_eq!(s.live_tasklets(), 1, "halted tasklets must be kept");
    }

    #[test]
    fn ctl_hook_can_break_early() {
        let mut s = sim(1_000);
        let c = s.add_core();
        s.assign(
            c,
            Box::new(Emitter {
                remaining: u32::MAX,
            }),
            None,
        );
        s.run_for_ctl(100_000, |tick| tick.now < 5_000);
        assert_eq!(s.now(), 5_000, "break leaves the clock at the break tick");
    }

    #[test]
    fn job_quotas_split_a_core_by_weight_not_tasklet_count() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Counting {
            job: u32,
            calls: Arc<AtomicU64>,
        }
        impl Tasklet for Counting {
            fn call(&mut self) -> Progress {
                self.calls.fetch_add(1, Ordering::Relaxed);
                Progress::MadeProgress
            }
            fn name(&self) -> &str {
                "counting"
            }
            fn job(&self) -> u32 {
                self.job
            }
        }
        let mut s = sim(1_000);
        let c = s.add_core();
        let critical = Arc::new(AtomicU64::new(0));
        let noisy = Arc::new(AtomicU64::new(0));
        s.assign(
            c,
            Box::new(Counting {
                job: 1,
                calls: critical.clone(),
            }),
            None,
        );
        for _ in 0..9 {
            s.assign(
                c,
                Box::new(Counting {
                    job: 2,
                    calls: noisy.clone(),
                }),
                None,
            );
        }
        s.set_job_quotas(&JobQuotas::new().with_weight(1, 9));
        s.run_for(100_000, |_| {});
        let crit = critical.load(Ordering::Relaxed);
        let rest = noisy.load(Ordering::Relaxed);
        // Cycle = 9 job-1 turns + 1 job-2 turn: the critical tenant holds
        // 90% of the core despite owning 10% of the tasklets.
        assert!(
            crit >= rest * 8 && crit <= rest * 10,
            "critical={crit} noisy={rest}"
        );
    }

    #[test]
    fn quota_scheduled_cores_still_finish_and_pay_debt() {
        let mut s = sim(1_000);
        let c = s.add_core();
        s.assign(c, Box::new(Emitter { remaining: 50 }), None);
        s.assign(c, Box::new(Emitter { remaining: 5 }), None);
        s.set_job_quotas(&JobQuotas::new());
        assert!(s.run_until_done(1_000_000));
        assert_eq!(s.live_tasklets(), 0);
    }

    #[test]
    fn idle_cores_skip_their_budget() {
        struct Idle;
        impl Tasklet for Idle {
            fn call(&mut self) -> Progress {
                Progress::NoProgress
            }
            fn name(&self) -> &str {
                "idle"
            }
        }
        let mut s = sim(1_000);
        let c = s.add_core();
        s.assign(c, Box::new(Idle), None);
        s.run_for(100_000, |_| {});
        // An idle tasklet costs one cheap poll per quantum.
        assert!(
            s.busy_nanos()[0] < 5_000,
            "idle core burned {}",
            s.busy_nanos()[0]
        );
    }
}

//! Pipeline API tests: fluent construction, fusion, windowing, joins,
//! fan-out — each compiled and executed on the deterministic driver.

use jet_core::exec::run_sequential;
use jet_core::metrics::SharedCounter;
use jet_core::plan::{build_local, LocalConfig};
use jet_core::processors::agg::{averaging, counting, summing};
use jet_core::snapshot::SnapshotRegistry;
use jet_core::Ts;
use jet_pipeline::{Pipeline, WindowDef, WindowResult};
use parking_lot::Mutex;
use std::sync::Arc;

/// Timestamped sink output, shared with the collecting stage.
type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

fn run(p: &Pipeline, lp: usize) {
    let dag = p.compile(lp).unwrap();
    let registry = Arc::new(SnapshotRegistry::disabled());
    let exec = build_local(&dag, &LocalConfig::new(lp), &registry, None).unwrap();
    let mut tasklets = exec.tasklets;
    assert!(
        run_sequential(&mut tasklets, 2_000_000),
        "pipeline did not complete"
    );
}

#[test]
fn map_filter_chain_is_fused_into_one_vertex() {
    let p = Pipeline::create();
    let out = Arc::new(Mutex::new(Vec::new()));
    p.read_from_vec("src", (0..100u64).map(|i| (i as Ts, i)).collect::<Vec<_>>())
        .as_stream()
        .map(|v| v + 1)
        .filter(|v| v.is_multiple_of(2))
        .map(|v| v * 10)
        .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();
    // source + 1 fused transform + sink = 3 vertices.
    assert_eq!(dag.vertices().len(), 3, "fusion failed: {dag:?}");
    run(&p, 2);
    let mut vals: Vec<u64> = out.lock().iter().map(|(_, v)| *v).collect();
    vals.sort_unstable();
    let mut expected: Vec<u64> = (0..100u64)
        .map(|i| i + 1)
        .filter(|v| v.is_multiple_of(2))
        .map(|v| v * 10)
        .collect();
    expected.sort_unstable();
    assert_eq!(vals, expected);
}

#[test]
fn fan_out_sends_every_event_to_both_sinks() {
    let p = Pipeline::create();
    let c1 = SharedCounter::new();
    let c2 = SharedCounter::new();
    let src = p
        .read_from_vec("src", (0..50u64).map(|i| (i as Ts, i)).collect::<Vec<_>>())
        .as_stream();
    src.write_to_count(c1.clone());
    src.map(|v| v * 2).write_to_count(c2.clone());
    run(&p, 2);
    assert_eq!(c1.get(), 50);
    assert_eq!(c2.get(), 50);
}

#[test]
fn windowed_aggregate_two_stage_counts() {
    let p = Pipeline::create();
    let out: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
    // 10 keys, one event per key per tick, 100 ticks.
    let events: Vec<(Ts, (u64, u64))> = (0..1000u64)
        .map(|i| ((i / 10) as Ts, (i % 10, i)))
        .collect();
    p.read_from_vec("src", events)
        .as_stream()
        .grouping_key(|(k, _)| *k)
        .window(WindowDef::tumbling(50))
        .aggregate(counting::<(u64, u64)>())
        .write_to_collect(out.clone());
    run(&p, 2);
    let results = out.lock();
    // 100 ticks of event time / 50 per window = 2 windows x 10 keys.
    assert_eq!(results.len(), 20);
    for (_, r) in results.iter() {
        assert_eq!(r.value, 50, "key {} window {} wrong count", r.key, r.end);
    }
}

#[test]
fn windowed_sum_and_average() {
    let p = Pipeline::create();
    let sums: Collected<WindowResult<u64, i64>> = Arc::new(Mutex::new(Vec::new()));
    let avgs: Collected<WindowResult<u64, f64>> = Arc::new(Mutex::new(Vec::new()));
    let events: Vec<(Ts, (u64, i64))> = (0..100i64).map(|i| (i, (0u64, i))).collect();
    let src = p.read_from_vec("src", events).as_stream();
    src.grouping_key(|(k, _)| *k)
        .window(WindowDef::tumbling(100))
        .aggregate(summing::<(u64, i64)>(|(_, v)| *v))
        .write_to_collect(sums.clone());
    src.grouping_key(|(k, _)| *k)
        .window(WindowDef::tumbling(100))
        .aggregate(averaging::<(u64, i64)>(|(_, v)| *v))
        .write_to_collect(avgs.clone());
    run(&p, 2);
    let sums = sums.lock();
    assert_eq!(sums.len(), 1);
    assert_eq!(sums[0].1.value, (0..100i64).sum::<i64>());
    let avgs = avgs.lock();
    assert_eq!(avgs.len(), 1);
    assert!((avgs[0].1.value - 49.5).abs() < 1e-9);
}

#[test]
fn single_stage_equals_two_stage() {
    let events: Vec<(Ts, (u64, u64))> = (0..500u64)
        .map(|i| ((i * 3 % 300) as Ts, (i % 7, i)))
        .collect();
    let collect = |single: bool| {
        let p = Pipeline::create();
        let out: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
        let keyed = p
            .read_from_vec("src", events.clone())
            .as_stream()
            .grouping_key(|(k, _): &(u64, u64)| *k)
            .window(WindowDef::sliding(100, 25));
        let stage = if single {
            keyed.aggregate_single_stage(counting::<(u64, u64)>())
        } else {
            keyed.aggregate(counting::<(u64, u64)>())
        };
        stage.write_to_collect(out.clone());
        run(&p, 2);
        let mut v: Vec<(u64, Ts, u64)> = out
            .lock()
            .iter()
            .map(|(_, r)| (r.key, r.end, r.value))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(collect(true), collect(false));
}

#[test]
fn hash_join_enriches_stream() {
    let p = Pipeline::create();
    let out: Collected<(u64, String)> = Arc::new(Mutex::new(Vec::new()));
    let build = p.read_from_vec(
        "dim",
        (0..5u64)
            .map(|k| (0, (k, format!("name{k}"))))
            .collect::<Vec<_>>(),
    );
    p.read_from_vec(
        "orders",
        (0..20u64).map(|i| (i as Ts, i)).collect::<Vec<_>>(),
    )
    .as_stream()
    .hash_join(
        &build,
        |(k, _)| *k,
        |order| order % 5,
        |order, matches| {
            matches
                .iter()
                .map(|(_, name)| (*order, name.clone()))
                .collect()
        },
    )
    .write_to_collect(out.clone());
    run(&p, 2);
    let results = out.lock();
    assert_eq!(results.len(), 20);
    for (_, (order, name)) in results.iter() {
        assert_eq!(*name, format!("name{}", order % 5));
    }
}

#[test]
fn windowed_cogroup_joins_two_streams() {
    let p = Pipeline::create();
    type CoGroupResult = WindowResult<u64, (Vec<(u64, u64)>, Vec<(u64, String)>)>;
    let out: Collected<CoGroupResult> = Arc::new(Mutex::new(Vec::new()));
    // Left: (key, val) at ts = val; right: (key, label).
    let left: Vec<(Ts, (u64, u64))> = (0..40u64).map(|i| (i as Ts, (i % 4, i))).collect();
    let right: Vec<(Ts, (u64, String))> = (0..8u64)
        .map(|i| (i as Ts * 5, (i % 4, format!("r{i}"))))
        .collect();
    let lstage = p.read_from_vec("left", left).as_stream();
    let rstage = p.read_from_vec("right", right).as_stream();
    lstage
        .grouping_key(|(k, _): &(u64, u64)| *k)
        .window(WindowDef::tumbling(40))
        .cogroup(rstage.grouping_key(|(k, _): &(u64, String)| *k))
        .write_to_collect(out.clone());
    run(&p, 2);
    let results = out.lock();
    assert_eq!(results.len(), 4, "one window result per key");
    for (_, r) in results.iter() {
        let (ls, rs) = &r.value;
        assert_eq!(ls.len(), 10, "key {} left side", r.key);
        assert_eq!(rs.len(), 2, "key {} right side", r.key);
        assert!(ls.iter().all(|(k, _)| *k == r.key));
        assert!(rs.iter().all(|(k, _)| *k == r.key));
    }
}

#[test]
fn map_stateful_threads_state_per_key() {
    let p = Pipeline::create();
    let out: Collected<(u64, u64)> = Arc::new(Mutex::new(Vec::new()));
    // Running count per key.
    p.read_from_vec(
        "src",
        (0..60u64).map(|i| (i as Ts, i % 3)).collect::<Vec<_>>(),
    )
    .as_stream()
    .map_stateful(
        |k| *k,
        || 0u64,
        |count, k| {
            *count += 1;
            Some((*k, *count))
        },
    )
    .write_to_collect(out.clone());
    run(&p, 2);
    let results = out.lock();
    assert_eq!(results.len(), 60);
    // Highest running count per key must be 20.
    let mut max_per_key = std::collections::HashMap::new();
    for (_, (k, c)) in results.iter() {
        let e = max_per_key.entry(*k).or_insert(0u64);
        *e = (*e).max(*c);
    }
    for k in 0..3u64 {
        assert_eq!(max_per_key[&k], 20);
    }
}

#[test]
fn compile_rejects_nothing_but_is_deterministic() {
    let p = Pipeline::create();
    let c = SharedCounter::new();
    p.read_from_vec("src", vec![(0, 1u64)])
        .as_stream()
        .write_to_count(c.clone());
    let d1 = p.compile(2).unwrap();
    let d2 = p.compile(2).unwrap();
    assert_eq!(d1.vertices().len(), d2.vertices().len());
    assert_eq!(d1.edges().len(), d2.edges().len());
}

#[test]
fn tenant_job_prefix_propagates_to_downstream_vertices() {
    // A `job<N>-` source tag must reach every derived vertex so per-job
    // scheduling quotas (jet-core::fairness) cover the whole tenant
    // pipeline, not just its source.
    let p = Pipeline::create();
    let out: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
    let events: Vec<(Ts, u64)> = (0..100u64).map(|i| (i as Ts, i)).collect();
    p.read_from_vec("job7-src", events)
        .as_stream()
        .map(|v| v + 1)
        .grouping_key(|v| v % 4)
        .window(WindowDef::tumbling(50))
        .aggregate(counting::<u64>())
        .write_to_collect(out.clone());
    let dag = p.compile(2).unwrap();
    for v in dag.vertices() {
        assert_eq!(
            jet_core::fairness::job_of_vertex(&v.name),
            7,
            "vertex {} lost the tenant tag",
            v.name
        );
    }
    run(&p, 2);
    assert!(!out.lock().is_empty());
}

#[test]
fn untagged_pipelines_keep_their_plain_vertex_names() {
    let p = Pipeline::create();
    let c = SharedCounter::new();
    p.read_from_vec("src", vec![(0, 1u64)])
        .as_stream()
        .map(|v| v * 2)
        .write_to_count(c.clone());
    let dag = p.compile(2).unwrap();
    for v in dag.vertices() {
        assert!(
            !v.name.starts_with("job"),
            "spurious tenant tag on {}",
            v.name
        );
        assert_eq!(jet_core::fairness::job_of_vertex(&v.name), 0);
    }
}

//! The typed, fluent Pipeline API (paper §2.1, Listings 1–2).
//!
//! Mirrors Jet's `Pipeline`: `read_from` produces a typed stage; `map` /
//! `filter` / `flat_map` chain transforms (fused at compile time);
//! `grouping_key` + `window` + `aggregate` build the two-stage distributed
//! windowed aggregation; `hash_join` joins a stream against a batch build
//! side; `write_to_*` attach sinks. `compile` hands back a Core-API DAG.

use crate::graph::{EdgeSpec, NodeFactory, PInput, PNodeKind, PipelineGraph};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::processors::agg::{AggregateOp, CoGrouped};
use jet_core::processors::join::HashJoinP;
use jet_core::processors::sink::{
    CollectSink, CountSink, IMapSink, IdempotentSink, LatencySink, TransactionalSink,
};
use jet_core::processors::source::{GeneratorSource, VecSource, WatermarkPolicy};
use jet_core::processors::transform::{filter_stage, flat_map_stage, map_stage, StatefulMapP};
use jet_core::processors::window::{
    AccumulateFrameP, CombineFramesP, FrameChunk, SlidingWindowP, WindowDef, WindowKey,
    WindowResult,
};
use jet_core::snapshot::SnapshotRegistry;
use jet_core::state::Snap;
use jet_core::supplier;
use jet_core::{Dag, Ts};
use parking_lot::Mutex;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::sync::Arc;

/// A pipeline under construction. Cheap to clone (shared graph).
#[derive(Clone, Default)]
pub struct Pipeline {
    graph: Arc<Mutex<PipelineGraph>>,
}

/// Marker for events of a payload type `T` flowing through a stage.
pub struct StreamStage<T> {
    pipeline: Pipeline,
    node: usize,
    _t: PhantomData<fn() -> T>,
}

/// A finite stage (Listing 2's "build side").
pub struct BatchStage<T> {
    pipeline: Pipeline,
    node: usize,
    _t: PhantomData<fn() -> T>,
}

/// A stage with a grouping key attached.
pub struct KeyedStage<K, T> {
    pipeline: Pipeline,
    node: usize,
    key_fn: Arc<dyn Fn(&T) -> K + Send + Sync>,
    _t: PhantomData<fn() -> (K, T)>,
}

/// A keyed stage with a window definition attached.
pub struct WindowedStage<K, T> {
    keyed: KeyedStage<K, T>,
    wdef: WindowDef,
}

impl Pipeline {
    pub fn create() -> Pipeline {
        Pipeline::default()
    }

    fn add<T>(
        &self,
        name: String,
        kind: PNodeKind,
        inputs: Vec<PInput>,
        source: bool,
    ) -> StreamStage<T> {
        let node = self.graph.lock().add_node(name, kind, inputs, source);
        StreamStage {
            pipeline: self.clone(),
            node,
            _t: PhantomData,
        }
    }

    /// A rate-controlled generator source: `factory(seq, ts)` builds event
    /// `seq` whose occurrence time is `ts` (engine-clock nanos).
    pub fn read_from_generator<T, F>(&self, name: &str, rate: u64, factory: F) -> StreamStage<T>
    where
        T: Send + Clone + Debug + 'static,
        F: Fn(u64, Ts) -> T + Send + Sync + 'static,
    {
        self.read_from_generator_cfg(name, rate, None, WatermarkPolicy::default(), factory)
    }

    /// Generator with an event limit and explicit watermark policy.
    pub fn read_from_generator_cfg<T, F>(
        &self,
        name: &str,
        rate: u64,
        limit: Option<u64>,
        policy: WatermarkPolicy,
        factory: F,
    ) -> StreamStage<T>
    where
        T: Send + Clone + Debug + 'static,
        F: Fn(u64, Ts) -> T + Send + Sync + 'static,
    {
        let factory = Arc::new(factory);
        let make: NodeFactory = Arc::new(move |_lp| {
            let factory = factory.clone();
            let policy = policy.clone();
            supplier(move |_| {
                let f = factory.clone();
                let mut src = GeneratorSource::new(
                    rate,
                    Arc::new(move |seq, ts| jet_core::boxed(f(seq, ts))),
                )
                .with_policy(policy.clone());
                if let Some(l) = limit {
                    src = src.with_limit(l);
                }
                Box::new(src)
            })
        });
        self.add(name.to_string(), PNodeKind::Opaque(make), vec![], true)
    }

    /// A finite in-memory source of `(ts, item)` pairs.
    pub fn read_from_vec<T>(&self, name: &str, items: Vec<(Ts, T)>) -> BatchStage<T>
    where
        T: Send + Sync + Clone + Debug + 'static,
    {
        let items = Arc::new(items);
        let make: NodeFactory = Arc::new(move |_lp| {
            let items = items.clone();
            supplier(move |_i| Box::new(VecSource::new(items.clone())))
        });
        let stage: StreamStage<T> =
            self.add(name.to_string(), PNodeKind::Opaque(make), vec![], true);
        BatchStage {
            pipeline: stage.pipeline,
            node: stage.node,
            _t: PhantomData,
        }
    }

    /// Attach a raw custom vertex (escape hatch to the Core API).
    pub fn read_from_custom<T>(&self, name: &str, make: NodeFactory) -> StreamStage<T> {
        self.add(name.to_string(), PNodeKind::Opaque(make), vec![], true)
    }

    /// Compile into a Core DAG (§2.1: "pipelines are actually translated to
    /// parallel, distributed DAGs of operators at the Core API").
    pub fn compile(&self, default_lp: usize) -> Result<Dag, String> {
        self.graph.lock().compile(default_lp)
    }
}

impl<T: Send + Clone + Debug + 'static> StreamStage<T> {
    fn add_transform<U>(
        &self,
        name: &str,
        stage: jet_core::processors::transform::Stage,
    ) -> StreamStage<U> {
        self.pipeline.add(
            name.to_string(),
            PNodeKind::Transform(stage),
            vec![PInput {
                from: self.node,
                spec: EdgeSpec::Forward,
            }],
            false,
        )
    }

    /// Pin the parallelism of the stage added last.
    pub fn local_parallelism(self, lp: usize) -> Self {
        self.pipeline.graph.lock().nodes[self.node].local_parallelism = Some(lp.max(1));
        self
    }

    pub fn map<U, F>(&self, f: F) -> StreamStage<U>
    where
        U: Send + Clone + Debug + 'static,
        F: Fn(&T) -> U + Send + Sync + 'static,
    {
        self.add_transform("map", map_stage(f))
    }

    pub fn filter<F>(&self, f: F) -> StreamStage<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        self.add_transform("filter", filter_stage(f))
    }

    pub fn flat_map<U, It, F>(&self, f: F) -> StreamStage<U>
    where
        U: Send + Clone + Debug + 'static,
        It: IntoIterator<Item = U>,
        F: Fn(&T) -> It + Send + Sync + 'static,
    {
        self.add_transform("flat-map", flat_map_stage(f))
    }

    /// Merge this stream with another of the same type (order across the
    /// two inputs is arbitrary, as in Jet's `merge`).
    pub fn merge(&self, other: &StreamStage<T>) -> StreamStage<T> {
        let make: NodeFactory = Arc::new(move |_lp| {
            supplier(move |_| {
                Box::new(jet_core::processors::TransformP::new(vec![map_stage(
                    |t: &T| t.clone(),
                )]))
            })
        });
        self.pipeline.add(
            "merge".to_string(),
            PNodeKind::Opaque(make),
            vec![
                PInput {
                    from: self.node,
                    spec: EdgeSpec::Forward,
                },
                PInput {
                    from: other.node,
                    spec: EdgeSpec::Forward,
                },
            ],
            false,
        )
    }

    /// Attach a grouping key — subsequent windowed aggregation partitions by
    /// it (§4.1: state partitioned by record key).
    pub fn grouping_key<K, F>(&self, key_fn: F) -> KeyedStage<K, T>
    where
        K: WindowKey,
        F: Fn(&T) -> K + Send + Sync + 'static,
    {
        KeyedStage {
            pipeline: self.pipeline.clone(),
            node: self.node,
            key_fn: Arc::new(key_fn),
            _t: PhantomData,
        }
    }

    /// Keyed stateful map (per-key state machine; §6 "Stateful AI").
    pub fn map_stateful<K, S, O>(
        &self,
        key_fn: impl Fn(&T) -> K + Send + Sync + 'static,
        create: impl Fn() -> S + Send + Sync + 'static,
        step: impl Fn(&mut S, &T) -> Option<O> + Send + Sync + 'static,
    ) -> StreamStage<O>
    where
        K: WindowKey,
        S: Snap + Send + 'static,
        O: Send + Clone + Debug + 'static,
    {
        let key_for_edge = Arc::new(key_fn);
        let key_for_proc = key_for_edge.clone();
        let create = Arc::new(create);
        let step = Arc::new(step);
        let make: NodeFactory = Arc::new(move |_lp| {
            let key_fn = key_for_proc.clone();
            let create = create.clone();
            let step = step.clone();
            supplier(move |_| {
                let key_fn = key_fn.clone();
                let create = create.clone();
                let step = step.clone();
                Box::new(StatefulMapP::new(
                    move |t: &T| key_fn(t),
                    move || create(),
                    move |s: &mut S, t: &T| step(s, t),
                ))
            })
        });
        let key_hash = Arc::new(move |obj: &dyn jet_core::Object| {
            jet_util::seq::hash_of(&key_for_edge(jet_core::downcast_ref::<T>(obj)))
        });
        self.pipeline.add(
            "map-stateful".to_string(),
            PNodeKind::Opaque(make),
            vec![PInput {
                from: self.node,
                spec: EdgeSpec::Partitioned(key_hash),
            }],
            false,
        )
    }

    /// Hash-join this stream against a batch build side (Listing 2).
    pub fn hash_join<K, B, R>(
        &self,
        build: &BatchStage<B>,
        build_key: impl Fn(&B) -> K + Send + Sync + 'static,
        probe_key: impl Fn(&T) -> K + Send + Sync + 'static,
        join_fn: impl Fn(&T, &[B]) -> Vec<R> + Send + Sync + 'static,
    ) -> StreamStage<R>
    where
        K: Eq + std::hash::Hash + Clone + Send + 'static,
        B: Send + Clone + Debug + 'static,
        R: Send + Clone + Debug + 'static,
    {
        let build_key = Arc::new(build_key);
        let probe_key = Arc::new(probe_key);
        let join_fn = Arc::new(join_fn);
        let make: NodeFactory = Arc::new(move |_lp| {
            let bk = build_key.clone();
            let pk = probe_key.clone();
            let jf = join_fn.clone();
            supplier(move |_| {
                let bk = bk.clone();
                let pk = pk.clone();
                let jf = jf.clone();
                Box::new(HashJoinP::new(
                    move |b: &B| bk(b),
                    move |p: &T| pk(p),
                    move |p: &T, ms: &[B]| jf(p, ms),
                ))
            })
        });
        self.pipeline.add(
            "hash-join".to_string(),
            PNodeKind::Opaque(make),
            vec![
                PInput {
                    from: self.node,
                    spec: EdgeSpec::Forward,
                },
                PInput {
                    from: build.node,
                    spec: EdgeSpec::Broadcast { priority: -1 },
                },
            ],
            false,
        )
    }

    fn add_sink(&self, name: &str, make: NodeFactory) -> StreamStage<()> {
        self.pipeline.add(
            name.to_string(),
            PNodeKind::Opaque(make),
            vec![PInput {
                from: self.node,
                spec: EdgeSpec::Forward,
            }],
            false,
        )
    }

    /// Collect `(ts, item)` into a shared vector (tests/examples).
    pub fn write_to_collect(&self, out: Arc<Mutex<Vec<(Ts, T)>>>) -> StreamStage<()> {
        self.add_sink(
            "collect-sink",
            Arc::new(move |_| {
                let out = out.clone();
                supplier(move |_| Box::new(CollectSink::new(out.clone())))
            }),
        )
    }

    /// Count events into a shared counter.
    pub fn write_to_count(&self, counter: SharedCounter) -> StreamStage<()> {
        self.add_sink(
            "count-sink",
            Arc::new(move |_| {
                let c = counter.clone();
                supplier(move |_| Box::new(CountSink::new(c.clone())))
            }),
        )
    }

    /// Record `now - event_ts` into a shared histogram — the measurement
    /// sink of every experiment (§7.1 latency methodology).
    pub fn write_to_latency(
        &self,
        hist: SharedHistogram,
        counter: SharedCounter,
    ) -> StreamStage<()> {
        self.add_sink(
            "latency-sink",
            Arc::new(move |_| {
                let h = hist.clone();
                let c = counter.clone();
                supplier(move |_| Box::new(LatencySink::new(h.clone(), c.clone())))
            }),
        )
    }

    /// [`Self::write_to_latency`] with the spike watchdog attached: every
    /// sample also feeds the flight recorder's online p99.99/SLO excursion
    /// detector (zero virtual-time cost; see `jet_core::flight`).
    pub fn write_to_latency_watched(
        &self,
        hist: SharedHistogram,
        counter: SharedCounter,
        watchdog: jet_core::flight::LatencyWatchdog,
    ) -> StreamStage<()> {
        self.add_sink(
            "latency-sink",
            Arc::new(move |_| {
                let h = hist.clone();
                let c = counter.clone();
                let w = watchdog.clone();
                supplier(move |_| Box::new(LatencySink::watched(h.clone(), c.clone(), w.clone())))
            }),
        )
    }

    /// [`Self::write_to_latency_watched`] plus per-event provenance stamps:
    /// a deterministic stride/top-k sampler records `(event_ts, emitted_at)`
    /// journeys so every percentile band of the final distribution can be
    /// attributed via the flight recorder (zero virtual-time cost).
    pub fn write_to_latency_instrumented(
        &self,
        hist: SharedHistogram,
        counter: SharedCounter,
        watchdog: jet_core::flight::LatencyWatchdog,
        sampler: jet_core::flight::ProvenanceSampler,
    ) -> StreamStage<()> {
        self.add_sink(
            "latency-sink",
            Arc::new(move |_| {
                let h = hist.clone();
                let c = counter.clone();
                let w = watchdog.clone();
                let p = sampler.clone();
                supplier(move |_| {
                    Box::new(LatencySink::instrumented(
                        h.clone(),
                        c.clone(),
                        w.clone(),
                        p.clone(),
                    ))
                })
            }),
        )
    }

    /// Write entries into a grid map (view maintenance, §6).
    pub fn write_to_imap<K, V>(
        &self,
        map: jet_imdg::IMap<K, V>,
        entry_fn: impl Fn(&T) -> (K, V) + Send + Sync + 'static,
    ) -> StreamStage<()>
    where
        K: Clone + Eq + std::hash::Hash + Send + 'static,
        V: Clone + Send + 'static,
    {
        let entry_fn = Arc::new(entry_fn);
        self.add_sink(
            "imap-sink",
            Arc::new(move |_| {
                let map = map.clone();
                let ef = entry_fn.clone();
                supplier(move |_| {
                    let ef = ef.clone();
                    Box::new(IMapSink::new(map.clone(), move |t: &T| ef(t)))
                })
            }),
        )
    }

    /// Two-phase-commit sink (§4.5): output becomes visible only when the
    /// covering snapshot completes.
    pub fn write_to_transactional(
        &self,
        committed: Arc<Mutex<Vec<(Ts, T)>>>,
        registry: Arc<SnapshotRegistry>,
    ) -> StreamStage<()>
    where
        T: Snap,
    {
        self.add_sink(
            "transactional-sink",
            Arc::new(move |_| {
                let committed = committed.clone();
                let registry = registry.clone();
                supplier(move |_| {
                    Box::new(TransactionalSink::new(committed.clone(), registry.clone()))
                })
            }),
        )
    }

    /// Idempotent sink (§4.5): dedups by record id across replays.
    pub fn write_to_idempotent(
        &self,
        published: Arc<Mutex<std::collections::HashMap<u64, T>>>,
        id_fn: impl Fn(&T) -> u64 + Send + Sync + 'static,
    ) -> StreamStage<()> {
        let id_fn = Arc::new(id_fn);
        self.add_sink(
            "idempotent-sink",
            Arc::new(move |_| {
                let published = published.clone();
                let id_fn = id_fn.clone();
                supplier(move |_| {
                    let id_fn = id_fn.clone();
                    Box::new(IdempotentSink::new(published.clone(), move |t: &T| {
                        id_fn(t)
                    }))
                })
            }),
        )
    }
}

impl<T: Send + Clone + Debug + 'static> BatchStage<T> {
    /// View this batch stage as a stream stage (batch is a special case).
    pub fn as_stream(&self) -> StreamStage<T> {
        StreamStage {
            pipeline: self.pipeline.clone(),
            node: self.node,
            _t: PhantomData,
        }
    }

    pub fn map<U, F>(&self, f: F) -> BatchStage<U>
    where
        U: Send + Clone + Debug + 'static,
        F: Fn(&T) -> U + Send + Sync + 'static,
    {
        let s = self.as_stream().map(f);
        BatchStage {
            pipeline: s.pipeline,
            node: s.node,
            _t: PhantomData,
        }
    }

    pub fn filter<F>(&self, f: F) -> BatchStage<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let s = self.as_stream().filter(f);
        BatchStage {
            pipeline: s.pipeline,
            node: s.node,
            _t: PhantomData,
        }
    }
}

impl<K: WindowKey, T: Send + Clone + Debug + 'static> KeyedStage<K, T> {
    /// Attach a window definition.
    pub fn window(self, wdef: WindowDef) -> WindowedStage<K, T> {
        WindowedStage { keyed: self, wdef }
    }
}

impl<K: WindowKey, T: Send + Clone + Debug + 'static> WindowedStage<K, T> {
    /// Two-stage windowed aggregation (the default, §3.1: "local partial
    /// results followed by global combining").
    pub fn aggregate<A, R>(&self, op: AggregateOp<A, R>) -> StreamStage<WindowResult<K, R>>
    where
        A: Snap + Clone + Send + Default + Debug + 'static,
        R: Send + Clone + Debug + 'static,
    {
        let wdef = self.wdef;
        let key_fn = self.keyed.key_fn.clone();
        let op1 = op.clone();
        let stage1: NodeFactory = Arc::new(move |_lp| {
            let key_fn = key_fn.clone();
            let op = op1.clone();
            supplier(move |_| {
                let key_fn = key_fn.clone();
                Box::new(AccumulateFrameP::new(
                    wdef,
                    move |t: &T| key_fn(t),
                    op.clone(),
                ))
            })
        });
        let accumulate = self.keyed.pipeline.add::<FrameChunk<K, A>>(
            "window-accumulate".to_string(),
            PNodeKind::Opaque(stage1),
            vec![PInput {
                from: self.keyed.node,
                spec: EdgeSpec::Forward,
            }],
            false,
        );
        let op2 = op.clone();
        let stage2: NodeFactory = Arc::new(move |_lp| {
            let op = op2.clone();
            supplier(move |_| Box::new(CombineFramesP::<K, A, R>::new(wdef, op.clone())))
        });
        let chunk_key = Arc::new(|obj: &dyn jet_core::Object| {
            jet_util::seq::hash_of(&jet_core::downcast_ref::<FrameChunk<K, A>>(obj).key)
        });
        self.keyed.pipeline.add(
            "window-combine".to_string(),
            PNodeKind::Opaque(stage2),
            vec![PInput {
                from: accumulate.node,
                spec: EdgeSpec::Partitioned(chunk_key),
            }],
            false,
        )
    }

    /// Single-stage windowed aggregation (partitions raw events; used by the
    /// single-stage-vs-two-stage ablation).
    pub fn aggregate_single_stage<A, R>(
        &self,
        op: AggregateOp<A, R>,
    ) -> StreamStage<WindowResult<K, R>>
    where
        A: Snap + Clone + Send + Default + Debug + 'static,
        R: Send + Clone + Debug + 'static,
    {
        let wdef = self.wdef;
        let key_fn = self.keyed.key_fn.clone();
        let key_for_proc = key_fn.clone();
        let make: NodeFactory = Arc::new(move |_lp| {
            let key_fn = key_for_proc.clone();
            let op = op.clone();
            supplier(move |_| {
                let key_fn = key_fn.clone();
                Box::new(SlidingWindowP::new(
                    wdef,
                    move |t: &T| key_fn(t),
                    op.clone(),
                ))
            })
        });
        let key_hash = Arc::new(move |obj: &dyn jet_core::Object| {
            jet_util::seq::hash_of(&key_fn(jet_core::downcast_ref::<T>(obj)))
        });
        self.keyed.pipeline.add(
            "window-single".to_string(),
            PNodeKind::Opaque(make),
            vec![PInput {
                from: self.keyed.node,
                spec: EdgeSpec::Partitioned(key_hash),
            }],
            false,
        )
    }

    /// Windowed stream-stream co-group / join against another keyed stream
    /// with the same key type (NEXMark Q8).
    pub fn cogroup<U>(
        &self,
        other: KeyedStage<K, U>,
    ) -> StreamStage<WindowResult<K, CoGrouped<T, U>>>
    where
        T: Snap,
        U: Snap + Send + Clone + Debug + 'static,
    {
        let wdef = self.wdef;
        let left_key = self.keyed.key_fn.clone();
        let right_key = other.key_fn.clone();
        let op = jet_core::processors::agg::cogroup2::<T, U>();
        let make: NodeFactory = Arc::new(move |_lp| {
            let lk = left_key.clone();
            let rk = right_key.clone();
            let op = op.clone();
            supplier(move |_| {
                let lk = lk.clone();
                let rk = rk.clone();
                Box::new(
                    SlidingWindowP::new(wdef, move |t: &T| lk(t), op.clone())
                        .with_input(move |u: &U| rk(u)),
                )
            })
        });
        let lk = self.keyed.key_fn.clone();
        let left_hash = Arc::new(move |obj: &dyn jet_core::Object| {
            jet_util::seq::hash_of(&lk(jet_core::downcast_ref::<T>(obj)))
        });
        let rk = other.key_fn.clone();
        let right_hash = Arc::new(move |obj: &dyn jet_core::Object| {
            jet_util::seq::hash_of(&rk(jet_core::downcast_ref::<U>(obj)))
        });
        self.keyed.pipeline.add(
            "window-cogroup".to_string(),
            PNodeKind::Opaque(make),
            vec![
                PInput {
                    from: self.keyed.node,
                    spec: EdgeSpec::Partitioned(left_hash),
                },
                PInput {
                    from: other.node,
                    spec: EdgeSpec::Partitioned(right_hash),
                },
            ],
            false,
        )
    }
}

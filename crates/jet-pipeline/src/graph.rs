//! The untyped pipeline graph and its compiler to a Core-API [`Dag`].
//!
//! The typed stage handles in [`crate::stages`] record nodes here; `compile`
//! then performs the planning the paper describes in §3.1:
//!
//! * **operator fusion**: maximal chains of stateless transforms connected
//!   by forward edges with a single consumer collapse into one fused
//!   [`TransformP`] vertex (Fig. 2);
//! * **edge selection**: keyed stages get partitioned edges, join build
//!   sides get broadcast high-priority edges, everything else forwards
//!   locally (unicast).

use jet_core::dag::{Dag, Edge, KeyHashFn, VertexId};
use jet_core::processor::ProcessorSupplier;
use jet_core::processors::transform::{Stage, TransformP};
use jet_core::supplier;
use std::sync::Arc;

/// Factory producing a vertex's processor supplier once the vertex's
/// parallelism is known (sources need it to split their input).
pub type NodeFactory = Arc<dyn Fn(usize) -> ProcessorSupplier + Send + Sync>;

/// How an input edge of a node must be wired.
#[derive(Clone)]
pub enum EdgeSpec {
    /// Local unicast (round-robin) — the default.
    Forward,
    /// Isolated: producer instance i → consumer instance i.
    Isolated,
    /// Partition by key hash (keyed aggregation input).
    Partitioned(KeyHashFn),
    /// Broadcast with an edge priority (hash-join build side: priority -1).
    Broadcast { priority: i32 },
}

pub(crate) struct PInput {
    pub from: usize,
    pub spec: EdgeSpec,
}

pub(crate) enum PNodeKind {
    /// Fusable stateless transform stage.
    Transform(Stage),
    /// Anything else: source, window, join, sink, stateful map.
    Opaque(NodeFactory),
}

pub(crate) struct PNode {
    pub name: String,
    pub kind: PNodeKind,
    pub inputs: Vec<PInput>,
    pub local_parallelism: Option<usize>,
    /// Set for streaming sources (diagnostics only).
    pub is_source: bool,
}

/// The mutable pipeline under construction. Typed stage handles share it.
#[derive(Default)]
pub struct PipelineGraph {
    pub(crate) nodes: Vec<PNode>,
}

/// The `job<N>-` tenant tag at the start of `name`, if any (the naming
/// convention `jet_core::fairness::job_of_vertex` parses).
fn job_prefix(name: &str) -> Option<&str> {
    let rest = name.strip_prefix("job")?;
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits > 0 && rest[digits..].starts_with('-') {
        Some(&name[..3 + digits + 1])
    } else {
        None
    }
}

impl PipelineGraph {
    pub(crate) fn add_node(
        &mut self,
        name: String,
        kind: PNodeKind,
        inputs: Vec<PInput>,
        is_source: bool,
    ) -> usize {
        // Tenant tagging is by vertex-name prefix (`job<N>-`, see
        // jet-core::fairness). Users tag the source; downstream stages
        // carry hardcoded names ("window-accumulate", ...), so inherit the
        // tag here — when every input belongs to the same tenant, the new
        // node does too. Multi-tenant joins stay in the shared pool.
        let name = if job_prefix(&name).is_none() {
            let tags: Vec<Option<&str>> = inputs
                .iter()
                .map(|i| job_prefix(&self.nodes[i.from].name))
                .collect();
            match tags.split_first() {
                Some((Some(tag), rest)) if rest.iter().all(|t| *t == Some(tag)) => {
                    format!("{tag}{name}")
                }
                _ => name,
            }
        } else {
            name
        };
        self.nodes.push(PNode {
            name,
            kind,
            inputs,
            local_parallelism: None,
            is_source,
        });
        self.nodes.len() - 1
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of source stages (diagnostics).
    pub fn source_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_source).count()
    }

    fn consumers_of(&self, node: usize) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| self.nodes[n].inputs.iter().any(|i| i.from == node))
            .collect()
    }

    /// Compile to a Core DAG. `default_lp` is the parallelism used where a
    /// stage didn't pin one (sources capture it to split their data).
    pub fn compile(&self, default_lp: usize) -> Result<Dag, String> {
        assert!(default_lp > 0);
        // 1. Identify fusion chains: a Transform node whose single input is
        //    a Forward edge from a Transform with exactly one consumer is
        //    absorbed into its upstream's chain.
        let n = self.nodes.len();
        let mut chain_head: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let node = &self.nodes[i];
            if let PNodeKind::Transform(_) = node.kind {
                if node.inputs.len() == 1 && matches!(node.inputs[0].spec, EdgeSpec::Forward) {
                    let up = node.inputs[0].from;
                    if matches!(self.nodes[up].kind, PNodeKind::Transform(_))
                        && self.consumers_of(up).len() == 1
                        && self.nodes[up].local_parallelism == node.local_parallelism
                    {
                        chain_head[i] = chain_head[up];
                    }
                }
            }
        }
        // 2. Build vertices for chain heads / opaque nodes.
        let mut dag = Dag::new();
        let mut vertex_of: Vec<Option<VertexId>> = vec![None; n];
        for i in 0..n {
            if chain_head[i] != i {
                continue; // fused into its head
            }
            let node = &self.nodes[i];
            let lp = node.local_parallelism.unwrap_or(default_lp);
            let sup: ProcessorSupplier = match &node.kind {
                PNodeKind::Opaque(factory) => factory(lp),
                PNodeKind::Transform(_) => {
                    // Collect the full fused chain rooted at i, in order
                    // (nodes are topologically ordered by construction: an
                    // input always has a smaller index, so a linear scan
                    // finds chain members in order).
                    let mut stages: Vec<Stage> = Vec::new();
                    for (j, head) in chain_head.iter().enumerate().skip(i) {
                        if *head == i {
                            if let PNodeKind::Transform(s) = &self.nodes[j].kind {
                                stages.push(s.clone());
                            }
                        }
                    }
                    let stages = Arc::new(stages);
                    supplier(move |_| Box::new(TransformP::new(stages.as_ref().clone())))
                }
            };
            let name = node.name.clone();
            let v = dag.vertex_with_parallelism(name, lp, sup);
            vertex_of[i] = Some(v);
        }
        // Tail nodes of fused chains map to their head's vertex.
        for i in 0..n {
            if chain_head[i] != i {
                vertex_of[i] = vertex_of[chain_head[i]];
            }
        }
        // 3. Collect the edges between chain heads. Fused tails' inputs are
        //    the intra-chain links — dropped, which is the point of fusion.
        struct PlannedEdge {
            from: VertexId,
            to: VertexId,
            ordinal: usize,
            spec: EdgeSpec,
        }
        let mut planned: Vec<PlannedEdge> = Vec::new();
        for i in 0..n {
            if chain_head[i] != i {
                continue;
            }
            let to = vertex_of[i].expect("vertex built");
            for (ordinal, input) in self.nodes[i].inputs.iter().enumerate() {
                planned.push(PlannedEdge {
                    from: vertex_of[input.from].expect("vertex built"),
                    to,
                    ordinal,
                    spec: input.spec.clone(),
                });
            }
        }
        // 4. Fan-out: ordinary processors emit to out-ordinal 0 only, so a
        //    producer with several consumers gets an explicit FanOutP vertex
        //    that replicates events to all of its out edges.
        use std::collections::HashMap;
        let mut out_count: HashMap<VertexId, usize> = HashMap::new();
        for e in &planned {
            *out_count.entry(e.from).or_insert(0) += 1;
        }
        let mut fanout_of: HashMap<VertexId, VertexId> = HashMap::new();
        for (&v, &count) in &out_count {
            if count > 1 {
                let lp = dag.vertices()[v].local_parallelism.unwrap_or(default_lp);
                let name = format!("{}-fanout", dag.vertices()[v].name);
                let f = dag.vertex_with_parallelism(
                    name,
                    lp,
                    supplier(|_| Box::new(jet_core::processors::FanOutP)),
                );
                fanout_of.insert(v, f);
            }
        }
        // 5. Materialize edges, rerouting multi-consumer producers through
        //    their fan-out vertex.
        let mut from_ordinal_next: HashMap<VertexId, usize> = HashMap::new();
        for (&v, &f) in &fanout_of {
            dag.edge(Edge::between(v, f).isolated());
        }
        for pe in planned {
            let from = fanout_of.get(&pe.from).copied().unwrap_or(pe.from);
            let from_ordinal = {
                let slot = from_ordinal_next.entry(from).or_insert(0);
                let o = *slot;
                *slot += 1;
                o
            };
            let mut e = Edge::between(from, pe.to)
                .from_ordinal(from_ordinal)
                .to_ordinal(pe.ordinal);
            e = match &pe.spec {
                EdgeSpec::Forward => e,
                EdgeSpec::Isolated => e.isolated(),
                EdgeSpec::Partitioned(f) => e.partitioned_raw(f.clone()),
                EdgeSpec::Broadcast { priority } => e.broadcast().priority(*priority),
            };
            dag.edge(e);
        }
        dag.validate()?;
        Ok(dag)
    }
}

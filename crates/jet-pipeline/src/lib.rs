//! # jet-pipeline — the typed Pipeline API
//!
//! The primary user-facing API of the paper (§2.1): a fluent, type-safe
//! builder that "very much resembles Java streams" and compiles down to the
//! Core API's parallel, distributed DAG — with operator fusion (Fig. 2) and
//! two-stage windowed aggregation (§3.1) applied by the planner.
//!
//! ```
//! use jet_pipeline::{Pipeline, WindowDef};
//! use jet_core::processors::agg::counting;
//!
//! let p = Pipeline::create();
//! p.read_from_generator("trades", 10_000, |seq, _ts| (seq % 100, seq))
//!     .filter(|(_sym, qty)| qty % 2 == 0)
//!     .grouping_key(|(sym, _)| *sym)
//!     .window(WindowDef::sliding(1_000_000_000, 100_000_000))
//!     .aggregate(counting::<(u64, u64)>());
//! let dag = p.compile(4).unwrap();
//! assert!(dag.vertices().len() >= 4); // source, filter, accumulate, combine
//! ```

pub mod graph;
pub mod stages;

pub use graph::{EdgeSpec, NodeFactory, PipelineGraph};
pub use jet_core::processors::window::{WindowDef, WindowResult};
pub use stages::{BatchStage, KeyedStage, Pipeline, StreamStage, WindowedStage};

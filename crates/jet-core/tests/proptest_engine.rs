//! Property tests over engine invariants:
//!
//! * sliding-window results equal a brute-force recomputation for arbitrary
//!   event sets, window geometry, and parallelism;
//! * two-stage aggregation ≡ single-stage;
//! * `Snap` codec round-trips arbitrary values;
//! * exactly-once counts survive snapshot/restore at arbitrary cut points.

use jet_core::dag::{Dag, Edge};
use jet_core::exec::run_sequential;
use jet_core::plan::{build_local, LocalConfig};
use jet_core::processors::*;
use jet_core::snapshot::SnapshotRegistry;
use jet_core::state::Snap;
use jet_core::supplier;
use jet_core::Ts;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Timestamped sink output, shared with the collecting stage.
type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

fn brute_force(events: &[(Ts, u64)], size: Ts, slide: Ts) -> HashMap<(u64, Ts), u64> {
    let mut out = HashMap::new();
    let max_ts = events.iter().map(|(t, _)| *t).max().unwrap_or(0);
    let mut end = slide;
    while end <= max_ts + size {
        for (ts, key) in events {
            if *ts >= end - size && *ts < end {
                *out.entry((*key, end)).or_insert(0) += 1;
            }
        }
        end += slide;
    }
    out.retain(|_, v| *v > 0);
    out
}

fn run_window_job(
    events: &[(Ts, u64)],
    size: Ts,
    slide: Ts,
    lp: usize,
    two_stage: bool,
) -> HashMap<(u64, Ts), u64> {
    let items: Arc<Vec<(Ts, u64)>> = Arc::new(events.to_vec());
    let out: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
    let mut dag = Dag::new();
    let items2 = items.clone();
    let src = dag.vertex_with_parallelism(
        "src",
        lp,
        supplier(move |_| Box::new(VecSource::new(items2.clone()))),
    );
    let wdef = WindowDef::sliding(size, slide);
    let sink_target = out.clone();
    if two_stage {
        let s1 = dag.vertex_with_parallelism(
            "accumulate",
            lp,
            supplier(move |_| {
                Box::new(AccumulateFrameP::new::<u64>(
                    wdef,
                    |v: &u64| *v,
                    counting::<u64>(),
                ))
            }),
        );
        let s2 = dag.vertex_with_parallelism(
            "combine",
            lp,
            supplier(move |_| {
                Box::new(CombineFramesP::<u64, u64, u64>::new(
                    wdef,
                    counting::<u64>(),
                ))
            }),
        );
        let sink = dag.vertex_with_parallelism(
            "sink",
            1,
            supplier(move |_| Box::new(CollectSink::new(sink_target.clone()))),
        );
        dag.edge(Edge::between(src, s1));
        dag.edge(Edge::between(s1, s2).partitioned_by::<FrameChunk<u64, u64>, _, _>(|c| c.key));
        dag.edge(Edge::between(s2, sink));
    } else {
        let w = dag.vertex_with_parallelism(
            "window-single",
            lp,
            supplier(move |_| {
                Box::new(SlidingWindowP::new::<u64>(
                    wdef,
                    |v: &u64| *v,
                    counting::<u64>(),
                ))
            }),
        );
        let sink = dag.vertex_with_parallelism(
            "sink",
            1,
            supplier(move |_| Box::new(CollectSink::new(sink_target.clone()))),
        );
        dag.edge(Edge::between(src, w).partitioned_by::<u64, _, _>(|v| *v));
        dag.edge(Edge::between(w, sink));
    }
    let registry = Arc::new(SnapshotRegistry::disabled());
    let exec = build_local(&dag, &LocalConfig::new(lp), &registry, None).unwrap();
    let mut tasklets = exec.tasklets;
    assert!(
        run_sequential(&mut tasklets, 3_000_000),
        "job did not finish"
    );
    let results = out.lock();
    let mut got = HashMap::new();
    for (_, r) in results.iter() {
        assert!(
            got.insert((r.key, r.end), r.value).is_none(),
            "duplicate window result ({}, {})",
            r.key,
            r.end
        );
    }
    got.retain(|_, v| *v > 0);
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sliding_window_equals_brute_force(
        events in proptest::collection::vec((0i64..500, 0u64..9), 1..250),
        frames_per_window in 1i64..6,
        slide in prop_oneof![Just(10i64), Just(25), Just(40)],
        lp in 1usize..4,
        two_stage in any::<bool>(),
    ) {
        let size = slide * frames_per_window;
        let got = run_window_job(&events, size, slide, lp, two_stage);
        let want = brute_force(&events, size, slide);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn snap_roundtrip_vec_map(
        v in proptest::collection::vec(any::<i64>(), 0..50),
        m in proptest::collection::hash_map(any::<u64>(), any::<(i64, u64)>(), 0..30),
        s in ".*",
    ) {
        prop_assert_eq!(Vec::<i64>::from_bytes(&v.to_bytes()).unwrap(), v);
        prop_assert_eq!(
            std::collections::HashMap::<u64, (i64, u64)>::from_bytes(&m.to_bytes()).unwrap(),
            m
        );
        prop_assert_eq!(String::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn generator_shards_partition_the_sequence_space(
        lp in 1usize..7,
        limit in 1u64..2000,
    ) {
        // Every global sequence < limit is emitted exactly once across
        // instances, whatever the parallelism.
        let out: Collected<u64> = Arc::new(Mutex::new(Vec::new()));
        let mut dag = Dag::new();
        let src = dag.vertex_with_parallelism("gen", lp, supplier(move |_| {
            Box::new(
                GeneratorSource::new(1_000_000_000, Arc::new(|seq, _| jet_core::boxed(seq)))
                    .with_limit(limit),
            )
        }));
        let out2 = out.clone();
        let sink = dag.vertex_with_parallelism("sink", 1, supplier(move |_| {
            Box::new(CollectSink::new(out2.clone()))
        }));
        dag.edge(Edge::between(src, sink));
        let registry = Arc::new(SnapshotRegistry::disabled());
        let exec = build_local(&dag, &LocalConfig::new(lp), &registry, None).unwrap();
        let mut tasklets = exec.tasklets;
        prop_assert!(run_sequential(&mut tasklets, 2_000_000));
        let mut seqs: Vec<u64> = out.lock().iter().map(|(_, s)| *s).collect();
        seqs.sort_unstable();
        prop_assert_eq!(seqs, (0..limit).collect::<Vec<_>>());
    }
}

//! Property tests over the keyed frame-store state layer (the fig_keyscale
//! tentpole), checked against naive reference models:
//!
//! * `KeyTable` ≡ `HashMap` over arbitrary upsert/remove/get interleavings,
//!   including cursor-resumed scans and drain-to-empty;
//! * deduct-mode emission (running accumulator + frame refcounts) ≡
//!   recombine-mode emission (scratch gather) ≡ brute-force recomputation,
//!   for the same randomized event sets;
//! * late arrivals behind the emission floor are dropped from every window
//!   and counted exactly once in the `late_events` probe;
//! * chunked streaming snapshots restore to a state that finishes the job
//!   with per-window values identical to an uninterrupted brute-force run
//!   (no torn chunks, no loss, no double counting).

use jet_core::dag::{Dag, Edge};
use jet_core::exec::run_sequential;
use jet_core::plan::{build_local, LocalConfig};
use jet_core::processor::{Guarantee, Inbox, Outbox, Processor, ProcessorContext};
use jet_core::processors::*;
use jet_core::snapshot::SnapshotRegistry;
use jet_core::state::{fingerprint, Cursor, KeyTable, StateProbe};
use jet_core::supplier;
use jet_core::{Item, Ts};
use jet_imdg::{Grid, SnapshotStore};
use jet_util::clock::manual_clock;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

fn brute_force(events: &[(Ts, u64)], size: Ts, slide: Ts) -> HashMap<(u64, Ts), u64> {
    let mut out = HashMap::new();
    let max_ts = events.iter().map(|(t, _)| *t).max().unwrap_or(0);
    let mut end = slide;
    while end <= max_ts + size {
        for (ts, key) in events {
            if *ts >= end - size && *ts < end {
                *out.entry((*key, end)).or_insert(0) += 1;
            }
        }
        end += slide;
    }
    out.retain(|_, v| *v > 0);
    out
}

// ---------------------------------------------------------------- KeyTable

fn fp(k: u64) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    fingerprint(h.finish())
}

#[derive(Clone, Debug)]
enum TableOp {
    Upsert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn table_ops() -> impl Strategy<Value = Vec<TableOp>> {
    // Keys from a small domain so probes collide, removes hit, and
    // backward-shift deletion gets exercised on long runs.
    proptest::collection::vec(
        prop_oneof![
            3 => (0u64..48, 1u64..1_000_000).prop_map(|(k, v)| TableOp::Upsert(k, v)),
            1 => (0u64..48).prop_map(TableOp::Remove),
            1 => (0u64..48).prop_map(TableOp::Get),
        ],
        1..400,
    )
}

// ------------------------------------------------------------ window jobs

/// `counting()` with the deduct stripped: forces the recombine (scratch
/// gather) emission path through the exact same accumulator algebra.
fn counting_no_deduct() -> AggregateOp<u64, u64> {
    AggregateOp::of::<u64, _, _, _>(|| 0u64, |a, _| *a += 1, |a, b| *a += *b, |a| *a)
}

fn run_single_stage(
    events: &[(Ts, u64)],
    size: Ts,
    slide: Ts,
    lp: usize,
    deduct: bool,
) -> HashMap<(u64, Ts), u64> {
    let items: Arc<Vec<(Ts, u64)>> = Arc::new(events.to_vec());
    let out: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
    let mut dag = Dag::new();
    let items2 = items.clone();
    let src = dag.vertex_with_parallelism(
        "src",
        lp,
        supplier(move |_| Box::new(VecSource::new(items2.clone()))),
    );
    let wdef = WindowDef::sliding(size, slide);
    let w = dag.vertex_with_parallelism(
        "window",
        lp,
        supplier(move |_| {
            let op = if deduct {
                counting::<u64>()
            } else {
                counting_no_deduct()
            };
            Box::new(SlidingWindowP::new::<u64>(wdef, |v: &u64| *v, op))
        }),
    );
    let sink_target = out.clone();
    let sink = dag.vertex_with_parallelism(
        "sink",
        1,
        supplier(move |_| Box::new(CollectSink::new(sink_target.clone()))),
    );
    dag.edge(Edge::between(src, w).partitioned_by::<u64, _, _>(|v| *v));
    dag.edge(Edge::between(w, sink));
    let registry = Arc::new(SnapshotRegistry::disabled());
    let exec = build_local(&dag, &LocalConfig::new(lp), &registry, None).unwrap();
    let mut tasklets = exec.tasklets;
    assert!(
        run_sequential(&mut tasklets, 3_000_000),
        "job did not finish"
    );
    let results = out.lock();
    let mut got = HashMap::new();
    for (_, r) in results.iter() {
        assert!(
            got.insert((r.key, r.end), r.value).is_none(),
            "duplicate window result ({}, {})",
            r.key,
            r.end
        );
    }
    got.retain(|_, v| *v > 0);
    got
}

// ---------------------------------------------------------- late arrivals

/// Finite source replaying a scripted interleaving of events and
/// watermarks on a single instance — the only way to place an event
/// *behind* an already-forwarded watermark.
#[derive(Clone, Debug)]
enum Script {
    Ev(Ts, u64),
    Wm(Ts),
}

struct ScriptSource {
    items: Arc<Vec<Script>>,
    cursor: usize,
}

impl Processor for ScriptSource {
    fn process(&mut self, _: usize, _: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        unreachable!("sources have no inputs")
    }

    fn complete(&mut self, outbox: &mut Outbox, _ctx: &ProcessorContext) -> bool {
        while self.cursor < self.items.len() {
            let ok = match &self.items[self.cursor] {
                Script::Ev(ts, k) => outbox.offer_event(0, *ts, jet_core::boxed(*k)),
                Script::Wm(w) => outbox.broadcast(Item::Watermark(*w)),
            };
            if !ok {
                return false;
            }
            self.cursor += 1;
        }
        true
    }
}

// --------------------------------------------------------------- the laws

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn keytable_matches_hashmap_reference(ops in table_ops(), parts in 1u32..64) {
        let mut kt: KeyTable<u64, u64> = KeyTable::new(parts);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match *op {
                TableOp::Upsert(k, v) => {
                    let (slot, _created) = kt.upsert(fp(k), k, || 0);
                    *slot = v;
                    reference.insert(k, v);
                }
                TableOp::Remove(k) => {
                    prop_assert_eq!(kt.remove(fp(k), &k), reference.remove(&k));
                }
                TableOp::Get(k) => {
                    prop_assert_eq!(kt.get(fp(k), &k).copied(), reference.get(&k).copied());
                    prop_assert_eq!(
                        kt.get_mut(fp(k), &k).map(|v| *v),
                        reference.get(&k).copied()
                    );
                }
            }
            prop_assert_eq!(kt.len(), reference.len());
        }
        // Cursor-resumed scan visits every live record exactly once.
        let mut scanned: HashMap<u64, u64> = HashMap::new();
        let mut cur = Cursor::default();
        loop {
            let (next, item) = kt.scan_next(cur);
            match item {
                Some((f, k, v)) => {
                    prop_assert_eq!(f, fp(*k), "stored fingerprint drifted");
                    prop_assert!(scanned.insert(*k, *v).is_none(), "scan revisited a key");
                    cur = next;
                }
                None => break,
            }
        }
        prop_assert_eq!(&scanned, &reference);
        // Drain-to-empty yields the same records and leaves nothing behind.
        let mut drained: HashMap<u64, u64> = HashMap::new();
        let mut cur = Cursor::default();
        loop {
            let (next, item) = kt.drain_next(cur);
            match item {
                Some((_, k, v)) => {
                    prop_assert!(drained.insert(k, v).is_none(), "drain revisited a key");
                    cur = next;
                }
                None => break,
            }
        }
        prop_assert_eq!(&drained, &reference);
        prop_assert!(kt.is_empty());
    }

    #[test]
    fn deduct_and_recombine_agree_with_brute_force(
        events in proptest::collection::vec((0i64..400, 0u64..8), 1..200),
        frames_per_window in 1i64..5,
        slide in prop_oneof![Just(10i64), Just(25)],
        lp in 1usize..3,
    ) {
        let size = slide * frames_per_window;
        let want = brute_force(&events, size, slide);
        let via_deduct = run_single_stage(&events, size, slide, lp, true);
        let via_recombine = run_single_stage(&events, size, slide, lp, false);
        prop_assert_eq!(&via_deduct, &want);
        prop_assert_eq!(&via_recombine, &want);
    }

    #[test]
    fn late_arrivals_are_dropped_and_counted(
        batches in proptest::collection::vec(
            (
                proptest::collection::vec((0i64..1, 0u64..6), 1..8), // (offset seed, key)
                proptest::collection::vec((0i64..1, 0u64..6), 0..3), // ancient seeds
            ),
            5..9,
        ),
        offsets in proptest::collection::vec(0i64..10_000, 64..65),
        frames_per_window in 1i64..4,
        slide in prop_oneof![Just(10i64), Just(20)],
    ) {
        let size = slide * frames_per_window;
        // Watermark cadence: batch i occupies ts in [i*range, (i+1)*range)
        // and is followed by watermark W_i = (i+1)*range. `range` is two
        // windows wide so an "ancient" event in batch i (ts at least a full
        // window below batch i-3's start, whose emission is guaranteed to
        // have begun) sits behind the floor by construction.
        let range = 2 * size;
        let mut script: Vec<Script> = Vec::new();
        let mut normal: Vec<(Ts, u64)> = Vec::new();
        let mut ancient_count = 0u64;
        let mut oi = 0usize;
        let mut next_off = |bound: i64| {
            let v = offsets[oi % offsets.len()] % bound.max(1);
            oi += 1;
            v
        };
        for (i, (evs, ancients)) in batches.iter().enumerate() {
            let base = i as Ts * range;
            for (_, key) in evs {
                let ts = base + next_off(range);
                normal.push((ts, *key));
                script.push(Script::Ev(ts, *key));
            }
            if i >= 4 {
                let bound = (i as Ts - 3) * range - size;
                for (_, key) in ancients {
                    let ts = next_off(bound + 1);
                    ancient_count += 1;
                    script.push(Script::Ev(ts, *key));
                }
            }
            script.push(Script::Wm(base + range));
        }

        let items = Arc::new(script);
        let out: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
        let probe_slot: Arc<Mutex<Option<Arc<StateProbe>>>> = Arc::new(Mutex::new(None));
        let mut dag = Dag::new();
        let items2 = items.clone();
        let src = dag.vertex_with_parallelism(
            "script-src",
            1,
            supplier(move |_| Box::new(ScriptSource { items: items2.clone(), cursor: 0 })),
        );
        let wdef = WindowDef::sliding(size, slide);
        let slot = probe_slot.clone();
        let w = dag.vertex_with_parallelism(
            "window",
            1,
            supplier(move |_| {
                let p = SlidingWindowP::new::<u64>(wdef, |v: &u64| *v, counting::<u64>());
                *slot.lock() = p.state_probe();
                Box::new(p)
            }),
        );
        let sink_target = out.clone();
        let sink = dag.vertex_with_parallelism(
            "sink",
            1,
            supplier(move |_| Box::new(CollectSink::new(sink_target.clone()))),
        );
        dag.edge(Edge::between(src, w));
        dag.edge(Edge::between(w, sink));
        let registry = Arc::new(SnapshotRegistry::disabled());
        let exec = build_local(&dag, &LocalConfig::new(1), &registry, None).unwrap();
        let mut tasklets = exec.tasklets;
        prop_assert!(run_sequential(&mut tasklets, 3_000_000), "job did not finish");

        let mut got = HashMap::new();
        for (_, r) in out.lock().iter() {
            prop_assert!(
                got.insert((r.key, r.end), r.value).is_none(),
                "duplicate window result"
            );
        }
        got.retain(|_, v| *v > 0);
        // Ancient events vanish from every window; on-time events land in
        // all of theirs.
        prop_assert_eq!(&got, &brute_force(&normal, size, slide));
        let probe = probe_slot.lock().clone().expect("probe captured");
        prop_assert_eq!(probe.late_events.load(Ordering::Relaxed), ancient_count);
    }

    #[test]
    fn chunked_snapshot_restore_is_exact(
        total in 300u64..1200,
        nkeys in 1u64..8,
        frames_per_window in 1i64..5,
        slide_us in prop_oneof![Just(50i64), Just(100)],
        pre_steps in 1usize..10,
        lp in 1usize..3,
    ) {
        const RATE: u64 = 1_000_000; // event ts = seq * 1000 ns
        let slide = slide_us * 1_000;
        let size = slide * frames_per_window;
        let grid = Grid::with_partition_count(2, 1, 32);
        let store = SnapshotStore::new(&grid, 42);
        let (manual, clock) = manual_clock();

        let make_dag = |out: Collected<WindowResult<u64, u64>>| {
            let mut dag = Dag::new();
            let src = dag.vertex_with_parallelism(
                "gen",
                lp,
                supplier(move |_| {
                    Box::new(
                        GeneratorSource::new(
                            RATE,
                            Arc::new(move |seq, _ts| jet_core::boxed(seq % nkeys)),
                        )
                        .with_limit(total),
                    )
                }),
            );
            let win = dag.vertex_with_parallelism(
                "win",
                lp,
                supplier(move |_| {
                    Box::new(SlidingWindowP::new::<u64>(
                        WindowDef::sliding(size, slide),
                        |v: &u64| *v,
                        counting::<u64>(),
                    ))
                }),
            );
            let out2 = out.clone();
            let sink = dag.vertex_with_parallelism(
                "sink",
                1,
                supplier(move |_| Box::new(CollectSink::new(out2.clone()))),
            );
            dag.edge(Edge::between(src, win).partitioned_by::<u64, _, _>(|v| *v));
            dag.edge(Edge::between(win, sink));
            dag
        };

        // First execution: advance partway, take one chunked snapshot, crash.
        let out1: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
        let dag = make_dag(out1.clone());
        let registry = Arc::new(SnapshotRegistry::new(store.clone(), 0));
        let cfg = LocalConfig::new(lp)
            .with_guarantee(Guarantee::ExactlyOnce)
            .with_clock(clock.clone());
        let exec = build_local(&dag, &cfg, &registry, None).unwrap();
        let mut tasklets = exec.tasklets;
        for _ in 0..pre_steps {
            manual.advance(20_000);
            run_sequential(&mut tasklets, 200);
        }
        registry.trigger().unwrap();
        for _ in 0..300 {
            run_sequential(&mut tasklets, 200);
            if registry.completed() >= 1 {
                break;
            }
            manual.advance(10_000);
        }
        prop_assert_eq!(registry.completed(), 1, "snapshot did not complete");
        drop(tasklets); // simulated crash

        // Recovery: restore from the streamed chunks, run to the end.
        let out2: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
        let dag = make_dag(out2.clone());
        let registry2 = Arc::new(SnapshotRegistry::new(store.clone(), 0));
        let exec = build_local(&dag, &cfg, &registry2, Some((&store, 1))).unwrap();
        let mut tasklets = exec.tasklets;
        let mut finished = false;
        for _ in 0..400 {
            manual.advance(1_000_000);
            if run_sequential(&mut tasklets, 5_000) {
                finished = true;
                break;
            }
        }
        prop_assert!(finished, "recovered job did not finish");

        let mut got = HashMap::new();
        for (_, r) in out2.lock().iter() {
            prop_assert!(
                got.insert((r.key, r.end), r.value).is_none(),
                "window re-emitted after restore"
            );
        }
        got.retain(|_, v| *v > 0);
        prop_assert!(!got.is_empty(), "recovery emitted nothing");
        // Windows emitted before the crash are gone with the first
        // execution; everything from the restored floor onward must match
        // an uninterrupted run exactly (counts neither lost nor doubled).
        let events: Vec<(Ts, u64)> = (0..total).map(|s| (s as Ts * 1000, s % nkeys)).collect();
        let min_end = got.keys().map(|&(_, end)| end).min().unwrap();
        let mut want = brute_force(&events, size, slide);
        want.retain(|&(_, end), _| end >= min_end);
        prop_assert_eq!(&got, &want);
    }
}

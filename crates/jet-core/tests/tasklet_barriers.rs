//! White-box tests of the ProcessorTasklet barrier protocol (§4.4): channel
//! blocking under exactly-once, pass-through under at-least-once, snapshot
//! record persistence, ack accounting, and barrier forwarding order.

use jet_core::item::{Barrier, Item};
use jet_core::metrics::SharedCounter;
use jet_core::object::boxed;
use jet_core::outbound::OutboundCollector;
use jet_core::processor::{Guarantee, Inbox, Outbox, Processor, ProcessorContext};
use jet_core::snapshot::SnapshotRegistry;
use jet_core::tasklet::{InputConveyor, ProcessorTasklet, Tasklet};
use jet_core::Routing;
use jet_imdg::{Grid, SnapshotStore};
use jet_queue::{spsc_channel, Consumer, Conveyor, Producer};
use parking_lot::Mutex;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Processor recording which u64 events it processed, with one snapshot
/// record of its running sum.
struct Recorder {
    seen: Arc<Mutex<Vec<u64>>>,
    sum: u64,
}

impl Processor for Recorder {
    fn process(&mut self, _: usize, inbox: &mut Inbox, _: &mut Outbox, _: &ProcessorContext) {
        while let Some((_, obj)) = inbox.take() {
            let v = *jet_core::downcast::<u64>(obj);
            self.sum += v;
            self.seen.lock().push(v);
        }
    }

    fn save_snapshot(&mut self, _id: u64, outbox: &mut Outbox, _: &ProcessorContext) -> bool {
        outbox.offer_snapshot(b"sum".to_vec(), self.sum.to_le_bytes().to_vec());
        true
    }
}

struct Rig {
    tasklet: ProcessorTasklet,
    lanes: Vec<Producer<Item>>,
    out: Consumer<Item>,
    seen: Arc<Mutex<Vec<u64>>>,
    registry: Arc<SnapshotRegistry>,
    store: SnapshotStore,
}

fn rig(guarantee: Guarantee, lanes: usize) -> Rig {
    let grid = Grid::with_partition_count(1, 0, 8);
    let store = SnapshotStore::new(&grid, 9);
    let registry = Arc::new(SnapshotRegistry::new(store.clone(), 1));
    let (conveyor, producers) = Conveyor::new(lanes, 64);
    let (out_p, out_c) = spsc_channel::<Item>(256);
    let collector = OutboundCollector::new(Routing::Unicast, vec![out_p], vec![], 8, 0);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let ctx = ProcessorContext {
        vertex: "recorder".into(),
        global_index: 0,
        total_parallelism: 1,
        member: 0,
        clock: jet_util::clock::system_clock(),
        guarantee,
        cancelled: Arc::new(AtomicBool::new(false)),
        partition_count: 8,
        owned_partitions: Arc::new(vec![true; 8]),
    };
    let tasklet = ProcessorTasklet::new(
        Box::new(Recorder {
            seen: seen.clone(),
            sum: 0,
        }),
        ctx,
        vec![InputConveyor {
            ordinal: 0,
            priority: 0,
            conveyor,
        }],
        vec![collector],
        registry.clone(),
        64,
    );
    Rig {
        tasklet,
        lanes: producers,
        out: out_c,
        seen,
        registry,
        store,
    }
}

fn spin(t: &mut ProcessorTasklet, rounds: usize) {
    for _ in 0..rounds {
        t.call();
    }
}

fn barrier(id: u64) -> Item {
    Item::Barrier(Barrier {
        snapshot_id: id,
        terminal: false,
    })
}

#[test]
fn exactly_once_blocks_aligned_lane_until_alignment() {
    let mut r = rig(Guarantee::ExactlyOnce, 2);
    r.registry.trigger().unwrap();
    r.lanes[0].offer(Item::event(0, boxed(1u64))).unwrap();
    r.lanes[0].offer(barrier(1)).unwrap();
    r.lanes[0].offer(Item::event(0, boxed(99u64))).unwrap(); // post-barrier
    r.lanes[1].offer(Item::event(0, boxed(2u64))).unwrap();
    spin(&mut r.tasklet, 10);
    // Pre-barrier events from both lanes processed; post-barrier one blocked.
    {
        let seen = r.seen.lock();
        assert!(
            seen.contains(&1) && seen.contains(&2),
            "pre-barrier events: {seen:?}"
        );
        assert!(
            !seen.contains(&99),
            "post-barrier event leaked through alignment"
        );
    }
    assert_eq!(
        r.registry.completed(),
        0,
        "snapshot completed before alignment"
    );
    // Align lane 1: snapshot happens, block releases.
    r.lanes[1].offer(barrier(1)).unwrap();
    spin(&mut r.tasklet, 10);
    assert!(
        r.seen.lock().contains(&99),
        "post-barrier event never released"
    );
    assert_eq!(r.registry.completed(), 1);
    // State record persisted (sum at the barrier = 1 + 2 = 3).
    let records = r.store.read_vertex(1, "recorder");
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].1, 3u64.to_le_bytes().to_vec());
}

#[test]
fn at_least_once_does_not_block_but_snapshots_on_last_barrier() {
    let mut r = rig(Guarantee::AtLeastOnce, 2);
    r.registry.trigger().unwrap();
    r.lanes[0].offer(barrier(1)).unwrap();
    r.lanes[0].offer(Item::event(0, boxed(99u64))).unwrap(); // post-barrier
    spin(&mut r.tasklet, 10);
    // At-least-once: the post-barrier event IS processed pre-alignment
    // (that is exactly why replay may duplicate it).
    assert!(
        r.seen.lock().contains(&99),
        "at-least-once must not block channels"
    );
    assert_eq!(r.registry.completed(), 0);
    r.lanes[1].offer(barrier(1)).unwrap();
    spin(&mut r.tasklet, 10);
    assert_eq!(r.registry.completed(), 1);
    // The snapshot includes the post-barrier effect (sum = 99): the source
    // of at-least-once's duplicates-on-replay semantics.
    let records = r.store.read_vertex(1, "recorder");
    assert_eq!(records[0].1, 99u64.to_le_bytes().to_vec());
}

#[test]
fn barrier_is_forwarded_downstream_after_state_save() {
    let mut r = rig(Guarantee::ExactlyOnce, 1);
    r.registry.trigger().unwrap();
    r.lanes[0].offer(Item::event(0, boxed(7u64))).unwrap();
    r.lanes[0].offer(barrier(1)).unwrap();
    spin(&mut r.tasklet, 10);
    let mut saw_event_first = false;
    let mut saw_barrier = false;
    while let Some(item) = r.out.poll() {
        match item {
            Item::Barrier(b) => {
                assert_eq!(b.snapshot_id, 1);
                saw_barrier = true;
            }
            Item::Event { .. } => {
                assert!(!saw_barrier, "event overtook the barrier");
                saw_event_first = true;
            }
            _ => {}
        }
    }
    // This vertex consumes events (sink-like recorder) but still forwards
    // the barrier to its output edge.
    assert!(saw_barrier, "barrier not forwarded");
    let _ = saw_event_first;
}

#[test]
fn done_lane_counts_as_aligned() {
    let mut r = rig(Guarantee::ExactlyOnce, 2);
    r.registry.trigger().unwrap();
    r.lanes[0].offer(barrier(1)).unwrap();
    r.lanes[1].offer(Item::Done).unwrap();
    spin(&mut r.tasklet, 10);
    assert_eq!(
        r.registry.completed(),
        1,
        "a Done lane must not hold back snapshot alignment"
    );
}

#[test]
fn consecutive_snapshots_reuse_cleared_alignment_state() {
    let mut r = rig(Guarantee::ExactlyOnce, 2);
    for id in 1..=3u64 {
        r.registry.trigger().unwrap();
        r.lanes[0].offer(Item::event(0, boxed(id))).unwrap();
        r.lanes[0].offer(barrier(id)).unwrap();
        r.lanes[1].offer(barrier(id)).unwrap();
        spin(&mut r.tasklet, 12);
        assert_eq!(r.registry.completed(), id, "snapshot {id} did not complete");
    }
    assert_eq!(r.seen.lock().len(), 3);
}

#[test]
fn sink_counts_match_through_alignment_stress() {
    // Interleave many events and barriers; every event must be processed
    // exactly once whatever the alignment pattern.
    let mut r = rig(Guarantee::ExactlyOnce, 2);
    let mut expected = Vec::new();
    let mut next = 0u64;
    for id in 1..=5u64 {
        r.registry.trigger().unwrap();
        for _ in 0..7 {
            r.lanes[(next % 2) as usize]
                .offer(Item::event(0, boxed(next)))
                .unwrap();
            expected.push(next);
            next += 1;
        }
        r.lanes[0].offer(barrier(id)).unwrap();
        spin(&mut r.tasklet, 6);
        r.lanes[1].offer(barrier(id)).unwrap();
        spin(&mut r.tasklet, 12);
        assert_eq!(r.registry.completed(), id);
    }
    let mut seen = r.seen.lock().clone();
    seen.sort_unstable();
    assert_eq!(seen, expected);
    let _ = SharedCounter::new();
}

//! Acceptance: the small-event hot path performs **zero heap allocations
//! per event**. A counting global allocator wraps `System`; the test drives
//! the full per-event surface — `boxed` construction, `Item` wrapping,
//! SPSC offer/poll, clone (as a broadcast edge would), borrow-downcast, and
//! consume-by-`take` — and asserts the allocation counter did not move for
//! payloads at or under `INLINE_CAP` (32 bytes).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates directly to `System`, which upholds the `GlobalAlloc`
// contract; the wrapper only bumps a thread-local counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

use jet_core::item::Item;
use jet_core::object::{boxed, downcast_ref, take};
use jet_queue::spsc_channel;

#[test]
fn small_payload_event_path_is_allocation_free() {
    // Queue allocation happens up front, outside the measured window.
    let (mut p, mut c) = spsc_channel::<Item>(64);

    let n = allocs_during(|| {
        for i in 0..1_000u64 {
            let obj = boxed(i); // 8-byte payload: inline
            assert!(obj.is_inline());
            let item = Item::event(i as i64, obj);
            let copy = item.clone(); // broadcast-style duplication
            p.offer(item).unwrap();
            p.offer(copy).unwrap();
            let mut seen = 0;
            c.drain_batch(2, |it| {
                match it {
                    Item::Event { ts, obj } => {
                        assert_eq!(ts, i as i64);
                        assert_eq!(*downcast_ref::<u64>(obj.as_ref()), i);
                        assert_eq!(take::<u64>(obj), i);
                    }
                    _ => panic!("expected event"),
                }
                seen += 1;
            });
            assert_eq!(seen, 2);
        }
    });
    assert_eq!(n, 0, "small-event hot path allocated {n} times");
}

#[test]
fn inline_cap_sized_tuple_is_allocation_free() {
    let n = allocs_during(|| {
        for i in 0..100u64 {
            // (u64, u64, u64, i64) is exactly 32 bytes = INLINE_CAP.
            let obj = boxed((i, i * 2, i * 3, -(i as i64)));
            assert!(obj.is_inline());
            let copy = obj.clone_object();
            assert_eq!(
                take::<(u64, u64, u64, i64)>(copy),
                (i, i * 2, i * 3, -(i as i64))
            );
            drop(obj);
        }
    });
    assert_eq!(n, 0, "INLINE_CAP-sized path allocated {n} times");
}

#[test]
fn oversized_payloads_fall_back_to_the_heap() {
    let n = allocs_during(|| {
        let obj = boxed([0u8; 40]); // 40 > INLINE_CAP
        assert!(!obj.is_inline());
        assert_eq!(take::<[u8; 40]>(obj), [0u8; 40]);
    });
    assert!(n > 0, "oversized payload should have boxed");
}

//! End-to-end engine tests: DAGs wired by the planner, executed by both the
//! deterministic sequential driver and the threaded executor.

use jet_core::dag::{Dag, Edge};
use jet_core::exec::{run_sequential, spawn_threaded};
use jet_core::metrics::{SharedCounter, SharedHistogram};
use jet_core::plan::{build_local, LocalConfig};
use jet_core::processor::Guarantee;
use jet_core::processors::join::{BUILD_ORDINAL, PROBE_ORDINAL};
use jet_core::processors::*;
use jet_core::snapshot::SnapshotRegistry;
use jet_core::supplier;
use jet_core::Ts;
use jet_imdg::{Grid, SnapshotStore};
use jet_util::clock::manual_clock;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Timestamped sink output, shared with the collecting stage.
type Collected<T> = Arc<Mutex<Vec<(Ts, T)>>>;

fn registry_disabled() -> Arc<SnapshotRegistry> {
    Arc::new(SnapshotRegistry::disabled())
}

#[test]
fn map_filter_pipeline_batch() {
    let items: Arc<Vec<(Ts, u64)>> = Arc::new((0..1000u64).map(|i| (i as Ts, i)).collect());
    let out: Collected<u64> = Arc::new(Mutex::new(Vec::new()));

    let mut dag = Dag::new();
    let items2 = items.clone();
    let src = dag.vertex_with_parallelism(
        "src",
        2,
        supplier(move |_i| Box::new(VecSource::new(items2.clone()))),
    );
    let xform = dag.vertex_with_parallelism(
        "xform",
        2,
        supplier(|_| {
            Box::new(TransformP::new(vec![
                map_stage(|v: &u64| v * 2),
                filter_stage(|v: &u64| v.is_multiple_of(4)),
            ]))
        }),
    );
    let out2 = out.clone();
    let sink = dag.vertex_with_parallelism(
        "sink",
        1,
        supplier(move |_| Box::new(CollectSink::new(out2.clone()))),
    );
    dag.edge(Edge::between(src, xform));
    dag.edge(Edge::between(xform, sink));

    let cfg = LocalConfig::new(2);
    let exec = build_local(&dag, &cfg, &registry_disabled(), None).unwrap();
    let mut tasklets = exec.tasklets;
    assert!(
        run_sequential(&mut tasklets, 100_000),
        "pipeline did not complete"
    );

    let mut values: Vec<u64> = out.lock().iter().map(|(_, v)| *v).collect();
    values.sort_unstable();
    let expected: Vec<u64> = (0..1000u64)
        .map(|i| i * 2)
        .filter(|v| v.is_multiple_of(4))
        .collect();
    assert_eq!(values, expected);
}

#[test]
fn flat_map_fusion_preserves_order_per_instance() {
    let items: Arc<Vec<(Ts, u64)>> = Arc::new((0..100u64).map(|i| (i as Ts, i)).collect());
    let out: Collected<u64> = Arc::new(Mutex::new(Vec::new()));
    let mut dag = Dag::new();
    let items2 = items.clone();
    let src = dag.vertex_with_parallelism(
        "src",
        1,
        supplier(move |_i| Box::new(VecSource::new(items2.clone()))),
    );
    let fused = dag.vertex_with_parallelism(
        "fused",
        1,
        supplier(|_| {
            Box::new(TransformP::new(vec![
                flat_map_stage(|v: &u64| vec![*v, *v + 1000]),
                map_stage(|v: &u64| *v),
            ]))
        }),
    );
    let out2 = out.clone();
    let sink = dag.vertex_with_parallelism(
        "sink",
        1,
        supplier(move |_| Box::new(CollectSink::new(out2.clone()))),
    );
    dag.edge(Edge::between(src, fused).isolated());
    dag.edge(Edge::between(fused, sink).isolated());
    let exec = build_local(&dag, &LocalConfig::new(1), &registry_disabled(), None).unwrap();
    let mut tasklets = exec.tasklets;
    assert!(run_sequential(&mut tasklets, 100_000));
    let values: Vec<u64> = out.lock().iter().map(|(_, v)| *v).collect();
    assert_eq!(values.len(), 200);
    // Per-event expansion order is preserved: v then v+1000.
    for (i, chunk) in values.chunks(2).enumerate() {
        assert_eq!(chunk, &[i as u64, i as u64 + 1000]);
    }
}

/// Brute-force sliding window count for validation.
fn brute_force_counts(
    events: &[(Ts, u64)],
    size: Ts,
    slide: Ts,
) -> std::collections::HashMap<(u64, Ts), u64> {
    let mut out = std::collections::HashMap::new();
    let max_ts = events.iter().map(|(t, _)| *t).max().unwrap_or(0);
    let mut end = slide;
    while end <= max_ts + size {
        for (ts, key) in events {
            if *ts >= end - size && *ts < end {
                *out.entry((*key, end)).or_insert(0) += 1;
            }
        }
        end += slide;
    }
    out
}

#[test]
fn single_stage_sliding_window_matches_brute_force() {
    // 500 events, 7 keys, window 100 slide 20.
    let events: Vec<(Ts, u64)> = (0..500)
        .map(|i| ((i * 3 % 400) as Ts, (i % 7) as u64))
        .collect();
    let items = Arc::new(events.clone());
    let out: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));

    let mut dag = Dag::new();
    let items2 = items.clone();
    let src = dag.vertex_with_parallelism(
        "src",
        1,
        supplier(move |_i| Box::new(VecSource::new(items2.clone()))),
    );
    let win = dag.vertex_with_parallelism(
        "win",
        2,
        supplier(|_| {
            Box::new(SlidingWindowP::new::<u64>(
                WindowDef::sliding(100, 20),
                |v: &u64| *v,
                counting::<u64>(),
            ))
        }),
    );
    let out2 = out.clone();
    let sink = dag.vertex_with_parallelism(
        "sink",
        1,
        supplier(move |_| Box::new(CollectSink::new(out2.clone()))),
    );
    dag.edge(Edge::between(src, win).partitioned_by::<u64, _, _>(|v| *v));
    dag.edge(Edge::between(win, sink));

    let exec = build_local(&dag, &LocalConfig::new(2), &registry_disabled(), None).unwrap();
    let mut tasklets = exec.tasklets;
    assert!(run_sequential(&mut tasklets, 1_000_000));

    let expected = brute_force_counts(&events, 100, 20);
    let results = out.lock();
    let mut got: std::collections::HashMap<(u64, Ts), u64> = std::collections::HashMap::new();
    for (_, r) in results.iter() {
        let prev = got.insert((r.key, r.end), r.value);
        assert!(
            prev.is_none(),
            "duplicate window result for {:?}",
            (r.key, r.end)
        );
        assert_eq!(r.start, r.end - 100);
    }
    for ((k, end), count) in &expected {
        assert_eq!(
            got.get(&(*k, *end)),
            Some(count),
            "window (key={k}, end={end}) mismatch"
        );
    }
    // No spurious non-empty windows.
    for ((k, end), count) in &got {
        if *count > 0 {
            assert!(
                expected.contains_key(&(*k, *end)),
                "spurious window ({k}, {end})"
            );
        }
    }
}

#[test]
fn two_stage_window_equals_single_stage() {
    let events: Vec<(Ts, u64)> = (0..800)
        .map(|i| ((i * 7 % 600) as Ts, (i % 11) as u64))
        .collect();
    let items = Arc::new(events.clone());
    let out: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));

    let mut dag = Dag::new();
    let items2 = items.clone();
    let src = dag.vertex_with_parallelism(
        "src",
        2,
        supplier(move |_i| Box::new(VecSource::new(items2.clone()))),
    );
    let wdef = WindowDef::sliding(200, 50);
    let stage1 = dag.vertex_with_parallelism(
        "accumulate",
        2,
        supplier(move |_| {
            Box::new(AccumulateFrameP::new::<u64>(
                wdef,
                |v: &u64| *v,
                counting::<u64>(),
            ))
        }),
    );
    let stage2 = dag.vertex_with_parallelism(
        "combine",
        2,
        supplier(move |_| {
            Box::new(CombineFramesP::<u64, u64, u64>::new(
                wdef,
                counting::<u64>(),
            ))
        }),
    );
    let out2 = out.clone();
    let sink = dag.vertex_with_parallelism(
        "sink",
        1,
        supplier(move |_| Box::new(CollectSink::new(out2.clone()))),
    );
    dag.edge(Edge::between(src, stage1));
    dag.edge(Edge::between(stage1, stage2).partitioned_by::<FrameChunk<u64, u64>, _, _>(|c| c.key));
    dag.edge(Edge::between(stage2, sink));

    let exec = build_local(&dag, &LocalConfig::new(2), &registry_disabled(), None).unwrap();
    let mut tasklets = exec.tasklets;
    assert!(run_sequential(&mut tasklets, 1_000_000));

    let expected = brute_force_counts(&events, 200, 50);
    let results = out.lock();
    let mut got: std::collections::HashMap<(u64, Ts), u64> = std::collections::HashMap::new();
    for (_, r) in results.iter() {
        assert!(
            got.insert((r.key, r.end), r.value).is_none(),
            "duplicate window ({}, {})",
            r.key,
            r.end
        );
    }
    for ((k, end), count) in &expected {
        assert_eq!(got.get(&(*k, *end)), Some(count), "window ({k}, {end})");
    }
}

#[test]
fn hash_join_build_then_probe() {
    // Build side: (age, count) pairs. Probe side: orders keyed by age.
    let build: Arc<Vec<(Ts, (u64, u64))>> =
        Arc::new((0..10u64).map(|age| (0, (age, age * 100))).collect());
    let probe: Arc<Vec<(Ts, u64)>> = Arc::new((0..50u64).map(|i| (i as Ts, i % 10)).collect());
    let out: Collected<(u64, u64)> = Arc::new(Mutex::new(Vec::new()));

    let mut dag = Dag::new();
    let b2 = build.clone();
    let bsrc = dag.vertex_with_parallelism(
        "build-src",
        1,
        supplier(move |_| Box::new(VecSource::new(b2.clone()))),
    );
    let p2 = probe.clone();
    let psrc = dag.vertex_with_parallelism(
        "probe-src",
        1,
        supplier(move |_| Box::new(VecSource::new(p2.clone()))),
    );
    let join = dag.vertex_with_parallelism(
        "join",
        2,
        supplier(|_| {
            Box::new(HashJoinP::new(
                |b: &(u64, u64)| b.0,
                |p: &u64| *p,
                |p: &u64, matches: &[(u64, u64)]| {
                    matches.iter().map(|b| (*p, b.1)).collect::<Vec<_>>()
                },
            ))
        }),
    );
    let out2 = out.clone();
    let sink = dag.vertex_with_parallelism(
        "sink",
        1,
        supplier(move |_| Box::new(CollectSink::new(out2.clone()))),
    );
    // Build side: broadcast (every join instance needs the whole table),
    // higher priority so it completes before probing starts.
    dag.edge(
        Edge::between(bsrc, join)
            .to_ordinal(BUILD_ORDINAL)
            .broadcast()
            .priority(-1),
    );
    dag.edge(Edge::between(psrc, join).to_ordinal(PROBE_ORDINAL));
    dag.edge(Edge::between(join, sink));

    let exec = build_local(&dag, &LocalConfig::new(2), &registry_disabled(), None).unwrap();
    let mut tasklets = exec.tasklets;
    assert!(run_sequential(&mut tasklets, 1_000_000));

    let results = out.lock();
    assert_eq!(results.len(), 50);
    for (_, (age, joined)) in results.iter() {
        assert_eq!(*joined, age * 100);
    }
}

#[test]
fn generator_source_under_threaded_executor() {
    // 50k events/s for a bounded 5_000 events, threaded with 2 workers.
    let count = SharedCounter::new();
    let hist = SharedHistogram::new();

    let mut dag = Dag::new();
    let src = dag.vertex_with_parallelism(
        "gen",
        2,
        supplier(move |_| {
            Box::new(
                GeneratorSource::new(200_000, Arc::new(|seq, _ts| jet_core::boxed(seq)))
                    .with_limit(5_000),
            )
        }),
    );
    let c2 = count.clone();
    let h2 = hist.clone();
    let sink = dag.vertex_with_parallelism(
        "sink",
        2,
        supplier(move |_| Box::new(LatencySink::new(h2.clone(), c2.clone()))),
    );
    dag.edge(Edge::between(src, sink));

    let cfg = LocalConfig::new(2);
    let exec = build_local(&dag, &cfg, &registry_disabled(), None).unwrap();
    let cancelled = exec.cancelled.clone();
    let handle = spawn_threaded(exec.tasklets, 2, cancelled);
    handle.join();
    assert_eq!(
        count.get(),
        5_000,
        "every generated event must reach the sink"
    );
    assert_eq!(hist.count(), 5_000);
}

#[test]
fn exactly_once_snapshot_and_restore_counts_once() {
    // Stage 1: run a generator -> stateful counter with exactly-once
    // snapshots under a manual clock; cancel mid-stream; restore from the
    // last complete snapshot and run to the end; total counted per key must
    // equal the events at-or-before the snapshot plus replayed remainder,
    // i.e. exactly the full stream (no loss, no double counting).
    let grid = Grid::with_partition_count(2, 1, 32);
    let store = SnapshotStore::new(&grid, 42);
    let (manual, clock) = manual_clock();

    const TOTAL: u64 = 4_000;
    const RATE: u64 = 1_000_000; // 1M/s -> all due within 4 ms

    let make_dag = |out: Collected<WindowResult<u64, u64>>| {
        let mut dag = Dag::new();
        let src = dag.vertex_with_parallelism(
            "gen",
            2,
            supplier(move |_| {
                Box::new(
                    GeneratorSource::new(RATE, Arc::new(|seq, _ts| jet_core::boxed(seq % 10)))
                        .with_limit(TOTAL),
                )
            }),
        );
        // Tumbling window over the whole stream counts per key.
        let win = dag.vertex_with_parallelism(
            "win",
            2,
            supplier(|_| {
                Box::new(SlidingWindowP::new::<u64>(
                    WindowDef::tumbling(1_000_000_000),
                    |v: &u64| *v,
                    counting::<u64>(),
                ))
            }),
        );
        let out2 = out.clone();
        let sink = dag.vertex_with_parallelism(
            "sink",
            1,
            supplier(move |_| Box::new(CollectSink::new(out2.clone()))),
        );
        dag.edge(Edge::between(src, win).partitioned_by::<u64, _, _>(|v| *v));
        dag.edge(Edge::between(win, sink));
        dag
    };

    // --- First execution: cancel after at least one complete snapshot.
    let out1: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
    let dag = make_dag(out1.clone());
    let registry = Arc::new(SnapshotRegistry::new(store.clone(), 0));
    let cfg = LocalConfig::new(2)
        .with_guarantee(Guarantee::ExactlyOnce)
        .with_clock(clock.clone());
    let exec = build_local(&dag, &cfg, &registry, None).unwrap();
    let mut tasklets = exec.tasklets;
    // Run for 2 ms of virtual time (half the stream), then snapshot.
    for _ in 0..20 {
        manual.advance(100_000); // 0.1 ms
        run_sequential(&mut tasklets, 200);
    }
    registry.trigger().unwrap();
    for _ in 0..50 {
        run_sequential(&mut tasklets, 200);
        if registry.completed() >= 1 {
            break;
        }
        manual.advance(10_000);
    }
    assert_eq!(registry.completed(), 1, "snapshot did not complete");
    // Hard-stop this execution (simulated crash: drop everything).
    drop(tasklets);

    // --- Recovery: restore from snapshot 1 and run to completion.
    let out2: Collected<WindowResult<u64, u64>> = Arc::new(Mutex::new(Vec::new()));
    let dag = make_dag(out2.clone());
    let registry2 = Arc::new(SnapshotRegistry::new(store.clone(), 0));
    let exec = build_local(&dag, &cfg, &registry2, Some((&store, 1))).unwrap();
    let mut tasklets = exec.tasklets;
    for _ in 0..200 {
        manual.advance(1_000_000);
        if run_sequential(&mut tasklets, 2_000) {
            break;
        }
    }
    assert!(tasklets.is_empty(), "recovered job did not finish");

    // Every key counted exactly TOTAL/10 across both... results come only
    // from the recovered run (windows emit on completion).
    let results = out2.lock();
    let mut per_key: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for (_, r) in results.iter() {
        *per_key.entry(r.key).or_insert(0) += r.value;
    }
    for k in 0..10u64 {
        assert_eq!(
            per_key.get(&k).copied().unwrap_or(0),
            TOTAL / 10,
            "key {k} lost or duplicated events across recovery"
        );
    }
}

#[test]
fn cancellation_drains_pipeline() {
    let count = SharedCounter::new();
    let mut dag = Dag::new();
    let src = dag.vertex_with_parallelism(
        "gen",
        1,
        supplier(move |_| {
            Box::new(GeneratorSource::new(
                1_000_000,
                Arc::new(|seq, _| jet_core::boxed(seq)),
            ))
        }),
    );
    let c2 = count.clone();
    let sink = dag.vertex_with_parallelism(
        "sink",
        1,
        supplier(move |_| Box::new(CountSink::new(c2.clone()))),
    );
    dag.edge(Edge::between(src, sink));
    let exec = build_local(&dag, &LocalConfig::new(1), &registry_disabled(), None).unwrap();
    let cancelled = exec.cancelled.clone();
    let handle = spawn_threaded(exec.tasklets, 1, cancelled.clone());
    while count.get() < 1000 {
        std::thread::yield_now();
    }
    cancelled.store(true, Ordering::SeqCst);
    handle.join(); // must terminate
    assert!(count.get() >= 1000);
}

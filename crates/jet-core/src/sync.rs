//! Concurrency shim for jet-core's lock-free pieces (the trace rings):
//! `std` types normally, loom model-checked types under
//! `RUSTFLAGS="--cfg loom"`. See `jet_util::sync` for the rules.

pub use jet_util::sync::*;

//! Flight recorder + spike forensics: *why* was the tail slow?
//!
//! PR 1's metrics say how much time the job spent and PR 2's trace says
//! where — but both are passive: when a bench shows a 631 ms p99.99
//! excursion, someone still has to eyeball the trace by hand. This module
//! closes the loop:
//!
//! * [`LatencyWatchdog`] — an online detector fed by the latency sink. It
//!   maintains a rolling latency histogram per epoch of *virtual* time and
//!   flags emissions whose latency exceeds an adaptive threshold
//!   (`multiplier × previous-epoch p99`, floored) or a configured SLO.
//!   Consecutive detections merge into bounded *incidents*.
//! * [`FlightRecorder`] — an always-on bounded ring of drained span records
//!   plus a periodic metrics-snapshot time series. When the watchdog opens
//!   an incident, the recorder *freezes* the window around it: spans that
//!   would be evicted from the rolling ring are moved into the incident's
//!   frozen store instead of being discarded.
//! * [`attribute`] — the critical-path attribution engine: given the span
//!   records overlapping one spiked event's journey `[event_ts, emitted]`,
//!   it partitions that interval into named causes (queue wait, tasklet
//!   execution, backpressure stall, watermark straggler gap, snapshot
//!   phase, network send/recv, fault detection, recovery, post-recovery
//!   catch-up). The partition is exact: the per-cause nanos always sum to
//!   the measured end-to-end spike latency.
//!
//! Cost discipline matches the tracer: everything here runs in *real* time
//! only — observing a latency sample, ingesting drained spans, and taking
//! metrics snapshots never advance the virtual clock, so an instrumented
//! run produces bit-identical percentiles to an uninstrumented one.

use crate::metrics::{json_escape, MetricsSnapshot};
use crate::trace::{TraceData, TraceEvent, TraceKind, TrackInfo};
use jet_util::Histogram;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;

const MS: u64 = 1_000_000;

// ---------------------------------------------------------------- watchdog

/// Tuning for the online spike detector.
#[derive(Clone, Debug)]
pub struct WatchdogConfig {
    /// Rolling-histogram epoch on the virtual timeline. The detection
    /// threshold adapts once per epoch from the completed epoch's p99.
    pub epoch_nanos: u64,
    /// Spike when `latency >= multiplier × previous-epoch p99`.
    pub multiplier: f64,
    /// Absolute floor under which nothing counts as a spike, however quiet
    /// the baseline epoch was.
    pub min_spike_nanos: u64,
    /// Hard SLO: any emission at or above this latency is a spike, even
    /// before the first epoch establishes an adaptive baseline.
    pub slo_nanos: Option<u64>,
    /// Detections closer together than this merge into one incident.
    pub quiet_gap_nanos: u64,
    /// Bound on remembered incidents; further ones are counted, not kept.
    pub max_incidents: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            epoch_nanos: 500 * MS,
            multiplier: 3.0,
            min_spike_nanos: 20 * MS,
            slo_nanos: None,
            quiet_gap_nanos: 100 * MS,
            max_incidents: 64,
        }
    }
}

/// One detected tail-latency excursion: a run of spiked emissions merged
/// under the quiet-gap rule, keyed by its worst (peak) event.
#[derive(Clone, Debug)]
pub struct SpikeIncident {
    pub id: u32,
    /// Virtual instant of the first spiked emission.
    pub first_detected: u64,
    /// Virtual instant of the most recent spiked emission.
    pub last_detected: u64,
    /// Spiked emissions merged into this incident.
    pub samples: u64,
    /// Worst latency observed in the incident.
    pub peak_latency: u64,
    /// Occurrence timestamp of the peak event (window end for windowed
    /// queries — the instant the paper's latency clock started).
    pub peak_event_ts: u64,
    /// Virtual instant the peak event was emitted at the sink.
    pub peak_emitted_at: u64,
    /// Detection threshold in force when the incident opened.
    pub threshold: u64,
}

struct WatchdogInner {
    cfg: WatchdogConfig,
    epoch_start: Option<u64>,
    current: Histogram,
    /// p99 of the last completed epoch; None until one completes.
    baseline_p99: Option<u64>,
    incidents: Vec<SpikeIncident>,
    observed: u64,
    suppressed: u64,
    next_id: u32,
}

impl WatchdogInner {
    /// The adaptive threshold currently in force (`u64::MAX` = armed only
    /// by the SLO until the first epoch completes).
    fn threshold(&self) -> u64 {
        let adaptive = match self.baseline_p99 {
            Some(p99) => {
                let scaled = (p99 as f64 * self.cfg.multiplier) as u64;
                scaled.max(self.cfg.min_spike_nanos)
            }
            None => u64::MAX,
        };
        adaptive.min(self.cfg.slo_nanos.unwrap_or(u64::MAX))
    }
}

/// Cheap-to-clone handle to the spike detector; `disabled()` is a no-op so
/// the latency sink can hold one unconditionally.
#[derive(Clone, Default)]
pub struct LatencyWatchdog {
    inner: Option<Arc<Mutex<WatchdogInner>>>,
}

impl LatencyWatchdog {
    pub fn disabled() -> LatencyWatchdog {
        LatencyWatchdog { inner: None }
    }

    pub fn with_config(cfg: WatchdogConfig) -> LatencyWatchdog {
        LatencyWatchdog {
            inner: Some(Arc::new(Mutex::new(WatchdogInner {
                cfg,
                epoch_start: None,
                current: Histogram::latency(),
                baseline_p99: None,
                incidents: Vec::new(),
                observed: 0,
                suppressed: 0,
                next_id: 0,
            }))),
        }
    }

    pub fn enabled() -> LatencyWatchdog {
        Self::with_config(WatchdogConfig::default())
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Feed one emission: `now` is the virtual emission instant, `event_ts`
    /// the event's occurrence timestamp, `latency = now - event_ts`. Called
    /// from the latency sink; costs real time only.
    // jet-analyze: allow(alloc, block) — watchdog bookkeeping: short uncontended lock; the spike ring is capacity-bounded
    pub fn observe(&self, now: u64, event_ts: u64, latency: u64) {
        let Some(inner) = &self.inner else { return };
        let mut w = inner.lock();
        w.observed += 1;
        // Roll epochs: the completed epoch's p99 becomes the baseline.
        match w.epoch_start {
            None => w.epoch_start = Some(now),
            Some(start) => {
                if now >= start + w.cfg.epoch_nanos {
                    if w.current.count() > 0 {
                        w.baseline_p99 = Some(w.current.percentile(99.0));
                    }
                    w.current.clear();
                    // Snap forward (don't loop per missed epoch on gaps).
                    let missed = (now - start) / w.cfg.epoch_nanos;
                    w.epoch_start = Some(start + missed * w.cfg.epoch_nanos);
                }
            }
        }
        let threshold = w.threshold();
        if latency < threshold {
            // Only non-spiked samples feed the baseline: a spike-heavy epoch
            // must not inflate the next epoch's threshold and mask the tail
            // of its own incident.
            w.current.record(latency);
            return;
        }
        // Spiked: merge into the open incident or start a new one.
        let quiet_gap = w.cfg.quiet_gap_nanos;
        if let Some(last) = w.incidents.last_mut() {
            if now <= last.last_detected.saturating_add(quiet_gap) {
                last.last_detected = last.last_detected.max(now);
                last.samples += 1;
                if latency > last.peak_latency {
                    last.peak_latency = latency;
                    last.peak_event_ts = event_ts;
                    last.peak_emitted_at = now;
                }
                return;
            }
        }
        if w.incidents.len() >= w.cfg.max_incidents {
            w.suppressed += 1;
            return;
        }
        let id = w.next_id;
        w.next_id += 1;
        w.incidents.push(SpikeIncident {
            id,
            first_detected: now,
            last_detected: now,
            samples: 1,
            peak_latency: latency,
            peak_event_ts: event_ts,
            peak_emitted_at: now,
            threshold,
        });
    }

    /// Snapshot of all incidents so far.
    pub fn incidents(&self) -> Vec<SpikeIncident> {
        match &self.inner {
            Some(inner) => inner.lock().incidents.clone(),
            None => Vec::new(),
        }
    }

    /// Forget incidents (and suppression counts) recorded so far — used
    /// after warm-up so cold-start noise does not pollute the report. The
    /// rolling baseline is kept: warm-up is exactly what it should learn.
    pub fn clear_incidents(&self) {
        if let Some(inner) = &self.inner {
            let mut w = inner.lock();
            w.incidents.clear();
            w.suppressed = 0;
        }
    }

    /// Current effective detection threshold (`u64::MAX` until armed).
    pub fn threshold(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.lock().threshold(),
            None => u64::MAX,
        }
    }

    /// (samples observed, spikes suppressed by the incident cap).
    pub fn stats(&self) -> (u64, u64) {
        match &self.inner {
            Some(inner) => {
                let w = inner.lock();
                (w.observed, w.suppressed)
            }
            None => (0, 0),
        }
    }
}

// --------------------------------------------------------------- recorder

/// Tuning for the always-on flight-recorder ring.
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Rolling span retention horizon (virtual nanos behind the newest
    /// ingested record).
    pub span_horizon_nanos: u64,
    /// Hard cap on rolling-ring records (32 B each).
    pub span_capacity: usize,
    /// Metrics time-series snapshot cadence (virtual nanos).
    pub snapshot_cadence_nanos: u64,
    /// Snapshots kept in the rolling series.
    pub snapshot_capacity: usize,
    /// Frozen window padding before the peak event's occurrence.
    pub pre_roll_nanos: u64,
    /// Frozen window padding after the last detection.
    pub post_roll_nanos: u64,
    /// Per-incident cap on frozen spans.
    pub frozen_span_capacity: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            span_horizon_nanos: 4_000 * MS,
            span_capacity: 262_144,
            snapshot_cadence_nanos: 50 * MS,
            snapshot_capacity: 256,
            pre_roll_nanos: 20 * MS,
            post_roll_nanos: 20 * MS,
            frozen_span_capacity: 65_536,
        }
    }
}

/// The span/snapshot window frozen around one incident.
struct FrozenWindow {
    incident: SpikeIncident,
    lo: u64,
    hi: u64,
    /// Spans moved here when the rolling ring evicted them.
    events: Vec<TraceEvent>,
    snapshots: Vec<(u64, MetricsSnapshot)>,
    truncated: u64,
}

struct RecorderInner {
    cfg: FlightConfig,
    names: Vec<String>,
    tracks: Vec<TrackInfo>,
    ring: VecDeque<TraceEvent>,
    newest_ts: u64,
    ingested: u64,
    /// Spans evicted from the rolling ring *outside* any frozen window.
    evicted: u64,
    snapshots: VecDeque<(u64, MetricsSnapshot)>,
    next_snapshot_at: u64,
    windows: Vec<FrozenWindow>,
}

impl RecorderInner {
    fn freeze_or_evict(&mut self, ev: TraceEvent) {
        let ts = ev.rec.ts;
        for w in self.windows.iter_mut() {
            if ts >= w.lo && ts <= w.hi {
                if w.events.len() < self.cfg.frozen_span_capacity {
                    w.events.push(ev);
                } else {
                    w.truncated += 1;
                }
                return;
            }
        }
        self.evicted += 1;
    }

    fn prune(&mut self) {
        let floor = self.newest_ts.saturating_sub(self.cfg.span_horizon_nanos);
        while self.ring.len() > self.cfg.span_capacity
            || self.ring.front().is_some_and(|e| e.rec.ts < floor)
        {
            let ev = self.ring.pop_front().expect("non-empty: condition held");
            self.freeze_or_evict(ev);
        }
        while self.snapshots.len() > self.cfg.snapshot_capacity {
            let (at, snap) = self.snapshots.pop_front().expect("non-empty");
            if let Some(w) = self.windows.iter_mut().find(|w| at >= w.lo && at <= w.hi) {
                w.snapshots.push((at, snap));
            }
        }
    }

    fn sync_incidents(&mut self, incidents: &[SpikeIncident]) {
        for inc in incidents {
            let lo = inc.peak_event_ts.saturating_sub(self.cfg.pre_roll_nanos);
            let hi = inc.last_detected.saturating_add(self.cfg.post_roll_nanos);
            match self.windows.iter_mut().find(|w| w.incident.id == inc.id) {
                Some(w) => {
                    w.incident = inc.clone();
                    w.lo = w.lo.min(lo);
                    w.hi = w.hi.max(hi);
                }
                None => self.windows.push(FrozenWindow {
                    incident: inc.clone(),
                    lo,
                    hi,
                    events: Vec::new(),
                    snapshots: Vec::new(),
                    truncated: 0,
                }),
            }
        }
    }
}

/// Cheap-to-clone handle to the flight recorder. Carries the watchdog whose
/// incidents it freezes windows for; `disabled()` is a no-op everywhere.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<RecorderInner>>>,
    watchdog: LatencyWatchdog,
}

impl FlightRecorder {
    pub fn disabled() -> FlightRecorder {
        FlightRecorder {
            inner: None,
            watchdog: LatencyWatchdog::disabled(),
        }
    }

    pub fn with_config(cfg: FlightConfig, watchdog: LatencyWatchdog) -> FlightRecorder {
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(RecorderInner {
                cfg,
                names: vec!["?".to_string()],
                tracks: Vec::new(),
                ring: VecDeque::new(),
                newest_ts: 0,
                ingested: 0,
                evicted: 0,
                snapshots: VecDeque::new(),
                next_snapshot_at: 0,
                windows: Vec::new(),
            }))),
            watchdog,
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The watchdog this recorder freezes windows for.
    pub fn watchdog(&self) -> &LatencyWatchdog {
        &self.watchdog
    }

    /// Ingest freshly drained trace data (events `from..`). Syncs incident
    /// windows from the watchdog first so eviction freezes rather than
    /// discards in-window spans. Returns `data.events.len()` for use as the
    /// next call's `from` cursor.
    pub fn ingest(&self, data: &TraceData, from: usize) -> usize {
        let Some(inner) = &self.inner else {
            return data.events.len();
        };
        let mut r = inner.lock();
        let incidents = self.watchdog.incidents();
        r.sync_incidents(&incidents);
        if data.names.len() > r.names.len() {
            r.names = data.names.clone();
        }
        if data.tracks.len() > r.tracks.len() {
            r.tracks = data.tracks.clone();
        }
        for ev in data.events.iter().skip(from) {
            r.newest_ts = r.newest_ts.max(ev.rec.ts);
            r.ring.push_back(*ev);
            r.ingested += 1;
        }
        r.prune();
        data.events.len()
    }

    /// Is a metrics time-series sample due at virtual instant `now`?
    pub fn snapshot_due(&self, now: u64) -> bool {
        match &self.inner {
            Some(inner) => now >= inner.lock().next_snapshot_at,
            None => false,
        }
    }

    /// Virtual nanos until the next metrics snapshot is due (0 if overdue).
    /// `None` when disabled — callers use this to chunk long runs at the
    /// snapshot cadence without polling every quantum.
    pub fn next_snapshot_in(&self, now: u64) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().next_snapshot_at.saturating_sub(now))
    }

    /// Append one metrics snapshot to the time series.
    pub fn record_snapshot(&self, now: u64, snap: MetricsSnapshot) {
        let Some(inner) = &self.inner else { return };
        let mut r = inner.lock();
        let cadence = r.cfg.snapshot_cadence_nanos;
        r.next_snapshot_at = now + cadence;
        r.snapshots.push_back((now, snap));
        r.prune();
    }

    /// (spans ingested, spans evicted un-frozen, spans retained, snapshots
    /// retained) — the recorder's own fidelity counters.
    pub fn stats(&self) -> (u64, u64, usize, usize) {
        match &self.inner {
            Some(inner) => {
                let r = inner.lock();
                let frozen: usize = r.windows.iter().map(|w| w.events.len()).sum();
                (
                    r.ingested,
                    r.evicted,
                    r.ring.len() + frozen,
                    r.snapshots.len() + r.windows.iter().map(|w| w.snapshots.len()).sum::<usize>(),
                )
            }
            None => (0, 0, 0, 0),
        }
    }

    /// Freeze-sync with the watchdog and attribute every incident: the
    /// closed loop's output. `cfg` carries cluster facts the span stream
    /// alone cannot know (the one-way network latency).
    pub fn forensics(&self, cfg: &AttributionConfig) -> Vec<IncidentReport> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut r = inner.lock();
        let incidents = self.watchdog.incidents();
        r.sync_incidents(&incidents);
        let mut out = Vec::with_capacity(r.windows.len());
        for w in &r.windows {
            // Window spans live in the frozen store (evicted) and/or still
            // in the rolling ring; an event is in exactly one of the two.
            let mut events: Vec<TraceEvent> = w
                .events
                .iter()
                .chain(
                    r.ring
                        .iter()
                        .filter(|e| e.rec.ts >= w.lo && e.rec.ts <= w.hi),
                )
                .copied()
                .collect();
            events.sort_by_key(|e| e.rec.ts);
            let snapshots = w.snapshots.len()
                + r.snapshots
                    .iter()
                    .filter(|(at, _)| *at >= w.lo && *at <= w.hi)
                    .count();
            let attribution = attribute(
                &events,
                &r.names,
                w.incident.peak_event_ts,
                w.incident.peak_emitted_at,
                cfg,
            );
            out.push(IncidentReport {
                incident: w.incident.clone(),
                window_lo: w.lo,
                window_hi: w.hi,
                window_events: events.len(),
                window_truncated: w.truncated,
                window_snapshots: snapshots,
                attribution,
            });
        }
        out.sort_by_key(|r| std::cmp::Reverse(r.incident.peak_latency));
        out
    }

    /// Attribute an arbitrary event journey `[t0, t1]` from whatever spans
    /// the rolling ring and frozen windows still hold — the full-
    /// distribution generalization of incident forensics. A disabled
    /// recorder yields an all-queue-wait decomposition (still exact-sum).
    pub fn attribute_window(&self, t0: u64, t1: u64, cfg: &AttributionConfig) -> Attribution {
        let Some(inner) = &self.inner else {
            return attribute(&[], &[], t0, t1, cfg);
        };
        let r = inner.lock();
        let overlaps = |e: &&TraceEvent| e.rec.ts <= t1 && e.rec.ts.saturating_add(e.rec.dur) >= t0;
        // An event lives in exactly one of the two stores (frozen windows
        // receive spans only on eviction from the ring).
        let mut events: Vec<TraceEvent> = r
            .windows
            .iter()
            .flat_map(|w| w.events.iter())
            .filter(overlaps)
            .chain(r.ring.iter().filter(overlaps))
            .copied()
            .collect();
        events.sort_by_key(|e| e.rec.ts);
        attribute(&events, &r.names, t0, t1, cfg)
    }
}

// ------------------------------------------------------------- provenance

/// One sampled event journey: occurrence → emission at the latency sink.
#[derive(Clone, Copy, Debug)]
pub struct Stamp {
    pub event_ts: u64,
    pub emitted_at: u64,
    pub latency: u64,
}

/// Tuning for the provenance sampler.
#[derive(Clone, Debug)]
pub struct ProvenanceConfig {
    /// Stride-sampled buffer cap; hitting it doubles the stride and
    /// decimates in place (deterministic, no RNG).
    pub capacity: usize,
    /// Largest-latency stamps always retained, so extreme-percentile
    /// exemplars never depend on stride luck.
    pub top_k: usize,
}

impl Default for ProvenanceConfig {
    fn default() -> Self {
        ProvenanceConfig {
            capacity: 4096,
            top_k: 64,
        }
    }
}

struct SamplerInner {
    cfg: ProvenanceConfig,
    shift: u32,
    observed: u64,
    sampled: Vec<Stamp>,
    /// Ascending by latency, bounded at `top_k`.
    top: Vec<Stamp>,
}

/// Cheap-to-clone per-event provenance sampler feeding the latency sink's
/// `(event_ts, emitted_at)` pairs into a bounded exemplar store, so any
/// percentile of the measured distribution can later be matched to a
/// concrete journey and decomposed by [`FlightRecorder::attribute_window`].
/// `disabled()` is a single-branch no-op on the hot path.
#[derive(Clone, Default)]
pub struct ProvenanceSampler {
    inner: Option<Arc<Mutex<SamplerInner>>>,
}

impl ProvenanceSampler {
    pub fn disabled() -> ProvenanceSampler {
        ProvenanceSampler { inner: None }
    }

    pub fn enabled() -> ProvenanceSampler {
        ProvenanceSampler::with_config(ProvenanceConfig::default())
    }

    pub fn with_config(cfg: ProvenanceConfig) -> ProvenanceSampler {
        ProvenanceSampler {
            inner: Some(Arc::new(Mutex::new(SamplerInner {
                cfg,
                shift: 0,
                observed: 0,
                sampled: Vec::new(),
                top: Vec::new(),
            }))),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one emitted event's journey.
    // jet-analyze: allow(alloc, block) — sampling path: only sampled events enter; lock and maps bounded by the sample budget
    pub fn observe(&self, event_ts: u64, emitted_at: u64, latency: u64) {
        let Some(inner) = &self.inner else { return };
        let mut p = inner.lock();
        p.observed += 1;
        let stamp = Stamp {
            event_ts,
            emitted_at,
            latency,
        };
        let pos = p.top.partition_point(|s| s.latency < latency);
        if p.top.len() < p.cfg.top_k {
            p.top.insert(pos, stamp);
        } else if pos > 0 {
            p.top.insert(pos, stamp);
            p.top.remove(0);
        }
        let mask = (1u64 << p.shift.min(63)) - 1;
        if p.observed & mask == 0 {
            p.sampled.push(stamp);
            if p.sampled.len() >= p.cfg.capacity {
                // Halve by keeping even indices; the stride doubles for
                // the rest of the run.
                let mut i = 0usize;
                p.sampled.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                p.shift += 1;
            }
        }
    }

    /// Drop everything sampled so far (the warmup boundary).
    pub fn clear(&self) {
        let Some(inner) = &self.inner else { return };
        let mut p = inner.lock();
        p.shift = 0;
        p.observed = 0;
        p.sampled.clear();
        p.top.clear();
    }

    /// (journeys observed, stamps retained, current sample shift).
    pub fn stats(&self) -> (u64, usize, u32) {
        match &self.inner {
            Some(inner) => {
                let p = inner.lock();
                (p.observed, p.sampled.len() + p.top.len(), p.shift)
            }
            None => (0, 0, 0),
        }
    }

    /// The sampled journey whose latency best matches `target_nanos`.
    /// Within 2% relative error the *newest* emission wins — its spans are
    /// the most likely to still sit in the flight ring's horizon — else
    /// the closest latency.
    pub fn exemplar(&self, target_nanos: u64) -> Option<Stamp> {
        let inner = self.inner.as_ref()?;
        let p = inner.lock();
        let tol = target_nanos / 50;
        let mut in_tol: Option<Stamp> = None;
        let mut closest: Option<(u64, Stamp)> = None;
        for s in p.sampled.iter().chain(p.top.iter()) {
            let err = s.latency.abs_diff(target_nanos);
            if err <= tol && in_tol.is_none_or(|b| s.emitted_at > b.emitted_at) {
                in_tol = Some(*s);
            }
            if closest.is_none_or(|(e, _)| err < e) {
                closest = Some((err, *s));
            }
        }
        in_tol.or(closest.map(|(_, s)| s))
    }
}

// ------------------------------------------------------------ attribution

/// Named causes a spike decomposes into, in *priority* order: when two
/// causes overlap in time, the earlier variant wins the overlap. Recovery-
/// family causes outrank execution so a fault spike never blames whichever
/// innocent vertex happened to run during the outage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cause {
    /// Fault injected/first suspicion → member fenced.
    FaultDetection,
    /// Fence → execution rebuilt from the latest complete snapshot.
    Recovery,
    /// Rebuild → the spiked event finally emitted (source replay).
    RecoveryCatchup,
    /// Aligned snapshot phase in progress.
    SnapshotPhase,
    /// Producer blocked on a full downstream queue.
    BackpressureStall,
    /// Time in flight on a distributed edge (receive half).
    NetRecv,
    /// Time in flight on a distributed edge (send half).
    NetSend,
    /// Watermark coalescing silent longer than the straggler threshold.
    WatermarkGap,
    /// A tasklet timeslice was executing.
    TaskletExec,
    /// Residual: the event (or its watermark) sat in queues.
    QueueWait,
}

pub const ALL_CAUSES: [Cause; 10] = [
    Cause::FaultDetection,
    Cause::Recovery,
    Cause::RecoveryCatchup,
    Cause::SnapshotPhase,
    Cause::BackpressureStall,
    Cause::NetRecv,
    Cause::NetSend,
    Cause::WatermarkGap,
    Cause::TaskletExec,
    Cause::QueueWait,
];

impl Cause {
    pub fn name(&self) -> &'static str {
        match self {
            Cause::FaultDetection => "fault_detection",
            Cause::Recovery => "recovery",
            Cause::RecoveryCatchup => "recovery_catchup",
            Cause::SnapshotPhase => "snapshot_phase",
            Cause::BackpressureStall => "backpressure_stall",
            Cause::NetRecv => "net_recv",
            Cause::NetSend => "net_send",
            Cause::WatermarkGap => "watermark_gap",
            Cause::TaskletExec => "tasklet_exec",
            Cause::QueueWait => "queue_wait",
        }
    }

    /// Coarse family used for "is this a recovery-phase spike or a compute
    /// spike?" verdicts.
    pub fn group(&self) -> &'static str {
        match self {
            Cause::FaultDetection | Cause::Recovery | Cause::RecoveryCatchup => "recovery",
            Cause::SnapshotPhase => "snapshot",
            Cause::NetRecv | Cause::NetSend => "network",
            Cause::BackpressureStall | Cause::WatermarkGap | Cause::QueueWait => "dataflow",
            Cause::TaskletExec => "compute",
        }
    }

    fn priority(&self) -> usize {
        *self as usize
    }
}

/// Cluster facts the attribution sweep needs beyond the span stream.
#[derive(Clone, Debug)]
pub struct AttributionConfig {
    /// One-way network latency; a batch's transit splits evenly into the
    /// send half and the receive half.
    pub net_latency_hint: u64,
    /// Backpressure-stall instants closer than this merge into one stall
    /// interval.
    pub stall_merge_gap_nanos: u64,
    /// Watermark-coalesce silence longer than this counts as a straggler
    /// gap.
    pub straggler_gap_nanos: u64,
}

impl Default for AttributionConfig {
    fn default() -> Self {
        AttributionConfig {
            net_latency_hint: 500_000,
            stall_merge_gap_nanos: MS,
            straggler_gap_nanos: 20 * MS,
        }
    }
}

/// One cause's share of a spike.
#[derive(Clone, Debug)]
pub struct CauseSlice {
    pub cause: Cause,
    pub nanos: u64,
    /// `nanos / total` (0 when the window is empty).
    pub share: f64,
    /// Human hint: dominant vertex, snapshot id, fence target, …
    pub detail: String,
}

/// Exact decomposition of one spiked event's `[t0, t1]` journey.
#[derive(Clone, Debug)]
pub struct Attribution {
    pub t0: u64,
    pub t1: u64,
    pub total_nanos: u64,
    /// Every cause, largest first; nanos sum to `total_nanos` exactly.
    pub slices: Vec<CauseSlice>,
    pub top_cause: Cause,
    pub top_group: &'static str,
    /// Dominant vertex when the top cause is execution/stall-shaped.
    pub blamed_vertex: Option<String>,
}

struct Interval {
    lo: u64,
    hi: u64,
    cause: Cause,
    name: u32,
}

/// Decompose `[t0, t1]` (the spiked event's occurrence → emission) into
/// named causes using the span records overlapping the window. Overlaps
/// resolve by [`Cause`] priority; uncovered time is queue wait. The slice
/// nanos sum to `t1 - t0` exactly, by construction.
pub fn attribute(
    events: &[TraceEvent],
    names: &[String],
    t0: u64,
    t1: u64,
    cfg: &AttributionConfig,
) -> Attribution {
    let total = t1.saturating_sub(t0);
    let mut ivs: Vec<Interval> = Vec::new();
    let mut push = |lo: u64, hi: u64, cause: Cause, name: u32| {
        let (lo, hi) = (lo.max(t0), hi.min(t1));
        if lo < hi {
            ivs.push(Interval {
                lo,
                hi,
                cause,
                name,
            });
        }
    };

    // Fault detection: the earliest trouble signal (fault injection or
    // first suspicion) after the previous fence, up to each fence verdict.
    let lookup = |n: &str| names.iter().position(|x| x == n).map(|i| i as u32);
    let n_fence = lookup("fence");
    let n_suspect = lookup("suspect");
    let n_recovery = lookup("recovery");
    let mut prev_fence = 0u64;
    let mut first_trouble: Option<u64> = None;
    for e in events {
        if e.rec.kind != TraceKind::Detect || Some(e.rec.name) != n_fence {
            continue;
        }
        let fence_at = e.rec.ts;
        let start = events
            .iter()
            .filter(|s| {
                (s.rec.kind == TraceKind::FaultInject
                    || (s.rec.kind == TraceKind::Detect && Some(s.rec.name) == n_suspect))
                    && s.rec.ts > prev_fence
                    && s.rec.ts <= fence_at
            })
            .map(|s| s.rec.ts)
            .min()
            .unwrap_or(fence_at);
        push(start, fence_at, Cause::FaultDetection, e.rec.name);
        first_trouble = Some(first_trouble.map_or(start, |p: u64| p.min(start)));
        prev_fence = fence_at;
    }

    // Recovery spans carry their duration (fence → rebuild complete); the
    // rebuild's end starts the catch-up clock, which runs until the spiked
    // event finally emerged at t1: its emission was gated on source replay.
    // A zero-duration span still marks the completion instant — in the
    // simulator the rebuild itself costs no virtual time, and the entire
    // outage manifests as detection + catch-up.
    let mut latest_recovery_end: Option<u64> = None;
    for e in events {
        if e.rec.kind != TraceKind::Recovery || Some(e.rec.name) != n_recovery {
            continue;
        }
        let end = e.rec.ts + e.rec.dur;
        if e.rec.dur > 0 {
            push(e.rec.ts, end, Cause::Recovery, e.rec.name);
        }
        if end >= t0 && end <= t1 {
            latest_recovery_end = Some(latest_recovery_end.map_or(end, |p: u64| p.max(end)));
        }
    }
    if let Some(end) = latest_recovery_end {
        push(end, t1, Cause::RecoveryCatchup, n_recovery.unwrap_or(0));
        // The event occurred before the trouble signal yet emerged only
        // after the rebuild: it crossed the outage, so it was re-emitted by
        // source replay from a snapshot taken *before* its occurrence. The
        // pre-fault stretch is the replay rewind depth — owned by recovery,
        // not by whatever the dataflow happened to be doing back then.
        if let Some(trouble) = first_trouble {
            if trouble > t0 {
                push(t0, trouble, Cause::RecoveryCatchup, n_recovery.unwrap_or(0));
            }
        }
    }

    for e in events {
        match e.rec.kind {
            TraceKind::SnapshotPhase if e.rec.dur > 0 => {
                push(
                    e.rec.ts,
                    e.rec.ts + e.rec.dur,
                    Cause::SnapshotPhase,
                    e.rec.name,
                );
            }
            TraceKind::Call if e.rec.dur > 0 => {
                push(
                    e.rec.ts,
                    e.rec.ts + e.rec.dur,
                    Cause::TaskletExec,
                    e.rec.name,
                );
            }
            TraceKind::NetSend => {
                let half = cfg.net_latency_hint / 2;
                push(e.rec.ts, e.rec.ts + half, Cause::NetSend, e.rec.name);
                push(
                    e.rec.ts + half,
                    e.rec.ts + 2 * half,
                    Cause::NetRecv,
                    e.rec.name,
                );
            }
            _ => {}
        }
    }

    // Backpressure stalls are instants recorded per blocked flush; runs of
    // them (same track+vertex, gaps under the merge threshold) become one
    // stall interval.
    let mut stalls: Vec<(u32, u32, u64)> = events
        .iter()
        .filter(|e| e.rec.kind == TraceKind::Stall)
        .map(|e| (e.track, e.rec.name, e.rec.ts))
        .collect();
    stalls.sort_unstable();
    let mut run: Option<(u32, u32, u64, u64)> = None;
    for (track, name, ts) in stalls {
        match &mut run {
            Some((t, n, _first, last))
                if *t == track
                    && *n == name
                    && ts.saturating_sub(*last) <= cfg.stall_merge_gap_nanos =>
            {
                *last = ts;
            }
            _ => {
                if let Some((_, n, first, last)) = run.take() {
                    push(first, last, Cause::BackpressureStall, n);
                }
                run = Some((track, name, ts, ts));
            }
        }
    }
    if let Some((_, n, first, last)) = run.take() {
        push(first, last, Cause::BackpressureStall, n);
    }

    // Watermark straggler gaps: per-track silence between coalesce events.
    let mut coalesces: Vec<(u32, u64)> = events
        .iter()
        .filter(|e| e.rec.kind == TraceKind::WmCoalesce)
        .map(|e| (e.track, e.rec.ts))
        .collect();
    coalesces.sort_unstable();
    for w in coalesces.windows(2) {
        let ((ta, a), (tb, b)) = (w[0], w[1]);
        if ta == tb && b.saturating_sub(a) > cfg.straggler_gap_nanos {
            push(a, b, Cause::WatermarkGap, 0);
        }
    }

    // Priority sweep: at every elementary segment between interval
    // boundaries, the highest-priority active cause wins; segments nobody
    // covers are queue wait. Event-driven so big windows stay O(n log n).
    let mut bounds: Vec<u64> = Vec::with_capacity(ivs.len() * 2 + 2);
    bounds.push(t0);
    bounds.push(t1);
    for iv in &ivs {
        bounds.push(iv.lo);
        bounds.push(iv.hi);
    }
    bounds.sort_unstable();
    bounds.dedup();
    let mut starts: Vec<(u64, usize)> = ivs.iter().map(|iv| (iv.lo, iv.cause.priority())).collect();
    let mut ends: Vec<(u64, usize)> = ivs.iter().map(|iv| (iv.hi, iv.cause.priority())).collect();
    starts.sort_unstable();
    ends.sort_unstable();
    let (mut si, mut ei) = (0usize, 0usize);
    let mut active = [0i64; 10];
    let mut nanos = [0u64; 10];
    for seg in bounds.windows(2) {
        let (a, b) = (seg[0], seg[1]);
        while si < starts.len() && starts[si].0 <= a {
            active[starts[si].1] += 1;
            si += 1;
        }
        while ei < ends.len() && ends[ei].0 <= a {
            active[ends[ei].1] -= 1;
            ei += 1;
        }
        let winner = active
            .iter()
            .position(|&c| c > 0)
            .unwrap_or(Cause::QueueWait.priority());
        nanos[winner] += b - a;
    }

    // Per-cause dominant vertex (largest raw overlap) for details/blame.
    let mut dominant: [(u64, u32); 10] = [(0, 0); 10];
    for iv in &ivs {
        let p = iv.cause.priority();
        let weight = iv.hi - iv.lo;
        if weight > dominant[p].0 {
            dominant[p] = (weight, iv.name);
        }
    }
    let name_of = |id: u32| -> &str { names.get(id as usize).map(String::as_str).unwrap_or("?") };
    let mut slices: Vec<CauseSlice> = ALL_CAUSES
        .iter()
        .map(|&cause| {
            let p = cause.priority();
            let detail = if nanos[p] == 0 {
                String::new()
            } else {
                match cause {
                    Cause::TaskletExec | Cause::BackpressureStall => {
                        format!("dominated by {}", name_of(dominant[p].1))
                    }
                    Cause::FaultDetection => "trouble signal -> member fenced".to_string(),
                    Cause::Recovery => "fence -> rebuilt from latest complete snapshot".to_string(),
                    Cause::RecoveryCatchup => "source replay until the event emerged".to_string(),
                    Cause::QueueWait => "residual: no span covered this time".to_string(),
                    _ => String::new(),
                }
            };
            CauseSlice {
                cause,
                nanos: nanos[p],
                share: if total > 0 {
                    nanos[p] as f64 / total as f64
                } else {
                    0.0
                },
                detail,
            }
        })
        .collect();
    slices.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.cause.cmp(&b.cause)));
    let top_cause = slices.first().map(|s| s.cause).unwrap_or(Cause::QueueWait);
    let blamed_vertex = match top_cause {
        Cause::TaskletExec | Cause::BackpressureStall => {
            Some(name_of(dominant[top_cause.priority()].1).to_string())
        }
        _ => None,
    };
    Attribution {
        t0,
        t1,
        total_nanos: total,
        slices,
        top_cause,
        top_group: top_cause.group(),
        blamed_vertex,
    }
}

// ----------------------------------------------------------------- report

/// One attributed incident, ready to render.
#[derive(Clone, Debug)]
pub struct IncidentReport {
    pub incident: SpikeIncident,
    pub window_lo: u64,
    pub window_hi: u64,
    pub window_events: usize,
    pub window_truncated: u64,
    pub window_snapshots: usize,
    pub attribution: Attribution,
}

/// How trustworthy the forensics are: what the recording pipeline dropped,
/// sampled, or suppressed along the way.
#[derive(Clone, Debug, Default)]
pub struct SpikeFidelity {
    /// Records lost to full tracer rings (cumulative over the run).
    pub trace_ring_dropped: u64,
    /// Records lost to collector capacity.
    pub collector_dropped: u64,
    /// Spans evicted from the rolling ring outside any frozen window.
    pub recorder_evicted: u64,
    /// Call spans were sampled 1-in-2^shift.
    pub sample_shift: u32,
    pub spans_retained: usize,
    pub snapshots_retained: usize,
    /// Latency samples the watchdog observed.
    pub observed: u64,
    /// Spikes dropped by the incident cap.
    pub suppressed: u64,
}

/// The structured spike report written as `results/SPIKE_<bench>.json`.
#[derive(Clone, Debug)]
pub struct SpikeReport {
    pub bench: String,
    pub run_label: String,
    pub threshold_nanos: u64,
    pub fidelity: SpikeFidelity,
    pub incidents: Vec<IncidentReport>,
}

impl SpikeReport {
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"schema\": \"jet-spike-v1\",\n  \"bench\": \"{}\",\n  \"run\": \"{}\",\n  \
             \"threshold_nanos\": {},\n  \"fidelity\": {{\"trace_ring_dropped\": {}, \
             \"collector_dropped\": {}, \"recorder_evicted\": {}, \"sample_shift\": {}, \
             \"spans_retained\": {}, \"snapshots_retained\": {}, \"observed\": {}, \
             \"suppressed\": {}}},\n  \"incidents\": [",
            json_escape(&self.bench),
            json_escape(&self.run_label),
            self.threshold_nanos,
            self.fidelity.trace_ring_dropped,
            self.fidelity.collector_dropped,
            self.fidelity.recorder_evicted,
            self.fidelity.sample_shift,
            self.fidelity.spans_retained,
            self.fidelity.snapshots_retained,
            self.fidelity.observed,
            self.fidelity.suppressed,
        );
        for (i, r) in self.incidents.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let inc = &r.incident;
            let a = &r.attribution;
            let _ = write!(
                s,
                "\n    {{\"id\": {}, \"first_detected_nanos\": {}, \"last_detected_nanos\": {}, \
                 \"samples\": {}, \"peak\": {{\"event_ts_nanos\": {}, \"emitted_at_nanos\": {}, \
                 \"latency_nanos\": {}}}, \"window\": {{\"lo_nanos\": {}, \"hi_nanos\": {}, \
                 \"events\": {}, \"truncated\": {}, \"snapshots\": {}}}, \
                 \"attribution\": {{\"total_nanos\": {}, \"top_cause\": \"{}\", \
                 \"top_group\": \"{}\", \"blamed_vertex\": ",
                inc.id,
                inc.first_detected,
                inc.last_detected,
                inc.samples,
                inc.peak_event_ts,
                inc.peak_emitted_at,
                inc.peak_latency,
                r.window_lo,
                r.window_hi,
                r.window_events,
                r.window_truncated,
                r.window_snapshots,
                a.total_nanos,
                a.top_cause.name(),
                a.top_group,
            );
            match &a.blamed_vertex {
                Some(v) => {
                    let _ = write!(s, "\"{}\"", json_escape(v));
                }
                None => s.push_str("null"),
            }
            s.push_str(", \"causes\": [");
            for (j, c) in a.slices.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "{{\"cause\": \"{}\", \"group\": \"{}\", \"nanos\": {}, \"share\": {:.6}, \
                     \"detail\": \"{}\"}}",
                    c.cause.name(),
                    c.cause.group(),
                    c.nanos,
                    c.share,
                    json_escape(&c.detail),
                );
            }
            s.push_str("]}}");
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

// -------------------------------------------------------------- waterfall

/// One percentile band's latency waterfall: the exemplar journey matched
/// to the measured percentile, decomposed into exact-sum cause slices.
#[derive(Clone, Debug)]
pub struct BandWaterfall {
    /// Display label: `p50`, `p99`, `p99.99`.
    pub band: String,
    pub percentile: f64,
    /// The measured percentile from the run's latency histogram.
    pub target_nanos: u64,
    /// The exemplar journey (its `latency` equals the attribution total
    /// exactly; `target_nanos` is the histogram digest it approximates).
    pub stamp: Stamp,
    pub attribution: Attribution,
}

/// The full-distribution attribution section embedded per run in
/// `BENCH_*.json`.
#[derive(Clone, Debug, Default)]
pub struct AttributionReport {
    /// Journeys the sampler observed in the measurement window.
    pub observed: u64,
    /// Stamps retained when the waterfall was built.
    pub sampled: usize,
    /// Journeys were stride-sampled 1-in-2^shift.
    pub sample_shift: u32,
    pub bands: Vec<BandWaterfall>,
}

/// Build the per-percentile-band waterfall: for each `(band, percentile,
/// target_nanos)` pick the sampler's exemplar journey and decompose it via
/// the recorder's retained spans. Bands with no exemplar (empty sampler)
/// are omitted.
pub fn band_waterfalls(
    sampler: &ProvenanceSampler,
    flight: &FlightRecorder,
    cfg: &AttributionConfig,
    bands: &[(&str, f64, u64)],
) -> AttributionReport {
    let (observed, sampled, sample_shift) = sampler.stats();
    let mut out = Vec::new();
    for &(band, percentile, target_nanos) in bands {
        let Some(stamp) = sampler.exemplar(target_nanos) else {
            continue;
        };
        let attribution = flight.attribute_window(stamp.event_ts, stamp.emitted_at, cfg);
        out.push(BandWaterfall {
            band: band.to_string(),
            percentile,
            target_nanos,
            stamp,
            attribution,
        });
    }
    AttributionReport {
        observed,
        sampled,
        sample_shift,
        bands: out,
    }
}

impl AttributionReport {
    /// Render as the `"attribution"` object a BENCH run record embeds.
    /// `indent` is the base indentation of the object's opening brace.
    pub fn to_json(&self, indent: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n{indent}  \"observed\": {}, \"sampled\": {}, \"sample_shift\": {},\n\
             {indent}  \"bands\": [",
            self.observed, self.sampled, self.sample_shift,
        );
        for (i, b) in self.bands.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let a = &b.attribution;
            let _ = write!(
                s,
                "\n{indent}    {{\"band\": \"{}\", \"percentile\": {}, \"target_nanos\": {}, \
                 \"event_ts_nanos\": {}, \"emitted_at_nanos\": {}, \"latency_nanos\": {}, \
                 \"total_nanos\": {}, \"top_cause\": \"{}\", \"top_group\": \"{}\", \
                 \"blamed_vertex\": ",
                json_escape(&b.band),
                b.percentile,
                b.target_nanos,
                b.stamp.event_ts,
                b.stamp.emitted_at,
                b.stamp.latency,
                a.total_nanos,
                a.top_cause.name(),
                a.top_group,
            );
            match &a.blamed_vertex {
                Some(v) => {
                    let _ = write!(s, "\"{}\"", json_escape(v));
                }
                None => s.push_str("null"),
            }
            s.push_str(", \"causes\": [");
            for (j, c) in a.slices.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "{{\"cause\": \"{}\", \"group\": \"{}\", \"nanos\": {}, \"share\": {:.6}, \
                     \"detail\": \"{}\"}}",
                    c.cause.name(),
                    c.cause.group(),
                    c.nanos,
                    c.share,
                    json_escape(&c.detail),
                );
            }
            s.push_str("]}");
        }
        let _ = write!(s, "\n{indent}  ]\n{indent}}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanRecord, Tracer};

    fn ev(kind: TraceKind, ts: u64, dur: u64, name: u32) -> TraceEvent {
        TraceEvent {
            track: 0,
            rec: SpanRecord {
                ts,
                dur,
                name,
                kind,
                arg: 0,
            },
        }
    }

    #[test]
    fn watchdog_adapts_threshold_and_merges_incidents() {
        let wd = LatencyWatchdog::with_config(WatchdogConfig {
            epoch_nanos: 100,
            multiplier: 4.0,
            min_spike_nanos: 10,
            slo_nanos: None,
            quiet_gap_nanos: 50,
            max_incidents: 8,
        });
        // First epoch: baseline latencies ~5, no spikes possible (unarmed).
        for i in 0..100u64 {
            wd.observe(i, 0, 5);
        }
        assert!(wd.incidents().is_empty());
        // Second epoch armed at max(10, 4*5) = 20.
        wd.observe(150, 100, 5);
        assert_eq!(wd.threshold(), 20);
        wd.observe(160, 100, 60); // spike
        wd.observe(170, 120, 90); // merges, new peak
        wd.observe(300, 250, 70); // past quiet gap: second incident
        let incs = wd.incidents();
        assert_eq!(incs.len(), 2);
        assert_eq!(incs[0].samples, 2);
        assert_eq!(incs[0].peak_latency, 90);
        assert_eq!(incs[0].peak_event_ts, 120);
        assert_eq!(incs[1].samples, 1);
    }

    #[test]
    fn watchdog_slo_arms_immediately() {
        let wd = LatencyWatchdog::with_config(WatchdogConfig {
            slo_nanos: Some(100),
            ..WatchdogConfig::default()
        });
        wd.observe(10, 0, 150);
        assert_eq!(wd.incidents().len(), 1);
        assert_eq!(wd.incidents()[0].threshold, 100);
    }

    #[test]
    fn disabled_watchdog_is_a_no_op() {
        let wd = LatencyWatchdog::disabled();
        wd.observe(0, 0, u64::MAX);
        assert!(wd.incidents().is_empty());
        assert_eq!(wd.stats(), (0, 0));
    }

    #[test]
    fn recorder_freezes_spike_window_across_eviction() {
        let wd = LatencyWatchdog::with_config(WatchdogConfig {
            slo_nanos: Some(100),
            ..WatchdogConfig::default()
        });
        let fr = FlightRecorder::with_config(
            FlightConfig {
                span_capacity: 8, // tiny: forces eviction
                span_horizon_nanos: u64::MAX,
                pre_roll_nanos: 0,
                post_roll_nanos: 0,
                ..FlightConfig::default()
            },
            wd.clone(),
        );
        let tracer = Tracer::enabled();
        let mut w = tracer.writer(0, "w");
        let name = w.intern("agg");
        for i in 0..4u64 {
            w.record(TraceKind::Call, 1_000 + i * 10, 5, name, 0);
        }
        let data = tracer.drain();
        fr.ingest(&data, 0);
        // Spike whose window covers the spans above.
        wd.observe(1_100, 990, 110);
        // Flood the ring so the old spans are evicted — into the frozen
        // window, not the void.
        for i in 0..32u64 {
            w.record(TraceKind::Call, 10_000 + i, 1, name, 0);
        }
        let data2 = tracer.drain();
        fr.ingest(&data2, 0);
        let reps = fr.forensics(&AttributionConfig::default());
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].window_events, 4, "frozen spans survived eviction");
        let (_, evicted, _, _) = fr.stats();
        assert!(evicted > 0, "out-of-window spans were evicted");
    }

    #[test]
    fn attribution_partitions_exactly_and_prioritizes_recovery() {
        let names: Vec<String> = ["?", "agg", "suspect", "fence", "recovery"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (t0, t1) = (1_000u64, 11_000u64);
        let events = vec![
            ev(TraceKind::Call, 1_000, 2_000, 1),     // exec 1000..3000
            ev(TraceKind::FaultInject, 3_500, 0, 0),  // trouble starts
            ev(TraceKind::Detect, 4_000, 0, 2),       // suspect
            ev(TraceKind::Detect, 5_000, 0, 3),       // fence
            ev(TraceKind::Recovery, 5_000, 2_000, 4), // rebuild 5000..7000
            ev(TraceKind::Call, 6_000, 500, 1),       // overlaps recovery: loses
        ];
        let a = attribute(&events, &names, t0, t1, &AttributionConfig::default());
        let sum: u64 = a.slices.iter().map(|s| s.nanos).sum();
        assert_eq!(sum, t1 - t0, "partition is exact");
        let get = |c: Cause| a.slices.iter().find(|s| s.cause == c).unwrap().nanos;
        // The event occurred before the fault and emerged after the rebuild:
        // it crossed the outage, so the pre-fault stretch (including the
        // exec span back then) is replay rewind depth, not compute.
        assert_eq!(get(Cause::FaultDetection), 1_500); // 3500..5000
        assert_eq!(get(Cause::Recovery), 2_000); // 5000..7000, beats the call
        assert_eq!(get(Cause::RecoveryCatchup), 6_500); // 1000..3500 + 7000..t1
        assert_eq!(get(Cause::TaskletExec), 0);
        assert_eq!(get(Cause::QueueWait), 0);
        assert_eq!(a.top_cause, Cause::RecoveryCatchup);
        assert_eq!(a.top_group, "recovery");
        assert!(a.blamed_vertex.is_none(), "no vertex blamed for a fault");
    }

    #[test]
    fn attribution_blames_dominant_vertex_without_faults() {
        let names: Vec<String> = ["?", "hot-agg", "map"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let events = vec![
            ev(TraceKind::Call, 0, 6_000, 1),
            ev(TraceKind::Call, 6_000, 1_000, 2),
        ];
        let a = attribute(&events, &names, 0, 10_000, &AttributionConfig::default());
        assert_eq!(a.top_cause, Cause::TaskletExec);
        assert_eq!(a.top_group, "compute");
        assert_eq!(a.blamed_vertex.as_deref(), Some("hot-agg"));
        let sum: u64 = a.slices.iter().map(|s| s.nanos).sum();
        assert_eq!(sum, 10_000);
    }

    #[test]
    fn attribution_of_empty_window_is_all_queue_wait() {
        let a = attribute(&[], &[], 100, 1_100, &AttributionConfig::default());
        assert_eq!(a.total_nanos, 1_000);
        assert_eq!(a.top_cause, Cause::QueueWait);
        assert_eq!(a.slices[0].nanos, 1_000);
    }

    #[test]
    fn stall_instants_merge_into_intervals() {
        let names: Vec<String> = ["?", "sink"].iter().map(|s| s.to_string()).collect();
        let mut events: Vec<TraceEvent> = (0..5u64)
            .map(|i| ev(TraceKind::Stall, 1_000 + i * 100, 0, 1))
            .collect();
        events.push(ev(TraceKind::Stall, 900_000_000, 0, 1)); // far away: own (empty) run
        let a = attribute(&events, &names, 0, 10_000, &AttributionConfig::default());
        let stall = a
            .slices
            .iter()
            .find(|s| s.cause == Cause::BackpressureStall)
            .unwrap();
        assert_eq!(stall.nanos, 400, "5 instants 100ns apart = one 400ns stall");
    }

    #[test]
    fn spike_report_json_is_balanced_and_typed() {
        let wd = LatencyWatchdog::with_config(WatchdogConfig {
            slo_nanos: Some(50),
            ..WatchdogConfig::default()
        });
        let fr = FlightRecorder::with_config(FlightConfig::default(), wd.clone());
        wd.observe(2_000, 1_000, 1_000);
        let report = SpikeReport {
            bench: "unit".into(),
            run_label: "crash".into(),
            threshold_nanos: wd.threshold(),
            fidelity: SpikeFidelity::default(),
            incidents: fr.forensics(&AttributionConfig::default()),
        };
        let json = report.to_json();
        for key in [
            "\"schema\": \"jet-spike-v1\"",
            "\"bench\": \"unit\"",
            "\"incidents\": [",
            "\"top_cause\"",
            "\"causes\": [",
            "\"queue_wait\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close, "unbalanced JSON:\n{json}");
    }

    #[test]
    fn sampler_top_k_preserves_extreme_latencies() {
        let ps = ProvenanceSampler::with_config(ProvenanceConfig {
            capacity: 128,
            top_k: 8,
        });
        // 100k journeys, latency == i: heavy decimation, but the largest
        // latencies must survive in the top-k store.
        for i in 1..=100_000u64 {
            ps.observe(i, 2 * i, i);
        }
        let (observed, retained, shift) = ps.stats();
        assert_eq!(observed, 100_000);
        assert!(retained <= 128 + 8);
        assert!(shift > 0, "decimation kicked in");
        let top = ps.exemplar(100_000).expect("exemplar");
        assert_eq!(top.latency, 100_000, "p-max exemplar is exact");
    }

    #[test]
    fn sampler_is_deterministic_across_identical_feeds() {
        let mk = || {
            let ps = ProvenanceSampler::with_config(ProvenanceConfig {
                capacity: 64,
                top_k: 4,
            });
            for i in 1..=10_000u64 {
                ps.observe(i, i + (i % 997) * 1_000, (i % 997) * 1_000);
            }
            ps
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.stats(), b.stats());
        for target in [0u64, 100_000, 500_000, 996_000] {
            let (ea, eb) = (a.exemplar(target).unwrap(), b.exemplar(target).unwrap());
            assert_eq!(
                (ea.event_ts, ea.emitted_at, ea.latency),
                (eb.event_ts, eb.emitted_at, eb.latency)
            );
        }
    }

    #[test]
    fn sampler_exemplar_prefers_newest_within_tolerance() {
        let ps = ProvenanceSampler::enabled();
        ps.observe(1_000, 2_000, 1_000); // old journey, exact match
        ps.observe(9_000, 10_010, 1_010); // newer, within 2% of 1000
        let e = ps.exemplar(1_000).expect("exemplar");
        assert_eq!(e.emitted_at, 10_010, "newest in-tolerance journey wins");
        // Outside tolerance the closest latency wins regardless of age.
        ps.observe(20_000, 520_000, 500_000);
        let far = ps.exemplar(400_000).expect("exemplar");
        assert_eq!(far.latency, 500_000);
    }

    #[test]
    fn sampler_clear_resets_everything() {
        let ps = ProvenanceSampler::enabled();
        ps.observe(1, 2, 1);
        ps.clear();
        assert_eq!(ps.stats(), (0, 0, 0));
        assert!(ps.exemplar(1).is_none());
        // Disabled sampler is inert.
        let off = ProvenanceSampler::disabled();
        off.observe(1, 2, 1);
        assert_eq!(off.stats(), (0, 0, 0));
        assert!(off.exemplar(1).is_none());
    }

    #[test]
    fn attribute_window_on_disabled_recorder_is_all_queue_wait() {
        let fr = FlightRecorder::disabled();
        let a = fr.attribute_window(100, 1_100, &AttributionConfig::default());
        assert_eq!(a.total_nanos, 1_000);
        assert_eq!(a.top_cause, Cause::QueueWait);
        let sum: u64 = a.slices.iter().map(|s| s.nanos).sum();
        assert_eq!(sum, 1_000);
    }

    #[test]
    fn attribute_window_uses_ring_spans() {
        let fr = FlightRecorder::with_config(FlightConfig::default(), LatencyWatchdog::disabled());
        let tracer = Tracer::enabled();
        let mut w = tracer.writer(0, "w");
        let name = w.intern("hot-agg");
        w.record(TraceKind::Call, 2_000, 6_000, name, 0);
        fr.ingest(&tracer.drain(), 0);
        let a = fr.attribute_window(1_000, 11_000, &AttributionConfig::default());
        let sum: u64 = a.slices.iter().map(|s| s.nanos).sum();
        assert_eq!(sum, 10_000, "partition is exact");
        assert_eq!(a.top_cause, Cause::TaskletExec);
        assert_eq!(a.blamed_vertex.as_deref(), Some("hot-agg"));
    }

    #[test]
    fn band_waterfalls_sum_exactly_and_render_json() {
        let fr = FlightRecorder::with_config(FlightConfig::default(), LatencyWatchdog::disabled());
        let tracer = Tracer::enabled();
        let mut w = tracer.writer(0, "w");
        let name = w.intern("agg");
        w.record(TraceKind::Call, 500, 200, name, 0);
        w.record(TraceKind::Call, 5_000, 3_000, name, 0);
        fr.ingest(&tracer.drain(), 0);
        let ps = ProvenanceSampler::enabled();
        ps.observe(100, 1_100, 1_000); // p50-ish journey
        ps.observe(400, 10_400, 10_000); // tail journey
        let report = band_waterfalls(
            &ps,
            &fr,
            &AttributionConfig::default(),
            &[("p50", 50.0, 1_000), ("p99.99", 99.99, 10_000)],
        );
        assert_eq!(report.bands.len(), 2);
        for b in &report.bands {
            let sum: u64 = b.attribution.slices.iter().map(|s| s.nanos).sum();
            assert_eq!(sum, b.stamp.latency, "band {} sums exactly", b.band);
            assert_eq!(b.attribution.total_nanos, b.stamp.latency);
        }
        let tail = &report.bands[1];
        let exec = tail
            .attribution
            .slices
            .iter()
            .find(|s| s.cause == Cause::TaskletExec)
            .unwrap();
        // Both ring spans (500..700 and 5000..8000) fall inside the band.
        assert_eq!(exec.nanos, 3_200, "ring spans attributed inside the band");
        let json = report.to_json("      ");
        for key in [
            "\"bands\": [",
            "\"band\": \"p50\"",
            "\"band\": \"p99.99\"",
            "\"latency_nanos\": 10000",
            "\"causes\": [",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close, "unbalanced JSON:\n{json}");
        // Empty sampler yields an empty-bands report, not a panic.
        let empty = band_waterfalls(
            &ProvenanceSampler::enabled(),
            &fr,
            &AttributionConfig::default(),
            &[("p50", 50.0, 1_000)],
        );
        assert!(empty.bands.is_empty());
    }
}

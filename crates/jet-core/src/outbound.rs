//! Outbound collectors: the producer-side half of an edge.
//!
//! A collector owns the producer handles into every consumer's conveyor lane
//! (and, for distributed edges, into the sender tasklet's queue — see
//! `network`). It implements the edge's routing policy for events and
//! *broadcasts* control items (watermarks, barriers, done flags) to every
//! target, because event-time and snapshot correctness require all parallel
//! consumers to observe them (§3.2, §4.4).
//!
//! Everything is non-blocking: a full target queue makes `offer_*` report
//! failure and the caller retries on a later timeslice — this is how local
//! backpressure propagates (§3.3).

use crate::dag::Routing;
use crate::item::Item;
use jet_queue::Producer;
use jet_util::seq;
use std::collections::VecDeque;

/// Producer side of one edge instance.
pub struct OutboundCollector {
    routing: Routing,
    targets: Vec<Producer<Item>>,
    /// Round-robin cursor for unicast.
    rr: usize,
    /// For partitioned routing: partition id -> index into `targets`.
    partition_to_target: Vec<u16>,
    partition_count: u32,
    /// For isolated routing: the single target index.
    isolated_target: usize,
    /// Per-target "already delivered" flags for the control item currently
    /// being broadcast (control items are delivered at-most-once per target
    /// even across retries).
    bcast_done: Vec<bool>,
    bcast_active: bool,
}

impl OutboundCollector {
    /// Build a collector. `partition_to_target` must cover
    /// `0..partition_count` for partitioned routing (ignored otherwise).
    pub fn new(
        routing: Routing,
        targets: Vec<Producer<Item>>,
        partition_to_target: Vec<u16>,
        partition_count: u32,
        isolated_target: usize,
    ) -> Self {
        let n = targets.len();
        if matches!(routing, Routing::Partitioned(_)) {
            assert_eq!(partition_to_target.len(), partition_count as usize);
            assert!(partition_to_target.iter().all(|&t| (t as usize) < n));
        }
        if matches!(routing, Routing::Isolated) {
            assert!(isolated_target < n);
        }
        OutboundCollector {
            routing,
            targets,
            rr: 0,
            partition_to_target,
            partition_count,
            isolated_target,
            bcast_done: vec![false; n],
            bcast_active: false,
        }
    }

    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Offer a data event according to the routing policy. On failure the
    /// item is handed back for a later retry.
    // jet-analyze: allow(panic) — partitioned routing only ever sees events; barriers take the broadcast arm
    pub fn offer_event(&mut self, item: Item) -> Result<(), Item> {
        debug_assert!(item.is_event());
        match &self.routing {
            Routing::Unicast => {
                let n = self.targets.len();
                let mut item = item;
                for off in 0..n {
                    let t = (self.rr + off) % n;
                    match self.targets[t].offer(item) {
                        Ok(()) => {
                            self.rr = (t + 1) % n;
                            return Ok(());
                        }
                        Err(back) => item = back,
                    }
                }
                Err(item)
            }
            Routing::Isolated => self.targets[self.isolated_target].offer(item),
            Routing::Partitioned(key_fn) => {
                let Item::Event { ref obj, .. } = item else {
                    unreachable!()
                };
                let hash = key_fn(obj.as_ref());
                let p = seq::bucket_of(hash, self.partition_count) as usize;
                let t = self.partition_to_target[p] as usize;
                self.targets[t].offer(item)
            }
            Routing::Broadcast => {
                // Events on broadcast edges use the same all-targets path as
                // control items.
                if self.offer_to_all(&item) {
                    Ok(())
                } else {
                    Err(item)
                }
            }
        }
    }

    /// Bulk-move the leading run of *events* from `buf` into targets,
    /// stopping at the first control item, after `max` moves, or when no
    /// target can accept more. Unicast routing splits the run into
    /// near-equal chunks round-robined across the targets — one
    /// [`Producer::offer_batch`] (one tail publish) per target visited —
    /// so a burst keeps the per-item round-robin's load balance instead of
    /// serializing on one consumer. Isolated routing moves the whole run
    /// with a single bulk offer; partitioned and broadcast routing still
    /// decide per item. Returns the number moved.
    // jet-analyze: allow(alloc, panic) — front checked just above; push_front returns the popped item into existing spare capacity
    pub fn offer_event_run(&mut self, buf: &mut VecDeque<Item>, max: usize) -> usize {
        /// Draining iterator over the leading event run of the edge buffer:
        /// stops (leaving the buffer intact) at the first control item, so
        /// `offer_batch` can consume straight from the outbox VecDeque.
        struct EventRun<'a> {
            buf: &'a mut VecDeque<Item>,
            left: usize,
        }
        impl Iterator for EventRun<'_> {
            type Item = Item;
            fn next(&mut self) -> Option<Item> {
                if self.left == 0 || !self.buf.front().is_some_and(Item::is_event) {
                    return None;
                }
                self.left -= 1;
                self.buf.pop_front()
            }
        }
        match &self.routing {
            Routing::Unicast => {
                let n = self.targets.len();
                // Interleave the run across targets so a burst keeps the
                // per-item round-robin's load balance. Small runs go one
                // item per visit (identical placement to per-item
                // round-robin); only bursts past 4 items/target grow the
                // chunk, trading placement granularity for fewer publishes.
                let run = buf.iter().take(max).take_while(|i| i.is_event()).count();
                if run == 0 {
                    return 0;
                }
                let chunk = (run / (n * 4)).max(1);
                let mut t = self.rr;
                let mut moved = 0;
                let mut since_progress = 0;
                while moved < run && since_progress < n {
                    let got = self.targets[t].offer_batch(&mut EventRun {
                        buf,
                        left: chunk.min(run - moved),
                    });
                    if got > 0 {
                        moved += got;
                        since_progress = 0;
                        self.rr = (t + 1) % n;
                    } else {
                        since_progress += 1;
                    }
                    t = (t + 1) % n;
                }
                moved
            }
            Routing::Isolated => {
                self.targets[self.isolated_target].offer_batch(&mut EventRun { buf, left: max })
            }
            Routing::Partitioned(_) | Routing::Broadcast => {
                let mut moved = 0;
                while moved < max && buf.front().is_some_and(Item::is_event) {
                    let item = buf.pop_front().expect("front checked");
                    match self.offer_event(item) {
                        Ok(()) => moved += 1,
                        Err(back) => {
                            buf.push_front(back);
                            break;
                        }
                    }
                }
                moved
            }
        }
    }

    /// Offer a control item (or broadcast event) to every target. Returns
    /// `true` once all targets accepted it; partial progress is remembered
    /// so retries only hit the targets still owed the item.
    pub fn offer_to_all(&mut self, item: &Item) -> bool {
        if !self.bcast_active {
            self.bcast_done.iter_mut().for_each(|d| *d = false);
            self.bcast_active = true;
        }
        let mut all = true;
        for (t, done) in self.bcast_done.iter_mut().enumerate() {
            if *done {
                continue;
            }
            match self.targets[t].offer(item.clone()) {
                Ok(()) => *done = true,
                Err(_) => all = false,
            }
        }
        if all {
            self.bcast_active = false;
        }
        all
    }

    /// Lowest remaining capacity across targets (diagnostics/tests).
    pub fn min_remaining_capacity(&mut self) -> usize {
        self.targets
            .iter_mut()
            .map(|t| t.remaining_capacity())
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::boxed;
    use jet_queue::{spsc_channel, Consumer};
    use std::sync::Arc;

    fn make(routing: Routing, n: usize, cap: usize) -> (OutboundCollector, Vec<Consumer<Item>>) {
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for _ in 0..n {
            let (p, c) = spsc_channel(cap);
            producers.push(p);
            consumers.push(c);
        }
        let ptt = match &routing {
            Routing::Partitioned(_) => (0..16u32).map(|p| (p % n as u32) as u16).collect(),
            _ => Vec::new(),
        };
        (
            OutboundCollector::new(routing, producers, ptt, 16, 0),
            consumers,
        )
    }

    fn ev(v: u64) -> Item {
        Item::event(v as i64, boxed(v))
    }

    #[test]
    fn unicast_round_robins() {
        let (mut col, mut consumers) = make(Routing::Unicast, 3, 8);
        for i in 0..6 {
            col.offer_event(ev(i)).unwrap();
        }
        for c in &mut consumers {
            assert_eq!(c.len(), 2, "unicast not balanced");
        }
    }

    #[test]
    fn unicast_skips_full_targets() {
        let (mut col, mut consumers) = make(Routing::Unicast, 2, 2);
        for i in 0..4 {
            col.offer_event(ev(i)).unwrap();
        }
        // Both queues hold 2. Drain one queue; the next offers must all land there.
        while consumers[0].poll().is_some() {}
        col.offer_event(ev(10)).unwrap();
        col.offer_event(ev(11)).unwrap();
        assert_eq!(consumers[0].len(), 2);
        assert!(col.offer_event(ev(12)).is_err(), "everything full");
    }

    #[test]
    fn isolated_hits_single_target() {
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let (p, c) = spsc_channel(8);
            producers.push(p);
            consumers.push(c);
        }
        let mut col = OutboundCollector::new(Routing::Isolated, producers, vec![], 0, 2);
        col.offer_event(ev(1)).unwrap();
        assert_eq!(consumers[2].len(), 1);
        assert_eq!(consumers[0].len(), 0);
    }

    #[test]
    fn partitioned_routes_same_key_to_same_target() {
        let key_fn: crate::dag::KeyHashFn =
            Arc::new(|obj| jet_util::seq::hash_of(crate::object::downcast_ref::<u64>(obj)));
        let (mut col, consumers) = make(Routing::Partitioned(key_fn), 4, 64);
        for _ in 0..10 {
            col.offer_event(ev(42)).unwrap();
        }
        let with_data: Vec<usize> = consumers
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(with_data.len(), 1, "key 42 spread across targets");
        assert_eq!(consumers[with_data[0]].len(), 10);
    }

    #[test]
    fn control_broadcast_reaches_every_target() {
        let (mut col, mut consumers) = make(Routing::Unicast, 3, 8);
        assert!(col.offer_to_all(&Item::Watermark(5)));
        for c in &mut consumers {
            assert!(matches!(c.poll(), Some(Item::Watermark(5))));
        }
    }

    #[test]
    fn control_broadcast_retries_only_missing_targets() {
        let (mut col, mut consumers) = make(Routing::Unicast, 2, 2);
        // Fill target 1 completely.
        col.offer_event(ev(0)).unwrap(); // t0
        col.offer_event(ev(1)).unwrap(); // t1
        col.offer_event(ev(2)).unwrap(); // t0
        col.offer_event(ev(3)).unwrap(); // t1
        assert!(!col.offer_to_all(&Item::Watermark(9)), "both targets full");
        // Drain target 0 only; retry should deliver to t0 but still fail overall.
        consumers[0].poll();
        consumers[0].poll();
        assert!(!col.offer_to_all(&Item::Watermark(9)));
        assert_eq!(consumers[0].len(), 1, "t0 must have received the watermark");
        // Drain target 1; now the broadcast completes and t0 gets NO duplicate.
        consumers[1].poll();
        consumers[1].poll();
        assert!(col.offer_to_all(&Item::Watermark(9)));
        assert_eq!(consumers[0].len(), 1, "duplicate watermark on t0");
        assert_eq!(consumers[1].len(), 1);
    }

    #[test]
    fn event_run_stops_at_control_item_and_respects_backpressure() {
        let (mut col, mut consumers) = make(Routing::Unicast, 1, 4);
        let mut buf: VecDeque<Item> = VecDeque::new();
        for i in 0..3 {
            buf.push_back(ev(i));
        }
        buf.push_back(Item::Watermark(99));
        buf.push_back(ev(3));
        // The run stops at the watermark even with queue room to spare.
        assert_eq!(col.offer_event_run(&mut buf, usize::MAX), 3);
        assert!(matches!(buf.front(), Some(Item::Watermark(99))));
        assert_eq!(consumers[0].len(), 3);
        // Pop the control item; the next run is limited by queue capacity.
        buf.pop_front();
        for i in 4..10 {
            buf.push_back(ev(i));
        }
        assert_eq!(
            col.offer_event_run(&mut buf, usize::MAX),
            1,
            "queue has 1 slot"
        );
        assert_eq!(buf.len(), 6, "unplaced events stay buffered");
        let mut got = Vec::new();
        consumers[0].drain_batch(16, |it| {
            if let Item::Event { ts, .. } = it {
                got.push(ts);
            }
        });
        assert_eq!(got, vec![0, 1, 2, 3], "run delivery broke FIFO");
    }

    #[test]
    fn event_run_unicast_spills_to_next_target_when_full() {
        let (mut col, mut consumers) = make(Routing::Unicast, 2, 2);
        let mut buf: VecDeque<Item> = (0..5).map(ev).collect();
        // Target 0 takes 2, target 1 takes 2, one event stays.
        assert_eq!(col.offer_event_run(&mut buf, usize::MAX), 4);
        assert_eq!(buf.len(), 1);
        assert_eq!(consumers[0].len(), 2);
        assert_eq!(consumers[1].len(), 2);
        consumers[0].poll();
        assert_eq!(col.offer_event_run(&mut buf, usize::MAX), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn event_run_respects_max_budget() {
        let (mut col, consumers) = make(Routing::Unicast, 1, 16);
        let mut buf: VecDeque<Item> = (0..8).map(ev).collect();
        assert_eq!(col.offer_event_run(&mut buf, 3), 3);
        assert_eq!(buf.len(), 5);
        assert_eq!(consumers[0].len(), 3);
    }

    #[test]
    fn event_run_partitioned_keeps_key_affinity() {
        let key_fn: crate::dag::KeyHashFn =
            Arc::new(|obj| jet_util::seq::hash_of(crate::object::downcast_ref::<u64>(obj)));
        let (mut col, consumers) = make(Routing::Partitioned(key_fn), 4, 64);
        let mut buf: VecDeque<Item> = std::iter::repeat_with(|| ev(42)).take(6).collect();
        assert_eq!(col.offer_event_run(&mut buf, usize::MAX), 6);
        let with_data: Vec<usize> = consumers
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(with_data.len(), 1, "key 42 spread across targets");
        assert_eq!(consumers[with_data[0]].len(), 6);
    }

    #[test]
    fn broadcast_routing_clones_events_to_all() {
        let (mut col, mut consumers) = make(Routing::Broadcast, 3, 8);
        col.offer_event(ev(7)).unwrap();
        for c in &mut consumers {
            match c.poll() {
                Some(Item::Event { obj, .. }) => {
                    assert_eq!(*crate::object::downcast_ref::<u64>(obj.as_ref()), 7)
                }
                other => panic!("expected event, got {other:?}"),
            }
        }
    }
}

//! Sharded open-addressing keyed store for millions-of-keys windowed state.
//!
//! The paper's keyed hot path (§2.3, §7) must neither allocate per event nor
//! stall for O(keys) at a window close. [`KeyTable`] is the storage layer
//! that makes both hold at 10M+ keys:
//!
//! * **Open addressing, linear probing, backward-shift deletion.** Slots are
//!   flat `(fingerprint, key, value)` triples in one allocation per shard;
//!   an empty slot is marked by fingerprint 0 (occupied fingerprints are
//!   normalized non-zero), so a slot costs exactly
//!   `size_of::<(u64, K, V)>()` — no `Option` discriminant, no per-entry
//!   boxes. Inserting into a table with spare capacity touches one probe
//!   run and never allocates; growth doubles a single shard and is the only
//!   allocating operation (marked `#[cold]`).
//! * **Per-worker shards in morton (Z-order) layout.** Keys are pre-hashed
//!   to a 64-bit fingerprint; the fingerprint's partition (the same
//!   `bucket_of` assignment partitioned edges route by) is ranked on a
//!   space-filling curve over the `(stripe, row)` projection of the
//!   partition space — `stripe = p % 16` is the low nibble that striped
//!   edge assignment deals out to workers, `row = p / 16`. Contiguous
//!   morton ranks land in the same shard, so one worker's partitions
//!   cluster into whole shards and cursor walks (snapshot, eviction) touch
//!   per-worker runs instead of interleaving every worker's cache lines.
//! * **Cursor-resumable scans and drains.** [`Cursor`] is a plain
//!   `(shard, slot)` position: emission, amortized eviction and chunked
//!   snapshots all walk the table a bounded number of slots per tasklet
//!   quantum and resume exactly where they stopped. `drain_next` leaves
//!   tombstone-free holes, so it is only for tables being emptied
//!   wholesale (detached frames); `scan_next` never mutates.
//!
//! [`StateProbe`] is the tiny atomic bundle a keyed processor exports to
//! the metrics layer (`jet_state_resident_bytes`,
//! `jet_window_late_events_total`) without any lock on the hot path.

use jet_util::seq;
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the shard count per table.
pub const SHARD_BITS: u32 = 4;
/// Shards per table. 16 shards × 8-slot minimum keeps empty tables tiny
/// while letting 10M-key tables grow one shard (one allocation) at a time.
pub const SHARD_COUNT: usize = 1 << SHARD_BITS;

/// Width of the stripe (low-nibble) axis of the morton projection.
const STRIPE_BITS: u32 = 4;

/// Normalize a raw key hash into an occupied-slot fingerprint (non-zero).
#[inline]
pub fn fingerprint(hash: u64) -> u64 {
    if hash == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        hash
    }
}

/// Morton (Z-order) rank of partition `p` in the `(stripe, row)` projection
/// of the partition space: `stripe = p % 16` (the axis striped edge
/// assignment deals to workers), `row = p / 16`. Interleaving the two axes
/// makes partitions that share a stripe and sit in nearby rows adjacent in
/// rank order — the locality shards are carved from.
#[inline]
pub fn morton_rank(p: u32) -> u64 {
    let stripe = (p & ((1 << STRIPE_BITS) - 1)) as u64;
    let row = (p >> STRIPE_BITS) as u64;
    spread_bits(stripe) | (spread_bits(row) << 1)
}

/// Spread the low 32 bits of `v` to the even bit positions of a u64.
#[inline]
fn spread_bits(mut v: u64) -> u64 {
    v &= 0xFFFF_FFFF;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Partition → shard map: the partition space sorted by morton rank and
/// carved into `SHARD_COUNT` equal contiguous runs. Contiguity in rank
/// order is what gives shards their locality (partitions that neighbour on
/// the curve share a shard); equal runs give exact balance.
fn shard_map(partition_count: u32) -> Box<[u8]> {
    let n = partition_count.max(1) as usize;
    let mut by_rank: Vec<u32> = (0..n as u32).collect();
    by_rank.sort_by_key(|&p| morton_rank(p));
    let mut map = vec![0u8; n].into_boxed_slice();
    for (pos, &p) in by_rank.iter().enumerate() {
        map[p as usize] = (pos * SHARD_COUNT / n) as u8;
    }
    map
}

/// One storage slot: fingerprint 0 ⇒ empty.
#[derive(Clone, Default)]
struct Slot<K, V> {
    fp: u64,
    key: K,
    value: V,
}

struct Shard<K, V> {
    slots: Box<[Slot<K, V>]>,
    /// `slots.len() - 1`; slots.len() is a power of two (or zero).
    mask: usize,
    len: usize,
    /// Grow when `len` would exceed this (7/8 of capacity).
    grow_at: usize,
}

impl<K: Copy + Eq + Default, V: Clone + Default> Shard<K, V> {
    fn empty() -> Self {
        Shard {
            slots: Box::default(),
            mask: 0,
            len: 0,
            grow_at: 0,
        }
    }

    /// Double the shard and rehash. The only allocating operation on the
    /// insert path; amortized O(1) per insert and absent entirely once a
    /// recycled table has reached its working-set capacity.
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![Slot::default(); new_cap].into());
        self.mask = new_cap - 1;
        self.grow_at = new_cap - new_cap / 8;
        for s in old.iter() {
            if s.fp == 0 {
                continue;
            }
            let mut i = (s.fp as usize) & self.mask;
            while self.slots[i].fp != 0 {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = s.clone();
        }
    }
}

/// Resumable position in a [`KeyTable`] walk. `Default` is the start.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Cursor {
    shard: u32,
    slot: u32,
}

/// Sharded open-addressing keyed table; see the module docs.
pub struct KeyTable<K, V> {
    shards: Box<[Shard<K, V>]>,
    len: usize,
    partition_count: u32,
    /// Partition id → shard index (morton-rank run assignment).
    shard_map: Box<[u8]>,
}

impl<K: Copy + Eq + Default, V: Clone + Default> KeyTable<K, V> {
    /// An empty table whose shard layout follows `partition_count`
    /// partitions (the partitioned-edge assignment space). Cold:
    /// construction happens at init/rescale, never per event — steady
    /// state recycles emptied tables instead.
    #[cold]
    pub fn new(partition_count: u32) -> Self {
        let mut shards = Vec::with_capacity(SHARD_COUNT);
        for _ in 0..SHARD_COUNT {
            shards.push(Shard::empty());
        }
        KeyTable {
            shards: shards.into(),
            len: 0,
            partition_count: partition_count.max(1),
            shard_map: shard_map(partition_count),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total allocated slots across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// Bytes resident in slot storage (capacity accounting, not live-entry
    /// accounting: open addressing pays for its empty slots).
    pub fn resident_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<Slot<K, V>>()
            + self.shards.len() * std::mem::size_of::<Shard<K, V>>()
    }

    /// Shard index for a fingerprint: partition → morton-rank run.
    #[inline]
    fn shard_of(&self, fp: u64) -> usize {
        let p = seq::bucket_of(fp, self.partition_count);
        self.shard_map[p as usize] as usize
    }

    /// Find-or-create the entry for `(fp, key)`. Returns the value and
    /// whether the entry was newly created. Allocation-free unless the
    /// target shard must grow.
    #[inline]
    pub fn upsert(&mut self, fp: u64, key: K, create: impl FnOnce() -> V) -> (&mut V, bool) {
        debug_assert!(fp != 0, "fingerprints must be normalized non-zero");
        let si = self.shard_of(fp);
        let shard = &mut self.shards[si];
        if shard.len + 1 > shard.grow_at {
            shard.grow();
        }
        let mask = shard.mask;
        let mut i = (fp as usize) & mask;
        let newly = loop {
            let s = &shard.slots[i];
            if s.fp == 0 {
                break true;
            }
            if s.fp == fp && s.key == key {
                break false;
            }
            i = (i + 1) & mask;
        };
        if newly {
            shard.slots[i] = Slot {
                fp,
                key,
                value: create(),
            };
            shard.len += 1;
            self.len += 1;
        }
        (&mut shard.slots[i].value, newly)
    }

    /// Mutable lookup without insertion.
    #[inline]
    pub fn get_mut(&mut self, fp: u64, key: &K) -> Option<&mut V> {
        let si = self.shard_of(fp);
        let shard = &mut self.shards[si];
        if shard.slots.is_empty() {
            return None;
        }
        let mask = shard.mask;
        let mut i = (fp as usize) & mask;
        loop {
            let s = &shard.slots[i];
            if s.fp == 0 {
                return None;
            }
            if s.fp == fp && s.key == *key {
                return Some(&mut shard.slots[i].value);
            }
            i = (i + 1) & mask;
        }
    }

    /// Immutable lookup.
    #[inline]
    pub fn get(&self, fp: u64, key: &K) -> Option<&V> {
        let si = self.shard_of(fp);
        let shard = &self.shards[si];
        if shard.slots.is_empty() {
            return None;
        }
        let mask = shard.mask;
        let mut i = (fp as usize) & mask;
        loop {
            let s = &shard.slots[i];
            if s.fp == 0 {
                return None;
            }
            if s.fp == fp && s.key == *key {
                return Some(&s.value);
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove an entry, restoring probe-chain invariants by backward-shift
    /// (no tombstones, so long-lived tables never degrade). Allocation-free.
    pub fn remove(&mut self, fp: u64, key: &K) -> Option<V> {
        let si = self.shard_of(fp);
        let shard = &mut self.shards[si];
        if shard.slots.is_empty() {
            return None;
        }
        let mask = shard.mask;
        let mut i = (fp as usize) & mask;
        loop {
            let s = &shard.slots[i];
            if s.fp == 0 {
                return None;
            }
            if s.fp == fp && s.key == *key {
                break;
            }
            i = (i + 1) & mask;
        }
        let taken = std::mem::take(&mut shard.slots[i]);
        shard.len -= 1;
        self.len -= 1;
        // Backward shift: pull forward any displaced slot whose probe run
        // crosses the hole.
        let mut hole = i;
        let mut j = (i + 1) & mask;
        loop {
            if shard.slots[j].fp == 0 {
                break;
            }
            let ideal = (shard.slots[j].fp as usize) & mask;
            // `j` may move into `hole` iff `hole` lies in [ideal, j]
            // cyclically — i.e. the displacement of `j` from its ideal slot
            // spans the hole.
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                shard.slots[hole] = std::mem::take(&mut shard.slots[j]);
                hole = j;
            }
            j = (j + 1) & mask;
        }
        Some(taken.value)
    }

    /// Next occupied entry at or after `cur`; the returned cursor resumes
    /// *after* the entry. Stable as long as the table is not mutated.
    #[inline]
    pub fn scan_next(&self, mut cur: Cursor) -> (Cursor, Option<(u64, &K, &V)>) {
        while (cur.shard as usize) < self.shards.len() {
            let shard = &self.shards[cur.shard as usize];
            while (cur.slot as usize) < shard.slots.len() {
                let s = &shard.slots[cur.slot as usize];
                cur.slot += 1;
                if s.fp != 0 {
                    return (cur, Some((s.fp, &s.key, &s.value)));
                }
            }
            cur.shard += 1;
            cur.slot = 0;
        }
        (cur, None)
    }

    /// Remove and return the next occupied entry at or after `cur`. Leaves
    /// holes without backward-shift: only valid on a table that is being
    /// drained to empty (probe lookups are undefined after a partial
    /// drain). Capacity is retained for recycling.
    #[inline]
    pub fn drain_next(&mut self, mut cur: Cursor) -> (Cursor, Option<(u64, K, V)>) {
        while (cur.shard as usize) < self.shards.len() {
            let shard = &mut self.shards[cur.shard as usize];
            while (cur.slot as usize) < shard.slots.len() {
                let i = cur.slot as usize;
                cur.slot += 1;
                if shard.slots[i].fp != 0 {
                    let s = std::mem::take(&mut shard.slots[i]);
                    shard.len -= 1;
                    self.len -= 1;
                    return (cur, Some((s.fp, s.key, s.value)));
                }
            }
            cur.shard += 1;
            cur.slot = 0;
        }
        (cur, None)
    }

    /// Empty the table, retaining capacity.
    pub fn clear(&mut self) {
        for shard in self.shards.iter_mut() {
            if shard.len == 0 {
                continue;
            }
            for s in shard.slots.iter_mut() {
                if s.fp != 0 {
                    *s = Slot::default();
                }
            }
            shard.len = 0;
        }
        self.len = 0;
    }
}

/// Lock-free bundle of keyed-state health numbers a processor exports to
/// the metrics registry (sampled by the telemetry timeline).
#[derive(Default)]
pub struct StateProbe {
    /// Capacity-accounted bytes resident in keyed state
    /// (`jet_state_resident_bytes`).
    pub resident_bytes: AtomicU64,
    /// Live keyed entries across all tables (`jet_state_keys_records`).
    pub resident_keys: AtomicU64,
    /// Events dropped as late by the window floor
    /// (`jet_window_late_events_total`).
    pub late_events: AtomicU64,
}

impl StateProbe {
    pub fn set_resident(&self, bytes: u64, keys: u64) {
        self.resident_bytes.store(bytes, Ordering::Relaxed);
        self.resident_keys.store(keys, Ordering::Relaxed);
    }

    pub fn set_late_events(&self, n: u64) {
        self.late_events.store(n, Ordering::Relaxed);
    }
}

/// Fixed-capacity inline string: a `Copy` grouping key for textual keys
/// (the window frame store requires `Copy + Default` keys so slots stay
/// flat and insertion never allocates). Holds up to `N` bytes of UTF-8;
/// construction truncates at the last complete character that fits. Two
/// `InlineStr`s are equal iff their retained bytes are equal, so keys
/// longer than `N` collide on a shared prefix — size `N` for the domain.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct InlineStr<const N: usize> {
    len: u8,
    buf: [u8; N],
}

impl<const N: usize> Default for InlineStr<N> {
    fn default() -> Self {
        InlineStr {
            len: 0,
            buf: [0; N],
        }
    }
}

impl<const N: usize> InlineStr<N> {
    pub fn as_str(&self) -> &str {
        // Retained bytes are always a valid UTF-8 prefix by construction.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<const N: usize> From<&str> for InlineStr<N> {
    fn from(s: &str) -> Self {
        let mut end = s.len().min(N).min(u8::MAX as usize);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; N];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        InlineStr {
            len: end as u8,
            buf,
        }
    }
}

impl<const N: usize> std::fmt::Display for InlineStr<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl<const N: usize> std::fmt::Debug for InlineStr<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl<const N: usize> crate::state::Snap for InlineStr<N> {
    fn save(&self, w: &mut jet_util::codec::ByteWriter) {
        w.put_str(self.as_str());
    }

    fn load(r: &mut jet_util::codec::ByteReader<'_>) -> Result<Self, jet_util::codec::DecodeError> {
        let s = r.get_str()?;
        if s.len() > N {
            return Err(jet_util::codec::DecodeError("inline string over capacity"));
        }
        Ok(InlineStr::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn upsert_get_remove_roundtrip() {
        let mut t: KeyTable<u64, u64> = KeyTable::new(271);
        for k in 0..1000u64 {
            let fp = fingerprint(seq::hash_of(&k));
            let (v, newly) = t.upsert(fp, k, || 0);
            assert!(newly);
            *v = k * 3;
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            let fp = fingerprint(seq::hash_of(&k));
            assert_eq!(t.get(fp, &k), Some(&(k * 3)));
            let (v, newly) = t.upsert(fp, k, || 0);
            assert!(!newly);
            assert_eq!(*v, k * 3);
        }
        for k in (0..1000u64).step_by(2) {
            let fp = fingerprint(seq::hash_of(&k));
            assert_eq!(t.remove(fp, &k), Some(k * 3));
            assert_eq!(t.remove(fp, &k), None);
        }
        assert_eq!(t.len(), 500);
        for k in 0..1000u64 {
            let fp = fingerprint(seq::hash_of(&k));
            assert_eq!(t.get(fp, &k), (k % 2 == 1).then_some(&(k * 3)));
        }
    }

    #[test]
    fn scan_and_drain_visit_every_entry_once() {
        let mut t: KeyTable<u64, u64> = KeyTable::new(271);
        for k in 0..257u64 {
            let fp = fingerprint(seq::hash_of(&k));
            t.upsert(fp, k, || k + 7);
        }
        let mut seen = HashMap::new();
        let mut cur = Cursor::default();
        loop {
            let (next, item) = t.scan_next(cur);
            cur = next;
            match item {
                Some((_, k, v)) => {
                    assert!(seen.insert(*k, *v).is_none());
                }
                None => break,
            }
        }
        assert_eq!(seen.len(), 257);
        // Resumable scan in chunks of 10 sees the same set.
        let mut chunked = 0usize;
        let mut cur = Cursor::default();
        'outer: loop {
            for _ in 0..10 {
                let (next, item) = t.scan_next(cur);
                cur = next;
                match item {
                    Some(_) => chunked += 1,
                    None => break 'outer,
                }
            }
        }
        assert_eq!(chunked, 257);
        let mut cur = Cursor::default();
        let mut drained = 0usize;
        loop {
            let (next, item) = t.drain_next(cur);
            cur = next;
            match item {
                Some((_, k, v)) => {
                    assert_eq!(seen.get(&k), Some(&v));
                    drained += 1;
                }
                None => break,
            }
        }
        assert_eq!(drained, 257);
        assert!(t.is_empty());
        assert!(t.capacity() > 0, "drain retains capacity for recycling");
    }

    #[test]
    fn backward_shift_preserves_probe_chains_vs_reference() {
        // Deterministic mixed workload compared against HashMap.
        let mut t: KeyTable<u64, u64> = KeyTable::new(271);
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x1234_5678_u64;
        for step in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 33) % 512; // small key space forces collisions
            let fp = fingerprint(seq::hash_of(&k));
            if x.is_multiple_of(3) {
                let removed = t.remove(fp, &k);
                assert_eq!(removed, m.remove(&k), "step {step} key {k}");
            } else {
                let (v, newly) = t.upsert(fp, k, || 0);
                *v += step;
                assert_eq!(newly, !m.contains_key(&k), "step {step} key {k}");
                let e = m.entry(k).or_insert(0);
                *e += step;
                assert_eq!(*v, *e);
            }
            assert_eq!(t.len(), m.len());
        }
        for (k, v) in &m {
            let fp = fingerprint(seq::hash_of(k));
            assert_eq!(t.get(fp, k), Some(v));
        }
    }

    #[test]
    fn morton_rank_orders_stripe_neighbours_adjacently() {
        // Same stripe, consecutive rows: ranks differ only in row bits.
        assert!(morton_rank(0) < morton_rank(16));
        assert!(morton_rank(16) < morton_rank(32));
        // Rank is injective over a partition space.
        let mut seen = std::collections::HashSet::new();
        for p in 0..271u32 {
            assert!(seen.insert(morton_rank(p)));
        }
    }

    #[test]
    fn shards_cover_partition_space_evenly() {
        let t: KeyTable<u64, u64> = KeyTable::new(271);
        let mut counts = [0usize; SHARD_COUNT];
        for i in 0..100_000u64 {
            let fp = fingerprint(seq::hash_of(&i));
            counts[t.shard_of(fp)] += 1;
        }
        let used = counts.iter().filter(|&&c| c > 0).count();
        assert!(used >= SHARD_COUNT / 2, "shards used: {used} ({counts:?})");
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max < min.max(1) * 8,
            "shard skew too high: min {min} max {max}"
        );
    }

    #[test]
    fn resident_bytes_tracks_capacity() {
        let mut t: KeyTable<u64, u64> = KeyTable::new(271);
        let empty = t.resident_bytes();
        for k in 0..10_000u64 {
            t.upsert(fingerprint(seq::hash_of(&k)), k, || 0);
        }
        let full = t.resident_bytes();
        assert!(full > empty);
        // Slot is sentinel-packed: 24 bytes for (u64 fp, u64 key, u64 val).
        assert_eq!(std::mem::size_of::<Slot<u64, u64>>(), 24);
        assert!(full >= t.capacity() * 24);
        // Load factor stays above 7/16 after any doubling.
        assert!(t.capacity() <= 10_000 * 16 / 7 + 8 * SHARD_COUNT);
    }
}

//! State (de)serialization for snapshots.
//!
//! Processor state must cross node boundaries and outlive its writer
//! (§4.4), so everything a stateful processor keeps is `Snap`: encodable to
//! the deterministic binary format in `jet_util::codec`. Implementations are
//! provided for the primitives and containers the built-in processors and
//! the NEXMark queries need; user types implement the trait directly (two
//! small methods) — the moral equivalent of Jet's requirement that state be
//! `Serializable`.
//!
//! The [`store`] submodule holds the keyed frame store (sharded
//! open-addressing tables) that windowed aggregation keeps its
//! millions-of-keys state in.

pub mod store;

pub use store::{fingerprint, morton_rank, Cursor, InlineStr, KeyTable, StateProbe};

use jet_util::codec::{ByteReader, ByteWriter, DecodeError};
use std::collections::HashMap;
use std::hash::Hash;

/// Snapshot-serializable state.
pub trait Snap: Sized {
    fn save(&self, w: &mut ByteWriter);
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError>;

    /// Serialize to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.save(&mut w);
        w.into_bytes()
    }

    /// Deserialize from a byte slice, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::load(&mut r)?;
        if !r.is_exhausted() {
            return Err(DecodeError("trailing bytes after value"));
        }
        Ok(v)
    }
}

impl Snap for u64 {
    fn save(&self, w: &mut ByteWriter) {
        w.put_varint(*self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_varint()
    }
}

impl Snap for i64 {
    fn save(&self, w: &mut ByteWriter) {
        // zig-zag so small negatives stay small
        w.put_varint(((*self << 1) ^ (*self >> 63)) as u64);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let z = r.get_varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

impl Snap for u32 {
    fn save(&self, w: &mut ByteWriter) {
        w.put_varint(*self as u64);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let v = r.get_varint()?;
        u32::try_from(v).map_err(|_| DecodeError("u32 overflow"))
    }
}

impl Snap for usize {
    fn save(&self, w: &mut ByteWriter) {
        w.put_varint(*self as u64);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let v = r.get_varint()?;
        usize::try_from(v).map_err(|_| DecodeError("usize overflow"))
    }
}

impl Snap for f64 {
    fn save(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_f64()
    }
}

impl Snap for bool {
    fn save(&self, w: &mut ByteWriter) {
        w.put_bool(*self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_bool()
    }
}

impl Snap for String {
    fn save(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(r.get_str()?.to_string())
    }
}

impl Snap for Vec<u8> {
    fn save(&self, w: &mut ByteWriter) {
        w.put_bytes(self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(r.get_bytes()?.to_vec())
    }
}

impl Snap for () {
    fn save(&self, _w: &mut ByteWriter) {}
    fn load(_r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap, D: Snap> Snap for (A, B, C, D) {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
        self.3.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?, D::load(r)?))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.save(w);
            }
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        if r.get_bool()? {
            Ok(Some(T::load(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut ByteWriter) {
        w.put_varint(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = r.get_varint()? as usize;
        // Guard against hostile lengths: cap the pre-allocation.
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<K: Snap + Eq + Hash, V: Snap> Snap for HashMap<K, V> {
    fn save(&self, w: &mut ByteWriter) {
        w.put_varint(self.len() as u64);
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = r.get_varint()? as usize;
        let mut out = HashMap::with_capacity(n.min(4096));
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(42u32);
        roundtrip(7usize);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip("hello".to_string());
        roundtrip(b"raw".to_vec());
        roundtrip(());
    }

    #[test]
    fn zigzag_keeps_small_negatives_small() {
        assert_eq!((-1i64).to_bytes().len(), 1);
        assert_eq!((-64i64).to_bytes().len(), 1);
        assert_eq!(100i64.to_bytes().len(), 2);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Some(5u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1i64, -2, 3]);
        roundtrip(("k".to_string(), 9u64));
        roundtrip((1u64, -2i64, "z".to_string()));
        let mut m = HashMap::new();
        m.insert("a".to_string(), vec![1u64, 2]);
        m.insert("b".to_string(), vec![]);
        roundtrip(m);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert!(u64::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_vec_rejected() {
        let bytes = vec![10u8]; // claims 10 elements, provides none
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }
}

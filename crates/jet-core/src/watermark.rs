//! Event-time machinery: watermark generation at sources and coalescing at
//! multi-input vertices (paper §2.2 — Jet handles out-of-order streams).
//!
//! * [`EventTimeMapper`] lives inside source processors: given events with
//!   (possibly out-of-order) timestamps it decides which watermarks to emit,
//!   applying an *allowed lag*, throttling emission to a minimum stride, and
//!   detecting idle inputs so one quiet source partition cannot stall the
//!   whole pipeline's event time.
//! * [`WatermarkCoalescer`] lives inside processor tasklets: the vertex-level
//!   watermark is the minimum over all input channels, and it is forwarded
//!   only when it advances.

use crate::item::Ts;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Sentinel: no watermark observed yet.
pub const NO_WATERMARK: Ts = Ts::MIN;

/// Shared view of one tasklet's watermark position, exported as gauges and
/// shown in the diagnostics dump: the highest watermark seen on any input
/// channel vs. the coalesced (min) output — the gap between them is exactly
/// the straggler lag the coalescer is waiting out.
#[derive(Debug, Default)]
pub struct WatermarkProbe {
    last_seen: AtomicI64,
    coalesced: AtomicI64,
}

impl WatermarkProbe {
    pub fn shared() -> Arc<WatermarkProbe> {
        Arc::new(WatermarkProbe {
            last_seen: AtomicI64::new(NO_WATERMARK),
            coalesced: AtomicI64::new(NO_WATERMARK),
        })
    }

    pub fn note_seen(&self, wm: Ts) {
        self.last_seen.fetch_max(wm, Ordering::Relaxed);
    }

    pub fn note_coalesced(&self, wm: Ts) {
        self.coalesced.store(wm, Ordering::Relaxed);
    }

    /// Highest non-idle watermark observed on any input channel.
    pub fn last_seen(&self) -> Ts {
        self.last_seen.load(Ordering::Relaxed)
    }

    /// Last coalesced output watermark.
    pub fn coalesced(&self) -> Ts {
        self.coalesced.load(Ordering::Relaxed)
    }
}

/// Watermark policy + emission throttling for one source instance.
#[derive(Debug, Clone)]
pub struct EventTimeMapper {
    /// Watermark = max_seen_ts - allowed_lag.
    allowed_lag: Ts,
    /// Minimum distance between consecutive emitted watermarks.
    min_stride: Ts,
    /// If no event arrives for this long (processing time), declare the
    /// source idle: emit `IDLE` so downstream coalescing skips this channel.
    idle_timeout_nanos: u64,
    top_ts: Ts,
    last_emitted: Ts,
    last_event_at: u64,
    idle: bool,
}

/// What the mapper wants the source to emit after observing an event (or
/// after a quiet period).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WmAction {
    None,
    /// Emit `Watermark(ts)` downstream.
    Emit(Ts),
    /// Channel went idle: emit the IDLE marker (represented as `Ts::MAX`
    /// so a min-coalescer naturally ignores idle channels).
    MarkIdle,
}

/// The in-band representation of an idle channel (§2.2): `Ts::MAX` makes the
/// min-coalescer transparent to idle inputs.
pub const IDLE_CHANNEL: Ts = Ts::MAX;

impl EventTimeMapper {
    // jet-analyze: allow(panic) — constructor parameter validation at wiring time
    pub fn new(allowed_lag: Ts, min_stride: Ts, idle_timeout_nanos: u64) -> Self {
        assert!(allowed_lag >= 0 && min_stride >= 0);
        EventTimeMapper {
            allowed_lag,
            min_stride: min_stride.max(1),
            idle_timeout_nanos,
            top_ts: NO_WATERMARK,
            last_emitted: NO_WATERMARK,
            last_event_at: 0,
            idle: false,
        }
    }

    /// Observe one event with timestamp `ts` at processing time `now`.
    pub fn observe_event(&mut self, ts: Ts, now_nanos: u64) -> WmAction {
        self.last_event_at = now_nanos;
        self.idle = false;
        if ts > self.top_ts {
            self.top_ts = ts;
        }
        let candidate = self.top_ts.saturating_sub(self.allowed_lag);
        if self.last_emitted == NO_WATERMARK || candidate >= self.last_emitted + self.min_stride {
            self.last_emitted = candidate;
            WmAction::Emit(candidate)
        } else {
            WmAction::None
        }
    }

    /// Called periodically when no event is available.
    pub fn observe_idle(&mut self, now_nanos: u64) -> WmAction {
        if self.idle || self.idle_timeout_nanos == 0 {
            return WmAction::None;
        }
        if self.top_ts != NO_WATERMARK
            && now_nanos.saturating_sub(self.last_event_at) >= self.idle_timeout_nanos
        {
            self.idle = true;
            return WmAction::MarkIdle;
        }
        WmAction::None
    }

    /// Highest event timestamp seen.
    pub fn top_ts(&self) -> Ts {
        self.top_ts
    }

    pub fn last_emitted(&self) -> Ts {
        self.last_emitted
    }
}

/// Min-coalescer over `n` input channels.
#[derive(Debug, Clone)]
pub struct WatermarkCoalescer {
    per_channel: Vec<Ts>,
    output: Ts,
    /// Set once the all-idle marker has been emitted (until a revival).
    output_idle: bool,
}

impl WatermarkCoalescer {
    pub fn new(channels: usize) -> Self {
        WatermarkCoalescer {
            per_channel: vec![NO_WATERMARK; channels],
            output: NO_WATERMARK,
            output_idle: false,
        }
    }

    /// Record watermark `wm` from `channel`. Returns the new coalesced
    /// watermark if it advanced. A channel may "revive" from idle with any
    /// watermark (the coalesced output stays monotonic regardless).
    pub fn observe(&mut self, channel: usize, wm: Ts) -> Option<Ts> {
        debug_assert!(
            wm >= self.per_channel[channel] || self.per_channel[channel] == IDLE_CHANNEL,
            "watermark regressed on channel {channel}: {} -> {wm}",
            self.per_channel[channel]
        );
        self.per_channel[channel] = wm;
        let min = self
            .per_channel
            .iter()
            .copied()
            .min()
            .unwrap_or(NO_WATERMARK);
        if min == IDLE_CHANNEL {
            // Every channel idle: propagate the idle marker exactly once so
            // downstream coalescers skip this vertex too (without it, a
            // member whose sources own no data stalls the whole cluster's
            // event time).
            if !self.output_idle {
                self.output_idle = true;
                return Some(IDLE_CHANNEL);
            }
            return None;
        }
        self.output_idle = false;
        if min > self.output && min != NO_WATERMARK {
            self.output = min;
            Some(min)
        } else {
            None
        }
    }

    /// A channel finished (Done): treat as idle forever for coalescing
    /// purposes, but never *emit* the all-idle marker on this path — a
    /// vertex whose inputs completed is about to run its own completion
    /// flush (which emits real data and watermarks); advertising idleness
    /// first would let that flush's watermark overtake a sibling's pending
    /// flush downstream.
    pub fn channel_done(&mut self, channel: usize) -> Option<Ts> {
        self.per_channel[channel] = IDLE_CHANNEL;
        let min = self
            .per_channel
            .iter()
            .copied()
            .min()
            .unwrap_or(NO_WATERMARK);
        if min == IDLE_CHANNEL {
            self.output_idle = true;
            return None;
        }
        if min > self.output && min != NO_WATERMARK {
            self.output = min;
            Some(min)
        } else {
            None
        }
    }

    /// Current coalesced output watermark.
    pub fn output(&self) -> Ts {
        self.output
    }

    /// Per-channel positions (diagnostics): `NO_WATERMARK` = nothing seen
    /// yet, `IDLE_CHANNEL` = idle or done.
    pub fn channel_watermarks(&self) -> &[Ts] {
        &self.per_channel
    }

    /// Whether the coalesced output is currently the all-idle marker.
    pub fn is_idle(&self) -> bool {
        self.output_idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapper_emits_lagged_watermarks() {
        let mut m = EventTimeMapper::new(10, 1, 0);
        assert_eq!(m.observe_event(100, 0), WmAction::Emit(90));
        // Same top ts: candidate 90 < 90+1 stride, nothing new.
        assert_eq!(m.observe_event(95, 1), WmAction::None);
        assert_eq!(m.observe_event(101, 2), WmAction::Emit(91));
        assert_eq!(m.top_ts(), 101);
    }

    #[test]
    fn mapper_throttles_by_stride() {
        let mut m = EventTimeMapper::new(0, 10, 0);
        assert_eq!(m.observe_event(100, 0), WmAction::Emit(100));
        assert_eq!(m.observe_event(105, 0), WmAction::None);
        assert_eq!(m.observe_event(109, 0), WmAction::None);
        assert_eq!(m.observe_event(110, 0), WmAction::Emit(110));
    }

    #[test]
    fn mapper_ignores_late_events_for_wm_purposes() {
        let mut m = EventTimeMapper::new(0, 1, 0);
        m.observe_event(100, 0);
        assert_eq!(m.observe_event(50, 1), WmAction::None);
        assert_eq!(m.top_ts(), 100);
    }

    #[test]
    fn mapper_detects_idleness_once() {
        let mut m = EventTimeMapper::new(0, 1, 1000);
        m.observe_event(1, 0);
        assert_eq!(m.observe_idle(500), WmAction::None);
        assert_eq!(m.observe_idle(1000), WmAction::MarkIdle);
        assert_eq!(m.observe_idle(2000), WmAction::None, "idle emitted twice");
        // An event revives the channel.
        assert!(matches!(
            m.observe_event(2, 2000),
            WmAction::Emit(_) | WmAction::None
        ));
        assert_eq!(m.observe_idle(3000), WmAction::MarkIdle);
    }

    #[test]
    fn mapper_never_idle_before_first_event() {
        let mut m = EventTimeMapper::new(0, 1, 1000);
        assert_eq!(m.observe_idle(10_000), WmAction::None);
    }

    #[test]
    fn coalescer_takes_min_across_channels() {
        let mut c = WatermarkCoalescer::new(2);
        assert_eq!(c.observe(0, 10), None, "one channel silent, no output");
        assert_eq!(c.observe(1, 5), Some(5));
        assert_eq!(c.observe(1, 20), Some(10), "min moved to channel 0's wm");
        assert_eq!(c.observe(0, 15), Some(15));
        assert_eq!(c.output(), 15);
    }

    #[test]
    fn coalescer_ignores_non_advancing_watermarks() {
        let mut c = WatermarkCoalescer::new(1);
        assert_eq!(c.observe(0, 10), Some(10));
        assert_eq!(c.observe(0, 10), None);
    }

    #[test]
    fn idle_channel_is_transparent() {
        let mut c = WatermarkCoalescer::new(2);
        c.observe(0, IDLE_CHANNEL);
        assert_eq!(
            c.observe(1, 7),
            Some(7),
            "idle channel must not hold back wm"
        );
    }

    #[test]
    fn all_channels_idle_propagates_idle_once() {
        let mut c = WatermarkCoalescer::new(2);
        assert_eq!(c.observe(0, IDLE_CHANNEL), None);
        assert_eq!(c.observe(1, IDLE_CHANNEL), Some(IDLE_CHANNEL));
        assert_eq!(
            c.observe(1, IDLE_CHANNEL),
            None,
            "idle marker must not repeat"
        );
        // Revival resumes normal coalescing.
        assert_eq!(c.observe(0, 7), Some(7));
    }

    #[test]
    fn done_channel_acts_idle() {
        let mut c = WatermarkCoalescer::new(2);
        c.observe(0, 3);
        assert_eq!(c.channel_done(0), None);
        assert_eq!(c.observe(1, 9), Some(9));
    }

    #[test]
    fn done_channels_never_emit_the_idle_marker() {
        let mut c = WatermarkCoalescer::new(2);
        assert_eq!(c.channel_done(0), None);
        assert_eq!(c.channel_done(1), None, "done must not broadcast idleness");
    }

    #[test]
    fn done_channel_can_still_advance_watermark() {
        let mut c = WatermarkCoalescer::new(2);
        c.observe(0, 5);
        c.observe(1, 3);
        assert_eq!(
            c.channel_done(1),
            Some(5),
            "losing the min channel advances"
        );
    }

    #[test]
    fn single_channel_passthrough() {
        let mut c = WatermarkCoalescer::new(1);
        assert_eq!(c.observe(0, 1), Some(1));
        assert_eq!(c.observe(0, 2), Some(2));
    }

    #[test]
    fn multi_channel_out_of_order_advance() {
        // Four channels advancing in interleaved, unequal strides: the
        // output must always be the min over channels and strictly monotone.
        let mut c = WatermarkCoalescer::new(4);
        let steps: [(usize, Ts); 12] = [
            (2, 40),
            (0, 10),
            (3, 25),
            (1, 30), // every channel reported: min = 10
            (0, 50), // straggler rotates to channel 3: min = 25
            (3, 35), // min = 30 (channel 1)
            (1, 90), // min = 35 (channel 3)
            (3, 70), // min = 40 (channel 2)
            (2, 41), // min = 41
            (2, 95), // min = 50 (channel 0)
            (0, 70), // min = 70
            (3, 70), // no advance: min stays 70
        ];
        let mut last = NO_WATERMARK;
        let mut emitted = Vec::new();
        for (ch, wm) in steps {
            if let Some(out) = c.observe(ch, wm) {
                assert!(out > last, "coalesced output regressed: {last} -> {out}");
                last = out;
                emitted.push(out);
            }
            let min = c.channel_watermarks().iter().copied().min().unwrap();
            if min != NO_WATERMARK {
                assert_eq!(c.output(), min, "output must track the channel min");
            }
        }
        assert_eq!(emitted, vec![10, 25, 30, 35, 40, 41, 50, 70]);
        assert_eq!(c.output(), 70);
    }

    #[test]
    fn channel_done_with_straggler_channel() {
        // Channel 1 is far behind; when it finishes, its (stale) position
        // must stop holding the output back — but a channel that never
        // reported anything still gates the output entirely.
        let mut c = WatermarkCoalescer::new(3);
        assert_eq!(c.observe(0, 100), None);
        assert_eq!(c.observe(1, 2), None, "channel 2 still silent");
        assert_eq!(c.observe(2, 60), Some(2));
        assert_eq!(
            c.channel_done(1),
            Some(60),
            "straggler done -> min(100, 60)"
        );
        assert_eq!(c.channel_done(2), Some(100), "only channel 0 remains");
        // Last channel done: acts idle, never emits the idle marker.
        assert_eq!(c.channel_done(0), None);
        assert!(c.is_idle());
        assert_eq!(c.output(), 100, "output survives total completion");
        assert!(c.channel_watermarks().iter().all(|&w| w == IDLE_CHANNEL));
    }

    #[test]
    fn straggler_done_before_reporting_anything() {
        let mut c = WatermarkCoalescer::new(2);
        assert_eq!(c.observe(0, 10), None, "gated by the silent channel");
        assert_eq!(
            c.channel_done(1),
            Some(10),
            "a never-reporting channel that completes releases the output"
        );
    }

    #[test]
    fn idle_sentinel_roundtrip_with_revival_and_done() {
        let mut c = WatermarkCoalescer::new(3);
        c.observe(0, 5);
        c.observe(1, 5);
        c.observe(2, 5);
        // Two channels idle: remaining live channel drives the output alone.
        assert_eq!(c.observe(0, IDLE_CHANNEL), None);
        assert_eq!(c.observe(1, IDLE_CHANNEL), None);
        assert!(!c.is_idle());
        assert_eq!(c.observe(2, 9), Some(9));
        // Third goes idle too: exactly one idle marker.
        assert_eq!(c.observe(2, IDLE_CHANNEL), Some(IDLE_CHANNEL));
        assert!(c.is_idle());
        // A revival with a watermark *behind* the output is absorbed
        // (monotonicity), then the channel catches up.
        assert_eq!(c.observe(0, 3), None, "behind coalesced output");
        assert!(!c.is_idle(), "any live channel clears idleness");
        assert_eq!(
            c.observe(0, IDLE_CHANNEL),
            Some(IDLE_CHANNEL),
            "re-idle re-emits"
        );
        // Done on an idle channel keeps it transparent.
        assert_eq!(c.channel_done(1), None);
        assert_eq!(c.observe(0, 12), Some(12));
        assert_eq!(c.output(), 12);
    }

    #[test]
    fn probe_tracks_seen_vs_coalesced() {
        let p = WatermarkProbe::shared();
        assert_eq!(p.last_seen(), NO_WATERMARK);
        assert_eq!(p.coalesced(), NO_WATERMARK);
        p.note_seen(50);
        p.note_seen(20); // max semantics: stale observations don't regress
        p.note_coalesced(20);
        assert_eq!(p.last_seen(), 50);
        assert_eq!(p.coalesced(), 20);
    }
}

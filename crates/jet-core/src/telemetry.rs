//! Continuous metrics timeline: the *when* axis for the metrics registry.
//!
//! PR 1's [`crate::metrics::MetricsSnapshot`] is a point-in-time view and
//! PR 6's flight recorder only keeps snapshots around detected incidents.
//! This module samples **every registered instrument** on a fixed virtual-
//! timeline cadence into bounded, delta-encoded rings, so a whole run can
//! be replayed as a time series: queue depths ramping up before a stall,
//! watermark lag breathing with snapshot phases, throughput dips lining up
//! with recovery.
//!
//! Cost discipline matches the tracer and flight recorder: sampling runs in
//! *real* time only, between simulator quanta, and never advances the
//! virtual clock — an instrumented run produces bit-identical percentiles
//! to an uninstrumented one. The rings are bounded (`capacity` ticks ×
//! registered series); old ticks fold into each series' `base` so the
//! retained window always reconstructs exactly.
//!
//! Encoding: one [`Series`] per distinct `(name, tags)` instrument. Each
//! tick appends one signed delta per series (`value - previous value`);
//! counters therefore store their per-tick increments directly and flat
//! gauges compress to runs of zeros. Histograms are sampled at their p99 —
//! the tail-shape signal this engine is about. A series that first appears
//! mid-run is zero-padded so every series always has exactly one delta per
//! retained tick.

use crate::metrics::{json_escape, MetricValue, MetricsSnapshot, Tags};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

const MS: u64 = 1_000_000;

/// Tuning for the metrics timeline.
#[derive(Clone, Debug)]
pub struct TimelineConfig {
    /// Sampling cadence in virtual nanos.
    pub cadence_nanos: u64,
    /// Ticks retained per series; older ticks fold into the series base.
    pub capacity: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            cadence_nanos: 100 * MS,
            capacity: 1024,
        }
    }
}

/// What a sampled instrument's scalar means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Cumulative counter; deltas are per-tick increments.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Histogram sampled at its p99 (nanos for latency instruments).
    HistogramP99,
}

impl SeriesKind {
    pub fn name(&self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::HistogramP99 => "histogram_p99",
        }
    }
}

/// One `(name, tags)` instrument's delta-encoded ring. `base` is the
/// absolute value just before the oldest retained tick, so the value at
/// retained tick `i` is `base + deltas[0..=i].sum()`.
#[derive(Clone, Debug)]
pub struct Series {
    pub name: String,
    pub tags: Tags,
    pub kind: SeriesKind,
    pub base: i64,
    pub deltas: VecDeque<i64>,
    /// Last sampled absolute value (next delta's reference point).
    last: i64,
}

impl Series {
    /// Reconstruct the absolute value at every retained tick.
    pub fn values(&self) -> Vec<i64> {
        let mut acc = self.base;
        self.deltas
            .iter()
            .map(|d| {
                acc += d;
                acc
            })
            .collect()
    }
}

struct TimelineInner {
    cfg: TimelineConfig,
    /// Virtual timestamps of retained ticks, strictly increasing.
    ticks: VecDeque<u64>,
    /// Ticks folded out of the ring so far.
    evicted_ticks: u64,
    series: Vec<Series>,
    /// (name, canonical tag string) -> index into `series`.
    index: BTreeMap<(String, String), usize>,
    next_sample_at: u64,
    samples_total: u64,
}

fn tag_key(tags: &Tags) -> String {
    let mut s = String::new();
    for (k, v) in tags {
        s.push_str(k);
        s.push('\u{1}');
        s.push_str(v);
        s.push('\u{2}');
    }
    s
}

fn metric_scalar(value: &MetricValue) -> (SeriesKind, i64) {
    match value {
        MetricValue::Counter(v) => (SeriesKind::Counter, *v as i64),
        MetricValue::Gauge(v) => (SeriesKind::Gauge, *v),
        MetricValue::Histogram(h) => (SeriesKind::HistogramP99, h.p99 as i64),
    }
}

impl TimelineInner {
    fn record(&mut self, now: u64, snap: &MetricsSnapshot) {
        self.next_sample_at = now + self.cfg.cadence_nanos;
        // Re-sampling the same instant (e.g. a run boundary flush) would
        // break tick monotonicity; fold into the existing tick instead by
        // skipping — the snapshot at an instant is single-valued anyway.
        if self.ticks.back().is_some_and(|&t| t >= now) {
            return;
        }
        self.ticks.push_back(now);
        self.samples_total += 1;
        let prior_len = self.ticks.len() - 1;
        // Every known series gets a delta this tick; start at "unchanged".
        for s in &mut self.series {
            s.deltas.push_back(0);
        }
        for m in &snap.metrics {
            let (kind, value) = metric_scalar(&m.value);
            let key = (m.name.clone(), tag_key(&m.tags));
            match self.index.get(&key) {
                Some(&i) => {
                    let s = &mut self.series[i];
                    *s.deltas.back_mut().expect("pushed above") = value - s.last;
                    s.last = value;
                }
                None => {
                    // First appearance: zero-pad history so the ring stays
                    // rectangular, then step from 0 to the observed value.
                    let mut deltas: VecDeque<i64> = VecDeque::with_capacity(prior_len + 1);
                    deltas.extend(std::iter::repeat_n(0, prior_len));
                    deltas.push_back(value);
                    self.index.insert(key, self.series.len());
                    self.series.push(Series {
                        name: m.name.clone(),
                        tags: m.tags.clone(),
                        kind,
                        base: 0,
                        deltas,
                        last: value,
                    });
                }
            }
        }
        while self.ticks.len() > self.cfg.capacity {
            self.ticks.pop_front();
            self.evicted_ticks += 1;
            for s in &mut self.series {
                if let Some(d) = s.deltas.pop_front() {
                    s.base += d;
                }
            }
        }
    }

    fn sorted_series(&self) -> Vec<&Series> {
        let mut out: Vec<&Series> = self.series.iter().collect();
        out.sort_by(|a, b| (&a.name, &a.tags).cmp(&(&b.name, &b.tags)));
        out
    }
}

/// Cheap-to-clone handle to the metrics timeline; `disabled()` is a no-op
/// everywhere (single branch on the hot path, same shape as
/// [`crate::flight::FlightRecorder`]).
#[derive(Clone, Default)]
pub struct Timeline {
    inner: Option<Arc<Mutex<TimelineInner>>>,
}

impl Timeline {
    pub fn disabled() -> Timeline {
        Timeline { inner: None }
    }

    pub fn enabled() -> Timeline {
        Timeline::with_config(TimelineConfig::default())
    }

    pub fn with_config(cfg: TimelineConfig) -> Timeline {
        Timeline {
            inner: Some(Arc::new(Mutex::new(TimelineInner {
                cfg,
                ticks: VecDeque::new(),
                evicted_ticks: 0,
                series: Vec::new(),
                index: BTreeMap::new(),
                next_sample_at: 0,
                samples_total: 0,
            }))),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Is a sample due at virtual instant `now`?
    pub fn sample_due(&self, now: u64) -> bool {
        match &self.inner {
            Some(inner) => now >= inner.lock().next_sample_at,
            None => false,
        }
    }

    /// Virtual nanos until the next sample is due (0 if overdue). `None`
    /// when disabled — callers chunk long runs at the cadence without
    /// polling every quantum.
    pub fn next_sample_in(&self, now: u64) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().next_sample_at.saturating_sub(now))
    }

    /// Append one tick sampled from `snap` (normally the member-merged job
    /// snapshot, so per-member series arrive pre-tagged with `member`).
    pub fn record_sample(&self, now: u64, snap: &MetricsSnapshot) {
        let Some(inner) = &self.inner else { return };
        inner.lock().record(now, snap);
    }

    /// (samples taken, series tracked, ticks retained, ticks evicted).
    pub fn stats(&self) -> (u64, usize, usize, u64) {
        match &self.inner {
            Some(inner) => {
                let t = inner.lock();
                (
                    t.samples_total,
                    t.series.len(),
                    t.ticks.len(),
                    t.evicted_ticks,
                )
            }
            None => (0, 0, 0, 0),
        }
    }

    /// Retained tick timestamps, oldest first.
    pub fn ticks(&self) -> Vec<u64> {
        match &self.inner {
            Some(inner) => inner.lock().ticks.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Job-wide view: series summed across tag sets per `(name, kind)`,
    /// sorted by name — the compact rollup the diagnostics sparklines show.
    pub fn job_series(&self) -> Vec<(String, SeriesKind, Vec<i64>)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let t = inner.lock();
        let n = t.ticks.len();
        let mut rolled: BTreeMap<(String, &'static str), (SeriesKind, Vec<i64>)> = BTreeMap::new();
        for s in &t.series {
            let values = s.values();
            let entry = rolled
                .entry((s.name.clone(), s.kind.name()))
                .or_insert_with(|| (s.kind, vec![0; n]));
            for (acc, v) in entry.1.iter_mut().zip(values) {
                *acc += v;
            }
        }
        rolled
            .into_iter()
            .map(|((name, _), (kind, values))| (name, kind, values))
            .collect()
    }

    /// Export the retained window as `jet-timeline-v1` JSON.
    pub fn to_json(&self, bench: &str, run: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"jet-timeline-v1\",\n");
        let _ = write!(
            s,
            "  \"bench\": \"{}\",\n  \"run\": \"{}\",\n",
            json_escape(bench),
            json_escape(run)
        );
        match &self.inner {
            None => {
                s.push_str("  \"cadence_nanos\": 0,\n  \"evicted_ticks\": 0,\n");
                s.push_str("  \"ticks_nanos\": [],\n  \"series\": []\n}\n");
            }
            Some(inner) => {
                let t = inner.lock();
                let _ = write!(
                    s,
                    "  \"cadence_nanos\": {},\n  \"evicted_ticks\": {},\n",
                    t.cfg.cadence_nanos, t.evicted_ticks
                );
                s.push_str("  \"ticks_nanos\": [");
                for (i, ts) in t.ticks.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{ts}");
                }
                s.push_str("],\n  \"series\": [\n");
                let sorted = t.sorted_series();
                for (i, series) in sorted.iter().enumerate() {
                    s.push_str("    {\"name\": \"");
                    s.push_str(&json_escape(&series.name));
                    s.push_str("\", \"tags\": {");
                    for (j, (k, v)) in series.tags.iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        let _ = write!(s, "\"{}\": \"{}\"", json_escape(k), json_escape(v));
                    }
                    let _ = write!(
                        s,
                        "}}, \"kind\": \"{}\", \"base\": {}, \"deltas\": [",
                        series.kind.name(),
                        series.base
                    );
                    for (j, d) in series.deltas.iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        let _ = write!(s, "{d}");
                    }
                    s.push(']');
                    s.push('}');
                    if i + 1 < sorted.len() {
                        s.push(',');
                    }
                    s.push('\n');
                }
                s.push_str("  ]\n}\n");
            }
        }
        s
    }
}

/// Render `values` as a fixed-width ASCII sparkline, scaled to the series'
/// own min..max. Pure ASCII so the diagnostics dump stays grep/terminal
/// safe everywhere.
pub fn sparkline(values: &[i64], width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#@";
    if values.is_empty() || width == 0 {
        return String::new();
    }
    // Downsample by averaging fixed-size buckets so bursts don't vanish.
    let buckets: Vec<i64> = (0..width.min(values.len()))
        .map(|b| {
            let lo = b * values.len() / width.min(values.len());
            let hi = ((b + 1) * values.len() / width.min(values.len())).max(lo + 1);
            let slice = &values[lo..hi];
            slice.iter().sum::<i64>() / slice.len() as i64
        })
        .collect();
    let min = *buckets.iter().min().expect("non-empty");
    let max = *buckets.iter().max().expect("non-empty");
    let span = (max - min).max(1) as f64;
    buckets
        .iter()
        .map(|&v| {
            let t = (v - min) as f64 / span;
            let idx = (t * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[idx.min(RAMP.len() - 1)] as char
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{tags, MetricsRegistry};

    fn snap_with_counter(v: u64) -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("jet_test_items_total", tags(&[("member", "0")]))
            .add(v);
        reg.snapshot()
    }

    #[test]
    fn disabled_timeline_is_inert() {
        let t = Timeline::disabled();
        assert!(!t.is_enabled());
        assert!(!t.sample_due(u64::MAX));
        assert_eq!(t.next_sample_in(0), None);
        t.record_sample(0, &snap_with_counter(1));
        assert_eq!(t.stats(), (0, 0, 0, 0));
        assert!(t.to_json("b", "r").contains("\"series\": []"));
    }

    #[test]
    fn empty_job_exports_valid_empty_timeline() {
        let t = Timeline::enabled();
        let json = t.to_json("bench", "run");
        assert!(json.contains("\"schema\": \"jet-timeline-v1\""));
        assert!(json.contains("\"ticks_nanos\": []"));
        assert_eq!(t.stats(), (0, 0, 0, 0));
    }

    #[test]
    fn single_sample_records_absolute_values_as_first_delta() {
        let t = Timeline::enabled();
        assert!(t.sample_due(0));
        t.record_sample(0, &snap_with_counter(42));
        assert!(!t.sample_due(1));
        assert!(t.sample_due(100 * MS));
        let (samples, series, ticks, evicted) = t.stats();
        assert_eq!((samples, series, ticks, evicted), (1, 1, 1, 0));
        let json = t.to_json("b", "r");
        assert!(json.contains("\"base\": 0, \"deltas\": [42]"), "{json}");
    }

    #[test]
    fn counters_delta_encode_and_gauges_track_value() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jet_test_items_total", tags(&[]));
        let g = reg.gauge("jet_test_queue_depth", tags(&[]));
        let t = Timeline::enabled();
        c.add(10);
        g.set(5);
        t.record_sample(0, &reg.snapshot());
        c.add(7);
        g.set(3);
        t.record_sample(100 * MS, &reg.snapshot());
        let series = t.job_series();
        let counter = series
            .iter()
            .find(|(n, _, _)| n == "jet_test_items_total")
            .expect("counter series");
        assert_eq!(counter.2, vec![10, 17]);
        let gauge = series
            .iter()
            .find(|(n, _, _)| n == "jet_test_queue_depth")
            .expect("gauge series");
        assert_eq!(gauge.2, vec![5, 3]);
    }

    #[test]
    fn ring_wrap_folds_oldest_ticks_into_base() {
        let t = Timeline::with_config(TimelineConfig {
            cadence_nanos: MS,
            capacity: 3,
        });
        let reg = MetricsRegistry::new();
        let c = reg.counter("jet_test_items_total", tags(&[]));
        for i in 0..6u64 {
            c.add(10);
            t.record_sample(i * MS, &reg.snapshot());
        }
        let (samples, _, ticks, evicted) = t.stats();
        assert_eq!((samples, ticks, evicted), (6, 3, 3));
        assert_eq!(t.ticks(), vec![3 * MS, 4 * MS, 5 * MS]);
        // Absolute values survive the fold: base picks up evicted deltas.
        let series = t.job_series();
        assert_eq!(series[0].2, vec![40, 50, 60]);
        let json = t.to_json("b", "r");
        assert!(json.contains("\"base\": 30"), "{json}");
        assert!(json.contains("\"evicted_ticks\": 3"), "{json}");
    }

    #[test]
    fn late_appearing_series_zero_pads_history() {
        let t = Timeline::enabled();
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("jet_test_a_total", tags(&[]));
        c1.add(1);
        t.record_sample(0, &reg.snapshot());
        let c2 = reg.counter("jet_test_b_total", tags(&[]));
        c2.add(9);
        t.record_sample(100 * MS, &reg.snapshot());
        let series = t.job_series();
        let b = series
            .iter()
            .find(|(n, _, _)| n == "jet_test_b_total")
            .expect("late series");
        assert_eq!(b.2, vec![0, 9]);
        // Rectangular invariant: every series has one delta per tick.
        let (_, _, ticks, _) = t.stats();
        for (_, _, values) in &series {
            assert_eq!(values.len(), ticks);
        }
    }

    #[test]
    fn duplicate_instant_sample_is_folded() {
        let t = Timeline::enabled();
        t.record_sample(0, &snap_with_counter(1));
        t.record_sample(0, &snap_with_counter(2));
        let (samples, _, ticks, _) = t.stats();
        assert_eq!((samples, ticks), (1, 1));
    }

    #[test]
    fn histogram_series_sample_p99() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("jet_test_latency_nanos", tags(&[]));
        for v in 1..=100u64 {
            h.record(v);
        }
        let t = Timeline::enabled();
        t.record_sample(0, &reg.snapshot());
        let series = t.job_series();
        assert_eq!(series[0].1, SeriesKind::HistogramP99);
        assert!(series[0].2[0] > 0);
        let json = t.to_json("b", "r");
        assert!(json.contains("\"kind\": \"histogram_p99\""), "{json}");
    }

    #[test]
    fn timeline_json_ticks_are_strictly_monotone() {
        let t = Timeline::with_config(TimelineConfig {
            cadence_nanos: MS,
            capacity: 8,
        });
        for i in 0..5u64 {
            t.record_sample(i * MS, &snap_with_counter(1));
        }
        let ticks = t.ticks();
        assert!(ticks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sparkline_is_ascii_and_fixed_width() {
        let values: Vec<i64> = (0..100).map(|i| (i % 17) * 3).collect();
        let line = sparkline(&values, 40);
        assert_eq!(line.len(), 40);
        assert!(line.is_ascii());
        assert_eq!(sparkline(&[], 40), "");
        assert_eq!(sparkline(&[5], 40).len(), 1);
        // Flat series renders flat (min==max guard).
        let flat = sparkline(&[7, 7, 7, 7], 4);
        assert!(flat.chars().all(|c| c == flat.chars().next().unwrap()));
    }
}

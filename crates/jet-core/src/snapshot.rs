//! Snapshot coordination (paper §4.4).
//!
//! "At regular intervals, Jet instructs source vertices to take a state
//! snapshot. Then, all processors belonging to source vertices save their
//! state, emit a checkpoint barrier to the downstream processors through the
//! data flow, and resume processing."
//!
//! The [`SnapshotRegistry`] is the per-execution rendezvous:
//!
//! * the coordinator bumps the *requested* snapshot id (time-driven);
//! * source tasklets observe the bump, save their state, and emit barriers;
//! * every participating tasklet writes its staged state records here and
//!   *acks* the snapshot id once its barrier logic completes;
//! * when all live participants acked, the snapshot is marked complete in
//!   the [`SnapshotStore`] (backed by the replicated IMDG), becoming the
//!   recovery point.

use crate::item::SnapshotId;
use jet_imdg::SnapshotStore;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Per-execution snapshot coordination state. Shared by all tasklets of a
/// job execution and by the coordinator.
pub struct SnapshotRegistry {
    /// Latest requested snapshot id; 0 = none yet.
    requested: AtomicU64,
    /// Latest snapshot whose completion was recorded.
    completed: AtomicU64,
    /// Id of an in-flight terminal snapshot (0 = none): used for
    /// suspend-with-snapshot.
    terminal: AtomicU64,
    /// Number of tasklets that must ack each snapshot.
    participants: AtomicUsize,
    acks: Mutex<HashMap<SnapshotId, usize>>,
    /// Snapshots that suffered a store write failure: they still drain
    /// their barriers, but are never marked complete (a partial snapshot
    /// must not become the recovery point).
    poisoned: Mutex<HashSet<SnapshotId>>,
    /// Count of snapshots poisoned by write failures.
    poisoned_total: AtomicU64,
    store: Option<SnapshotStore>,
    /// Nanos timestamp of the last trigger (coordinator bookkeeping).
    last_trigger_nanos: AtomicU64,
}

impl SnapshotRegistry {
    /// Registry with persistent storage (real fault tolerance).
    pub fn new(store: SnapshotStore, participants: usize) -> Self {
        SnapshotRegistry {
            requested: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            terminal: AtomicU64::new(0),
            participants: AtomicUsize::new(participants),
            acks: Mutex::new(HashMap::new()),
            poisoned: Mutex::new(HashSet::new()),
            poisoned_total: AtomicU64::new(0),
            store: Some(store),
            last_trigger_nanos: AtomicU64::new(0),
        }
    }

    /// Registry for jobs running without fault tolerance — snapshots are
    /// never requested (guarantee `None`, §4.6 active-active style).
    pub fn disabled() -> Self {
        SnapshotRegistry {
            requested: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            terminal: AtomicU64::new(0),
            participants: AtomicUsize::new(0),
            acks: Mutex::new(HashMap::new()),
            poisoned: Mutex::new(HashSet::new()),
            poisoned_total: AtomicU64::new(0),
            store: None,
            last_trigger_nanos: AtomicU64::new(0),
        }
    }

    pub fn set_participants(&self, n: usize) {
        // ordering: SeqCst — participant accounting must totally order with
        // ack counting: a stale count can complete a snapshot early. Cold
        // path (wiring and retirement only).
        self.participants.store(n, Ordering::SeqCst);
    }

    pub fn participants(&self) -> usize {
        // ordering: SeqCst — same total order as `set_participants`.
        self.participants.load(Ordering::SeqCst)
    }

    /// The snapshot id sources should be working toward.
    pub fn requested(&self) -> SnapshotId {
        self.requested.load(Ordering::Acquire)
    }

    /// Latest fully completed snapshot id (0 = none).
    pub fn completed(&self) -> SnapshotId {
        self.completed.load(Ordering::Acquire)
    }

    /// Is the in-flight snapshot terminal?
    pub fn is_terminal(&self, id: SnapshotId) -> bool {
        self.terminal.load(Ordering::Acquire) == id && id != 0
    }

    /// Coordinator: request a new snapshot if the previous one finished.
    /// Returns the new id if one was started.
    pub fn trigger(&self) -> Option<SnapshotId> {
        self.store.as_ref()?;
        let req = self.requested.load(Ordering::Acquire);
        if req != self.completed.load(Ordering::Acquire) {
            return None; // previous still in flight
        }
        let next = req + 1;
        self.requested.store(next, Ordering::Release);
        Some(next)
    }

    /// Coordinator: request a terminal snapshot (suspend the job once it
    /// completes). Unlike `trigger`, does not wait for in-flight snapshots.
    pub fn trigger_terminal(&self) -> Option<SnapshotId> {
        self.store.as_ref()?;
        let next = self.requested.load(Ordering::Acquire) + 1;
        self.terminal.store(next, Ordering::Release);
        self.requested.store(next, Ordering::Release);
        Some(next)
    }

    /// Jump the id sequence past `id` without taking a snapshot — used when
    /// a recovered execution continues from a restored snapshot so new
    /// snapshot ids keep increasing.
    pub fn fast_forward_to(&self, id: SnapshotId) {
        self.requested.fetch_max(id, Ordering::AcqRel);
        self.completed.fetch_max(id, Ordering::AcqRel);
    }

    /// Time-driven trigger helper: fires when `interval_nanos` elapsed since
    /// the last trigger.
    pub fn maybe_trigger(&self, now_nanos: u64, interval_nanos: u64) -> Option<SnapshotId> {
        let last = self.last_trigger_nanos.load(Ordering::Acquire);
        if now_nanos.saturating_sub(last) < interval_nanos {
            return None;
        }
        if self
            .last_trigger_nanos
            .compare_exchange(last, now_nanos, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        self.trigger()
    }

    /// Tasklet: persist staged state records for `vertex` under `id`. A
    /// store write failure poisons the snapshot: barriers still drain, but
    /// it will never be marked complete.
    // jet-analyze: allow(alloc, block) — snapshot registry: epoch-barrier path under a short registry lock, once per epoch
    pub fn write_records(&self, id: SnapshotId, vertex: &str, records: Vec<(Vec<u8>, Vec<u8>)>) {
        if let Some(store) = &self.store {
            let mut ok = true;
            for (k, v) in records {
                ok &= store.write(id, vertex, k, v);
            }
            if !ok && self.poisoned.lock().insert(id) {
                self.poisoned_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Finish snapshot `id`: advance `completed` so the next trigger can
    /// fire, and — unless the snapshot was poisoned by a write failure —
    /// durably mark it as a recovery point.
    // jet-analyze: allow(block) — snapshot registry: epoch-barrier path under a short registry lock, once per epoch
    fn finish(&self, id: SnapshotId) {
        let poisoned = self.poisoned.lock().remove(&id);
        if !poisoned {
            if let Some(store) = &self.store {
                store.mark_complete(id, Vec::new());
            }
        }
        self.completed.fetch_max(id, Ordering::AcqRel);
    }

    /// Tasklet: ack completion of barrier handling for `id`. When the last
    /// participant acks, the snapshot is marked complete.
    // jet-analyze: allow(alloc, block) — snapshot registry: epoch-barrier path under a short registry lock, once per epoch
    pub fn ack(&self, id: SnapshotId) {
        if id <= self.completed.load(Ordering::Acquire) {
            return; // late ack for an abandoned (or finished) snapshot
        }
        let complete = {
            let mut acks = self.acks.lock();
            let n = acks.entry(id).or_insert(0);
            *n += 1;
            // ordering: SeqCst — the completion decision must see the most
            // recent participant count in the same total order.
            let done = *n >= self.participants.load(Ordering::SeqCst);
            if done {
                acks.remove(&id);
            }
            done
        };
        if complete {
            self.finish(id);
        }
    }

    /// A tasklet finished for good; it will not ack future snapshots.
    // jet-analyze: allow(alloc, block) — snapshot registry: epoch-barrier path under a short registry lock, once per epoch
    pub fn retire_participant(&self) {
        // ordering: SeqCst — retirement races the ack path's completion
        // check; the total order makes exactly one side complete the
        // snapshot. Runs once per tasklet lifetime.
        let remaining = self.participants.fetch_sub(1, Ordering::SeqCst) - 1;
        // Finishing a participant can complete an in-flight snapshot.
        let pending: Vec<(SnapshotId, usize)> = {
            let acks = self.acks.lock();
            acks.iter().map(|(&id, &n)| (id, n)).collect()
        };
        for (id, n) in pending {
            if id <= self.completed.load(Ordering::Acquire) {
                self.acks.lock().remove(&id); // abandoned: drop, never finish
            } else if n >= remaining {
                self.acks.lock().remove(&id);
                self.finish(id);
            }
        }
    }

    /// Abandon the in-flight snapshot (if any) so triggering can resume.
    ///
    /// Without this, a snapshot whose acks never all arrive — e.g. a
    /// terminal rescale snapshot that missed its deadline — wedges the
    /// registry: `requested > completed` forever, so [`Self::trigger`]
    /// returns `None` for the rest of the job and the recovery point
    /// silently freezes. Abandoning declares the in-flight id finished
    /// *without* a completion marker: it can never be restored from, late
    /// acks for it are ignored (its ack entry is dropped), and the next
    /// trigger hands out a fresh id. Returns the abandoned id.
    pub fn abort_in_flight(&self) -> Option<SnapshotId> {
        let req = self.requested.load(Ordering::Acquire);
        if req == self.completed.load(Ordering::Acquire) {
            return None;
        }
        self.terminal.store(0, Ordering::Release);
        self.acks.lock().remove(&req);
        self.poisoned.lock().remove(&req);
        self.completed.fetch_max(req, Ordering::AcqRel);
        Some(req)
    }

    /// Snapshots poisoned by store write failures so far.
    pub fn poisoned_total(&self) -> u64 {
        self.poisoned_total.load(Ordering::Relaxed)
    }

    /// Access the backing store (for recovery).
    pub fn store(&self) -> Option<&SnapshotStore> {
        self.store.as_ref()
    }

    /// Is snapshotting enabled at all?
    pub fn enabled(&self) -> bool {
        self.store.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jet_imdg::Grid;

    fn registry(participants: usize) -> SnapshotRegistry {
        let grid = Grid::with_partition_count(2, 1, 16);
        SnapshotRegistry::new(SnapshotStore::new(&grid, 1), participants)
    }

    #[test]
    fn trigger_then_acks_complete_snapshot() {
        let r = registry(3);
        assert_eq!(r.requested(), 0);
        assert_eq!(r.trigger(), Some(1));
        assert_eq!(r.requested(), 1);
        assert_eq!(r.trigger(), None, "in-flight snapshot blocks retrigger");
        r.ack(1);
        r.ack(1);
        assert_eq!(r.completed(), 0);
        r.ack(1);
        assert_eq!(r.completed(), 1);
        assert_eq!(r.store().unwrap().latest_complete(), Some(1));
        assert_eq!(r.trigger(), Some(2));
    }

    #[test]
    fn disabled_registry_never_triggers() {
        let r = SnapshotRegistry::disabled();
        assert_eq!(r.trigger(), None);
        assert_eq!(r.maybe_trigger(1_000_000_000, 1), None);
        assert!(!r.enabled());
    }

    #[test]
    fn maybe_trigger_respects_interval() {
        let r = registry(1);
        assert_eq!(r.maybe_trigger(5, 1_000), None, "too early");
        assert_eq!(r.maybe_trigger(1_000, 1_000), Some(1));
        r.ack(1);
        assert_eq!(r.maybe_trigger(1_500, 1_000), None);
        assert_eq!(r.maybe_trigger(2_000, 1_000), Some(2));
    }

    #[test]
    fn records_are_persisted_per_vertex() {
        let r = registry(1);
        r.trigger();
        r.write_records(1, "agg", vec![(b"k".to_vec(), b"v".to_vec())]);
        r.ack(1);
        let recs = r.store().unwrap().read_vertex(1, "agg");
        assert_eq!(recs, vec![(b"k".to_vec(), b"v".to_vec())]);
    }

    #[test]
    fn retiring_last_missing_participant_completes() {
        let r = registry(2);
        r.trigger();
        r.ack(1);
        assert_eq!(r.completed(), 0);
        r.retire_participant();
        assert_eq!(r.completed(), 1, "retire should complete the snapshot");
    }

    #[test]
    fn terminal_trigger_marks_terminal() {
        let r = registry(1);
        let id = r.trigger_terminal().unwrap();
        assert!(r.is_terminal(id));
        assert!(!r.is_terminal(id + 1));
    }

    #[test]
    fn abort_in_flight_unwedges_the_registry() {
        let r = registry(3);
        let id = r.trigger_terminal().unwrap();
        r.ack(id); // only 1 of 3 participants ever acks
        assert_eq!(r.trigger(), None, "wedged while in flight");
        let aborted = r.abort_in_flight();
        assert_eq!(aborted, Some(id));
        assert!(!r.is_terminal(id), "abort clears the terminal flag");
        // Triggering resumes with a fresh id…
        assert_eq!(r.trigger(), Some(id + 1));
        // …and the abandoned snapshot never became a recovery point.
        assert_eq!(r.store().unwrap().latest_complete(), None);
    }

    #[test]
    fn late_acks_for_an_abandoned_snapshot_never_complete_it() {
        let r = registry(3);
        let id = r.trigger().unwrap();
        r.ack(id);
        r.abort_in_flight();
        // Stragglers ack after the abort; even combined with participant
        // retirement this must not mark the torn snapshot complete.
        r.ack(id);
        r.ack(id);
        r.retire_participant();
        r.retire_participant();
        assert_eq!(r.store().unwrap().latest_complete(), None);
    }

    #[test]
    fn abort_without_in_flight_is_a_no_op() {
        let r = registry(1);
        assert_eq!(r.abort_in_flight(), None);
        r.trigger();
        r.ack(1);
        assert_eq!(r.abort_in_flight(), None);
        assert_eq!(r.completed(), 1);
    }

    #[test]
    fn write_failure_poisons_the_snapshot() {
        let r = registry(2);
        let store = r.store().unwrap().clone();
        let id = r.trigger().unwrap();
        store.faults().set_fail_writes(true);
        r.write_records(id, "agg", vec![(b"k".to_vec(), b"v".to_vec())]);
        store.faults().set_fail_writes(false);
        r.ack(id);
        r.ack(id);
        // All acks arrived, the id is finished (no wedge)…
        assert_eq!(r.completed(), id);
        assert_eq!(r.trigger(), Some(id + 1));
        assert_eq!(r.poisoned_total(), 1);
        // …but a partial snapshot is never a recovery point.
        assert_eq!(store.latest_complete(), None);
        // The next, healthy snapshot completes normally.
        r.write_records(id + 1, "agg", vec![(b"k".to_vec(), b"v2".to_vec())]);
        r.ack(id + 1);
        r.ack(id + 1);
        assert_eq!(store.latest_complete(), Some(id + 1));
    }
}
